//! # ntc-choke
//!
//! Facade crate for the choke-point timing-error resilience study: a
//! from-scratch Rust reproduction of "Revamping timing error resilience to
//! tackle choke points at NTC systems" (DATE 2017) and its Trident
//! extension, including every substrate (gate-level netlists, device and
//! process-variation models, static/dynamic timing analysis, ISA +
//! workload models, pipeline cost model) and the resilience schemes
//! themselves (DCS-ICSLT, DCS-ACSLT, Trident, and the Razor/HFG/OCST
//! baselines).
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! * [`netlist`] — gate-level circuits and structural generators
//! * [`varmodel`] — FinFET delay + process-variation models
//! * [`timing`] — static STA and dynamic two-vector timing simulation
//! * [`isa`] — the MIPS-like ISA subset and operand metrics
//! * [`workload`] — SPEC-CPU2000-like trace generators
//! * [`pipeline`] — the 11-stage pipeline and energy model
//! * [`core`] — the resilience schemes and the cross-layer simulator
//! * [`experiments`] — per-figure reproduction runners
//! * [`serve`] — the grid-compute daemon (JSON-lines protocol,
//!   coalescing, admission control)

pub use ntc_core as core;
pub use ntc_experiments as experiments;
pub use ntc_serve as serve;
pub use ntc_isa as isa;
pub use ntc_netlist as netlist;
pub use ntc_pipeline as pipeline;
pub use ntc_timing as timing;
pub use ntc_varmodel as varmodel;
pub use ntc_workload as workload;
