//! `ntc-serve` — the grid-compute daemon and its scripted client.
//!
//! ```text
//! ntc-serve serve   [--socket PATH | --tcp ADDR] [--cache-dir DIR]
//!                   [--jobs N] [--budget N] [--queue N] [--hold-ms N]
//! ntc-serve request [--socket PATH | --tcp ADDR] [--out FILE]
//!                   (--experiment ID [--scale fast|full] | --grid JSON | --line JSON)
//! ```
//!
//! `serve` runs the daemon until SIGTERM/SIGINT or a `shutdown` request,
//! then drains cleanly (socket unlinked, no quarantine files). `request`
//! sends one request, prints the receipt (or the full response for
//! non-compute ops) to stdout, and with `--out` writes the CSV payload
//! bytes to a file — which `cmp`s clean against the batch `repro` CSVs.
//! Exit codes: 0 success, 1 server-side error response, 2 usage/I/O.

use ntc_choke::experiments::report::{parse_json, Json};
use ntc_choke::serve::{self, Addr, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ntc-serve serve   [--socket PATH | --tcp ADDR] [--cache-dir DIR] \
         [--jobs N] [--budget N] [--queue N] [--hold-ms N]\n\
         \x20      ntc-serve request [--socket PATH | --tcp ADDR] [--out FILE] \
         (--experiment ID [--scale fast|full] | --grid JSON | --line JSON)"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "serve" => run_serve(args),
        "request" => run_request(args),
        _ => usage(),
    }
}

/// Pop the value of a `--flag VALUE` pair, or die with usage.
fn take_value(args: &mut std::vec::IntoIter<String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        usage();
    })
}

fn parse_addr(socket: Option<String>, tcp: Option<String>) -> Addr {
    match (socket, tcp) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --tcp are mutually exclusive");
            usage();
        }
        (None, Some(a)) => Addr::Tcp(a),
        (Some(p), None) => Addr::Unix(PathBuf::from(p)),
        (None, None) => Addr::Unix(PathBuf::from("ntc-serve.sock")),
    }
}

fn run_serve(args: Vec<String>) {
    let mut socket = None;
    let mut tcp = None;
    let mut cfg = ServeConfig::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(take_value(&mut it, "--socket")),
            "--tcp" => tcp = Some(take_value(&mut it, "--tcp")),
            "--cache-dir" => {
                cfg.cache_dir = Some(PathBuf::from(take_value(&mut it, "--cache-dir")));
            }
            "--jobs" => {
                cfg.jobs = Some(parse_num(&take_value(&mut it, "--jobs"), "--jobs"));
            }
            "--budget" => cfg.budget = parse_num(&take_value(&mut it, "--budget"), "--budget"),
            "--queue" => cfg.queue_cap = parse_num(&take_value(&mut it, "--queue"), "--queue"),
            "--hold-ms" => {
                cfg.hold_before_compute =
                    Duration::from_millis(parse_num(&take_value(&mut it, "--hold-ms"), "--hold-ms")
                        as u64);
            }
            _ => usage(),
        }
    }
    cfg.addr = parse_addr(socket, tcp);
    serve::install_signal_handlers();
    let server = match Server::bind(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ntc-serve: bind failed: {e}");
            std::process::exit(2);
        }
    };
    match &cfg.addr {
        Addr::Unix(p) => eprintln!("ntc-serve: listening on unix socket {}", p.display()),
        Addr::Tcp(a) => eprintln!("ntc-serve: listening on tcp {a}"),
    }
    if let Err(e) = server.run() {
        eprintln!("ntc-serve: accept loop failed: {e}");
        std::process::exit(2);
    }
    eprintln!("ntc-serve: drained, exiting");
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {s}");
        usage();
    })
}

fn run_request(args: Vec<String>) {
    let mut socket = None;
    let mut tcp = None;
    let mut out: Option<PathBuf> = None;
    let mut line: Option<String> = None;
    let mut experiment: Option<String> = None;
    let mut scale = "fast".to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(take_value(&mut it, "--socket")),
            "--tcp" => tcp = Some(take_value(&mut it, "--tcp")),
            "--out" => out = Some(PathBuf::from(take_value(&mut it, "--out"))),
            "--experiment" => experiment = Some(take_value(&mut it, "--experiment")),
            "--scale" => scale = take_value(&mut it, "--scale"),
            "--grid" => {
                line = Some(format!(
                    "{{\"op\":\"grid\",\"spec\":{}}}",
                    take_value(&mut it, "--grid").replace('\n', " ")
                ));
            }
            "--line" => line = Some(take_value(&mut it, "--line")),
            _ => usage(),
        }
    }
    let addr = parse_addr(socket, tcp);
    let line = match (line, experiment) {
        (Some(l), None) => l,
        (None, Some(id)) => {
            format!("{{\"op\":\"experiment\",\"id\":\"{id}\",\"scale\":\"{scale}\"}}")
        }
        _ => usage(),
    };
    let response = match serve::roundtrip(&addr, &line) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ntc-serve: request failed: {e}");
            std::process::exit(2);
        }
    };
    let v = match parse_json(&response) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ntc-serve: unparseable response ({e}): {response}");
            std::process::exit(2);
        }
    };
    if v.get("ok") != Some(&Json::Bool(true)) {
        eprintln!("ntc-serve: server error: {response}");
        std::process::exit(1);
    }
    if let Some(path) = &out {
        let Some(csv) = v.get("csv").and_then(Json::as_str) else {
            eprintln!("ntc-serve: response carries no csv payload: {response}");
            std::process::exit(1);
        };
        if let Err(e) = std::fs::write(path, csv.as_bytes()) {
            eprintln!("ntc-serve: writing {} failed: {e}", path.display());
            std::process::exit(2);
        }
    }
    // The receipt is the scriptable part of a compute response; plain
    // ops (ping/list/stats) print whole.
    match v.get("receipt") {
        Some(_) => {
            let start = response.find("\"receipt\":").expect("just found the key");
            let receipt = &response[start + "\"receipt\":".len()..response.len() - 1];
            println!("{receipt}");
        }
        None => println!("{response}"),
    }
}
