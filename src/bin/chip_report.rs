//! `chip-report` — inspect one fabricated die's choke signature.
//!
//! Usage:
//!
//! ```text
//! chip_report [--seed N] [--width W] [--corner ntc|stc] [--paths K] [--verilog FILE]
//! ```
//!
//! Fabricates a `W`-bit ALU as die `N` at the chosen corner and prints its
//! post-silicon report: choke-gate census, critical-delay inflation, the K
//! most-critical paths with their dominating gates, and the worst slack
//! endpoints. Optionally dumps the netlist as structural Verilog.

use ntc_choke::netlist::generators::alu::Alu;
use ntc_choke::netlist::verilog;
use ntc_choke::timing::{k_critical_paths, SlackReport, StaticTiming};
use ntc_choke::varmodel::{ChipSignature, Corner, VariationParams};

fn main() {
    let mut seed = 1u64;
    let mut width = 32usize;
    let mut corner = Corner::NTC;
    let mut k = 5usize;
    let mut verilog_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed").parse().expect("numeric seed"),
            "--width" => width = value("--width").parse().expect("numeric width"),
            "--paths" => k = value("--paths").parse().expect("numeric path count"),
            "--corner" => {
                corner = match value("--corner").as_str() {
                    "stc" | "STC" => Corner::STC,
                    _ => Corner::NTC,
                }
            }
            "--verilog" => verilog_out = Some(value("--verilog")),
            "--help" | "-h" => {
                println!(
                    "usage: chip_report [--seed N] [--width W] [--corner ntc|stc] \
                     [--paths K] [--verilog FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`; try --help");
                std::process::exit(2);
            }
        }
    }

    let alu = Alu::new(width);
    let nl = alu.netlist();
    let params = if corner.name == "STC" {
        VariationParams::stc()
    } else {
        VariationParams::ntc()
    };
    let nominal = ChipSignature::nominal(nl, corner);
    let chip = ChipSignature::fabricate(nl, corner, params, seed);

    let d_nom = StaticTiming::analyze(nl, &nominal).critical_delay_ps(nl);
    let d_pv = StaticTiming::analyze(nl, &chip).critical_delay_ps(nl);

    println!("die {seed}: {width}-bit ALU at {corner}");
    println!(
        "  gates            : {} logic, depth {}",
        nl.logic_gate_count(),
        nl.max_depth()
    );
    println!("  nominal critical : {d_nom:.0} ps");
    println!(
        "  die critical     : {d_pv:.0} ps ({:.2}x nominal)",
        d_pv / d_nom
    );
    let slow = chip.slow_choke_gates();
    let fast = chip.fast_choke_gates();
    let stats = chip.multiplier_stats(nl);
    println!(
        "  choke census     : {} slow (>= 2.0x), {} fast (<= 0.6x); multipliers {:.2}..{:.2} (mean {:.2})",
        slow.len(),
        fast.len(),
        stats.min,
        stats.max,
        stats.mean
    );

    println!("\n  top {k} critical paths:");
    for (i, p) in k_critical_paths(nl, &chip, k).iter().enumerate() {
        let chokes = p.choke_gates(&chip, 2.0);
        println!(
            "   #{i}: {:.0} ps, {} gates, dominance {:.2}, {} choke gate(s) on path",
            p.delay_ps,
            p.depth(nl),
            p.dominance(&chip),
            chokes.len()
        );
    }

    let period = d_nom * 1.10;
    let report = SlackReport::analyze(nl, &chip, period);
    println!(
        "\n  at a {period:.0} ps clock: {} of {} endpoints violate setup (worst slack {:.0} ps)",
        report.failing().count(),
        nl.outputs().len(),
        report.worst_slack_ps()
    );

    if let Some(path) = verilog_out {
        let file = std::fs::File::create(&path).expect("create verilog file");
        verilog::write_verilog(nl, "ntc_alu", std::io::BufWriter::new(file))
            .expect("write verilog");
        println!("\n  netlist written to {path}");
    }
}
