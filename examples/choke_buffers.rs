//! Choke buffers: why the classic hold-fixing buffer insertion backfires
//! at near-threshold voltage. The example pads an ALU's short paths at
//! design time (nominal delays), then fabricates NTC dice and shows the
//! padded paths dipping back under the hold constraint whenever the
//! fabrication lottery hands the buffer chains fast transistors.
//!
//! Run with: `cargo run --release --example choke_buffers`

use ntc_choke::isa::{Instruction, Opcode};
use ntc_choke::netlist::buffer_insertion::insert_hold_buffers;
use ntc_choke::netlist::generators::alu::Alu;
use ntc_choke::timing::{DynamicSim, StaticTiming};
use ntc_choke::varmodel::{ChipSignature, Corner, VariationParams};

fn encode(width: usize, instr: &Instruction) -> Vec<bool> {
    let code = instr.opcode.alu_func().select_code();
    let mut pis = Vec::with_capacity(4 + 2 * width);
    pis.extend((0..4).map(|i| (code >> i) & 1 == 1));
    pis.extend((0..width).map(|i| (instr.a >> i) & 1 == 1));
    pis.extend((0..width).map(|i| (instr.b >> i) & 1 == 1));
    pis
}

fn main() {
    let width = 32;
    let alu = Alu::new(width);
    let nominal = ChipSignature::nominal(alu.netlist(), Corner::NTC);
    let crit = StaticTiming::analyze(alu.netlist(), &nominal).critical_delay_ps(alu.netlist());

    // Design-time hold fix: the Razor shadow-latch window demands that no
    // path switch before 22% of the critical delay. The tool sees nominal
    // delays only.
    let f = Corner::NTC.delay_factor();
    let hold_ntc = crit * 0.22;
    let (padded, bufs, report) =
        insert_hold_buffers(alu.netlist(), hold_ntc / f, crit * 0.72 / f);
    println!(
        "hold target {hold_ntc:.0} ps: inserted {} buffers on {} edges \
         (min path {:.0} -> {:.0} ps in the design frame)",
        report.buffers_inserted,
        report.edges_padded,
        report.min_delay_before_ps * f,
        report.min_delay_after_ps * f
    );
    assert!(!bufs.0.is_empty());

    // Post-silicon: fabricate dice and probe a short-path operation pair.
    let prev = Instruction::new(Opcode::Move, 0, 0);
    let cur = Instruction::new(Opcode::Move, 0xFFFF_FFFF, 0);
    println!("\n{:>4} {:>16} {:>10}", "die", "min delay (ps)", "verdict");
    let mut violations = 0;
    let dice = 10;
    for seed in 0..dice {
        let sig = ChipSignature::fabricate(&padded, Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(&padded, &sig);
        let t = sim.simulate_pair(&encode(width, &prev), &encode(width, &cur));
        let min = t.min_delay_ps.unwrap_or(f64::INFINITY);
        let violated = min < hold_ntc;
        violations += violated as u32;
        println!(
            "{:>4} {:>16.0} {:>10}",
            seed,
            min,
            if violated { "CHOKED" } else { "ok" }
        );
    }
    println!(
        "\n{violations}/{dice} dice violate the hold constraint the buffers were \
         inserted to guarantee — the buffers themselves became choke points."
    );
}
