//! Quickstart: fabricate an NTC chip, watch a choke point create timing
//! errors, and see Dynamic Choke Sensing learn and avoid them.
//!
//! Run with: `cargo run --release --example quickstart`

use ntc_choke::core::baselines::Razor;
use ntc_choke::core::dcs::Dcs;
use ntc_choke::core::sim::run_scheme;
use ntc_choke::core::tag_delay::{OracleConfig, TagDelayOracle};
use ntc_choke::pipeline::Pipeline;
use ntc_choke::timing::ClockSpec;
use ntc_choke::varmodel::{Corner, VariationParams};
use ntc_choke::workload::{Benchmark, TraceGenerator};

fn main() {
    // 1. Fabricate one near-threshold chip: a 32-bit ALU with
    //    VARIUS-NTV-style process variation (seed = the fabrication
    //    lottery ticket).
    let mut oracle =
        TagDelayOracle::for_chip(Corner::NTC, VariationParams::ntc(), 33, OracleConfig::default());
    let nominal = oracle.nominal_critical_delay_ps();
    println!("nominal critical delay      : {nominal:.0} ps");
    println!(
        "post-silicon static critical: {:.0} ps ({:.2}x — the choke points)",
        oracle.static_critical_delay_ps(),
        oracle.static_critical_delay_ps() / nominal
    );

    // 2. Clock the chip speculatively (slightly above the nominal critical
    //    delay) — the common case is fast, choke paths err.
    let clock = ClockSpec {
        period_ps: nominal * 1.10,
        hold_ps: nominal * 0.10,
    };

    // 3. Run an mcf-like instruction stream under Razor and under DCS.
    let trace = TraceGenerator::new(Benchmark::Mcf, 1).trace(50_000);
    let pipe = Pipeline::core1();

    let razor = run_scheme(&mut Razor::ch3(), &mut oracle, &trace, clock, pipe);
    let dcs = run_scheme(&mut Dcs::icslt_default(), &mut oracle, &trace, clock, pipe);

    println!("\n{:<12} {:>10} {:>10} {:>10} {:>9}", "scheme", "errors", "recovered", "avoided", "penalty");
    for r in [&razor, &dcs] {
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>9}",
            r.scheme,
            r.errors_total(),
            r.recovered,
            r.avoided,
            r.cost.penalty_cycles()
        );
    }
    println!(
        "\nDCS prediction accuracy: {:.1}%  |  speedup over Razor: {:.2}x",
        dcs.prediction_accuracy(),
        dcs.performance() / razor.performance()
    );
}
