//! The chip lottery: the same GDS produces dice with wildly different
//! choke-point signatures at NTC. This example fabricates a batch of
//! identical designs and reports, per die, how many choke gates it drew
//! and where its post-silicon critical delay landed — the paper's core
//! argument for *dynamic, per-chip* error mitigation.
//!
//! Run with: `cargo run --release --example chip_lottery`

use ntc_choke::netlist::generators::alu::Alu;
use ntc_choke::timing::StaticTiming;
use ntc_choke::varmodel::{chip_lottery, ChipSignature, Corner, VariationParams};

fn main() {
    let alu = Alu::new(32);
    let nl = alu.netlist();
    println!(
        "design: 32-bit ALU, {} logic gates, depth {}",
        nl.logic_gate_count(),
        nl.max_depth()
    );

    let nominal = ChipSignature::nominal(nl, Corner::NTC);
    let d_nom = StaticTiming::analyze(nl, &nominal).critical_delay_ps(nl);
    println!("nominal critical delay at NTC: {d_nom:.0} ps\n");

    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>12}",
        "die", "slow chokes", "fast chokes", "critical (ps)", "vs nominal"
    );
    let batch = chip_lottery(nl, Corner::NTC, VariationParams::ntc(), 1000, 12);
    for (i, chip) in batch.iter().enumerate() {
        let d = StaticTiming::analyze(nl, chip).critical_delay_ps(nl);
        println!(
            "{:>4} {:>12} {:>12} {:>14.0} {:>11.2}x",
            i,
            chip.slow_choke_gates().len(),
            chip.fast_choke_gates().len(),
            d,
            d / d_nom
        );
    }

    // The same lottery at STC, for contrast.
    let stc_batch = chip_lottery(nl, Corner::STC, VariationParams::stc(), 1000, 12);
    let stc_chokes: usize = stc_batch.iter().map(|c| c.slow_choke_gates().len()).sum();
    let ntc_chokes: usize = batch.iter().map(|c| c.slow_choke_gates().len()).sum();
    println!(
        "\ntotal slow choke gates across the batch — STC: {stc_chokes}, NTC: {ntc_chokes} \
         ({}x more at near-threshold)",
        if stc_chokes > 0 { ntc_chokes / stc_chokes.max(1) } else { ntc_chokes }
    );
}
