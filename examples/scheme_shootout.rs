//! Scheme shootout: every resilience technique in the library — Razor,
//! HFG, OCST, DCS-ICSLT, DCS-ACSLT and Trident — over the same workload on
//! the same fabricated chip, with penalty / performance / energy columns.
//!
//! Run with: `cargo run --release --example scheme_shootout [benchmark]`
//! where `benchmark` is one of bzip, gap, gzip, mcf, parser, vortex
//! (default: gzip).

use ntc_choke::core::baselines::{Hfg, Ocst, Razor};
use ntc_choke::core::dcs::Dcs;
use ntc_choke::core::sim::{run_scheme, SimResult};
use ntc_choke::core::trident::Trident;
use ntc_choke::core::ResilienceScheme;
use ntc_choke::experiments::{build_oracle, CH4_REGIME};
use ntc_choke::pipeline::{EnergyModel, Pipeline};
use ntc_choke::varmodel::Corner;
use ntc_choke::workload::{Benchmark, TraceGenerator, ALL_BENCHMARKS};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".into());
    let bench = ALL_BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .unwrap_or(Benchmark::Gzip);

    let cycles = 60_000;
    let seed = 7;
    let trace = TraceGenerator::new(bench, 3).trace(cycles);
    let pipe = Pipeline::core1();
    let model = EnergyModel::ntc_core();

    // Razor-family schemes run on the hold-buffered netlist with the
    // double-sampling min constraint; Trident runs bufferless with its
    // transition-detector guard interval.
    let mut oracle_buf = build_oracle(Corner::NTC, seed, true, CH4_REGIME);
    let mut oracle_bare = build_oracle(Corner::NTC, seed, false, CH4_REGIME);
    let clock = CH4_REGIME.clock(oracle_buf.nominal_critical_delay_ps());
    let tdc_clock = CH4_REGIME.tdc_clock(oracle_bare.nominal_critical_delay_ps());

    let hfg_stretch = (oracle_buf.static_critical_delay_ps() * 1.02 / clock.period_ps).max(1.0);

    let mut results: Vec<SimResult> = Vec::new();
    let mut razor = Razor::ch4();
    results.push(run_scheme(&mut razor, &mut oracle_buf, &trace, clock, pipe));
    let mut hfg = Hfg::with_stretch(hfg_stretch);
    results.push(run_scheme(&mut hfg, &mut oracle_buf, &trace, clock, pipe));
    let mut ocst = Ocst::new(cycles as u64 / 10, 0.30);
    results.push(run_scheme(&mut ocst, &mut oracle_buf, &trace, clock, pipe));
    let mut icslt = Dcs::icslt_default().with_min_corruption(true);
    results.push(run_scheme(&mut icslt, &mut oracle_buf, &trace, clock, pipe));
    let mut acslt = Dcs::acslt_default().with_min_corruption(true);
    results.push(run_scheme(&mut acslt, &mut oracle_buf, &trace, clock, pipe));
    let mut trident = Trident::paper();
    results.push(run_scheme(&mut trident, &mut oracle_bare, &trace, tdc_clock, pipe));

    let base_perf = results[0].performance();
    let base_eff = results[0].energy(model).efficiency;

    println!(
        "benchmark {bench}, {cycles} cycles, chip seed {seed} (HFG guardband {:.2}x)\n",
        hfg_stretch
    );
    println!(
        "{:<11} {:>8} {:>9} {:>8} {:>7} {:>9} {:>9} {:>8}",
        "scheme", "errors", "recovered", "avoided", "silent", "penalty", "perf", "energy"
    );
    for r in &results {
        println!(
            "{:<11} {:>8} {:>9} {:>8} {:>7} {:>9} {:>8.2}x {:>7.2}x",
            r.scheme,
            r.errors_total(),
            r.recovered,
            r.avoided,
            r.corruptions,
            r.cost.penalty_cycles(),
            r.performance() / base_perf,
            r.energy(model).efficiency / base_eff,
        );
    }
    println!(
        "\nnote: `silent` counts min-timing corruptions the double-sampling\n\
         schemes cannot even detect (choke buffers defeating the hold fix);\n\
         Trident is the only scheme with zero silent corruptions by design."
    );
    let _ = razor.name();
}
