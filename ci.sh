#!/usr/bin/env bash
# Offline CI gate: build, full test suite, lint wall, and a smoke-run of
# the reproduction binary. No network access required at any step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> repro --fast fig3.4"
./target/release/repro --fast fig3.4

echo "==> CI OK"
