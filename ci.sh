#!/usr/bin/env bash
# Offline CI gate: build, full test suite, lint wall, and a smoke-run of
# the reproduction binary. No network access required at any step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> kernel reference-equivalence + allocation-free suites"
cargo test -q --offline -p ntc-timing reference:: --lib
cargo test -q --offline -p ntc-timing --test alloc_free

echo "==> cargo check --offline -p ntc-bench --features bench --benches"
cargo check --offline -p ntc-bench --features bench --benches

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> repro --fast fig3.4"
./target/release/repro --fast fig3.4

echo "==> CI OK"
