#!/usr/bin/env bash
# Offline CI gate: build, full test suite, lint wall, and a smoke-run of
# the reproduction binary. No network access required at any step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> kernel reference-equivalence + allocation-free suites"
cargo test -q --offline -p ntc-timing reference:: --lib
cargo test -q --offline -p ntc-timing --test alloc_free

echo "==> cargo check --offline -p ntc-bench --features bench --benches"
cargo check --offline -p ntc-bench --features bench --benches

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> repro --list covers both registries (experiments + schemes)"
./target/release/repro --list > target/repro-ci-list.txt
# Spot-gate the two registries: the newest experiment id and the scheme
# roster must appear verbatim (the exhaustive equality check lives in the
# repro_cli integration test; this catches a stale release binary).
grep -qx 'fig4.12' target/repro-ci-list.txt
grep -qx 'abl.adder' target/repro-ci-list.txt
grep -qx 'scheme dcs-icslt (DCS-ICSLT)' target/repro-ci-list.txt
grep -qx 'scheme trident (Trident)' target/repro-ci-list.txt
grep -qx 'scheme ocst (OCST)' target/repro-ci-list.txt

echo "==> cargo doc --offline --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

echo "==> repro --fast fig3.4"
./target/release/repro --fast fig3.4

echo "==> repro --fast --format json fig3.4 (manifest + JSON output)"
rm -rf target/repro-ci
./target/release/repro --fast --format json --out target/repro-ci fig3.4 \
  > target/repro-ci-tables.jsonl
test -s target/repro-ci/manifest.json
test -s target/repro-ci/fig3_4.csv
# The manifest and every stdout table document must parse as JSON.
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "ntc-repro-manifest/1" and .failed == 0 and (.records | length) == 1' \
    target/repro-ci/manifest.json >/dev/null
  jq -e . target/repro-ci-tables.jsonl >/dev/null
elif command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
m = json.load(open("target/repro-ci/manifest.json"))
assert m["schema"] == "ntc-repro-manifest/1" and m["failed"] == 0 and len(m["records"]) == 1, m
for line in open("target/repro-ci-tables.jsonl"):
    if line.strip():
        json.loads(line)
EOF
else
  echo "note: neither jq nor python3 found; relying on repro's built-in manifest self-validation"
fi

echo "==> repro exit-code semantics (unknown id => 2, CSV failure => 1)"
if ./target/release/repro --fast fig3.4 fgi3.10 >/dev/null 2>&1; then
  echo "FAIL: misspelled experiment id must exit nonzero"; exit 1
fi
touch target/repro-ci-blocker
if ./target/release/repro --fast --out target/repro-ci-blocker fig3.4 >/dev/null 2>&1; then
  echo "FAIL: unwritable --out must exit nonzero"; exit 1
fi
rm -f target/repro-ci-blocker

echo "==> CI OK"
