#!/usr/bin/env bash
# Offline CI gate: build, full test suite, lint wall, and a smoke-run of
# the reproduction binary. No network access required at any step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> kernel reference-equivalence + allocation-free suites"
cargo test -q --offline -p ntc-timing reference:: --lib
cargo test -q --offline -p ntc-timing --test alloc_free

echo "==> cargo check --offline -p ntc-bench --features bench --benches"
cargo check --offline -p ntc-bench --features bench --benches

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> repro --list covers all three registries (experiments + schemes + vdd)"
./target/release/repro --list > target/repro-ci-list.txt
# Spot-gate the registries: the newest experiment id, the scheme roster,
# and the operating-point roster must appear verbatim (the exhaustive
# equality check lives in the repro_cli integration test; this catches a
# stale release binary).
grep -qx 'fig4.12' target/repro-ci-list.txt
grep -qx 'abl.adder' target/repro-ci-list.txt
grep -qx 'scheme dcs-icslt (DCS-ICSLT)' target/repro-ci-list.txt
grep -qx 'scheme trident (Trident)' target/repro-ci-list.txt
grep -qx 'scheme ocst (OCST)' target/repro-ci-list.txt
grep -qx 'scheme dvs (DVS)' target/repro-ci-list.txt
grep -qx 'scheme harden-choke (Harden-choke)' target/repro-ci-list.txt
grep -qx 'vdd v0.45 (0.45 V)' target/repro-ci-list.txt
grep -qx 'vdd v0.80 (0.80 V)' target/repro-ci-list.txt

echo "==> cargo doc --offline --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

echo "==> repro --fast fig3.4"
./target/release/repro --fast fig3.4

echo "==> repro --fast --format json fig3.4 (manifest + JSON output)"
rm -rf target/repro-ci
./target/release/repro --fast --format json --out target/repro-ci fig3.4 \
  > target/repro-ci-tables.jsonl
test -s target/repro-ci/manifest.json
test -s target/repro-ci/fig3_4.csv
# The manifest and every stdout table document must parse as JSON.
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema == "ntc-repro-manifest/6" and .failed == 0 and (.records | length) == 1' \
    target/repro-ci/manifest.json >/dev/null
  jq -e . target/repro-ci-tables.jsonl >/dev/null
elif command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
m = json.load(open("target/repro-ci/manifest.json"))
assert m["schema"] == "ntc-repro-manifest/6" and m["failed"] == 0 and len(m["records"]) == 1, m
for line in open("target/repro-ci-tables.jsonl"):
    if line.strip():
        json.loads(line)
EOF
else
  echo "note: neither jq nor python3 found; relying on repro's built-in manifest self-validation"
fi

echo "==> grid cache: two runs, one cache dir, byte-identical CSVs + disk hits"
rm -rf target/repro-ci-cache target/repro-ci-cold target/repro-ci-warm
./target/release/repro --fast --cache-dir target/repro-ci-cache \
  --out target/repro-ci-cold fig3.8 >/dev/null
./target/release/repro --fast --cache-dir target/repro-ci-cache \
  --out target/repro-ci-warm fig3.8 >/dev/null
cmp target/repro-ci-cold/fig3_8.csv target/repro-ci-warm/fig3_8.csv
# The cold manifest must record only misses; the warm one at least one
# disk hit and zero misses (the grep is shape-stable: counters are
# emitted in a fixed key order by CacheStats::fields()).
grep -q '"disk_hits":0,' target/repro-ci-cold/manifest.json
grep -Eq '"disk_hits":[1-9][0-9]*,"disk_misses":0,' target/repro-ci-warm/manifest.json

echo "==> grid cache: corrupt artifact is quarantined, run still green"
artifact=$(ls target/repro-ci-cache/*.grid | head -n1)
# Truncate the artifact to half its size: the trailing checksum is gone,
# so the load must quarantine and recompute.
size=$(wc -c < "$artifact")
head -c "$((size / 2))" "$artifact" > "$artifact.tmp"
mv "$artifact.tmp" "$artifact"
rm -rf target/repro-ci-evict
./target/release/repro --fast --cache-dir target/repro-ci-cache \
  --out target/repro-ci-evict fig3.8 2>/dev/null >/dev/null
cmp target/repro-ci-cold/fig3_8.csv target/repro-ci-evict/fig3_8.csv
grep -Eq '"corrupt_evictions":[1-9][0-9]*,' target/repro-ci-evict/manifest.json
ls target/repro-ci-cache/*.grid.corrupt >/dev/null

echo "==> voltage axis: 4-point grid, cached byte-identically, old schema ignored"
# A four-point --vdd sweep through a fresh cache dir, twice: the warm run
# must reproduce the cold CSV byte-for-byte from the disk tier, per-point
# rows must be labelled, and the manifest must count cells per point.
rm -rf target/repro-ci-vdd-cache target/repro-ci-vdd-cold target/repro-ci-vdd-warm
./target/release/repro --fast --vdd ntc,v0.55,v0.65,stc \
  --cache-dir target/repro-ci-vdd-cache --out target/repro-ci-vdd-cold \
  fig3.10 >/dev/null
grep -q '@ v0.55' target/repro-ci-vdd-cold/fig3_10.csv
grep -q '@ v0.80' target/repro-ci-vdd-cold/fig3_10.csv
grep -q '"voltages":{"v0.45":' target/repro-ci-vdd-cold/manifest.json
# An artifact written under any older cache schema lives at a filename the
# current code never computes: it must be *ignored* — no quarantine, no
# eviction, bytes untouched — while the real artifacts hit.
stale=target/repro-ci-vdd-cache/00000000000000000000000000000000.grid
printf 'NTCGRID1 written by an older schema' > "$stale"
NTC_VDD=ntc,v0.55,v0.65,stc ./target/release/repro --fast \
  --cache-dir target/repro-ci-vdd-cache --out target/repro-ci-vdd-warm \
  fig3.10 >/dev/null
cmp target/repro-ci-vdd-cold/fig3_10.csv target/repro-ci-vdd-warm/fig3_10.csv
grep -Eq '"disk_hits":[1-9][0-9]*,"disk_misses":0,' target/repro-ci-vdd-warm/manifest.json
grep -q '"corrupt_evictions":0,' target/repro-ci-vdd-warm/manifest.json
test "$(cat "$stale")" = 'NTCGRID1 written by an older schema'
if ls target/repro-ci-vdd-cache/*.corrupt >/dev/null 2>&1; then
  echo "FAIL: old-schema artifact must be ignored, not quarantined"; exit 1
fi

echo "==> timing screen: on vs off, byte-identical CSVs, nonzero hit rate"
# fig3.11 carries HFG, whose guardbanded clock the conservative screen can
# prove safe — the armed screen must fire there. Two cold processes (no
# --cache-dir, separate --out dirs), every CSV compared byte-for-byte.
rm -rf target/repro-ci-screen-on target/repro-ci-screen-off
./target/release/repro --fast --out target/repro-ci-screen-on fig3.11 >/dev/null
./target/release/repro --fast --no-screen --out target/repro-ci-screen-off \
  fig3.11 >/dev/null
cmp target/repro-ci-screen-on/fig3_11.csv target/repro-ci-screen-off/fig3_11.csv
# Counters are emitted in a fixed key order (OracleStats::fields):
# the screened manifest must record hits, the unscreened one must not.
grep -Eq '"screen_hits":[1-9][0-9]*,' target/repro-ci-screen-on/manifest.json
grep -q '"screen_hits":0,' target/repro-ci-screen-off/manifest.json
# NTC_SCREEN=off must behave exactly like --no-screen.
rm -rf target/repro-ci-screen-env
NTC_SCREEN=off ./target/release/repro --fast --out target/repro-ci-screen-env \
  fig3.11 >/dev/null
cmp target/repro-ci-screen-on/fig3_11.csv target/repro-ci-screen-env/fig3_11.csv
grep -q '"screen_hits":0,' target/repro-ci-screen-env/manifest.json

echo "==> incremental re-timing: on vs off, byte-identical CSVs, counters"
# fig3.8's fast grid walks several chips on one topology, so the memo
# pool re-times chip→chip deltas instead of re-analyzing — the armed
# engine must record incremental passes, and disarming it (either
# spelling) must not change a single CSV byte.
rm -rf target/repro-ci-incr-on target/repro-ci-incr-off target/repro-ci-incr-env
./target/release/repro --fast --out target/repro-ci-incr-on fig3.8 >/dev/null
./target/release/repro --fast --no-incr --out target/repro-ci-incr-off \
  fig3.8 >/dev/null
cmp target/repro-ci-incr-on/fig3_8.csv target/repro-ci-incr-off/fig3_8.csv
# Counters are emitted in a fixed key order (OracleStats::fields).
grep -Eq '"sta_incremental":[1-9][0-9]*,' target/repro-ci-incr-on/manifest.json
grep -q '"sta_incremental":0,' target/repro-ci-incr-off/manifest.json
# NTC_INCR=off must behave exactly like --no-incr.
NTC_INCR=off ./target/release/repro --fast --out target/repro-ci-incr-env \
  fig3.8 >/dev/null
cmp target/repro-ci-incr-on/fig3_8.csv target/repro-ci-incr-env/fig3_8.csv
grep -q '"sta_incremental":0,' target/repro-ci-incr-env/manifest.json

echo "==> repro --resume finishes a suite a failed experiment cut short"
rm -rf target/repro-ci-resume
if NTC_REPRO_FAIL=tab3.overheads ./target/release/repro --fast \
  --out target/repro-ci-resume fig3.4 tab3.overheads >/dev/null 2>&1; then
  echo "FAIL: injected experiment failure must exit nonzero"; exit 1
fi
./target/release/repro --fast --resume --out target/repro-ci-resume \
  fig3.4 tab3.overheads >/dev/null
grep -q '"resumed":true,' target/repro-ci-resume/manifest.json
grep -q '"failed":0,' target/repro-ci-resume/manifest.json

echo "==> trace record/replay: full replay reproduces the generator CSV byte-for-byte"
# Three cold processes, no --cache-dir (a shared cache would alias the
# record run onto the generator's artifacts and skip the cells that
# write traces): plain generator, --record (writes .ntt files), then
# replay of those files. All three CSVs must be byte-identical — the
# replay gate is the acceptance criterion for the binary trace format.
rm -rf target/repro-ci-traces target/repro-ci-trace-gen \
  target/repro-ci-trace-rec target/repro-ci-trace-rep target/repro-ci-trace-ph
./target/release/repro --fast --out target/repro-ci-trace-gen fig3.8 >/dev/null
./target/release/repro --fast --trace-dir target/repro-ci-traces --record \
  --out target/repro-ci-trace-rec fig3.8 >/dev/null
ls target/repro-ci-traces/*.ntt >/dev/null
./target/release/repro --fast --trace-dir target/repro-ci-traces \
  --out target/repro-ci-trace-rep fig3.8 >/dev/null
cmp target/repro-ci-trace-gen/fig3_8.csv target/repro-ci-trace-rec/fig3_8.csv
cmp target/repro-ci-trace-gen/fig3_8.csv target/repro-ci-trace-rep/fig3_8.csv
# The manifest tags each run's workload source and counts the traffic
# (WorkloadStats::fields emits a fixed key order).
grep -q '"source":"generator"' target/repro-ci-trace-gen/manifest.json
grep -q '"source":"record:' target/repro-ci-trace-rec/manifest.json
grep -Eq '"traces_recorded":[1-9][0-9]*,' target/repro-ci-trace-rec/manifest.json
grep -q '"source":"replay:' target/repro-ci-trace-rep/manifest.json
grep -Eq '"trace_replays":[1-9][0-9]*,' target/repro-ci-trace-rep/manifest.json

echo "==> trace phases: SimPoint-weighted replay passes and persists its phase sets"
# The tolerance contract (phase estimates within pinned bounds of the
# full trace, ≤20% of its instructions) is enforced by the
# trace_sampling integration test above; here the gate is that the
# end-to-end --phases pipeline runs green and accounts its sampling.
./target/release/repro --fast --trace-dir target/repro-ci-traces --phases \
  --out target/repro-ci-trace-ph fig3.8 >/dev/null
ls target/repro-ci-traces/*.ntp >/dev/null
grep -q '"source":"phases:' target/repro-ci-trace-ph/manifest.json
grep -Eq '"phase_replays":[1-9][0-9]*,' target/repro-ci-trace-ph/manifest.json
grep -q '"failed":0,' target/repro-ci-trace-ph/manifest.json

echo "==> ntc-serve: concurrent clients, batch-identical CSVs, disk hit, clean SIGTERM"
# Daemon on a temp unix socket, sharing a fresh cache dir. Two concurrent
# scripted clients request the same experiment the grid-cache gate ran
# above; both CSVs must be byte-identical to the batch golden, and the
# --hold-ms window makes the second request coalesce onto (or memo-hit
# behind) the first — never a second compute.
rm -rf target/serve-ci
mkdir -p target/serve-ci
serve_sock=target/serve-ci/daemon.sock
./target/release/ntc-serve serve --socket "$serve_sock" \
  --cache-dir target/serve-ci/cache --jobs 2 --hold-ms 300 \
  2> target/serve-ci/daemon.log &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.1; done
test -S "$serve_sock"
./target/release/ntc-serve request --socket "$serve_sock" \
  --experiment fig3.8 --out target/serve-ci/c1.csv \
  > target/serve-ci/r1.json &
c1_pid=$!
./target/release/ntc-serve request --socket "$serve_sock" \
  --experiment fig3.8 --out target/serve-ci/c2.csv \
  > target/serve-ci/r2.json
wait "$c1_pid"
cmp target/repro-ci-cold/fig3_8.csv target/serve-ci/c1.csv
cmp target/repro-ci-cold/fig3_8.csv target/serve-ci/c2.csv
# Exactly one compute across the pair; the other receipt shows a
# coalesced or cache hit (receipts are schema-tagged, fixed key order).
grep -q '"schema":"ntc-serve-receipt/1"' target/serve-ci/r1.json
grep -q '"schema":"ntc-serve-receipt/1"' target/serve-ci/r2.json
test "$(cat target/serve-ci/r1.json target/serve-ci/r2.json \
  | grep -c '"tier":"computed"')" = 1
cat target/serve-ci/r1.json target/serve-ci/r2.json \
  | grep -Eq '"tier":"(coalesced|memo|disk)"'
# Restart on the same cache dir: a fresh process must answer the same
# request from the disk tier.
kill -TERM "$serve_pid"
wait "$serve_pid"
test ! -e "$serve_sock"
./target/release/ntc-serve serve --socket "$serve_sock" \
  --cache-dir target/serve-ci/cache --jobs 2 \
  2>> target/serve-ci/daemon.log &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$serve_sock" ] && break; sleep 0.1; done
./target/release/ntc-serve request --socket "$serve_sock" \
  --experiment fig3.8 --out target/serve-ci/c3.csv \
  > target/serve-ci/r3.json
cmp target/repro-ci-cold/fig3_8.csv target/serve-ci/c3.csv
grep -q '"tier":"disk"' target/serve-ci/r3.json
# Clean SIGTERM shutdown: exit 0, socket unlinked, no quarantine files.
kill -TERM "$serve_pid"
wait "$serve_pid"
test ! -e "$serve_sock"
if ls target/serve-ci/cache/*.corrupt >/dev/null 2>&1; then
  echo "FAIL: shutdown left quarantine files behind"; exit 1
fi

echo "==> repro exit-code semantics (unknown id => 2, CSV failure => 1)"
if ./target/release/repro --fast fig3.4 fgi3.10 >/dev/null 2>&1; then
  echo "FAIL: misspelled experiment id must exit nonzero"; exit 1
fi
touch target/repro-ci-blocker
if ./target/release/repro --fast --out target/repro-ci-blocker fig3.4 >/dev/null 2>&1; then
  echo "FAIL: unwritable --out must exit nonzero"; exit 1
fi
rm -f target/repro-ci-blocker

echo "==> CI OK"
