//! Where a simulation's instruction stream comes from: the statistical
//! generator, a recorded binary trace, or sampled weighted phases.
//!
//! [`TraceSource`] is the abstraction the scenario engine threads
//! through its grids. Every variant resolves a `(benchmark, seed,
//! cycles)` cell to one or more **weighted segments** — `(instructions,
//! weight)` pairs the simulators run and fold:
//!
//! * [`TraceSource::Generator`] — the statistical generator, one segment
//!   of weight 1. The legacy path; bit-identical to every pre-trace
//!   release.
//! * [`TraceSource::Record`] — generate like `Generator` *and* write the
//!   binary trace file into the directory (atomically, if not already
//!   present). Results are identical to `Generator` by construction —
//!   the generated stream itself is simulated — so recording is free to
//!   share cache identity with generator runs.
//! * [`TraceSource::Replay`] — decode the cell's recorded trace file and
//!   simulate it whole: one segment of weight 1. Byte-identical results
//!   to the generator when the file was recorded from the same seed
//!   (pinned by `trace_sampling.rs`).
//! * [`TraceSource::Phases`] — decode the recorded trace, sample (or
//!   load previously sampled) SimPoint phases, and return each
//!   representative slice with its cluster weight. An order of magnitude
//!   fewer simulated instructions; results land within a pinned
//!   tolerance, not byte-identity.
//!
//! Decoded traces and phase sets are memoized process-wide per file path
//! (an `Arc` per file), so a grid's many (chip × scheme × voltage) cells
//! decode each trace once. Replay telemetry is counted process-globally
//! and drained per experiment by the `repro` binary ([`take_stats`]),
//! mirroring the sweep/oracle/cache counter discipline.

use crate::simpoint::{self, PhaseSet, DEFAULT_K};
use crate::trace_bin;
use crate::{Benchmark, TraceGenerator};
use ntc_isa::Instruction;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One weighted segment of a resolved cell: the instructions to
/// simulate and how many intervals of the full trace they stand for.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The instructions of this segment.
    pub trace: Arc<Vec<Instruction>>,
    /// Fold weight: 1 for whole traces, the cluster size for phases.
    pub weight: u64,
}

/// Where the instruction stream of each grid cell comes from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TraceSource {
    /// The statistical generator (the legacy path).
    Generator,
    /// Generate *and* record: write each cell's binary trace under the
    /// directory (if absent), then simulate the generated stream.
    Record(PathBuf),
    /// Replay recorded binary traces from the directory, whole.
    Replay(PathBuf),
    /// Replay SimPoint-sampled weighted phases of the recorded traces in
    /// the directory (sampling and caching the `.ntp` file on first
    /// use).
    Phases(PathBuf),
}

impl TraceSource {
    /// Stable short tag for canonical encodings and display. `Record`
    /// deliberately shares the generator's tag: its results are the
    /// generated stream's, so the two must share cache identity.
    pub fn canon_tag(&self) -> &'static str {
        match self {
            TraceSource::Generator | TraceSource::Record(_) => "generator",
            TraceSource::Replay(_) => "replay",
            TraceSource::Phases(_) => "phases",
        }
    }

    /// The trace directory, for the variants that have one.
    pub fn dir(&self) -> Option<&Path> {
        match self {
            TraceSource::Generator => None,
            TraceSource::Record(d) | TraceSource::Replay(d) | TraceSource::Phases(d) => Some(d),
        }
    }

    /// The canonical trace file of a cell inside a trace directory: one
    /// file per `(benchmark, seed, cycles)`, so every scale and seed
    /// coexists in one directory.
    pub fn trace_path(dir: &Path, bench: Benchmark, seed: u64, cycles: usize) -> PathBuf {
        dir.join(format!("{}-s{seed}-c{cycles}.ntt", bench.name()))
    }

    /// The canonical phase-set file of a cell (sampled from the trace
    /// file with the default interval length and cluster count).
    pub fn phases_path(dir: &Path, bench: Benchmark, seed: u64, cycles: usize) -> PathBuf {
        dir.join(format!("{}-s{seed}-c{cycles}.ntp", bench.name()))
    }

    /// Resolve a cell to its weighted segments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a trace file is missing,
    /// corrupt, or disagrees with the requested cell length (a recorded
    /// trace of the wrong length must never silently stand in).
    pub fn segments(
        &self,
        bench: Benchmark,
        seed: u64,
        cycles: usize,
    ) -> Result<Vec<Segment>, String> {
        match self {
            TraceSource::Generator => Ok(vec![Segment {
                trace: Arc::new(TraceGenerator::new(bench, seed).trace(cycles)),
                weight: 1,
            }]),
            TraceSource::Record(dir) => {
                let trace = Arc::new(TraceGenerator::new(bench, seed).trace(cycles));
                let path = Self::trace_path(dir, bench, seed, cycles);
                if !path.is_file() {
                    trace_bin::write_trace_file(&path, &trace)
                        .map_err(|e| format!("recording {}: {e}", path.display()))?;
                    STAT_TRACES_RECORDED.fetch_add(1, Ordering::Relaxed);
                }
                Ok(vec![Segment { trace, weight: 1 }])
            }
            TraceSource::Replay(dir) => {
                let path = Self::trace_path(dir, bench, seed, cycles);
                let trace = memo_trace(&path)?;
                if trace.len() != cycles {
                    return Err(format!(
                        "{}: recorded trace has {} instructions, cell wants {cycles}",
                        path.display(),
                        trace.len()
                    ));
                }
                STAT_TRACE_REPLAYS.fetch_add(1, Ordering::Relaxed);
                STAT_REPLAYED_INSTRUCTIONS.fetch_add(trace.len() as u64, Ordering::Relaxed);
                Ok(vec![Segment { trace, weight: 1 }])
            }
            TraceSource::Phases(dir) => {
                let set = memo_phases(dir, bench, seed, cycles)?;
                STAT_PHASE_REPLAYS.fetch_add(1, Ordering::Relaxed);
                STAT_PHASE_INSTRUCTIONS
                    .fetch_add(set.simulated_instructions(), Ordering::Relaxed);
                Ok(set
                    .phases
                    .iter()
                    .map(|p| Segment {
                        trace: Arc::new(p.slice.clone()),
                        weight: p.weight,
                    })
                    .collect())
            }
        }
    }
}

impl std::fmt::Display for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSource::Generator => f.write_str("generator"),
            TraceSource::Record(d) => write!(f, "record:{}", d.display()),
            TraceSource::Replay(d) => write!(f, "replay:{}", d.display()),
            TraceSource::Phases(d) => write!(f, "phases:{}", d.display()),
        }
    }
}

/// Process-wide decoded-trace memo: a grid touches each trace file once
/// per (chip × scheme × voltage) cell, and a process touches only a
/// handful of distinct files, so an unbounded map is fine.
static TRACE_MEMO: Mutex<Option<HashMap<PathBuf, Arc<Vec<Instruction>>>>> = Mutex::new(None);
/// Same, for sampled phase sets.
static PHASE_MEMO: Mutex<Option<HashMap<PathBuf, Arc<PhaseSet>>>> = Mutex::new(None);

fn memo_trace(path: &Path) -> Result<Arc<Vec<Instruction>>, String> {
    if let Some(hit) = TRACE_MEMO
        .lock()
        .expect("trace memo poisoned")
        .get_or_insert_with(HashMap::new)
        .get(path)
    {
        return Ok(hit.clone());
    }
    let trace = Arc::new(
        trace_bin::read_trace_file(path).map_err(|e| format!("{}: {e}", path.display()))?,
    );
    TRACE_MEMO
        .lock()
        .expect("trace memo poisoned")
        .get_or_insert_with(HashMap::new)
        .insert(path.to_path_buf(), trace.clone());
    Ok(trace)
}

fn memo_phases(
    dir: &Path,
    bench: Benchmark,
    seed: u64,
    cycles: usize,
) -> Result<Arc<PhaseSet>, String> {
    let path = TraceSource::phases_path(dir, bench, seed, cycles);
    if let Some(hit) = PHASE_MEMO
        .lock()
        .expect("phase memo poisoned")
        .get_or_insert_with(HashMap::new)
        .get(&path)
    {
        return Ok(hit.clone());
    }
    let set = if path.is_file() {
        Arc::new(
            simpoint::read_phases_file(&path).map_err(|e| format!("{}: {e}", path.display()))?,
        )
    } else {
        // Sample from the recorded trace and cache the result on disk —
        // deterministic, so every process derives the same phases.
        let trace = memo_trace(&TraceSource::trace_path(dir, bench, seed, cycles))?;
        let set = Arc::new(simpoint::sample_phases(
            &trace,
            simpoint::interval_len_for(cycles),
            DEFAULT_K,
            seed,
        ));
        simpoint::write_phases_file(&path, &set)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        set
    };
    PHASE_MEMO
        .lock()
        .expect("phase memo poisoned")
        .get_or_insert_with(HashMap::new)
        .insert(path, set.clone());
    Ok(set)
}

// ---------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------

static STAT_TRACES_RECORDED: AtomicU64 = AtomicU64::new(0);
static STAT_TRACE_REPLAYS: AtomicU64 = AtomicU64::new(0);
static STAT_PHASE_REPLAYS: AtomicU64 = AtomicU64::new(0);
static STAT_REPLAYED_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static STAT_PHASE_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Record/replay counters for the cells resolved since the last
/// [`take_stats`] drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Binary trace files newly written by [`TraceSource::Record`].
    pub traces_recorded: u64,
    /// Cells resolved by whole-trace replay.
    pub trace_replays: u64,
    /// Cells resolved by weighted-phase replay.
    pub phase_replays: u64,
    /// Instructions fed to simulators from whole-trace replays.
    pub replayed_instructions: u64,
    /// Instructions fed to simulators from phase replays (unweighted —
    /// the actual simulated work, the quantity the ≤20% sampling bound
    /// is about).
    pub phase_instructions: u64,
}

impl WorkloadStats {
    /// The counters as stable `(field name, value)` pairs, in
    /// declaration order — the single source of truth for serializers.
    pub fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("traces_recorded", self.traces_recorded),
            ("trace_replays", self.trace_replays),
            ("phase_replays", self.phase_replays),
            ("replayed_instructions", self.replayed_instructions),
            ("phase_instructions", self.phase_instructions),
        ]
    }

    /// Whether any record/replay activity happened at all (the manifest
    /// summary prints the counters only when it did).
    pub fn any(&self) -> bool {
        *self != WorkloadStats::default()
    }
}

impl std::ops::AddAssign for WorkloadStats {
    fn add_assign(&mut self, rhs: WorkloadStats) {
        self.traces_recorded += rhs.traces_recorded;
        self.trace_replays += rhs.trace_replays;
        self.phase_replays += rhs.phase_replays;
        self.replayed_instructions += rhs.replayed_instructions;
        self.phase_instructions += rhs.phase_instructions;
    }
}

/// Drain and reset the global record/replay counters (the `repro`
/// binary calls this per experiment for its `manifest.json`).
pub fn take_stats() -> WorkloadStats {
    WorkloadStats {
        traces_recorded: STAT_TRACES_RECORDED.swap(0, Ordering::SeqCst),
        trace_replays: STAT_TRACE_REPLAYS.swap(0, Ordering::SeqCst),
        phase_replays: STAT_PHASE_REPLAYS.swap(0, Ordering::SeqCst),
        replayed_instructions: STAT_REPLAYED_INSTRUCTIONS.swap(0, Ordering::SeqCst),
        phase_instructions: STAT_PHASE_INSTRUCTIONS.swap(0, Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ntc-source-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    #[test]
    fn record_then_replay_reproduces_the_generator_stream() {
        let dir = test_dir("roundtrip");
        let source = TraceSource::Record(dir.clone());
        let recorded = source.segments(Benchmark::Mcf, 21, 600).expect("record");
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].weight, 1);
        let generated = TraceGenerator::new(Benchmark::Mcf, 21).trace(600);
        assert_eq!(*recorded[0].trace, generated, "record simulates the generated stream");

        let replayed = TraceSource::Replay(dir.clone())
            .segments(Benchmark::Mcf, 21, 600)
            .expect("replay");
        assert_eq!(*replayed[0].trace, generated, "replay decodes the same stream");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_refuses_missing_and_wrong_length_traces() {
        let dir = test_dir("refuse");
        let missing = TraceSource::Replay(dir.clone()).segments(Benchmark::Gap, 1, 500);
        assert!(missing.is_err(), "missing file is an error");
        // A file whose recorded length disagrees with the cell (here: a
        // 500-instruction trace renamed to the 400-cycle cell's path) is
        // refused, not padded or truncated.
        TraceSource::Record(dir.clone())
            .segments(Benchmark::Gap, 1, 500)
            .expect("record");
        std::fs::rename(
            TraceSource::trace_path(&dir, Benchmark::Gap, 1, 500),
            TraceSource::trace_path(&dir, Benchmark::Gap, 1, 400),
        )
        .expect("rename to mismatched cell");
        let wrong = TraceSource::Replay(dir.clone()).segments(Benchmark::Gap, 1, 400);
        let msg = wrong.expect_err("length mismatch is an error");
        assert!(msg.contains("500") && msg.contains("400"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phases_sample_cache_and_reload() {
        let dir = test_dir("phases");
        TraceSource::Record(dir.clone())
            .segments(Benchmark::Vortex, 3, 5_000)
            .expect("record");
        let source = TraceSource::Phases(dir.clone());
        let first = source.segments(Benchmark::Vortex, 3, 5_000).expect("sample");
        let path = TraceSource::phases_path(&dir, Benchmark::Vortex, 3, 5_000);
        assert!(path.is_file(), "phase set cached on disk");
        let total: u64 = first.iter().map(|s| s.weight).sum();
        assert_eq!(total, 50, "weights cover every interval");
        let simulated: usize = first.iter().map(|s| s.trace.len()).sum();
        assert!(
            simulated * 5 <= 5_000,
            "phases simulate ≤20% of the trace ({simulated} of 5000)"
        );
        // A reload (fresh memo path exercised via the file) agrees.
        let reloaded = simpoint::read_phases_file(&path).expect("reload");
        assert_eq!(reloaded.total_weight(), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn canon_tags_alias_record_to_generator() {
        let d = PathBuf::from("/tmp/x");
        assert_eq!(TraceSource::Generator.canon_tag(), "generator");
        assert_eq!(TraceSource::Record(d.clone()).canon_tag(), "generator");
        assert_eq!(TraceSource::Replay(d.clone()).canon_tag(), "replay");
        assert_eq!(TraceSource::Phases(d).canon_tag(), "phases");
    }
}
