//! # ntc-workload
//!
//! Statistical instruction-trace generators standing in for the SPEC
//! CPU2000 benchmarks the paper feeds through FabScalar (bzip2, gap, gzip,
//! mcf, parser, vortex).
//!
//! Each benchmark profile is a small program model: a set of *basic blocks*
//! (short template sequences of opcode + operand class) walked with strong
//! loop locality, plus per-template operand value registers providing value
//! locality. This reproduces the two properties every result in the paper
//! hinges on:
//!
//! * **instruction-sequence locality** — the same consecutive instruction
//!   pairs (the error-tag key) recur, so learned errors repeat;
//! * **per-benchmark tag diversity** — mcf touches few unique templates
//!   (few unique error instances, many repeats), vortex many, gzip fewer
//!   total dynamic errors than mcf but more unique instances, exactly the
//!   contrasts §3.5.3/§4.5.5 attribute the per-benchmark differences to.
//!
//! # Examples
//!
//! ```
//! use ntc_workload::{Benchmark, TraceGenerator};
//!
//! let mut gen = TraceGenerator::new(Benchmark::Mcf, 1);
//! let trace: Vec<_> = gen.by_ref().take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod simpoint;
pub mod source;
pub mod trace_bin;
pub mod trace_io;

pub use source::{take_stats, Segment, TraceSource, WorkloadStats};

use ntc_isa::{arch_mask, Instruction, Opcode};
use ntc_varmodel::rng::SplitMix64;
use std::fmt;

/// The six modelled benchmarks (SPEC CPU2000 profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variants are the benchmark names
pub enum Benchmark {
    Bzip2,
    Gap,
    Gzip,
    Mcf,
    Parser,
    Vortex,
}

/// All benchmarks, in the order the paper's figures list them.
pub const ALL_BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Bzip2,
    Benchmark::Gap,
    Benchmark::Gzip,
    Benchmark::Mcf,
    Benchmark::Parser,
    Benchmark::Vortex,
];

impl Benchmark {
    /// The benchmark's display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "bzip",
            Benchmark::Gap => "gap",
            Benchmark::Gzip => "gzip",
            Benchmark::Mcf => "mcf",
            Benchmark::Parser => "parser",
            Benchmark::Vortex => "vortex",
        }
    }

    /// The statistical profile of the benchmark.
    pub fn profile(self) -> Profile {
        match self {
            // Compression: shift/mask heavy, moderate diversity.
            Benchmark::Bzip2 => Profile {
                blocks: 24,
                block_len: (4, 10),
                loop_repeat: 0.93,
                wide_operand_bias: 0.45,
                opcode_weights: weights(&[
                    (Opcode::Addu, 10),
                    (Opcode::Addiu, 12),
                    (Opcode::Subu, 6),
                    (Opcode::And, 6),
                    (Opcode::Andi, 8),
                    (Opcode::Or, 6),
                    (Opcode::Sll, 9),
                    (Opcode::Srl, 9),
                    (Opcode::Sra, 3),
                    (Opcode::Xor, 5),
                    (Opcode::Lw, 14),
                    (Opcode::Lui, 3),
                    (Opcode::Move, 5),
                    (Opcode::Mult, 2),
                    (Opcode::Mflo, 2),
                ]),
            },
            // Interpreter: diverse dispatch, many distinct blocks.
            Benchmark::Gap => Profile {
                blocks: 48,
                block_len: (4, 11),
                loop_repeat: 0.88,
                wide_operand_bias: 0.5,
                opcode_weights: weights(&[
                    (Opcode::Addu, 12),
                    (Opcode::Addiu, 12),
                    (Opcode::Subu, 6),
                    (Opcode::And, 5),
                    (Opcode::Andi, 5),
                    (Opcode::Or, 7),
                    (Opcode::Ori, 4),
                    (Opcode::Nor, 2),
                    (Opcode::Xor, 4),
                    (Opcode::Sllv, 4),
                    (Opcode::Srlv, 3),
                    (Opcode::Lw, 16),
                    (Opcode::Lui, 4),
                    (Opcode::Move, 6),
                    (Opcode::Mult, 3),
                    (Opcode::Mflo, 3),
                ]),
            },
            // Compression, small hot loop: few unique instances but fewer
            // total dynamic errors than mcf (lighter error-prone mix).
            Benchmark::Gzip => Profile {
                blocks: 14,
                block_len: (4, 8),
                loop_repeat: 0.95,
                wide_operand_bias: 0.40,
                opcode_weights: weights(&[
                    (Opcode::Addu, 9),
                    (Opcode::Addiu, 13),
                    (Opcode::Subu, 7),
                    (Opcode::And, 5),
                    (Opcode::Andi, 9),
                    (Opcode::Or, 5),
                    (Opcode::Sll, 8),
                    (Opcode::Srl, 10),
                    (Opcode::Xor, 6),
                    (Opcode::Lw, 15),
                    (Opcode::Lui, 3),
                    (Opcode::Move, 6),
                    (Opcode::Mflo, 2),
                ]),
            },
            // Pointer chasing: tiny hot loop, very few unique templates,
            // highest repetition (and the heaviest wide-address operands).
            Benchmark::Mcf => Profile {
                blocks: 6,
                block_len: (4, 7),
                loop_repeat: 0.975,
                wide_operand_bias: 0.72,
                opcode_weights: weights(&[
                    (Opcode::Addu, 14),
                    (Opcode::Addiu, 12),
                    (Opcode::Subu, 8),
                    (Opcode::And, 3),
                    (Opcode::Or, 4),
                    (Opcode::Lw, 26),
                    (Opcode::Sll, 5),
                    (Opcode::Lui, 4),
                    (Opcode::Move, 5),
                    (Opcode::Mult, 4),
                    (Opcode::Mflo, 4),
                ]),
            },
            // NLP parser: branchy, medium diversity.
            Benchmark::Parser => Profile {
                blocks: 40,
                block_len: (4, 10),
                loop_repeat: 0.89,
                wide_operand_bias: 0.42,
                opcode_weights: weights(&[
                    (Opcode::Addu, 11),
                    (Opcode::Addiu, 13),
                    (Opcode::Subu, 7),
                    (Opcode::And, 5),
                    (Opcode::Andi, 6),
                    (Opcode::Or, 6),
                    (Opcode::Nor, 2),
                    (Opcode::Xor, 3),
                    (Opcode::Sll, 5),
                    (Opcode::Srl, 4),
                    (Opcode::Srav, 2),
                    (Opcode::Lw, 18),
                    (Opcode::Lui, 4),
                    (Opcode::Move, 6),
                ]),
            },
            // OO database: the most diverse instruction footprint (largest
            // set of unique error instances, per §3.5.3).
            Benchmark::Vortex => Profile {
                blocks: 96,
                block_len: (6, 14),
                loop_repeat: 0.82,
                wide_operand_bias: 0.55,
                opcode_weights: weights(&[
                    (Opcode::Addu, 10),
                    (Opcode::Addiu, 12),
                    (Opcode::Subu, 5),
                    (Opcode::And, 4),
                    (Opcode::Andi, 5),
                    (Opcode::Or, 6),
                    (Opcode::Ori, 3),
                    (Opcode::Nor, 3),
                    (Opcode::Xor, 3),
                    (Opcode::Xori, 2),
                    (Opcode::Sll, 5),
                    (Opcode::Srl, 4),
                    (Opcode::Sra, 2),
                    (Opcode::Sllv, 2),
                    (Opcode::Srav, 2),
                    (Opcode::Lw, 17),
                    (Opcode::Lui, 5),
                    (Opcode::Move, 5),
                    (Opcode::Mult, 2),
                    (Opcode::Mflo, 2),
                ]),
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The statistical profile backing one benchmark generator.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Number of basic blocks in the program model (template diversity).
    pub blocks: usize,
    /// (min, max) instructions per block.
    pub block_len: (usize, usize),
    /// Probability of staying in / re-entering the current block (loop
    /// locality). Higher → fewer unique consecutive pairs dominate.
    pub loop_repeat: f64,
    /// Probability that a generated operand is drawn wide (upper-half bits
    /// populated); drives the OWM / operand-size mix.
    pub wide_operand_bias: f64,
    /// Relative opcode frequencies.
    pub opcode_weights: Vec<(Opcode, u32)>,
}

fn weights(pairs: &[(Opcode, u32)]) -> Vec<(Opcode, u32)> {
    pairs.to_vec()
}

/// Operand magnitude classes templates draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OperandClass {
    /// Low-byte constants and counters.
    Narrow,
    /// Half-word values (bits in the lower 16).
    Half,
    /// Wide values with upper-half bits populated (addresses, hashes).
    Wide,
    /// Dense bitmasks (high popcount — drives the OWM).
    Mask,
}

/// One instruction template inside a basic block.
#[derive(Debug, Clone, Copy)]
struct Template {
    opcode: Opcode,
    class_a: OperandClass,
    class_b: OperandClass,
    /// Sticky operand values providing value locality.
    reg_a: u64,
    reg_b: u64,
}

/// A deterministic, seeded instruction-trace generator for one benchmark.
///
/// Implements [`Iterator`]; the stream is infinite.
pub struct TraceGenerator {
    benchmark: Benchmark,
    blocks: Vec<Vec<Template>>,
    profile: Profile,
    rng: SplitMix64,
    cur_block: usize,
    cur_pos: usize,
}

impl fmt::Debug for TraceGenerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceGenerator")
            .field("benchmark", &self.benchmark)
            .field("blocks", &self.blocks.len())
            .finish_non_exhaustive()
    }
}

impl TraceGenerator {
    /// Create a generator for `benchmark`; `seed` selects the simulated
    /// program phase (the same seed always produces the same trace).
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        let profile = benchmark.profile();
        let mut rng =
            SplitMix64::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ benchmark as u64);
        let blocks = (0..profile.blocks)
            .map(|_| {
                let len = rng.gen_range_inclusive(profile.block_len.0, profile.block_len.1);
                (0..len)
                    .map(|_| Template::sample(&mut rng, &profile))
                    .collect()
            })
            .collect();
        TraceGenerator {
            benchmark,
            blocks,
            profile,
            rng,
            cur_block: 0,
            cur_pos: 0,
        }
    }

    /// The benchmark this generator models.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Generate the next dynamic instruction.
    pub fn next_instruction(&mut self) -> Instruction {
        if self.cur_pos >= self.blocks[self.cur_block].len() {
            self.cur_pos = 0;
            // Loop back into the same block with high probability.
            if self.rng.gen_f64() >= self.profile.loop_repeat {
                self.cur_block = self.rng.gen_index(self.blocks.len());
            }
        }
        let (block, pos) = (self.cur_block, self.cur_pos);
        self.cur_pos += 1;
        let wide_bias = self.profile.wide_operand_bias;
        let t = &mut self.blocks[block][pos];
        t.materialize(&mut self.rng, wide_bias)
    }

    /// Collect a finite trace of `n` instructions.
    pub fn trace(&mut self, n: usize) -> Vec<Instruction> {
        (0..n).map(|_| self.next_instruction()).collect()
    }
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        Some(self.next_instruction())
    }
}

impl Template {
    fn sample(rng: &mut SplitMix64, profile: &Profile) -> Template {
        assert!(
            !profile.opcode_weights.is_empty(),
            "profile has no opcode weights to sample from"
        );
        // Total-checked weighted pick: a zero total (every weight zero —
        // a shape replayed traces can legally carry) degrades to a
        // uniform pick instead of panicking inside `gen_index(0)` or
        // silently returning entry 0. The nonzero path consumes exactly
        // one `gen_index(total)` draw, unchanged, so every existing
        // seeded trace stays bit-identical.
        let total: u32 = profile.opcode_weights.iter().map(|(_, w)| w).sum();
        let opcode = if total == 0 {
            profile.opcode_weights[rng.gen_index(profile.opcode_weights.len())].0
        } else {
            let mut pick = rng.gen_index(total as usize) as u32;
            let mut chosen = None;
            for &(op, w) in &profile.opcode_weights {
                if pick < w {
                    chosen = Some(op);
                    break;
                }
                pick -= w;
            }
            chosen.expect("pick < total, so some weight bucket matched")
        };
        let class = |rng: &mut SplitMix64| match rng.gen_index(100) as u32 {
            0..=34 => OperandClass::Narrow,
            35..=59 => OperandClass::Half,
            60..=84 => OperandClass::Wide,
            _ => OperandClass::Mask,
        };
        let class_a = class(rng);
        // Immediates are narrower by ISA construction.
        let class_b = if opcode.has_immediate() {
            if rng.gen_bool() {
                OperandClass::Narrow
            } else {
                OperandClass::Half
            }
        } else {
            class(rng)
        };
        let mut t = Template {
            opcode,
            class_a,
            class_b,
            reg_a: 0,
            reg_b: 0,
        };
        t.reg_a = t.draw(rng, t.class_a, 0.5);
        t.reg_b = t.draw(rng, t.class_b, 0.5);
        t
    }

    fn draw(&self, rng: &mut SplitMix64, class: OperandClass, wide_bias: f64) -> u64 {
        let mask = arch_mask();
        let raw: u64 = rng.gen_u64();
        let v = match class {
            OperandClass::Narrow => raw & 0xFF,
            OperandClass::Half => raw & 0xFFFF,
            OperandClass::Wide => {
                if rng.gen_f64() < wide_bias {
                    raw & mask | (1 << 28)
                } else {
                    raw & 0xFF_FFFF
                }
            }
            OperandClass::Mask => {
                // Dense patterns: byte-replicated masks.
                let b = raw & 0xFF | 0x55;
                (b | b << 8 | b << 16 | b << 24) & mask
            }
        };
        v & mask
    }

    fn materialize(&mut self, rng: &mut SplitMix64, wide_bias: f64) -> Instruction {
        // Value locality: usually reuse the sticky registers, occasionally
        // refresh one of them.
        const REFRESH: f64 = 0.18;
        if rng.gen_f64() < REFRESH {
            self.reg_a = self.draw(rng, self.class_a, wide_bias);
        }
        if rng.gen_f64() < REFRESH {
            self.reg_b = self.draw(rng, self.class_b, wide_bias);
        }
        // Shift-immediate opcodes keep b in shift range.
        let b = match self.opcode {
            Opcode::Sll | Opcode::Srl | Opcode::Sra => self.reg_b % 32,
            Opcode::Lui => 16,
            _ => self.reg_b,
        };
        Instruction::new(self.opcode, self.reg_a, b)
    }
}

/// Count the unique consecutive `(prev, cur)` opcode+OWM tag pairs in a
/// trace — the quantity that drives lookup-table pressure.
pub fn unique_tag_count(trace: &[Instruction]) -> usize {
    use std::collections::HashSet;
    let mut set = HashSet::new();
    for pair in trace.windows(2) {
        set.insert(ntc_isa::ErrorTag::of(&pair[0], &pair[1]));
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = TraceGenerator::new(Benchmark::Gzip, 3);
        let mut b = TraceGenerator::new(Benchmark::Gzip, 3);
        assert_eq!(a.trace(500), b.trace(500));
    }

    #[test]
    fn seeds_and_benchmarks_differ() {
        let t1 = TraceGenerator::new(Benchmark::Gzip, 1).trace(200);
        let t2 = TraceGenerator::new(Benchmark::Gzip, 2).trace(200);
        let t3 = TraceGenerator::new(Benchmark::Mcf, 1).trace(200);
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn mcf_has_fewest_unique_tags_vortex_most() {
        let n = 20_000;
        let tags: Vec<(Benchmark, usize)> = ALL_BENCHMARKS
            .iter()
            .map(|&b| (b, unique_tag_count(&TraceGenerator::new(b, 1).trace(n))))
            .collect();
        let get = |b: Benchmark| tags.iter().find(|(x, _)| *x == b).expect("present").1;
        assert!(
            get(Benchmark::Mcf) < get(Benchmark::Gzip),
            "mcf {} < gzip {}",
            get(Benchmark::Mcf),
            get(Benchmark::Gzip)
        );
        for b in ALL_BENCHMARKS {
            if b != Benchmark::Vortex {
                assert!(
                    get(Benchmark::Vortex) > get(b),
                    "vortex {} should exceed {b} {}",
                    get(Benchmark::Vortex),
                    get(b)
                );
            }
        }
    }

    #[test]
    fn traces_reuse_tags_heavily() {
        // Loop locality: far fewer unique pairs than instructions.
        for b in ALL_BENCHMARKS {
            let trace = TraceGenerator::new(b, 7).trace(10_000);
            let unique = unique_tag_count(&trace);
            assert!(
                unique < trace.len() / 10,
                "{b}: {unique} unique tags in {} instructions",
                trace.len()
            );
        }
    }

    #[test]
    fn opcode_mix_respects_profile() {
        // mcf must be load-heavy; bzip must be shift-heavy.
        let mcf = TraceGenerator::new(Benchmark::Mcf, 5).trace(20_000);
        let loads = mcf.iter().filter(|i| i.opcode == Opcode::Lw).count();
        assert!(loads as f64 / mcf.len() as f64 > 0.1, "mcf load share");

        let bzip = TraceGenerator::new(Benchmark::Bzip2, 5).trace(20_000);
        let shifts = bzip
            .iter()
            .filter(|i| {
                matches!(
                    i.opcode,
                    Opcode::Sll | Opcode::Srl | Opcode::Sra | Opcode::Sllv | Opcode::Srlv
                )
            })
            .count();
        assert!(shifts as f64 / bzip.len() as f64 > 0.08, "bzip shift share");
    }

    #[test]
    fn wide_bias_shows_in_operand_sizes() {
        use ntc_isa::OperandSize;
        let mcf = TraceGenerator::new(Benchmark::Mcf, 9).trace(20_000);
        let gzip = TraceGenerator::new(Benchmark::Gzip, 9).trace(20_000);
        let large = |t: &[Instruction]| {
            t.iter()
                .filter(|i| i.operand_size() == OperandSize::Large)
                .count() as f64
                / t.len() as f64
        };
        assert!(
            large(&mcf) > large(&gzip),
            "mcf large {:.2} vs gzip {:.2}",
            large(&mcf),
            large(&gzip)
        );
    }

    #[test]
    fn shift_immediates_stay_in_range() {
        let t = TraceGenerator::new(Benchmark::Bzip2, 11).trace(5_000);
        for i in &t {
            if matches!(i.opcode, Opcode::Sll | Opcode::Srl | Opcode::Sra) {
                assert!(i.b < 32, "{i}");
            }
            if i.opcode == Opcode::Lui {
                assert_eq!(i.b, 16);
            }
        }
    }

    #[test]
    fn zero_total_weights_sample_uniformly_instead_of_panicking() {
        // A profile whose weights sum to zero must not panic in
        // gen_index(0) or silently pin every template to entry 0.
        let profile = Profile {
            blocks: 1,
            block_len: (2, 2),
            loop_repeat: 0.5,
            wide_operand_bias: 0.5,
            opcode_weights: vec![(Opcode::Addu, 0), (Opcode::Xor, 0), (Opcode::Lw, 0)],
        };
        let mut rng = SplitMix64::seed_from_u64(17);
        let seen: std::collections::HashSet<Opcode> = (0..96)
            .map(|_| Template::sample(&mut rng, &profile).opcode)
            .collect();
        assert_eq!(seen.len(), 3, "uniform fallback reaches every entry");
    }

    #[test]
    #[should_panic(expected = "no opcode weights")]
    fn empty_weight_table_panics_with_a_clear_message() {
        let profile = Profile {
            blocks: 1,
            block_len: (2, 2),
            loop_repeat: 0.5,
            wide_operand_bias: 0.5,
            opcode_weights: Vec::new(),
        };
        let _ = Template::sample(&mut SplitMix64::seed_from_u64(1), &profile);
    }

    #[test]
    fn iterator_interface_works() {
        let gen = TraceGenerator::new(Benchmark::Parser, 1);
        let v: Vec<Instruction> = gen.take(10).collect();
        assert_eq!(v.len(), 10);
    }
}
