//! Compact binary trace serialization — the record/replay format.
//!
//! The text format in [`crate::trace_io`] is for diffing and archiving;
//! this one is for feeding million-instruction recorded workloads back
//! into the simulators cheaply. The artifact discipline mirrors the
//! experiments grid cache: leading magic, an explicit version, a
//! mandatory instruction count, fixed-width records, and a trailing
//! FNV-1a checksum over everything before it. A flipped byte or a
//! truncated file is always a detected error, never a silently shorter
//! trace.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [8]  magic  b"NTCTRAC1"
//! [8]  format version (currently 1)
//! [8]  instruction count N
//! [17] × N records: opcode encoding (u8), operand a (u64), operand b (u64)
//! [8]  FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! Files are written atomically (process-unique temp name + `rename`),
//! so a crashed recorder can never leave a half-written trace under the
//! final name.

use ntc_isa::{Instruction, Opcode};
use std::fmt;
use std::io;
use std::path::Path;

/// Leading magic of every binary trace file.
pub const MAGIC: &[u8; 8] = b"NTCTRAC1";

/// Current format version, stored after the magic.
pub const VERSION: u64 = 1;

/// Bytes per fixed-width instruction record.
pub const RECORD_BYTES: usize = 1 + 8 + 8;

/// FNV-1a 64-bit hash — the trailing checksum (same function the grid
/// cache uses, reimplemented locally so `ntc-workload` stays a leaf
/// crate).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised while decoding a binary trace.
#[derive(Debug)]
pub enum TraceBinError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version field names a format this build cannot read.
    BadVersion(u64),
    /// The bytes end before the declared record payload + checksum.
    Truncated {
        /// Bytes the header declared the file should hold.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The trailing checksum does not match the preceding bytes.
    ChecksumMismatch,
    /// A record names an opcode encoding outside the ISA.
    BadOpcode {
        /// 0-based record index.
        record: usize,
        /// The offending encoding byte.
        code: u8,
    },
    /// Bytes remain after the declared records + checksum.
    TrailingBytes,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for TraceBinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceBinError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            TraceBinError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            TraceBinError::Truncated { expected, actual } => {
                write!(f, "truncated trace: expected {expected} bytes, found {actual}")
            }
            TraceBinError::ChecksumMismatch => write!(f, "trace checksum mismatch"),
            TraceBinError::BadOpcode { record, code } => {
                write!(f, "record {record}: unknown opcode encoding {code:#04x}")
            }
            TraceBinError::TrailingBytes => write!(f, "trailing bytes after the checksum"),
            TraceBinError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceBinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceBinError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceBinError {
    fn from(e: io::Error) -> Self {
        TraceBinError::Io(e)
    }
}

/// Append one fixed-width record to `out`.
pub(crate) fn push_record(out: &mut Vec<u8>, i: &Instruction) {
    out.push(i.opcode.encoding());
    out.extend_from_slice(&i.a.to_le_bytes());
    out.extend_from_slice(&i.b.to_le_bytes());
}

/// Decode one fixed-width record from `bytes` (must be exactly
/// [`RECORD_BYTES`] long); `record` is the 0-based index for error
/// reporting.
pub(crate) fn read_record(bytes: &[u8], record: usize) -> Result<Instruction, TraceBinError> {
    debug_assert_eq!(bytes.len(), RECORD_BYTES);
    let opcode = Opcode::from_encoding(bytes[0]).ok_or(TraceBinError::BadOpcode {
        record,
        code: bytes[0],
    })?;
    let a = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
    let b = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
    Ok(Instruction::new(opcode, a, b))
}

/// Encode a trace into the binary format.
pub fn encode_trace(trace: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 8 + trace.len() * RECORD_BYTES + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for i in trace {
        push_record(&mut out, i);
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode a binary trace, verifying magic, version, the declared count
/// and the trailing checksum — truncation and corruption are always
/// errors, never a silently shorter trace.
///
/// # Errors
///
/// Any structural violation yields the corresponding [`TraceBinError`].
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<Instruction>, TraceBinError> {
    let header = 8 + 8 + 8;
    if bytes.len() < header {
        return Err(TraceBinError::Truncated {
            expected: header + 8,
            actual: bytes.len(),
        });
    }
    if &bytes[0..8] != MAGIC {
        return Err(TraceBinError::BadMagic);
    }
    let version = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if version != VERSION {
        return Err(TraceBinError::BadVersion(version));
    }
    let count = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let count = usize::try_from(count).map_err(|_| TraceBinError::Truncated {
        expected: usize::MAX,
        actual: bytes.len(),
    })?;
    let expected = header
        .saturating_add(count.saturating_mul(RECORD_BYTES))
        .saturating_add(8);
    if bytes.len() < expected {
        return Err(TraceBinError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }
    if bytes.len() > expected {
        return Err(TraceBinError::TrailingBytes);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 trailer bytes"));
    if fnv1a64(body) != stored {
        return Err(TraceBinError::ChecksumMismatch);
    }
    let mut out = Vec::with_capacity(count);
    for r in 0..count {
        let at = header + r * RECORD_BYTES;
        out.push(read_record(&body[at..at + RECORD_BYTES], r)?);
    }
    Ok(out)
}

/// Write a binary trace file atomically: the bytes land under a
/// process-unique temp name first and are `rename`d into place, so
/// readers only ever observe complete files.
///
/// # Errors
///
/// Propagates I/O failures (the temp file is cleaned up on error).
pub fn write_trace_file(path: &Path, trace: &[Instruction]) -> io::Result<()> {
    write_atomic(path, &encode_trace(trace))
}

/// Atomic byte write shared by the trace and phase writers.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let written = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if written.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    written
}

/// Read and decode a binary trace file.
///
/// # Errors
///
/// Propagates I/O failures and every decode error of [`decode_trace`].
pub fn read_trace_file(path: &Path) -> Result<Vec<Instruction>, TraceBinError> {
    decode_trace(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceGenerator};

    #[test]
    fn roundtrip_is_exact() {
        let trace = TraceGenerator::new(Benchmark::Mcf, 9).trace(1_000);
        let bytes = encode_trace(&trace);
        assert_eq!(bytes.len(), 8 + 8 + 8 + 1_000 * RECORD_BYTES + 8);
        assert_eq!(decode_trace(&bytes).expect("decode"), trace);
        // The empty trace is a valid (if useless) artifact too.
        let empty = encode_trace(&[]);
        assert_eq!(decode_trace(&empty).expect("decode empty"), Vec::new());
    }

    #[test]
    fn truncation_is_always_detected() {
        let trace = TraceGenerator::new(Benchmark::Gzip, 4).trace(64);
        let bytes = encode_trace(&trace);
        // Every proper prefix must fail — never parse as a shorter trace.
        for len in 0..bytes.len() {
            let e = decode_trace(&bytes[..len]).expect_err("prefix rejected");
            assert!(
                matches!(e, TraceBinError::Truncated { .. }),
                "prefix of {len} bytes: {e}"
            );
        }
    }

    #[test]
    fn corruption_is_always_detected() {
        let trace = TraceGenerator::new(Benchmark::Gap, 2).trace(32);
        let mut bytes = encode_trace(&trace);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode_trace(&bytes).is_err(), "flipped byte caught");
        // Appending a byte is trailing garbage.
        let mut extended = encode_trace(&trace);
        extended.push(0);
        assert!(matches!(
            decode_trace(&extended),
            Err(TraceBinError::TrailingBytes)
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let trace = TraceGenerator::new(Benchmark::Mcf, 1).trace(4);
        let mut bytes = encode_trace(&trace);
        bytes[0] = b'X';
        assert!(matches!(decode_trace(&bytes), Err(TraceBinError::BadMagic)));
        let mut bytes = encode_trace(&trace);
        bytes[8] = 99;
        // The checksum is over the (now mutated) body, so recompute it to
        // isolate the version check.
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceBinError::BadVersion(99))
        ));
    }

    #[test]
    fn bad_opcode_encoding_is_rejected() {
        let trace = TraceGenerator::new(Benchmark::Mcf, 1).trace(4);
        let mut bytes = encode_trace(&trace);
        bytes[24] = 0xFF; // first record's opcode byte
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceBinError::BadOpcode { record: 0, code: 0xFF })
        ));
    }

    #[test]
    fn file_roundtrip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join(format!("ntc-trace-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.ntt");
        let trace = TraceGenerator::new(Benchmark::Vortex, 3).trace(256);
        write_trace_file(&path, &trace).expect("write");
        assert_eq!(read_trace_file(&path).expect("read"), trace);
        // No temp litter left behind.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name())
            .collect();
        assert_eq!(names.len(), 1, "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
