//! `ntc-workload` — record benchmark traces and sample SimPoint phases.
//!
//! Subcommands:
//!
//! * `record --dir DIR [--bench NAME] [--seed S] [--cycles N]` —
//!   generate the seeded statistical trace(s) and write the binary
//!   `.ntt` file(s) the experiment stack replays with `--trace-dir`.
//! * `sample --dir DIR [--bench NAME] [--seed S] [--cycles N]
//!   [--interval L] [--k K]` — slice recorded traces into intervals,
//!   k-means cluster their opcode mixes, and write the weighted `.ntp`
//!   phase files the stack replays with `--phases`.
//!
//! Exit codes follow the repro contract: 0 success, 1 runtime failure
//! (missing/corrupt trace, I/O), 2 usage error.

use ntc_workload::simpoint::{self, DEFAULT_K};
use ntc_workload::{trace_bin, Benchmark, TraceGenerator, TraceSource, ALL_BENCHMARKS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ntc-workload <record|sample> --dir DIR [options]

subcommands:
  record   generate + write binary trace files (.ntt)
  sample   cluster recorded traces into weighted phase files (.ntp)

options:
  --dir DIR        trace directory (required)
  --bench NAME     one benchmark (default: all six)
  --seed S         trace seed (default: 7)
  --cycles N       instructions per trace (default: 60000)
  --interval L     sample: interval length (default: cycles/50, min 100)
  --k K            sample: max clusters (default: 8)
  --help           this text";

struct Args {
    cmd: String,
    dir: PathBuf,
    benches: Vec<Benchmark>,
    seed: u64,
    cycles: usize,
    interval: Option<usize>,
    k: usize,
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let cmd = argv.first().cloned().ok_or("missing subcommand")?;
    if !matches!(cmd.as_str(), "record" | "sample") {
        return Err(format!("unknown subcommand `{cmd}`"));
    }
    let mut dir = None;
    let mut benches = ALL_BENCHMARKS.to_vec();
    let mut seed = 7u64;
    let mut cycles = 60_000usize;
    let mut interval = None;
    let mut k = DEFAULT_K;
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--bench" => {
                let name = value("--bench")?;
                let b = ALL_BENCHMARKS
                    .into_iter()
                    .find(|b| b.name() == name.as_str())
                    .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
                benches = vec![b];
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants an unsigned integer".to_owned())?;
            }
            "--cycles" => {
                cycles = value("--cycles")?
                    .parse()
                    .map_err(|_| "--cycles wants a positive integer".to_owned())?;
            }
            "--interval" => {
                interval = Some(
                    value("--interval")?
                        .parse()
                        .map_err(|_| "--interval wants a positive integer".to_owned())?,
                );
            }
            "--k" => {
                k = value("--k")?
                    .parse()
                    .map_err(|_| "--k wants a positive integer".to_owned())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cycles == 0 {
        return Err("--cycles must be positive".to_owned());
    }
    if k == 0 {
        return Err("--k must be positive".to_owned());
    }
    if interval == Some(0) {
        return Err("--interval must be positive".to_owned());
    }
    Ok(Args {
        cmd,
        dir: dir.ok_or("--dir is required")?,
        benches,
        seed,
        cycles,
        interval,
        k,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => return usage_error(&e),
    };
    match args.cmd.as_str() {
        "record" => record(&args),
        "sample" => sample(&args),
        _ => unreachable!("subcommand validated in parse_args"),
    }
}

fn record(args: &Args) -> ExitCode {
    for &bench in &args.benches {
        let trace = TraceGenerator::new(bench, args.seed).trace(args.cycles);
        let path = TraceSource::trace_path(&args.dir, bench, args.seed, args.cycles);
        if let Err(e) = trace_bin::write_trace_file(&path, &trace) {
            eprintln!("error: recording {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} ({} instructions, {} bytes)",
            path.display(),
            trace.len(),
            trace_bin::encode_trace(&trace).len()
        );
    }
    ExitCode::SUCCESS
}

fn sample(args: &Args) -> ExitCode {
    let interval = args
        .interval
        .unwrap_or_else(|| simpoint::interval_len_for(args.cycles));
    for &bench in &args.benches {
        let trace_path = TraceSource::trace_path(&args.dir, bench, args.seed, args.cycles);
        let trace = match trace_bin::read_trace_file(&trace_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "error: {}: {e} (run `ntc-workload record` first)",
                    trace_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        if trace.len() < interval {
            eprintln!(
                "error: {}: trace of {} instructions is shorter than one interval ({interval})",
                trace_path.display(),
                trace.len()
            );
            return ExitCode::FAILURE;
        }
        let set = simpoint::sample_phases(&trace, interval, args.k, args.seed);
        let path = TraceSource::phases_path(&args.dir, bench, args.seed, args.cycles);
        if let Err(e) = simpoint::write_phases_file(&path, &set) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "sampled {}: {} phases × {} instructions, weight {} ({}/{} simulated, {:.1}%)",
            path.display(),
            set.phases.len(),
            interval,
            set.total_weight(),
            set.simulated_instructions(),
            trace.len(),
            100.0 * set.simulated_instructions() as f64 / trace.len() as f64
        );
    }
    ExitCode::SUCCESS
}
