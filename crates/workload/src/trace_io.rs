//! Trace serialization: a simple line-oriented text format so generated
//! instruction streams can be archived, diffed, and replayed exactly —
//! the reproducibility glue between experiment runs.
//!
//! Format: one instruction per line, `MNEMONIC a_hex b_hex`; `#` starts a
//! comment; blank lines are ignored.

use ntc_isa::{Instruction, ALL_OPCODES};
#[cfg(test)]
use ntc_isa::Opcode;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors raised while parsing a trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Line did not have exactly three fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown mnemonic.
    UnknownOpcode {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        mnemonic: String,
    },
    /// Operand was not valid hex.
    BadOperand {
        /// 1-based line number.
        line: usize,
    },
    /// The `# ntc-workload trace, N instructions` header declared a
    /// different count than the file actually held — a truncated (or
    /// padded) trace must not silently parse as a different trace.
    CountMismatch {
        /// The count the header declared.
        declared: usize,
        /// The instructions actually parsed.
        parsed: usize,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadFieldCount { line } => {
                write!(f, "line {line}: expected `MNEMONIC a b`")
            }
            ParseTraceError::UnknownOpcode { line, mnemonic } => {
                write!(f, "line {line}: unknown opcode `{mnemonic}`")
            }
            ParseTraceError::BadOperand { line } => {
                write!(f, "line {line}: operands must be hexadecimal")
            }
            ParseTraceError::CountMismatch { declared, parsed } => write!(
                f,
                "header declares {declared} instructions but the file holds {parsed} \
                 (truncated or edited trace)"
            ),
            ParseTraceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Write a trace in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &[Instruction], mut w: W) -> io::Result<()> {
    writeln!(w, "# ntc-workload trace, {} instructions", trace.len())?;
    for i in trace {
        writeln!(w, "{} {:x} {:x}", i.opcode.mnemonic(), i.a, i.b)?;
    }
    Ok(())
}

/// The instruction count a `# ntc-workload trace, N instructions`
/// header comment declares, if this comment is such a header.
fn header_count(comment: &str) -> Option<usize> {
    let rest = comment.trim().strip_prefix("ntc-workload trace,")?;
    rest.trim().strip_suffix("instructions")?.trim().parse().ok()
}

/// Parse a trace from the text format. When the writer's
/// `# ntc-workload trace, N instructions` header is present, the parsed
/// instruction count is validated against it, so a truncated file is an
/// error instead of a silently shorter trace.
///
/// # Errors
///
/// Returns the first malformed line, a count mismatch against the
/// header, or an I/O failure.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<Instruction>, ParseTraceError> {
    let mut out = Vec::new();
    let mut declared: Option<usize> = None;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let (body, comment) = match line.split_once('#') {
            Some((b, c)) => (b.trim(), Some(c)),
            None => (line.trim(), None),
        };
        if declared.is_none() {
            if let Some(n) = comment.and_then(header_count) {
                declared = Some(n);
            }
        }
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseTraceError::BadFieldCount { line: line_no });
        }
        let opcode = ALL_OPCODES
            .iter()
            .copied()
            .find(|o| o.mnemonic() == fields[0])
            .ok_or_else(|| ParseTraceError::UnknownOpcode {
                line: line_no,
                mnemonic: fields[0].to_owned(),
            })?;
        let a = u64::from_str_radix(fields[1], 16)
            .map_err(|_| ParseTraceError::BadOperand { line: line_no })?;
        let b = u64::from_str_radix(fields[2], 16)
            .map_err(|_| ParseTraceError::BadOperand { line: line_no })?;
        out.push(Instruction::new(opcode, a, b));
    }
    if let Some(declared) = declared {
        if declared != out.len() {
            return Err(ParseTraceError::CountMismatch {
                declared,
                parsed: out.len(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceGenerator};

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = TraceGenerator::new(Benchmark::Gap, 5).trace(500);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write to vec");
        let parsed = read_trace(io::BufReader::new(&buf[..])).expect("parse back");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nADDU ff 1 # trailing comment\n  \nNOR 0 0\n";
        let parsed = read_trace(io::BufReader::new(text.as_bytes())).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], Instruction::new(Opcode::Addu, 0xFF, 1));
        assert_eq!(parsed[1], Instruction::new(Opcode::Nor, 0, 0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_trace(io::BufReader::new("ADDU ff\n".as_bytes())).unwrap_err();
        assert!(matches!(e, ParseTraceError::BadFieldCount { line: 1 }));
        let e = read_trace(io::BufReader::new("\nFROB 1 2\n".as_bytes())).unwrap_err();
        assert!(matches!(e, ParseTraceError::UnknownOpcode { line: 2, .. }));
        let e = read_trace(io::BufReader::new("ADDU zz 1\n".as_bytes())).unwrap_err();
        assert!(matches!(e, ParseTraceError::BadOperand { line: 1 }));
    }

    #[test]
    fn truncated_trace_with_header_is_rejected() {
        let trace = TraceGenerator::new(Benchmark::Mcf, 8).trace(100);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write to vec");
        let text = String::from_utf8(buf).expect("utf8");
        // Drop the last 10 instruction lines, keeping the header.
        let truncated: String = text
            .lines()
            .take(1 + 90)
            .map(|l| format!("{l}\n"))
            .collect();
        let e = read_trace(io::BufReader::new(truncated.as_bytes())).unwrap_err();
        assert!(
            matches!(
                e,
                ParseTraceError::CountMismatch {
                    declared: 100,
                    parsed: 90
                }
            ),
            "{e}"
        );
        // Extra appended instructions are caught too.
        let padded = format!("{text}ADDU 1 2\n");
        let e = read_trace(io::BufReader::new(padded.as_bytes())).unwrap_err();
        assert!(matches!(e, ParseTraceError::CountMismatch { parsed: 101, .. }));
        // Headerless files still parse leniently (hand-written traces).
        let headerless = "ADDU ff 1\nNOR 0 0\n";
        assert_eq!(
            read_trace(io::BufReader::new(headerless.as_bytes()))
                .expect("no header, no check")
                .len(),
            2
        );
    }

    #[test]
    fn display_messages_are_informative() {
        let e = read_trace(io::BufReader::new("FROB 1 2".as_bytes())).unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("FROB") && msg.contains("line 1"));
    }
}
