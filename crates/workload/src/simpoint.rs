//! SimPoint-style phase sampling: pick a few weighted representative
//! slices of a long trace so simulating the slices estimates the full
//! run.
//!
//! The pass follows the classic SimPoint recipe (Sherwood et al.),
//! adapted to the statistical workloads here:
//!
//! 1. slice the trace into fixed-size **intervals**;
//! 2. summarize each interval as an **opcode-mix vector** (the normalized
//!    frequency of each ISA opcode — the stand-in for basic-block
//!    vectors, and exactly the feature that drives both the ALU datapath
//!    mix and the error-tag population);
//! 3. cluster the vectors with a hand-rolled, seeded **k-means**
//!    (SplitMix64 initialisation — no external deps, and the same seed
//!    always produces the same phases);
//! 4. emit one **representative interval per cluster**, weighted by the
//!    cluster's size.
//!
//! Simulating each representative and folding its [`SimResult`] into the
//! accumulator `weight` times (see `SimAccumulator::push_weighted` in
//! `ntc-core`) then estimates the full-trace counters at a fraction of
//! the simulated instructions. The estimate is an approximation — each
//! phase replays from a fresh scheme state, so cross-phase learning is
//! lost — which is why the conformance suite pins a tolerance rather
//! than byte-identity.
//!
//! [`SimResult`]: ../ntc_core/sim/struct.SimResult.html

use crate::trace_bin::{self, fnv1a64, push_record, read_record, TraceBinError, RECORD_BYTES};
use ntc_isa::{Instruction, ALL_OPCODES};
use ntc_varmodel::rng::SplitMix64;
use std::path::Path;

/// Default cluster count: at most this many representative phases.
pub const DEFAULT_K: usize = 8;

/// Maximum k-means refinement iterations (assignments converge long
/// before this on the interval counts involved).
const MAX_ITERS: usize = 64;

/// The canonical interval length for a trace of `cycles` instructions:
/// ~2% of the trace, floored so intervals stay long enough for the
/// pairwise simulators (which need at least two instructions) and for
/// the mix vectors to be meaningful.
pub fn interval_len_for(cycles: usize) -> usize {
    (cycles / 50).max(100)
}

/// One representative slice of the trace plus its cluster weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// The representative interval's instructions.
    pub slice: Vec<Instruction>,
    /// How many intervals this phase stands for (cluster size).
    pub weight: u64,
}

/// The output of the sampling pass: weighted representative phases of
/// one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSet {
    /// Interval length the trace was sliced with.
    pub interval_len: usize,
    /// Length of the full trace the phases were sampled from.
    pub total_instructions: u64,
    /// Representative phases, ordered by their interval position in the
    /// source trace.
    pub phases: Vec<Phase>,
}

impl PhaseSet {
    /// Total weight — the number of intervals the phases stand for.
    pub fn total_weight(&self) -> u64 {
        self.phases.iter().map(|p| p.weight).sum()
    }

    /// Instructions actually simulated when replaying the phases once
    /// each (the cost side of the sampling trade).
    pub fn simulated_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.slice.len() as u64).sum()
    }
}

/// The opcode-mix feature vector of one interval: normalized frequency
/// per ISA opcode.
fn mix_vector(interval: &[Instruction]) -> Vec<f64> {
    let mut counts = vec![0u64; ALL_OPCODES.len()];
    for i in interval {
        counts[i.opcode.encoding() as usize] += 1;
    }
    let n = interval.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / n).collect()
}

/// Squared Euclidean distance between two equal-length vectors.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Slice `trace` into `interval_len`-sized intervals, cluster their
/// opcode-mix vectors into at most `k` groups with seeded k-means, and
/// return one weighted representative per non-empty cluster.
///
/// The trailing partial interval (fewer than `interval_len`
/// instructions) is dropped, exactly as SimPoint drops it; weights sum
/// to the number of *full* intervals. Deterministic: the same
/// `(trace, interval_len, k, seed)` always yields the same phases.
///
/// # Panics
///
/// Panics if `interval_len` is zero, `k` is zero, or the trace is
/// shorter than one interval.
pub fn sample_phases(trace: &[Instruction], interval_len: usize, k: usize, seed: u64) -> PhaseSet {
    assert!(interval_len > 0, "interval length must be positive");
    assert!(k > 0, "cluster count must be positive");
    let n_intervals = trace.len() / interval_len;
    assert!(
        n_intervals > 0,
        "trace of {} instructions is shorter than one interval ({interval_len})",
        trace.len()
    );
    let vectors: Vec<Vec<f64>> = (0..n_intervals)
        .map(|i| mix_vector(&trace[i * interval_len..(i + 1) * interval_len]))
        .collect();
    let k = k.min(n_intervals);

    // k-means++-lite initialisation: first centroid uniform, each later
    // one the interval farthest from its nearest chosen centroid (ties
    // to the lowest index — deterministic).
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut centroid_idx = vec![rng.gen_index(n_intervals)];
    while centroid_idx.len() < k {
        let far = (0..n_intervals)
            .filter(|i| !centroid_idx.contains(i))
            .max_by(|&a, &b| {
                let da = centroid_idx.iter().map(|&c| dist2(&vectors[a], &vectors[c]));
                let db = centroid_idx.iter().map(|&c| dist2(&vectors[b], &vectors[c]));
                let da = da.fold(f64::INFINITY, f64::min);
                let db = db.fold(f64::INFINITY, f64::min);
                da.total_cmp(&db).then(b.cmp(&a))
            })
            .expect("k <= n_intervals leaves a candidate");
        centroid_idx.push(far);
    }
    let mut centroids: Vec<Vec<f64>> = centroid_idx.iter().map(|&i| vectors[i].clone()).collect();

    // Lloyd refinement until the assignment is stable.
    let mut assignment = vec![0usize; n_intervals];
    for _ in 0..MAX_ITERS {
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(v, &centroids[a])
                        .total_cmp(&dist2(v, &centroids[b]))
                        .then(a.cmp(&b))
                })
                .expect("at least one centroid");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = vectors
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(v, _)| v)
                .collect();
            if members.is_empty() {
                continue; // empty cluster keeps its centroid; dropped below
            }
            for (d, slot) in centroid.iter_mut().enumerate() {
                *slot = members.iter().map(|v| v[d]).sum::<f64>() / members.len() as f64;
            }
        }
    }

    // Representative per non-empty cluster: the member closest to the
    // centroid (ties to the earliest interval), weight = cluster size.
    let mut reps: Vec<(usize, u64)> = Vec::new();
    for (c, centroid) in centroids.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        let mut size = 0u64;
        for (i, v) in vectors.iter().enumerate() {
            if assignment[i] != c {
                continue;
            }
            size += 1;
            let d = dist2(v, centroid);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((i, _)) = best {
            reps.push((i, size));
        }
    }
    reps.sort_by_key(|&(i, _)| i);

    PhaseSet {
        interval_len,
        total_instructions: trace.len() as u64,
        phases: reps
            .into_iter()
            .map(|(i, weight)| Phase {
                slice: trace[i * interval_len..(i + 1) * interval_len].to_vec(),
                weight,
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Phase-set serialization (same artifact discipline as trace_bin)
// ---------------------------------------------------------------------

/// Leading magic of every phase-set file.
pub const PHASES_MAGIC: &[u8; 8] = b"NTCPHAS1";

/// Phase-set format version.
pub const PHASES_VERSION: u64 = 1;

/// Encode a phase set: magic, version, interval length, total trace
/// instructions, phase count, per-phase (weight, slice length, records),
/// trailing FNV-1a checksum.
pub fn encode_phases(set: &PhaseSet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(PHASES_MAGIC);
    out.extend_from_slice(&PHASES_VERSION.to_le_bytes());
    out.extend_from_slice(&(set.interval_len as u64).to_le_bytes());
    out.extend_from_slice(&set.total_instructions.to_le_bytes());
    out.extend_from_slice(&(set.phases.len() as u64).to_le_bytes());
    for p in &set.phases {
        out.extend_from_slice(&p.weight.to_le_bytes());
        out.extend_from_slice(&(p.slice.len() as u64).to_le_bytes());
        for i in &p.slice {
            push_record(&mut out, i);
        }
    }
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode a phase set, verifying structure and the trailing checksum.
///
/// # Errors
///
/// Any structural violation yields the corresponding [`TraceBinError`]
/// (the phase format shares the trace format's error vocabulary).
pub fn decode_phases(bytes: &[u8]) -> Result<PhaseSet, TraceBinError> {
    let header = 8 + 8 + 8 + 8 + 8;
    if bytes.len() < header + 8 {
        return Err(TraceBinError::Truncated {
            expected: header + 8,
            actual: bytes.len(),
        });
    }
    if &bytes[0..8] != PHASES_MAGIC {
        return Err(TraceBinError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 trailer bytes"));
    if fnv1a64(body) != stored {
        return Err(TraceBinError::ChecksumMismatch);
    }
    let u64_at = |at: usize| -> Option<u64> {
        Some(u64::from_le_bytes(body.get(at..at + 8)?.try_into().ok()?))
    };
    let version = u64_at(8).expect("header length checked");
    if version != PHASES_VERSION {
        return Err(TraceBinError::BadVersion(version));
    }
    let interval_len = u64_at(16).expect("header length checked") as usize;
    let total_instructions = u64_at(24).expect("header length checked");
    let n_phases = u64_at(32).expect("header length checked");
    let mut pos = header;
    let mut phases = Vec::new();
    let truncated = || TraceBinError::Truncated {
        expected: bytes.len() + 1,
        actual: bytes.len(),
    };
    for _ in 0..n_phases {
        let weight = u64_at(pos).ok_or_else(truncated)?;
        let len = usize::try_from(u64_at(pos + 8).ok_or_else(truncated)?)
            .map_err(|_| truncated())?;
        pos += 16;
        let mut slice = Vec::with_capacity(len);
        for r in 0..len {
            let rec = body.get(pos..pos + RECORD_BYTES).ok_or_else(truncated)?;
            slice.push(read_record(rec, r)?);
            pos += RECORD_BYTES;
        }
        phases.push(Phase { slice, weight });
    }
    if pos != body.len() {
        return Err(TraceBinError::TrailingBytes);
    }
    Ok(PhaseSet {
        interval_len,
        total_instructions,
        phases,
    })
}

/// Write a phase-set file atomically (temp + rename).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_phases_file(path: &Path, set: &PhaseSet) -> std::io::Result<()> {
    trace_bin::write_atomic(path, &encode_phases(set))
}

/// Read and decode a phase-set file.
///
/// # Errors
///
/// Propagates I/O failures and every decode error of [`decode_phases`].
pub fn read_phases_file(path: &Path) -> Result<PhaseSet, TraceBinError> {
    decode_phases(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceGenerator, ALL_BENCHMARKS};

    #[test]
    fn sampling_is_deterministic_and_weights_cover_all_intervals() {
        let trace = TraceGenerator::new(Benchmark::Gap, 3).trace(5_000);
        let a = sample_phases(&trace, 100, DEFAULT_K, 1);
        let b = sample_phases(&trace, 100, DEFAULT_K, 1);
        assert_eq!(a, b, "same inputs, same phases");
        assert_eq!(a.total_weight(), 50, "weights sum to the interval count");
        assert!(a.phases.len() <= DEFAULT_K);
        assert!(!a.phases.is_empty());
        for p in &a.phases {
            assert_eq!(p.slice.len(), 100);
            assert!(p.weight >= 1);
        }
        // The cost side: at most k intervals simulated.
        assert!(a.simulated_instructions() <= (DEFAULT_K * 100) as u64);
    }

    #[test]
    fn more_clusters_than_intervals_degrades_to_full_coverage() {
        let trace = TraceGenerator::new(Benchmark::Mcf, 1).trace(400);
        let set = sample_phases(&trace, 100, 16, 7);
        // k clamps to the interval count. Intervals with identical mix
        // vectors may still merge, so weights cover every interval but
        // the phase count can be below the clamp.
        assert_eq!(set.total_weight(), 4);
        assert!(!set.phases.is_empty() && set.phases.len() <= 4);
        assert!(set.simulated_instructions() <= 400);
        assert!(set.simulated_instructions().is_multiple_of(100));
    }

    #[test]
    fn weighted_mix_approximates_the_full_trace_mix() {
        // The whole point of the pass: the weighted opcode mix of the
        // representatives tracks the full trace's mix.
        for bench in ALL_BENCHMARKS {
            let trace = TraceGenerator::new(bench, 11).trace(20_000);
            let set = sample_phases(&trace, interval_len_for(20_000), DEFAULT_K, 11);
            let full = mix_vector(&trace);
            let mut est = vec![0.0f64; full.len()];
            let total_w = set.total_weight() as f64;
            for p in &set.phases {
                let v = mix_vector(&p.slice);
                for (e, x) in est.iter_mut().zip(&v) {
                    *e += x * p.weight as f64 / total_w;
                }
            }
            let err: f64 = full
                .iter()
                .zip(&est)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
            // L1 distance between two distributions is at most 2.0; the
            // weighted estimate stays an order of magnitude tighter.
            assert!(err < 0.2, "{bench}: L1 mix error {err:.4}");
        }
    }

    #[test]
    fn phase_file_roundtrip_and_corruption_detection() {
        let trace = TraceGenerator::new(Benchmark::Vortex, 5).trace(2_000);
        let set = sample_phases(&trace, 200, 4, 2);
        let bytes = encode_phases(&set);
        assert_eq!(decode_phases(&bytes).expect("decode"), set);
        // Every proper prefix fails.
        for len in (0..bytes.len()).step_by(7) {
            assert!(decode_phases(&bytes[..len]).is_err(), "prefix {len}");
        }
        // A flipped byte fails the checksum.
        let mut bad = bytes.clone();
        bad[40] ^= 1;
        assert!(decode_phases(&bad).is_err());

        let dir = std::env::temp_dir().join(format!("ntc-phases-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("p.ntp");
        write_phases_file(&path, &set).expect("write");
        assert_eq!(read_phases_file(&path).expect("read"), set);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "shorter than one interval")]
    fn undersized_traces_are_rejected() {
        let trace = TraceGenerator::new(Benchmark::Mcf, 1).trace(50);
        let _ = sample_phases(&trace, 100, 4, 0);
    }
}
