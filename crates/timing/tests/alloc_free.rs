//! Proves the kernel's allocation discipline: after warm-up, the
//! workspace entry points (`simulate_pair_minmax`, `simulate_pair_into`)
//! perform **zero** heap allocations per call on the 64-bit ALU netlist.
//!
//! A thread-local counting allocator wraps the system one; counting only
//! this thread keeps the measurement immune to libtest's own threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ntc_netlist::generators::alu::{Alu, AluFunc};
use ntc_timing::{CycleTiming, SimWorkspace};
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter is a
// const-initialized thread-local `Cell`, so bumping it allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

#[test]
fn steady_state_simulation_allocates_nothing() {
    let alu = Alu::new(64);
    let nominal = ChipSignature::nominal(alu.netlist(), Corner::NTC);
    let fabricated =
        ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);
    // A mix of sparse, carry-ripple and dense pairs so the warmed buffers
    // cover every activity shape replayed below.
    let pairs = [
        (
            alu.encode(AluFunc::Buffer, 0x01, 0x00),
            alu.encode(AluFunc::Buffer, 0x03, 0x00),
        ),
        (
            alu.encode(AluFunc::Add, 0, 0),
            alu.encode(AluFunc::Add, u64::MAX, 1),
        ),
        (
            alu.encode(AluFunc::Mult, 0, 0),
            alu.encode(AluFunc::Mult, 0xDEAD_BEEF_1234_5678, 0x1357_9BDF_2468_ACE0),
        ),
    ];

    let mut ws = SimWorkspace::new();
    let mut out = CycleTiming::default();
    // Warm-up: buffers reach their high-water capacity.
    for sig in [&nominal, &fabricated] {
        for (init, sens) in &pairs {
            let _ = ws.simulate_pair_minmax(alu.netlist(), sig, init, sens);
            ws.simulate_pair_into(alu.netlist(), sig, init, sens, &mut out);
        }
    }

    let before = allocations();
    for _ in 0..50 {
        for sig in [&nominal, &fabricated] {
            for (init, sens) in &pairs {
                let _ = ws.simulate_pair_minmax(alu.netlist(), sig, init, sens);
                ws.simulate_pair_into(alu.netlist(), sig, init, sens, &mut out);
            }
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state simulate_pair_minmax/simulate_pair_into must not allocate"
    );
}
