//! Property-based tests for the timing analyses: structural invariants
//! that must hold for arbitrary stimuli and fabrication draws.

use ntc_netlist::generators::alu::{Alu, AluFunc, ALL_ALU_FUNCS};
use ntc_timing::{k_critical_paths, DynamicSim, StaticTiming};
use ntc_varmodel::{ChipSignature, Corner, VariationParams};
use proptest::prelude::*;

fn alu8() -> Alu {
    Alu::new(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The dynamic simulator's settled state always equals combinational
    /// evaluation, regardless of the vector pair or the chip drawn.
    #[test]
    fn dynamic_final_state_matches_eval(
        seed in 0u64..64,
        f1 in 0usize..13, a1 in any::<u8>(), b1 in any::<u8>(),
        f2 in 0usize..13, a2 in any::<u8>(), b2 in any::<u8>(),
    ) {
        let alu = alu8();
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(ALL_ALU_FUNCS[f1], a1 as u64, b1 as u64);
        let sens = alu.encode(ALL_ALU_FUNCS[f2], a2 as u64, b2 as u64);
        let t = sim.simulate_pair(&init, &sens);
        let expect = alu.netlist().eval(&sens);
        let got: Vec<bool> = t.outputs.iter().map(|o| o.final_value).collect();
        prop_assert_eq!(got, expect);
    }

    /// Dynamic sensitized delays never exceed the static critical delay
    /// (static analysis assumes every path sensitizable).
    #[test]
    fn dynamic_bounded_by_static(
        seed in 0u64..32,
        f in 0usize..13, a in any::<u8>(), b in any::<u8>(),
    ) {
        let alu = alu8();
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let bound = StaticTiming::analyze(alu.netlist(), &sig).critical_delay_ps(alu.netlist());
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Buffer, 0, 0);
        let sens = alu.encode(ALL_ALU_FUNCS[f], a as u64, b as u64);
        let t = sim.simulate_pair(&init, &sens);
        if let Some(d) = t.max_delay_ps {
            prop_assert!(d <= bound + 1e-6, "dynamic {d} vs static {bound}");
        }
        if let (Some(lo), Some(hi)) = (t.min_delay_ps, t.max_delay_ps) {
            prop_assert!(lo <= hi + 1e-9);
        }
    }

    /// Every enumerated path's delay equals the sum of its gate delays,
    /// and the ranking is non-increasing — for any chip.
    #[test]
    fn enumerated_paths_are_consistent(seed in 0u64..32, k in 1usize..10) {
        let alu = alu8();
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let paths = k_critical_paths(alu.netlist(), &sig, k);
        prop_assert_eq!(paths.len(), k);
        let mut prev = f64::INFINITY;
        for p in &paths {
            let sum: f64 = p.signals.iter().map(|s| sig.delay_ps(s.index())).sum();
            prop_assert!((sum - p.delay_ps).abs() < 1e-6);
            prop_assert!(p.delay_ps <= prev + 1e-9);
            prev = p.delay_ps;
        }
    }

    /// Identical consecutive vectors never produce output transitions —
    /// the circuit is settled, nothing can toggle.
    #[test]
    fn no_transitions_without_input_change(
        seed in 0u64..32,
        f in 0usize..13, a in any::<u8>(), b in any::<u8>(),
    ) {
        let alu = alu8();
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(ALL_ALU_FUNCS[f], a as u64, b as u64);
        let t = sim.simulate_pair(&v, &v);
        prop_assert_eq!(t.total_output_transitions, 0);
    }

    /// Transition parity: an output's final value differs from its initial
    /// value iff it saw an odd number of transitions.
    #[test]
    fn transition_parity_holds(
        seed in 0u64..16,
        a1 in any::<u8>(), b1 in any::<u8>(),
        a2 in any::<u8>(), b2 in any::<u8>(),
    ) {
        let alu = alu8();
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Xor, a1 as u64, b1 as u64);
        let sens = alu.encode(AluFunc::Add, a2 as u64, b2 as u64);
        let t = sim.simulate_pair(&init, &sens);
        for o in &t.outputs {
            prop_assert_eq!(o.final_value != o.initial, o.transitions.len() % 2 == 1);
        }
    }
}
