//! Randomized tests for the timing analyses: structural invariants that
//! must hold for arbitrary stimuli and fabrication draws.
//!
//! Formerly `proptest`-based; rewritten as seeded deterministic sweeps
//! (fixed-seed [`SplitMix64`] streams) so the workspace builds with zero
//! registry dependencies and every failure reproduces exactly.

use ntc_netlist::generators::alu::{Alu, AluFunc, ALL_ALU_FUNCS};
use ntc_timing::{k_critical_paths, DynamicSim, StaticTiming};
use ntc_varmodel::rng::SplitMix64;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

fn alu8() -> Alu {
    Alu::new(8)
}

fn pick_func(rng: &mut SplitMix64) -> AluFunc {
    ALL_ALU_FUNCS[rng.gen_index(ALL_ALU_FUNCS.len())]
}

/// The dynamic simulator's settled state always equals combinational
/// evaluation, regardless of the vector pair or the chip drawn.
#[test]
fn dynamic_final_state_matches_eval() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0001);
    for case in 0..48 {
        let seed = rng.gen_u64() % 64;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens_f = pick_func(&mut rng);
        let (a2, b2) = (rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens = alu.encode(sens_f, a2, b2);
        let t = sim.simulate_pair(&init, &sens);
        let expect = alu.netlist().eval(&sens);
        let got: Vec<bool> = t.outputs.iter().map(|o| o.final_value).collect();
        assert_eq!(got, expect, "case {case} chip {seed} {sens_f:?} a={a2} b={b2}");
    }
}

/// Dynamic sensitized delays never exceed the static critical delay
/// (static analysis assumes every path sensitizable).
#[test]
fn dynamic_bounded_by_static() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0002);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let bound = StaticTiming::analyze(alu.netlist(), &sig).critical_delay_ps(alu.netlist());
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Buffer, 0, 0);
        let sens = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair(&init, &sens);
        if let Some(d) = t.max_delay_ps {
            assert!(d <= bound + 1e-6, "case {case}: dynamic {d} vs static {bound}");
        }
        if let (Some(lo), Some(hi)) = (t.min_delay_ps, t.max_delay_ps) {
            assert!(lo <= hi + 1e-9, "case {case}");
        }
    }
}

/// Every enumerated path's delay equals the sum of its gate delays, and
/// the ranking is non-increasing — for any chip.
#[test]
fn enumerated_paths_are_consistent() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0003);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let k = 1 + rng.gen_index(9);
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let paths = k_critical_paths(alu.netlist(), &sig, k);
        assert_eq!(paths.len(), k, "case {case}");
        let mut prev = f64::INFINITY;
        for p in &paths {
            let sum: f64 = p.signals.iter().map(|s| sig.delay_ps(s.index())).sum();
            assert!((sum - p.delay_ps).abs() < 1e-6, "case {case}");
            assert!(p.delay_ps <= prev + 1e-9, "case {case}");
            prev = p.delay_ps;
        }
    }
}

/// Identical consecutive vectors never produce output transitions — the
/// circuit is settled, nothing can toggle.
#[test]
fn no_transitions_without_input_change() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0004);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair(&v, &v);
        assert_eq!(t.total_output_transitions, 0, "case {case}");
    }
}

/// Transition parity: an output's final value differs from its initial
/// value iff it saw an odd number of transitions.
#[test]
fn transition_parity_holds() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0005);
    for case in 0..16 {
        let seed = rng.gen_u64() % 16;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Xor, rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens = alu.encode(AluFunc::Add, rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair(&init, &sens);
        for o in &t.outputs {
            assert_eq!(
                o.final_value != o.initial,
                o.transitions.len() % 2 == 1,
                "case {case}"
            );
        }
    }
}
