//! Randomized tests for the timing analyses: structural invariants that
//! must hold for arbitrary stimuli and fabrication draws.
//!
//! Formerly `proptest`-based; rewritten as seeded deterministic sweeps
//! (fixed-seed [`SplitMix64`] streams) so the workspace builds with zero
//! registry dependencies and every failure reproduces exactly.

use ntc_netlist::generators::alu::{Alu, AluFunc, ALL_ALU_FUNCS};
use ntc_timing::{
    k_critical_paths, ClockSpec, DynamicSim, ScreenBounds, ScreenVerdict, ScreenedSim,
    StaticTiming, SCREEN_GUARD_PS,
};
use ntc_varmodel::rng::SplitMix64;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};
use std::sync::Arc;

fn alu8() -> Alu {
    Alu::new(8)
}

fn pick_func(rng: &mut SplitMix64) -> AluFunc {
    ALL_ALU_FUNCS[rng.gen_index(ALL_ALU_FUNCS.len())]
}

/// The dynamic simulator's settled state always equals combinational
/// evaluation, regardless of the vector pair or the chip drawn.
#[test]
fn dynamic_final_state_matches_eval() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0001);
    for case in 0..48 {
        let seed = rng.gen_u64() % 64;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens_f = pick_func(&mut rng);
        let (a2, b2) = (rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens = alu.encode(sens_f, a2, b2);
        let t = sim.simulate_pair(&init, &sens);
        let expect = alu.netlist().eval(&sens);
        let got: Vec<bool> = t.outputs.iter().map(|o| o.final_value).collect();
        assert_eq!(got, expect, "case {case} chip {seed} {sens_f:?} a={a2} b={b2}");
    }
}

/// Dynamic sensitized delays never exceed the static critical delay
/// (static analysis assumes every path sensitizable).
#[test]
fn dynamic_bounded_by_static() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0002);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let bound = StaticTiming::analyze(alu.netlist(), &sig).critical_delay_ps(alu.netlist());
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Buffer, 0, 0);
        let sens = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair(&init, &sens);
        if let Some(d) = t.max_delay_ps {
            assert!(d <= bound + 1e-6, "case {case}: dynamic {d} vs static {bound}");
        }
        if let (Some(lo), Some(hi)) = (t.min_delay_ps, t.max_delay_ps) {
            assert!(lo <= hi + 1e-9, "case {case}");
        }
    }
}

/// Every enumerated path's delay equals the sum of its gate delays, and
/// the ranking is non-increasing — for any chip.
#[test]
fn enumerated_paths_are_consistent() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0003);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let k = 1 + rng.gen_index(9);
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let paths = k_critical_paths(alu.netlist(), &sig, k);
        assert_eq!(paths.len(), k, "case {case}");
        let mut prev = f64::INFINITY;
        for p in &paths {
            let sum: f64 = p.signals.iter().map(|s| sig.delay_ps(s.index())).sum();
            assert!((sum - p.delay_ps).abs() < 1e-6, "case {case}");
            assert!(p.delay_ps <= prev + 1e-9, "case {case}");
            prev = p.delay_ps;
        }
    }
}

/// Identical consecutive vectors never produce output transitions — the
/// circuit is settled, nothing can toggle.
#[test]
fn no_transitions_without_input_change() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0004);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair(&v, &v);
        assert_eq!(t.total_output_transitions, 0, "case {case}");
    }
}

/// The screen's per-cycle envelope brackets every delay the exact kernel
/// produces — for arbitrary chips and vector pairs. This is the soundness
/// property the two-tier oracle rests on.
#[test]
fn screen_bounds_bracket_kernel_for_random_chips_and_vectors() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0006);
    for case in 0..48 {
        let seed = rng.gen_u64() % 64;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let sta = StaticTiming::analyze(alu.netlist(), &sig);
        let bounds = ScreenBounds::build(alu.netlist(), &sig, &sta);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair_minmax(&init, &sens);
        match bounds.cone_bounds(&init, &sens) {
            None => {
                assert_eq!(t.min_ps, None, "case {case} chip {seed}: quiet must be exact");
                assert_eq!(t.max_ps, None, "case {case} chip {seed}");
            }
            Some((lo, hi)) => {
                if let Some(max) = t.max_ps {
                    assert!(max <= hi + SCREEN_GUARD_PS, "case {case} chip {seed}: {max} > {hi}");
                }
                if let Some(min) = t.min_ps {
                    assert!(min >= lo - SCREEN_GUARD_PS, "case {case} chip {seed}: {min} < {lo}");
                }
            }
        }
    }
}

/// Differential: a `ScreenedSim` and the raw kernel agree *bit-for-bit*
/// wherever the screen falls back, and agree on the violation set at the
/// screened clock everywhere — across random chips, vector pairs and
/// clocks, including clocks placed right at the slack bound.
#[test]
fn screened_sim_agrees_with_kernel_bit_for_bit() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0007);
    for case in 0..48 {
        let seed = rng.gen_u64() % 64;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let sta = StaticTiming::analyze(alu.netlist(), &sig);
        let bounds = Arc::new(ScreenBounds::build(alu.netlist(), &sig, &sta));
        let init = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let crit = sta.critical_delay_ps(alu.netlist());
        // Adversarial clock menu: generous slack, mid-range, aggressively
        // tight, and — when the pair toggles — right at its own envelope,
        // where one ulp of optimism would flip the verdict.
        let mut clocks = vec![
            ClockSpec { period_ps: crit * 1.25, hold_ps: crit * 0.01 },
            ClockSpec { period_ps: crit * 0.95, hold_ps: crit * 0.12 },
            ClockSpec { period_ps: crit * 0.60, hold_ps: crit * 0.30 },
        ];
        if let Some((lo, hi)) = bounds.cone_bounds(&init, &sens) {
            clocks.push(ClockSpec {
                period_ps: hi + SCREEN_GUARD_PS,
                hold_ps: lo - SCREEN_GUARD_PS,
            });
            clocks.push(ClockSpec {
                period_ps: hi * (1.0 - 1e-9),
                hold_ps: lo * (1.0 + 1e-9),
            });
        }
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let e = exact.simulate_pair_minmax(&init, &sens);
        for clock in clocks {
            let mut screened = ScreenedSim::new(alu.netlist(), &sig, bounds.clone(), clock);
            let s = screened.simulate_pair_minmax(&init, &sens);
            match screened.bounds().screen(&init, &sens, &clock) {
                ScreenVerdict::Inconclusive => {
                    // Fallback path: the kernel ran, results are the same
                    // bits.
                    assert_eq!(s.min_ps.map(f64::to_bits), e.min_ps.map(f64::to_bits), "case {case}");
                    assert_eq!(s.max_ps.map(f64::to_bits), e.max_ps.map(f64::to_bits), "case {case}");
                    assert_eq!(screened.screen_misses(), 1, "case {case}");
                }
                ScreenVerdict::Quiet => {
                    // Quiet is exact, not just safe.
                    assert_eq!(s.min_ps.map(f64::to_bits), e.min_ps.map(f64::to_bits), "case {case}");
                    assert_eq!(s.max_ps.map(f64::to_bits), e.max_ps.map(f64::to_bits), "case {case}");
                    assert_eq!(screened.screen_hits(), 1, "case {case}");
                }
                ScreenVerdict::Safe { .. } => {
                    // Screened path: the violation sets must match exactly
                    // — both sides clean at this clock.
                    for d in [s, e] {
                        assert!(
                            !d.max_ps.is_some_and(|m| m > clock.period_ps),
                            "case {case}: screened-safe cycle violates max"
                        );
                        assert!(
                            !d.min_ps.is_some_and(|m| m < clock.hold_ps),
                            "case {case}: screened-safe cycle violates min"
                        );
                    }
                    assert_eq!(screened.screen_hits(), 1, "case {case}");
                }
            }
        }
    }
}

/// Full-activity screening is exact everywhere: for arbitrary vector
/// pairs the screened `simulate_pair` equals the kernel's result
/// structurally (every transition time, every output), whether the quiet
/// skip fired or not.
#[test]
fn screened_full_activity_is_bit_identical() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0008);
    for case in 0..32 {
        let seed = rng.gen_u64() % 32;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let sta = StaticTiming::analyze(alu.netlist(), &sig);
        let bounds = Arc::new(ScreenBounds::build(alu.netlist(), &sig, &sta));
        let crit = sta.critical_delay_ps(alu.netlist());
        let clock = ClockSpec {
            period_ps: crit * 2.0,
            hold_ps: 0.0,
        };
        let mut screened = ScreenedSim::new(alu.netlist(), &sig, bounds, clock);
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        // Mix settled pairs (the skippable case) with toggling ones.
        let sens = if case % 4 == 0 {
            init.clone()
        } else {
            alu.encode(pick_func(&mut rng), rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF)
        };
        assert_eq!(
            screened.simulate_pair(&init, &sens),
            exact.simulate_pair(&init, &sens),
            "case {case} chip {seed}"
        );
    }
}

/// Transition parity: an output's final value differs from its initial
/// value iff it saw an odd number of transitions.
#[test]
fn transition_parity_holds() {
    let alu = alu8();
    let mut rng = SplitMix64::seed_from_u64(0x71AE_0005);
    for case in 0..16 {
        let seed = rng.gen_u64() % 16;
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), seed);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Xor, rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let sens = alu.encode(AluFunc::Add, rng.gen_u64() & 0xFF, rng.gen_u64() & 0xFF);
        let t = sim.simulate_pair(&init, &sens);
        for o in &t.outputs {
            assert_eq!(
                o.final_value != o.initial,
                o.transitions.len() % 2 == 1,
                "case {case}"
            );
        }
    }
}
