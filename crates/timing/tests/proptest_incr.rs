//! Differential fuzz for the incremental re-timing engine: for random
//! base signatures and random delta chains, the retained engine's state
//! must be `to_bits`-identical — arrivals and screen tables both — to a
//! from-scratch analysis of the same signature. Not close: identical.
//! This is the property that lets the chip memo pool swap `analyze` for
//! `retime` without moving a single golden CSV byte.
//!
//! Seeded deterministic sweeps ([`SplitMix64`]), same idiom as
//! `proptest_timing.rs`: zero registry dependencies, every failure
//! reproduces exactly.

use ntc_netlist::buffer_insertion::insert_hold_buffers;
use ntc_netlist::generators::alu::Alu;
use ntc_netlist::Netlist;
use ntc_timing::{IncrementalTiming, ScreenBounds, StaticTiming};
use ntc_varmodel::rng::SplitMix64;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

fn logic_gates(nl: &Netlist) -> Vec<usize> {
    nl.gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.kind().is_pseudo())
        .map(|(i, _)| i)
        .collect()
}

/// Assert the engine's full state — forward arrivals, reverse screen
/// tables, critical anchors — is bit-identical to from-scratch analysis.
fn assert_state_matches_full(
    nl: &Netlist,
    sig: &ChipSignature,
    engine: &IncrementalTiming,
    ctx: &str,
) {
    let full = StaticTiming::analyze(nl, sig);
    let t = engine.timing();
    for i in 0..nl.len() {
        assert_eq!(
            t.min_arrival(i).to_bits(),
            full.min_arrival(i).to_bits(),
            "{ctx}: min arrival of net {i}"
        );
        assert_eq!(
            t.max_arrival(i).to_bits(),
            full.max_arrival(i).to_bits(),
            "{ctx}: max arrival of net {i}"
        );
    }
    let rebuilt = ScreenBounds::build(nl, sig, &full);
    let refreshed = engine.screen_bounds().expect("engine retimed at least once");
    assert_eq!(
        refreshed.static_critical_ps().to_bits(),
        rebuilt.static_critical_ps().to_bits(),
        "{ctx}: screen critical anchor"
    );
    for j in 0..nl.len() {
        let (rlo, rhi) = refreshed.net_bounds(j);
        let (flo, fhi) = rebuilt.net_bounds(j);
        assert_eq!(rlo.to_bits(), flo.to_bits(), "{ctx}: min bound of net {j}");
        assert_eq!(rhi.to_bits(), fhi.to_bits(), "{ctx}: max bound of net {j}");
    }
}

/// The core differential: chains of sparse, dense, voltage-style-uniform
/// and single-gate deltas, each step re-timed incrementally and compared
/// bit-for-bit against a from-scratch analysis.
#[test]
fn incremental_retime_is_bit_identical_to_full_analysis() {
    let alu = Alu::new(8);
    let nl = alu.netlist();
    let logic = logic_gates(nl);
    let mut rng = SplitMix64::seed_from_u64(0x14C0_0001);
    for case in 0..12 {
        let seed = rng.gen_u64() % 1000;
        let mut sig = ChipSignature::fabricate(nl, Corner::NTC, VariationParams::ntc(), seed);
        let mut engine = IncrementalTiming::new();
        let out = engine.retime(nl, &sig);
        assert!(out.full, "case {case}: first retime seeds fully");
        assert_state_matches_full(nl, &sig, &engine, &format!("case {case} seed"));
        for step in 0..6 {
            match step % 4 {
                // Sparse: a handful of random logic gates slowed/sped.
                0 => {
                    let k = 1 + rng.gen_index(8);
                    let gates: Vec<usize> =
                        (0..k).map(|_| logic[rng.gen_index(logic.len())]).collect();
                    let m = 0.5 + (rng.gen_u64() % 1500) as f64 / 1000.0;
                    sig.inject_choke(&gates, m);
                }
                // Dense: a different fabrication draw — every gate moves.
                1 => {
                    sig = ChipSignature::fabricate(
                        nl,
                        Corner::NTC,
                        VariationParams::ntc(),
                        rng.gen_u64() % 1000,
                    );
                }
                // Voltage-style: one uniform multiplier across the die.
                2 => {
                    let m = 0.8 + (rng.gen_u64() % 400) as f64 / 1000.0;
                    sig.inject_choke(&logic, m);
                }
                // Single gate: the buffer-resize shape.
                _ => {
                    let g = logic[rng.gen_index(logic.len())];
                    sig.inject_choke(&[g], 3.0);
                }
            }
            let out = engine.retime(nl, &sig);
            assert!(!out.full, "case {case} step {step}: delta must stay incremental");
            assert_state_matches_full(nl, &sig, &engine, &format!("case {case} step {step}"));
        }
    }
}

/// A re-time against the already-loaded signature is a no-op: zero dirty
/// seeds, zero propagation, state untouched.
#[test]
fn identical_signature_retimes_for_free() {
    let alu = Alu::new(8);
    let nl = alu.netlist();
    let sig = ChipSignature::fabricate(nl, Corner::NTC, VariationParams::ntc(), 77);
    let mut engine = IncrementalTiming::new();
    engine.retime(nl, &sig);
    let again = engine.retime(nl, &sig);
    assert!(!again.full);
    assert_eq!(again.delay_changes, 0, "no delay moved");
    assert_eq!(again.gates_touched, 0, "nothing propagated");
    assert_state_matches_full(nl, &sig, &engine, "no-op retime");
}

/// The `retime_gate` hook (the adaptive buffer-resize path): mutate the
/// delay of individual inserted hold buffers on the padded netlist and
/// check the point re-time is bit-identical to full analysis of the
/// equivalently mutated signature.
#[test]
fn retime_gate_matches_full_analysis_on_buffered_netlist() {
    let alu = Alu::new(8);
    // Pad short paths the way the experiment stack does, and take the
    // inserted-buffer index list from the `gate_indices` hook.
    let (padded, buffers, _) = insert_hold_buffers(alu.netlist(), 120.0, 4000.0);
    let buffer_gates: Vec<usize> = buffers.gate_indices().collect();
    assert!(!buffer_gates.is_empty(), "fixture must insert buffers");
    let mut sig = ChipSignature::fabricate(&padded, Corner::NTC, VariationParams::ntc(), 5);
    let mut engine = IncrementalTiming::new();
    engine.retime(&padded, &sig);
    let mut rng = SplitMix64::seed_from_u64(0x14C0_0002);
    for step in 0..8 {
        let g = buffer_gates[rng.gen_index(buffer_gates.len())];
        let m = 0.5 + (rng.gen_u64() % 3000) as f64 / 1000.0;
        // Mirror the mutation on a reference signature, then hand the
        // engine only the resulting absolute delay.
        sig.inject_choke(&[g], m);
        let out = engine.retime_gate(&padded, g, sig.delay_ps(g));
        assert!(!out.full, "step {step}");
        assert!(out.delay_changes <= 1, "step {step}: at most the one gate");
        assert_state_matches_full(&padded, &sig, &engine, &format!("retime_gate step {step}"));
    }
}
