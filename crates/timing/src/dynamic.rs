//! Dynamic (two-vector) timing simulation — the in-house "statistical
//! dynamic timing analysis tool" of the paper's circuit layer.
//!
//! Timing errors depend on *sensitized* paths, which depend on two
//! consecutive input vectors: the **initializing** vector (previous cycle)
//! settles the circuit state, and the **sensitizing** vector (current
//! cycle) launches transitions through whichever paths the pair activates.
//! The simulator propagates bounded per-net transition waveforms through
//! the netlist in topological order, so it is glitch-aware: it reports not
//! just the earliest/latest output arrival but the full transition list per
//! output — precisely what Trident's transition detector monitors.

use ntc_netlist::{CellKind, Netlist};
use ntc_varmodel::ChipSignature;

/// Maximum transitions tracked per net within one cycle. Nets that glitch
/// more keep their first and last transitions (the ones that matter for
/// min/max violation analysis) and drop interior ones.
pub const MAX_EVENTS_PER_NET: usize = 8;

/// One net's activity during a cycle: its settled initial value and the
/// (time-ordered) value changes.
#[derive(Debug, Clone, Default)]
struct Wave {
    init: bool,
    /// Times at which the net toggles; the value after event `k` is
    /// `init ^ ((k+1) & 1 == 1)`... i.e. it alternates starting from init.
    toggles: Vec<f64>,
    /// True if interior events were dropped due to the cap.
    truncated: bool,
}

impl Wave {
    #[inline]
    fn final_value(&self) -> bool {
        self.init ^ (self.toggles.len() % 2 == 1)
    }

    #[inline]
    fn value_at(&self, t: f64) -> bool {
        // Number of toggles at or before t.
        let k = self.toggles.partition_point(|&x| x <= t);
        self.init ^ (k % 2 == 1)
    }

    fn push_toggle(&mut self, t: f64) {
        if self.toggles.len() >= MAX_EVENTS_PER_NET {
            // Keep parity and the extremes: drop the second-to-last event.
            // Removing an interior *pair* preserves the final value; we drop
            // two interior toggles (a glitch) nearest the end.
            let len = self.toggles.len();
            self.toggles.drain(len - 3..len - 1);
            self.truncated = true;
        }
        self.toggles.push(t);
    }
}

/// Transition activity of one primary output during a cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputActivity {
    /// Settled value before the sensitizing vector was applied.
    pub initial: bool,
    /// Final settled value.
    pub final_value: bool,
    /// Transition times, ps after the launch edge, in increasing order.
    pub transitions: Vec<f64>,
}

impl OutputActivity {
    /// Earliest transition time, if the output toggled at all.
    pub fn first_transition(&self) -> Option<f64> {
        self.transitions.first().copied()
    }

    /// Latest transition time, if the output toggled at all.
    pub fn last_transition(&self) -> Option<f64> {
        self.transitions.last().copied()
    }
}

/// Result of simulating one (initializing, sensitizing) vector pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTiming {
    /// Earliest output transition across all primary outputs (`None` if no
    /// output toggled).
    pub min_delay_ps: Option<f64>,
    /// Latest output transition across all primary outputs.
    pub max_delay_ps: Option<f64>,
    /// Per-output transition activity, in output declaration order.
    pub outputs: Vec<OutputActivity>,
    /// Total output transitions (a switching-activity proxy for the energy
    /// model).
    pub total_output_transitions: usize,
    /// Total internal net toggles observed (switching-activity proxy).
    pub internal_toggles: usize,
}

/// Reusable dynamic timing simulator bound to one netlist + chip signature.
///
/// # Examples
///
/// ```
/// use ntc_netlist::generators::alu::{Alu, AluFunc};
/// use ntc_timing::DynamicSim;
/// use ntc_varmodel::{ChipSignature, Corner};
///
/// let alu = Alu::new(8);
/// let chip = ChipSignature::nominal(alu.netlist(), Corner::NTC);
/// let mut sim = DynamicSim::new(alu.netlist(), &chip);
/// let init = alu.encode(AluFunc::Add, 0, 0);
/// let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
/// let timing = sim.simulate_pair(&init, &sens);
/// assert!(timing.max_delay_ps.expect("carry chain toggles") > 0.0);
/// ```
#[derive(Debug)]
pub struct DynamicSim<'a> {
    nl: &'a Netlist,
    sig: &'a ChipSignature,
    waves: Vec<Wave>,
    scratch_times: Vec<f64>,
}

impl<'a> DynamicSim<'a> {
    /// Bind a simulator to a netlist and a fabricated chip's signature.
    ///
    /// # Panics
    ///
    /// Panics if the signature length does not match the netlist.
    pub fn new(nl: &'a Netlist, sig: &'a ChipSignature) -> Self {
        assert_eq!(sig.delays_ps().len(), nl.len(), "signature/netlist mismatch");
        DynamicSim {
            nl,
            sig,
            waves: vec![Wave::default(); nl.len()],
            scratch_times: Vec::with_capacity(16),
        }
    }

    /// Simulate one cycle: the circuit is settled at `initializing`, then
    /// `sensitizing` is applied at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if either vector's width differs from the primary-input count.
    pub fn simulate_pair(&mut self, initializing: &[bool], sensitizing: &[bool]) -> CycleTiming {
        let nl = self.nl;
        assert_eq!(initializing.len(), nl.inputs().len(), "init vector width");
        assert_eq!(sensitizing.len(), nl.inputs().len(), "sens vector width");

        // Settle the initializing vector.
        let settled = nl.eval_all(initializing);

        // Reset waves.
        for (w, &v) in self.waves.iter_mut().zip(settled.iter()) {
            w.init = v;
            w.toggles.clear();
            w.truncated = false;
        }

        // Primary-input transitions at t = 0.
        let mut pi_iter = sensitizing.iter();
        let mut internal_toggles = 0usize;
        for (i, gate) in nl.gates().iter().enumerate() {
            match gate.kind() {
                CellKind::Input => {
                    let new = *pi_iter.next().expect("width checked");
                    if new != self.waves[i].init {
                        self.waves[i].toggles.push(0.0);
                    }
                }
                CellKind::Const0 | CellKind::Const1 => {}
                kind => {
                    // Gather candidate evaluation times from input toggles.
                    self.scratch_times.clear();
                    for s in gate.inputs() {
                        self.scratch_times
                            .extend_from_slice(&self.waves[s.index()].toggles);
                    }
                    if self.scratch_times.is_empty() {
                        continue;
                    }
                    self.scratch_times
                        .sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                    self.scratch_times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

                    let delay = self.sig.delay_ps(i);
                    let ins = gate.inputs();
                    let mut last_val = self.waves[i].init;
                    // Evaluate the gate at each candidate time; emit output
                    // toggles (delayed) whenever the value changes.
                    let mut emitted: Vec<f64> = Vec::new();
                    for k in 0..self.scratch_times.len() {
                        let t = self.scratch_times[k];
                        let mut vals = [false; 3];
                        for (j, s) in ins.iter().enumerate() {
                            vals[j] = self.waves[s.index()].value_at(t);
                        }
                        let v = kind.eval(&vals[..ins.len()]);
                        if v != last_val {
                            emitted.push(t + delay);
                            last_val = v;
                        }
                    }
                    internal_toggles += emitted.len();
                    for t in emitted {
                        self.waves[i].push_toggle(t);
                    }
                }
            }
        }

        // Collect per-output activity.
        let mut min_d: Option<f64> = None;
        let mut max_d: Option<f64> = None;
        let mut total = 0usize;
        let outputs: Vec<OutputActivity> = nl
            .outputs()
            .iter()
            .map(|s| {
                let w = &self.waves[s.index()];
                if let Some(&first) = w.toggles.first() {
                    min_d = Some(min_d.map_or(first, |m: f64| m.min(first)));
                }
                if let Some(&last) = w.toggles.last() {
                    max_d = Some(max_d.map_or(last, |m: f64| m.max(last)));
                }
                total += w.toggles.len();
                OutputActivity {
                    initial: w.init,
                    final_value: w.final_value(),
                    transitions: w.toggles.clone(),
                }
            })
            .collect();

        CycleTiming {
            min_delay_ps: min_d,
            max_delay_ps: max_d,
            outputs,
            total_output_transitions: total,
            internal_toggles,
        }
    }

    /// Indices of gates that toggled during the most recent
    /// [`simulate_pair`](Self::simulate_pair) call — i.e. the *sensitized*
    /// gates of that cycle. Pseudo-cells (inputs) are excluded.
    pub fn sensitized_gates(&self) -> Vec<usize> {
        self.nl
            .gates()
            .iter()
            .enumerate()
            .filter(|(i, g)| !g.kind().is_pseudo() && !self.waves[*i].toggles.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// The bound chip signature.
    pub fn signature(&self) -> &ChipSignature {
        self.sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::{Alu, AluFunc};
    use ntc_netlist::Builder;
    use ntc_varmodel::{Corner, VariationParams};

    #[test]
    fn settled_final_values_match_eval() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 2);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let cases = [
            (AluFunc::Add, 0u64, 0u64, AluFunc::Add, 0xFFu64, 0x01u64),
            (AluFunc::Xor, 0xAA, 0x55, AluFunc::Mult, 0x12, 0x34),
            (AluFunc::Buffer, 1, 0, AluFunc::Nor, 0xF0, 0x0F),
        ];
        for (f1, a1, b1, f2, a2, b2) in cases {
            let init = alu.encode(f1, a1, b1);
            let sens = alu.encode(f2, a2, b2);
            let timing = sim.simulate_pair(&init, &sens);
            let expect = alu.netlist().eval(&sens);
            let got: Vec<bool> = timing.outputs.iter().map(|o| o.final_value).collect();
            assert_eq!(got, expect, "{f1}->{f2}");
            // Initial values must match the settled initializing vector.
            let expect_init = alu.netlist().eval(&init);
            let got_init: Vec<bool> = timing.outputs.iter().map(|o| o.initial).collect();
            assert_eq!(got_init, expect_init);
        }
    }

    #[test]
    fn identical_vectors_produce_no_transitions() {
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(AluFunc::And, 0x3C, 0x5A);
        let timing = sim.simulate_pair(&v, &v);
        assert_eq!(timing.total_output_transitions, 0);
        assert!(timing.min_delay_ps.is_none());
        assert!(timing.max_delay_ps.is_none());
    }

    #[test]
    fn max_delay_bounded_by_static_analysis() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 9);
        let static_t = crate::sta::StaticTiming::analyze(alu.netlist(), &sig);
        let bound = static_t.critical_delay_ps(alu.netlist());
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        for (a, b) in [(0u64, 0xFFu64), (0x80, 0x7F), (0xFF, 0xFF)] {
            let init = alu.encode(AluFunc::Mult, 0, 0);
            let sens = alu.encode(AluFunc::Mult, a, b);
            let timing = sim.simulate_pair(&init, &sens);
            if let Some(d) = timing.max_delay_ps {
                assert!(d <= bound + 1e-6, "dynamic {d} vs static bound {bound}");
            }
        }
    }

    #[test]
    fn carry_ripple_takes_longer_than_single_bit() {
        // a=0xFF + 1 ripples the whole carry chain; a=0x01+1 does not.
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Add, 0, 0);
        let long = sim
            .simulate_pair(&init, &alu.encode(AluFunc::Add, 0xFF, 0x01))
            .max_delay_ps
            .expect("toggles");
        let short = sim
            .simulate_pair(&init, &alu.encode(AluFunc::Buffer, 0x01, 0x00))
            .max_delay_ps
            .expect("toggles");
        assert!(
            long > short * 1.5,
            "full-carry add {long} vs buffer {short}"
        );
    }

    #[test]
    fn transition_lists_are_sorted() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 4);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Xor, 0x00, 0x00);
        let sens = alu.encode(AluFunc::Add, 0xAB, 0x55);
        let timing = sim.simulate_pair(&init, &sens);
        for o in &timing.outputs {
            for w in o.transitions.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
            // Parity: even transition count => final == initial.
            assert_eq!(o.final_value, o.initial ^ (o.transitions.len() % 2 == 1));
        }
    }

    #[test]
    fn glitches_are_observed() {
        // A classic glitch generator: y = a AND (NOT a) with asymmetric
        // delays pulses when a rises.
        let mut b = Builder::new();
        let a = b.input("a");
        let na = b.not(a);
        let na2 = b.buf(na);
        let y = b.and(a, na2);
        b.output("y", y);
        let nl = b.finish();
        let sig = ChipSignature::nominal(&nl, Corner::STC);
        let mut sim = DynamicSim::new(&nl, &sig);
        let timing = sim.simulate_pair(&[false], &[true]);
        // Output starts 0, pulses to 1, falls back to 0: two transitions.
        assert_eq!(timing.outputs[0].transitions.len(), 2);
        assert!(!timing.outputs[0].initial);
        assert!(!timing.outputs[0].final_value);
        let rise = timing.outputs[0].transitions[0];
        let fall = timing.outputs[0].transitions[1];
        assert!(fall > rise);
    }

    #[test]
    fn pv_changes_dynamic_delays() {
        let alu = Alu::new(8);
        let nom = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let pv = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 77);
        let init = alu.encode(AluFunc::Add, 0, 0);
        let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
        let d_nom = DynamicSim::new(alu.netlist(), &nom)
            .simulate_pair(&init, &sens)
            .max_delay_ps
            .expect("toggles");
        let d_pv = DynamicSim::new(alu.netlist(), &pv)
            .simulate_pair(&init, &sens)
            .max_delay_ps
            .expect("toggles");
        assert!((d_pv - d_nom).abs() / d_nom > 0.01, "nom {d_nom} pv {d_pv}");
    }

    #[test]
    fn event_cap_preserves_parity_and_extremes() {
        let mut w = Wave {
            init: false,
            toggles: vec![],
            truncated: false,
        };
        for i in 0..40 {
            w.push_toggle(i as f64);
        }
        assert!(w.toggles.len() <= MAX_EVENTS_PER_NET);
        assert!(w.truncated);
        // 40 toggles => even => final value equals init.
        assert!(!w.final_value());
        assert_eq!(w.toggles[0], 0.0);
        assert_eq!(*w.toggles.last().expect("nonempty"), 39.0);
    }
}
