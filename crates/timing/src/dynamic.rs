//! Dynamic (two-vector) timing simulation — the in-house "statistical
//! dynamic timing analysis tool" of the paper's circuit layer.
//!
//! Timing errors depend on *sensitized* paths, which depend on two
//! consecutive input vectors: the **initializing** vector (previous cycle)
//! settles the circuit state, and the **sensitizing** vector (current
//! cycle) launches transitions through whichever paths the pair activates.
//! The simulator propagates bounded per-net transition waveforms through
//! the netlist in topological order, so it is glitch-aware: it reports not
//! just the earliest/latest output arrival but the full transition list per
//! output — precisely what Trident's transition detector monitors.
//!
//! # Event-driven evaluation
//!
//! The kernel is event-driven: primary-input toggles seed a worklist, and
//! only gates reachable from a toggled net through the netlist's
//! precomputed fanout index are ever evaluated. The worklist is a bitset
//! scanned in ascending gate order, which *is* topological order, so every
//! visited gate sees exactly the same final input waveforms — and computes
//! exactly the same candidate times, in the same order, with the same
//! sort and dedup — as the original scan over all gates. Quiet gates
//! contribute nothing in either formulation, so results are bit-identical;
//! only the cost of skipping them changes (O(gates) scan → O(words)
//! bitset sweep plus work proportional to actual switching activity).
//!
//! # Allocation discipline
//!
//! All per-net state is inline: a `Wave` holds a fixed-capacity
//! `[f64; MAX_EVENTS_PER_NET]` instead of a heap `Vec`, candidate times
//! live in a fixed stack array, and the settle/dirty buffers belong to a
//! reusable [`SimWorkspace`]. After warm-up, [`SimWorkspace`]'s
//! `simulate_pair_minmax` and `simulate_pair_into` entry points perform
//! zero heap allocations per call.

use ntc_netlist::Netlist;
use ntc_varmodel::ChipSignature;

/// Maximum transitions tracked per net within one cycle. Nets that glitch
/// more keep their first and last transitions (the ones that matter for
/// min/max violation analysis) and drop interior ones.
pub const MAX_EVENTS_PER_NET: usize = 8;

/// Upper bound on candidate evaluation times per gate: three input pins,
/// each contributing at most [`MAX_EVENTS_PER_NET`] toggles.
const MAX_CANDIDATES: usize = 3 * MAX_EVENTS_PER_NET;

/// One net's transition times during a cycle, stored inline — no heap
/// allocation per net. The net's settled initial value lives in the
/// workspace's settle buffer (keeping this struct out of the per-call
/// reset path: only waves that actually toggled are reset, via the
/// active list).
#[derive(Debug, Clone, Copy)]
struct Wave {
    /// True if interior events were dropped due to the cap.
    truncated: bool,
    /// Number of valid entries in `toggles`.
    len: u8,
    /// Times at which the net toggles; the value after event `k` is
    /// `init ^ ((k+1) & 1 == 1)`... i.e. it alternates starting from init.
    toggles: [f64; MAX_EVENTS_PER_NET],
}

impl Default for Wave {
    fn default() -> Self {
        Wave {
            truncated: false,
            len: 0,
            toggles: [0.0; MAX_EVENTS_PER_NET],
        }
    }
}

impl Wave {
    #[inline]
    fn toggles(&self) -> &[f64] {
        &self.toggles[..self.len as usize]
    }

    #[inline]
    fn final_value(&self, init: bool) -> bool {
        init ^ (self.len % 2 == 1)
    }

    #[inline]
    fn value_at(&self, init: bool, t: f64) -> bool {
        // Number of toggles at or before t.
        let k = self.toggles().partition_point(|&x| x <= t);
        init ^ (k % 2 == 1)
    }

    fn push_toggle(&mut self, t: f64) {
        let len = self.len as usize;
        if len >= MAX_EVENTS_PER_NET {
            // Keep parity and the extremes: drop the second-to-last event.
            // Removing an interior *pair* preserves the final value; we drop
            // two interior toggles (a glitch) nearest the end.
            self.toggles[len - 3] = self.toggles[len - 1];
            self.len -= 2;
            self.truncated = true;
        }
        self.toggles[self.len as usize] = t;
        self.len += 1;
    }
}

/// Transition activity of one primary output during a cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputActivity {
    /// Settled value before the sensitizing vector was applied.
    pub initial: bool,
    /// Final settled value.
    pub final_value: bool,
    /// Transition times, ps after the launch edge, in increasing order.
    pub transitions: Vec<f64>,
}

impl OutputActivity {
    /// Earliest transition time, if the output toggled at all.
    pub fn first_transition(&self) -> Option<f64> {
        self.transitions.first().copied()
    }

    /// Latest transition time, if the output toggled at all.
    pub fn last_transition(&self) -> Option<f64> {
        self.transitions.last().copied()
    }
}

/// Result of simulating one (initializing, sensitizing) vector pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleTiming {
    /// Earliest output transition across all primary outputs (`None` if no
    /// output toggled).
    pub min_delay_ps: Option<f64>,
    /// Latest output transition across all primary outputs.
    pub max_delay_ps: Option<f64>,
    /// Per-output transition activity, in output declaration order.
    pub outputs: Vec<OutputActivity>,
    /// Total output transitions (a switching-activity proxy for the energy
    /// model).
    pub total_output_transitions: usize,
    /// Total internal net toggles observed (switching-activity proxy).
    pub internal_toggles: usize,
}

/// The lean result of [`simulate_pair_minmax`](SimWorkspace::simulate_pair_minmax):
/// just the earliest/latest output arrivals, with no per-output activity.
/// This is all the Phase-A delay oracle consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinMaxDelays {
    /// Earliest output transition (`None` when no output toggled).
    pub min_ps: Option<f64>,
    /// Latest output transition.
    pub max_ps: Option<f64>,
}

/// Reusable buffers of the dynamic timing kernel: per-net waveforms, the
/// settle buffer and the event-worklist bitset.
///
/// A workspace is not bound to a netlist: every `simulate_*` call takes
/// the netlist and signature explicitly, and the buffers resize on first
/// use (or when the netlist size changes). Long-lived owners — the
/// Phase-A delay oracle simulates one pair per cache miss — keep one
/// workspace alive so steady-state simulation performs **zero heap
/// allocations**.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    waves: Vec<Wave>,
    settle: Vec<bool>,
    dirty: Vec<u64>,
    /// Nets that toggled in the most recent call — the only waves that
    /// need resetting next call, so per-call cost scales with switching
    /// activity, not netlist size.
    active: Vec<u32>,
}

impl SimWorkspace {
    /// Create an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn bind(&mut self, n: usize) {
        if self.waves.len() != n {
            self.waves.clear();
            self.waves.resize(n, Wave::default());
            self.dirty.clear();
            self.dirty.resize(n.div_ceil(64), 0);
            self.active.clear();
        }
    }

    /// Settle `initializing`, apply `sensitizing` at t = 0 and propagate
    /// transition waveforms through every gate reachable from a toggled
    /// net. Returns the total internal toggle count.
    fn propagate(
        &mut self,
        nl: &Netlist,
        sig: &ChipSignature,
        initializing: &[bool],
        sensitizing: &[bool],
    ) -> usize {
        assert_eq!(sig.delays_ps().len(), nl.len(), "signature/netlist mismatch");
        assert_eq!(sensitizing.len(), nl.inputs().len(), "sens vector width");
        self.bind(nl.len());

        // Settle the initializing vector (width-checked by eval_all_into).
        nl.eval_all_into(initializing, &mut self.settle);

        // Reset only the waves the previous call toggled; everything else
        // is already quiet.
        for &i in &self.active {
            let w = &mut self.waves[i as usize];
            w.len = 0;
            w.truncated = false;
        }
        self.active.clear();
        debug_assert!(self.waves.iter().all(|w| w.len == 0));
        debug_assert!(self.dirty.iter().all(|&w| w == 0));

        // Primary-input transitions at t = 0 seed the worklist with their
        // fanout gates.
        for (s, &new) in nl.inputs().iter().zip(sensitizing.iter()) {
            let i = s.index();
            if new != self.settle[i] {
                self.waves[i].push_toggle(0.0);
                self.active.push(i as u32);
                for &g in nl.fanout_of_index(i) {
                    self.dirty[g as usize / 64] |= 1u64 << (g % 64);
                }
            }
        }

        // Sweep the worklist in ascending gate order — topological order,
        // so a gate is visited only after every fanin waveform is final.
        // Fanout marks always land ahead of the cursor (targets have larger
        // indices), so each dirty gate is processed exactly once.
        let mut internal_toggles = 0usize;
        let mut cand = [0.0f64; MAX_CANDIDATES];
        for word in 0..self.dirty.len() {
            loop {
                let bits = self.dirty[word];
                if bits == 0 {
                    break;
                }
                let bit = bits.trailing_zeros() as usize;
                self.dirty[word] &= !(1u64 << bit);
                let i = word * 64 + bit;

                let gate = &nl.gates()[i];
                let kind = gate.kind();
                debug_assert!(!kind.is_pseudo(), "pseudo-cells have no fanins");
                let ins = gate.inputs();

                // Inputs precede gate i topologically, so splitting at i
                // separates the read-only fanin waves from this gate's
                // output wave.
                let (fanin_waves, rest) = self.waves.split_at_mut(i);
                let out_wave = &mut rest[0];

                // Gather candidate evaluation times from input toggles.
                let mut n = 0usize;
                for s in ins {
                    for &t in fanin_waves[s.index()].toggles() {
                        cand[n] = t;
                        n += 1;
                    }
                }
                if n == 0 {
                    continue;
                }
                let cand = &mut cand[..n];
                cand.sort_by(f64::total_cmp);
                // Epsilon-dedup against the last retained candidate — the
                // exact semantics of `Vec::dedup_by`.
                let mut m = 1usize;
                for k in 1..n {
                    if (cand[k] - cand[m - 1]).abs() < 1e-9 {
                        continue;
                    }
                    cand[m] = cand[k];
                    m += 1;
                }

                let delay = sig.delay_ps(i);
                let mut last_val = self.settle[i];
                // Evaluate the gate at each candidate time; emit output
                // toggles (delayed) whenever the value changes.
                let mut emitted = false;
                for &t in &cand[..m] {
                    let mut vals = [false; 3];
                    for (j, s) in ins.iter().enumerate() {
                        let si = s.index();
                        vals[j] = fanin_waves[si].value_at(self.settle[si], t);
                    }
                    let v = kind.eval(&vals[..ins.len()]);
                    if v != last_val {
                        out_wave.push_toggle(t + delay);
                        internal_toggles += 1;
                        emitted = true;
                        last_val = v;
                    }
                }
                if emitted {
                    self.active.push(i as u32);
                    for &g in nl.fanout_of_index(i) {
                        self.dirty[g as usize / 64] |= 1u64 << (g % 64);
                    }
                }
            }
        }
        internal_toggles
    }

    fn min_max(&self, nl: &Netlist) -> MinMaxDelays {
        let mut min_d: Option<f64> = None;
        let mut max_d: Option<f64> = None;
        for s in nl.outputs() {
            let w = &self.waves[s.index()];
            if let Some(&first) = w.toggles().first() {
                min_d = Some(min_d.map_or(first, |m: f64| m.min(first)));
            }
            if let Some(&last) = w.toggles().last() {
                max_d = Some(max_d.map_or(last, |m: f64| m.max(last)));
            }
        }
        MinMaxDelays {
            min_ps: min_d,
            max_ps: max_d,
        }
    }

    /// Simulate one cycle and return only the min/max output arrivals —
    /// the Phase-A oracle's entry point. Performs no heap allocation in
    /// steady state.
    ///
    /// # Panics
    ///
    /// Panics if a vector width or the signature length mismatches `nl`.
    pub fn simulate_pair_minmax(
        &mut self,
        nl: &Netlist,
        sig: &ChipSignature,
        initializing: &[bool],
        sensitizing: &[bool],
    ) -> MinMaxDelays {
        self.propagate(nl, sig, initializing, sensitizing);
        self.min_max(nl)
    }

    /// Simulate one cycle into a caller-owned [`CycleTiming`], reusing its
    /// per-output transition buffers. Performs no heap allocation in
    /// steady state (after the output vectors reach their high-water
    /// capacity).
    ///
    /// # Panics
    ///
    /// Panics if a vector width or the signature length mismatches `nl`.
    pub fn simulate_pair_into(
        &mut self,
        nl: &Netlist,
        sig: &ChipSignature,
        initializing: &[bool],
        sensitizing: &[bool],
        out: &mut CycleTiming,
    ) {
        let internal_toggles = self.propagate(nl, sig, initializing, sensitizing);

        let outs = nl.outputs();
        out.outputs.resize_with(outs.len(), OutputActivity::default);
        let mut min_d: Option<f64> = None;
        let mut max_d: Option<f64> = None;
        let mut total = 0usize;
        for (o, s) in out.outputs.iter_mut().zip(outs.iter()) {
            let i = s.index();
            let w = &self.waves[i];
            let toggles = w.toggles();
            if let Some(&first) = toggles.first() {
                min_d = Some(min_d.map_or(first, |m: f64| m.min(first)));
            }
            if let Some(&last) = toggles.last() {
                max_d = Some(max_d.map_or(last, |m: f64| m.max(last)));
            }
            total += toggles.len();
            o.initial = self.settle[i];
            o.final_value = w.final_value(self.settle[i]);
            o.transitions.clear();
            o.transitions.extend_from_slice(toggles);
        }
        out.min_delay_ps = min_d;
        out.max_delay_ps = max_d;
        out.total_output_transitions = total;
        out.internal_toggles = internal_toggles;
    }
}

/// Reusable dynamic timing simulator bound to one netlist + chip signature.
///
/// # Examples
///
/// ```
/// use ntc_netlist::generators::alu::{Alu, AluFunc};
/// use ntc_timing::DynamicSim;
/// use ntc_varmodel::{ChipSignature, Corner};
///
/// let alu = Alu::new(8);
/// let chip = ChipSignature::nominal(alu.netlist(), Corner::NTC);
/// let mut sim = DynamicSim::new(alu.netlist(), &chip);
/// let init = alu.encode(AluFunc::Add, 0, 0);
/// let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
/// let timing = sim.simulate_pair(&init, &sens);
/// assert!(timing.max_delay_ps.expect("carry chain toggles") > 0.0);
/// ```
#[derive(Debug)]
pub struct DynamicSim<'a> {
    nl: &'a Netlist,
    sig: &'a ChipSignature,
    ws: SimWorkspace,
}

impl<'a> DynamicSim<'a> {
    /// Bind a simulator to a netlist and a fabricated chip's signature.
    ///
    /// # Panics
    ///
    /// Panics if the signature length does not match the netlist.
    pub fn new(nl: &'a Netlist, sig: &'a ChipSignature) -> Self {
        assert_eq!(sig.delays_ps().len(), nl.len(), "signature/netlist mismatch");
        let mut ws = SimWorkspace::new();
        ws.bind(nl.len());
        DynamicSim { nl, sig, ws }
    }

    /// Simulate one cycle: the circuit is settled at `initializing`, then
    /// `sensitizing` is applied at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if either vector's width differs from the primary-input count.
    pub fn simulate_pair(&mut self, initializing: &[bool], sensitizing: &[bool]) -> CycleTiming {
        let mut out = CycleTiming::default();
        self.ws
            .simulate_pair_into(self.nl, self.sig, initializing, sensitizing, &mut out);
        out
    }

    /// [`simulate_pair`](Self::simulate_pair) into a caller-owned result,
    /// reusing its buffers — allocation-free in steady state.
    ///
    /// # Panics
    ///
    /// Panics if either vector's width differs from the primary-input count.
    pub fn simulate_pair_into(
        &mut self,
        initializing: &[bool],
        sensitizing: &[bool],
        out: &mut CycleTiming,
    ) {
        self.ws
            .simulate_pair_into(self.nl, self.sig, initializing, sensitizing, out);
    }

    /// Simulate one cycle and return only the min/max output arrivals —
    /// skips building the per-output activity entirely. Allocation-free in
    /// steady state.
    ///
    /// # Panics
    ///
    /// Panics if either vector's width differs from the primary-input count.
    pub fn simulate_pair_minmax(
        &mut self,
        initializing: &[bool],
        sensitizing: &[bool],
    ) -> MinMaxDelays {
        self.ws
            .simulate_pair_minmax(self.nl, self.sig, initializing, sensitizing)
    }

    /// Indices of gates that toggled during the most recent
    /// [`simulate_pair`](Self::simulate_pair) call — i.e. the *sensitized*
    /// gates of that cycle. Pseudo-cells (inputs) are excluded.
    pub fn sensitized_gates(&self) -> Vec<usize> {
        self.nl
            .gates()
            .iter()
            .enumerate()
            .filter(|(i, g)| !g.kind().is_pseudo() && self.ws.waves[*i].len > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// The bound netlist.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// The bound chip signature.
    pub fn signature(&self) -> &ChipSignature {
        self.sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::{Alu, AluFunc};
    use ntc_netlist::Builder;
    use ntc_varmodel::{Corner, VariationParams};

    #[test]
    fn settled_final_values_match_eval() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 2);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let cases = [
            (AluFunc::Add, 0u64, 0u64, AluFunc::Add, 0xFFu64, 0x01u64),
            (AluFunc::Xor, 0xAA, 0x55, AluFunc::Mult, 0x12, 0x34),
            (AluFunc::Buffer, 1, 0, AluFunc::Nor, 0xF0, 0x0F),
        ];
        for (f1, a1, b1, f2, a2, b2) in cases {
            let init = alu.encode(f1, a1, b1);
            let sens = alu.encode(f2, a2, b2);
            let timing = sim.simulate_pair(&init, &sens);
            let expect = alu.netlist().eval(&sens);
            let got: Vec<bool> = timing.outputs.iter().map(|o| o.final_value).collect();
            assert_eq!(got, expect, "{f1}->{f2}");
            // Initial values must match the settled initializing vector.
            let expect_init = alu.netlist().eval(&init);
            let got_init: Vec<bool> = timing.outputs.iter().map(|o| o.initial).collect();
            assert_eq!(got_init, expect_init);
        }
    }

    #[test]
    fn identical_vectors_produce_no_transitions() {
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(AluFunc::And, 0x3C, 0x5A);
        let timing = sim.simulate_pair(&v, &v);
        assert_eq!(timing.total_output_transitions, 0);
        assert!(timing.min_delay_ps.is_none());
        assert!(timing.max_delay_ps.is_none());
    }

    #[test]
    fn max_delay_bounded_by_static_analysis() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 9);
        let static_t = crate::sta::StaticTiming::analyze(alu.netlist(), &sig);
        let bound = static_t.critical_delay_ps(alu.netlist());
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        for (a, b) in [(0u64, 0xFFu64), (0x80, 0x7F), (0xFF, 0xFF)] {
            let init = alu.encode(AluFunc::Mult, 0, 0);
            let sens = alu.encode(AluFunc::Mult, a, b);
            let timing = sim.simulate_pair(&init, &sens);
            if let Some(d) = timing.max_delay_ps {
                assert!(d <= bound + 1e-6, "dynamic {d} vs static bound {bound}");
            }
        }
    }

    #[test]
    fn carry_ripple_takes_longer_than_single_bit() {
        // a=0xFF + 1 ripples the whole carry chain; a=0x01+1 does not.
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Add, 0, 0);
        let long = sim
            .simulate_pair(&init, &alu.encode(AluFunc::Add, 0xFF, 0x01))
            .max_delay_ps
            .expect("toggles");
        let short = sim
            .simulate_pair(&init, &alu.encode(AluFunc::Buffer, 0x01, 0x00))
            .max_delay_ps
            .expect("toggles");
        assert!(
            long > short * 1.5,
            "full-carry add {long} vs buffer {short}"
        );
    }

    #[test]
    fn transition_lists_are_sorted() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 4);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Xor, 0x00, 0x00);
        let sens = alu.encode(AluFunc::Add, 0xAB, 0x55);
        let timing = sim.simulate_pair(&init, &sens);
        for o in &timing.outputs {
            for w in o.transitions.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
            // Parity: even transition count => final == initial.
            assert_eq!(o.final_value, o.initial ^ (o.transitions.len() % 2 == 1));
        }
    }

    #[test]
    fn glitches_are_observed() {
        // A classic glitch generator: y = a AND (NOT a) with asymmetric
        // delays pulses when a rises.
        let mut b = Builder::new();
        let a = b.input("a");
        let na = b.not(a);
        let na2 = b.buf(na);
        let y = b.and(a, na2);
        b.output("y", y);
        let nl = b.finish();
        let sig = ChipSignature::nominal(&nl, Corner::STC);
        let mut sim = DynamicSim::new(&nl, &sig);
        let timing = sim.simulate_pair(&[false], &[true]);
        // Output starts 0, pulses to 1, falls back to 0: two transitions.
        assert_eq!(timing.outputs[0].transitions.len(), 2);
        assert!(!timing.outputs[0].initial);
        assert!(!timing.outputs[0].final_value);
        let rise = timing.outputs[0].transitions[0];
        let fall = timing.outputs[0].transitions[1];
        assert!(fall > rise);
    }

    #[test]
    fn pv_changes_dynamic_delays() {
        let alu = Alu::new(8);
        let nom = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let pv = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 77);
        let init = alu.encode(AluFunc::Add, 0, 0);
        let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
        let d_nom = DynamicSim::new(alu.netlist(), &nom)
            .simulate_pair(&init, &sens)
            .max_delay_ps
            .expect("toggles");
        let d_pv = DynamicSim::new(alu.netlist(), &pv)
            .simulate_pair(&init, &sens)
            .max_delay_ps
            .expect("toggles");
        assert!((d_pv - d_nom).abs() / d_nom > 0.01, "nom {d_nom} pv {d_pv}");
    }

    #[test]
    fn event_cap_preserves_parity_and_extremes() {
        let mut w = Wave::default();
        for i in 0..40 {
            w.push_toggle(i as f64);
        }
        assert!(w.toggles().len() <= MAX_EVENTS_PER_NET);
        assert!(w.truncated);
        // 40 toggles => even => final value equals init.
        assert!(!w.final_value(false));
        assert!(w.final_value(true));
        assert_eq!(w.toggles()[0], 0.0);
        assert_eq!(*w.toggles().last().expect("nonempty"), 39.0);
    }

    #[test]
    fn minmax_matches_full_simulation() {
        let alu = Alu::new(16);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 3);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let cases = [
            (AluFunc::Add, 0u64, 0u64, AluFunc::Add, 0xFFFF, 1u64),
            (AluFunc::Buffer, 1, 0, AluFunc::Buffer, 3, 0),
            (AluFunc::Mult, 0, 0, AluFunc::Mult, 0xBEEF, 0x1357),
            (AluFunc::And, 5, 5, AluFunc::And, 5, 5),
        ];
        for (f1, a1, b1, f2, a2, b2) in cases {
            let init = alu.encode(f1, a1, b1);
            let sens = alu.encode(f2, a2, b2);
            let full = sim.simulate_pair(&init, &sens);
            let lean = sim.simulate_pair_minmax(&init, &sens);
            assert_eq!(lean.min_ps.map(f64::to_bits), full.min_delay_ps.map(f64::to_bits));
            assert_eq!(lean.max_ps.map(f64::to_bits), full.max_delay_ps.map(f64::to_bits));
        }
    }

    #[test]
    fn simulate_pair_into_reuses_buffers() {
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let init = alu.encode(AluFunc::Add, 0, 0);
        let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
        let fresh = sim.simulate_pair(&init, &sens);
        // A dirty, differently-shaped output struct must be fully reset.
        let mut out = CycleTiming {
            min_delay_ps: Some(-1.0),
            max_delay_ps: Some(-1.0),
            outputs: vec![
                OutputActivity {
                    initial: true,
                    final_value: true,
                    transitions: vec![1.0, 2.0, 3.0],
                };
                99
            ],
            total_output_transitions: 77,
            internal_toggles: 77,
        };
        sim.simulate_pair_into(&init, &sens, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn workspace_rebinds_across_netlists() {
        // One workspace driving two different netlists must resize cleanly
        // and reproduce the per-netlist results.
        let small = Alu::new(4);
        let large = Alu::new(12);
        let sig_s = ChipSignature::nominal(small.netlist(), Corner::NTC);
        let sig_l = ChipSignature::nominal(large.netlist(), Corner::NTC);
        let mut ws = SimWorkspace::new();
        let expect_l = DynamicSim::new(large.netlist(), &sig_l)
            .simulate_pair(
                &large.encode(AluFunc::Add, 0, 0),
                &large.encode(AluFunc::Add, 0xFFF, 1),
            )
            .max_delay_ps;
        let _ = ws.simulate_pair_minmax(
            small.netlist(),
            &sig_s,
            &small.encode(AluFunc::Add, 0, 0),
            &small.encode(AluFunc::Add, 0xF, 1),
        );
        let got_l = ws.simulate_pair_minmax(
            large.netlist(),
            &sig_l,
            &large.encode(AluFunc::Add, 0, 0),
            &large.encode(AluFunc::Add, 0xFFF, 1),
        );
        assert_eq!(got_l.max_ps.map(f64::to_bits), expect_l.map(f64::to_bits));
    }
}
