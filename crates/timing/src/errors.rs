//! Timing-violation classification against a clock specification.
//!
//! A cycle's output activity (from [`DynamicSim`](crate::DynamicSim)) is
//! checked against two constraints:
//!
//! * the **setup/maximum** constraint — no output transition may occur
//!   after the clock period `T`;
//! * the **hold/minimum** constraint — no output transition may occur
//!   before the minimum-path-delay bound `T_min` (the window in which the
//!   capturing flop / Razor shadow latch still holds the *previous* value).
//!
//! Trident further classifies errors by the number of illegal transitions
//! in one detection-clock cycle: a Single Error (one illegal transition,
//! min- or max-induced) or a Consecutive Error (a max violation immediately
//! followed by a min violation of the next instruction).

use crate::dynamic::CycleTiming;
use std::fmt;

/// Clock specification for a pipestage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSpec {
    /// Clock period, ps.
    pub period_ps: f64,
    /// Minimum path-delay constraint (hold window), ps.
    pub hold_ps: f64,
}

impl ClockSpec {
    /// A clock derived from a nominal critical delay with a guardband
    /// margin and a hold window expressed as a fraction of the period.
    ///
    /// # Panics
    ///
    /// Panics if the resulting hold window is not below the period.
    pub fn from_critical_delay(nominal_critical_ps: f64, guardband: f64, hold_frac: f64) -> Self {
        let period = nominal_critical_ps * (1.0 + guardband);
        let hold = period * hold_frac;
        assert!(hold < period, "hold window must be below the clock period");
        ClockSpec {
            period_ps: period,
            hold_ps: hold,
        }
    }

    /// Stretch the period by `factor` (used by guardbanding schemes like
    /// HFG and by OCST's skew tuning).
    pub fn stretched(&self, factor: f64) -> ClockSpec {
        ClockSpec {
            period_ps: self.period_ps * factor,
            hold_ps: self.hold_ps,
        }
    }
}

/// Which constraints one cycle violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleViolation {
    /// An output transitioned before the hold window closed.
    pub min: bool,
    /// An output transitioned after the clock period.
    pub max: bool,
}

impl CycleViolation {
    /// Whether any constraint was violated.
    #[inline]
    pub fn any(&self) -> bool {
        self.min || self.max
    }
}

/// Error class as detected by Trident's transition detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Single error caused by a minimum-timing violation.
    SingleMin,
    /// Single error caused by a maximum-timing violation.
    SingleMax,
    /// Consecutive error: a maximum violation immediately followed by a
    /// minimum violation within one detection window (two illegal
    /// transitions).
    Consecutive,
}

impl ErrorClass {
    /// Number of error classes (the size of per-class count arrays).
    pub const COUNT: usize = 3;

    /// Every class, ordered by [`ErrorClass::index`].
    pub const ALL: [ErrorClass; ErrorClass::COUNT] = [
        ErrorClass::SingleMin,
        ErrorClass::SingleMax,
        ErrorClass::Consecutive,
    ];

    /// Dense index of this class into a `[T; ErrorClass::COUNT]` array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of stall cycles Trident's avoidance mechanism inserts for
    /// this class (one illegal transition → one stall, two → two).
    #[inline]
    pub fn stall_cycles(self) -> u64 {
        match self {
            ErrorClass::SingleMin | ErrorClass::SingleMax => 1,
            ErrorClass::Consecutive => 2,
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorClass::SingleMin => "SE(Min)",
            ErrorClass::SingleMax => "SE(Max)",
            ErrorClass::Consecutive => "CE",
        })
    }
}

/// Classify one simulated cycle against a clock specification.
pub fn classify_cycle(timing: &CycleTiming, clock: &ClockSpec) -> CycleViolation {
    let min = timing
        .min_delay_ps
        .is_some_and(|d| d < clock.hold_ps);
    let max = timing
        .max_delay_ps
        .is_some_and(|d| d > clock.period_ps);
    CycleViolation { min, max }
}

/// Classify a *pair* of consecutive cycle violations into Trident's error
/// classes:
///
/// * this cycle max + next cycle min → [`ErrorClass::Consecutive`] (the
///   late transition and the next instruction's early transition land in
///   one detection window);
/// * otherwise a lone violation maps to the corresponding single error.
///
/// Returns the class chargeable to *this* cycle (a `Consecutive` consumes
/// the next cycle's min violation; the caller must not double-count it).
pub fn classify_stream(current: CycleViolation, next_min: bool) -> Option<ErrorClass> {
    match (current.max, current.min) {
        (true, _) if next_min => Some(ErrorClass::Consecutive),
        (true, _) => Some(ErrorClass::SingleMax),
        (false, true) => Some(ErrorClass::SingleMin),
        (false, false) => None,
    }
}

/// Count illegal transitions the Trident TDC would see for one cycle: the
/// per-output transitions landing inside the transparent detection phase
/// (before `hold_ps` or after `period_ps`).
pub fn illegal_transition_count(timing: &CycleTiming, clock: &ClockSpec) -> usize {
    timing
        .outputs
        .iter()
        .flat_map(|o| o.transitions.iter())
        .filter(|&&t| t < clock.hold_ps || t > clock.period_ps)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{CycleTiming, OutputActivity};

    fn timing_with(min: Option<f64>, max: Option<f64>, transitions: Vec<f64>) -> CycleTiming {
        CycleTiming {
            min_delay_ps: min,
            max_delay_ps: max,
            outputs: vec![OutputActivity {
                initial: false,
                final_value: transitions.len() % 2 == 1,
                transitions,
            }],
            total_output_transitions: 1,
            internal_toggles: 1,
        }
    }

    fn clock() -> ClockSpec {
        ClockSpec {
            period_ps: 100.0,
            hold_ps: 15.0,
        }
    }

    #[test]
    fn classify_min_max_none() {
        let c = clock();
        let v = classify_cycle(&timing_with(Some(10.0), Some(90.0), vec![10.0, 90.0]), &c);
        assert!(v.min && !v.max && v.any());
        let v = classify_cycle(&timing_with(Some(20.0), Some(120.0), vec![20.0, 120.0]), &c);
        assert!(!v.min && v.max);
        let v = classify_cycle(&timing_with(Some(20.0), Some(90.0), vec![20.0, 90.0]), &c);
        assert!(!v.any());
        // Quiet cycle: no transitions, no violations.
        let v = classify_cycle(&timing_with(None, None, vec![]), &c);
        assert!(!v.any());
    }

    #[test]
    fn stream_classification() {
        use ErrorClass::*;
        let max_v = CycleViolation { min: false, max: true };
        let min_v = CycleViolation { min: true, max: false };
        let none = CycleViolation::default();
        assert_eq!(classify_stream(max_v, true), Some(Consecutive));
        assert_eq!(classify_stream(max_v, false), Some(SingleMax));
        assert_eq!(classify_stream(min_v, false), Some(SingleMin));
        assert_eq!(classify_stream(min_v, true), Some(SingleMin));
        assert_eq!(classify_stream(none, true), None);
    }

    #[test]
    fn stall_budget_per_class() {
        assert_eq!(ErrorClass::SingleMin.stall_cycles(), 1);
        assert_eq!(ErrorClass::SingleMax.stall_cycles(), 1);
        assert_eq!(ErrorClass::Consecutive.stall_cycles(), 2);
    }

    #[test]
    fn illegal_transitions_counted_in_window() {
        let c = clock();
        let t = timing_with(Some(5.0), Some(130.0), vec![5.0, 50.0, 130.0]);
        // 5.0 (early) and 130.0 (late) are illegal; 50.0 is legal.
        assert_eq!(illegal_transition_count(&t, &c), 2);
    }

    #[test]
    fn clock_from_critical_delay() {
        let c = ClockSpec::from_critical_delay(200.0, 0.1, 0.15);
        assert!((c.period_ps - 220.0).abs() < 1e-9);
        assert!((c.hold_ps - 33.0).abs() < 1e-9);
        let s = c.stretched(1.5);
        assert!((s.period_ps - 330.0).abs() < 1e-9);
        assert!((s.hold_ps - c.hold_ps).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hold window")]
    fn hold_must_be_below_period() {
        let _ = ClockSpec::from_critical_delay(100.0, 0.0, 1.5);
    }
}
