//! Reference implementation of the dynamic timing kernel, kept only for
//! tests: the straightforward all-gates scan with `Vec`-based waveforms
//! that `dynamic.rs` used before the event-driven rewrite.
//!
//! The equivalence suite below pins the optimized kernel against this one
//! over randomized netlists and vector pairs, asserting **bit-for-bit**
//! identical transition lists. Any divergence — a reordered candidate
//! sort, a different dedup window, a missed fanout edge — fails here long
//! before it would corrupt a golden CSV.

use ntc_netlist::{CellKind, Netlist};
use ntc_varmodel::ChipSignature;

use crate::dynamic::{CycleTiming, OutputActivity, MAX_EVENTS_PER_NET};

#[derive(Debug, Clone, Default)]
struct RefWave {
    init: bool,
    toggles: Vec<f64>,
}

impl RefWave {
    fn final_value(&self) -> bool {
        self.init ^ (self.toggles.len() % 2 == 1)
    }

    fn value_at(&self, t: f64) -> bool {
        let k = self.toggles.partition_point(|&x| x <= t);
        self.init ^ (k % 2 == 1)
    }

    fn push_toggle(&mut self, t: f64) {
        if self.toggles.len() >= MAX_EVENTS_PER_NET {
            let len = self.toggles.len();
            self.toggles.drain(len - 3..len - 1);
        }
        self.toggles.push(t);
    }
}

/// The pre-rewrite kernel, verbatim (up to the NaN-safe candidate sort):
/// settle, then scan *every* gate in topological order, gathering
/// candidate times into a scratch `Vec`, sorting with `total_cmp` and
/// emitting through a temporary `Vec`.
#[allow(clippy::needless_range_loop)] // kept verbatim as the reference
pub(crate) fn simulate_pair_reference(
    nl: &Netlist,
    sig: &ChipSignature,
    initializing: &[bool],
    sensitizing: &[bool],
) -> CycleTiming {
    assert_eq!(initializing.len(), nl.inputs().len(), "init vector width");
    assert_eq!(sensitizing.len(), nl.inputs().len(), "sens vector width");

    let settled = nl.eval_all(initializing);
    let mut waves: Vec<RefWave> = settled
        .iter()
        .map(|&v| RefWave {
            init: v,
            toggles: Vec::new(),
        })
        .collect();

    let mut pi_iter = sensitizing.iter();
    let mut internal_toggles = 0usize;
    let mut scratch_times: Vec<f64> = Vec::new();
    for (i, gate) in nl.gates().iter().enumerate() {
        match gate.kind() {
            CellKind::Input => {
                let new = *pi_iter.next().expect("width checked");
                if new != waves[i].init {
                    waves[i].toggles.push(0.0);
                }
            }
            CellKind::Const0 | CellKind::Const1 => {}
            kind => {
                scratch_times.clear();
                for s in gate.inputs() {
                    scratch_times.extend_from_slice(&waves[s.index()].toggles);
                }
                if scratch_times.is_empty() {
                    continue;
                }
                // `total_cmp`, not `partial_cmp().expect(...)`: a NaN delay
                // (e.g. injected by a corrupted signature) must not panic
                // the kernel. Identical ordering on finite values, so the
                // equivalence suite's bit-identity contract is unchanged.
                scratch_times.sort_by(f64::total_cmp);
                scratch_times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

                let delay = sig.delay_ps(i);
                let ins = gate.inputs();
                let mut last_val = waves[i].init;
                let mut emitted: Vec<f64> = Vec::new();
                for k in 0..scratch_times.len() {
                    let t = scratch_times[k];
                    let mut vals = [false; 3];
                    for (j, s) in ins.iter().enumerate() {
                        vals[j] = waves[s.index()].value_at(t);
                    }
                    let v = kind.eval(&vals[..ins.len()]);
                    if v != last_val {
                        emitted.push(t + delay);
                        last_val = v;
                    }
                }
                internal_toggles += emitted.len();
                for t in emitted {
                    waves[i].push_toggle(t);
                }
            }
        }
    }

    let mut min_d: Option<f64> = None;
    let mut max_d: Option<f64> = None;
    let mut total = 0usize;
    let outputs: Vec<OutputActivity> = nl
        .outputs()
        .iter()
        .map(|s| {
            let w = &waves[s.index()];
            if let Some(&first) = w.toggles.first() {
                min_d = Some(min_d.map_or(first, |m: f64| m.min(first)));
            }
            if let Some(&last) = w.toggles.last() {
                max_d = Some(max_d.map_or(last, |m: f64| m.max(last)));
            }
            total += w.toggles.len();
            OutputActivity {
                initial: w.init,
                final_value: w.final_value(),
                transitions: w.toggles.clone(),
            }
        })
        .collect();

    CycleTiming {
        min_delay_ps: min_d,
        max_delay_ps: max_d,
        outputs,
        total_output_transitions: total,
        internal_toggles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicSim;
    use ntc_netlist::generators::alu::{Alu, AluFunc};
    use ntc_netlist::{Builder, Signal};
    use ntc_varmodel::{Corner, SplitMix64, VariationParams};

    /// Bit-for-bit comparison: every f64 compared by `to_bits`, so a
    /// result that differs only in the last ulp still fails.
    fn assert_bit_identical(got: &CycleTiming, want: &CycleTiming, ctx: &str) {
        assert_eq!(
            got.min_delay_ps.map(f64::to_bits),
            want.min_delay_ps.map(f64::to_bits),
            "{ctx}: min_delay_ps"
        );
        assert_eq!(
            got.max_delay_ps.map(f64::to_bits),
            want.max_delay_ps.map(f64::to_bits),
            "{ctx}: max_delay_ps"
        );
        assert_eq!(
            got.total_output_transitions, want.total_output_transitions,
            "{ctx}: total_output_transitions"
        );
        assert_eq!(got.internal_toggles, want.internal_toggles, "{ctx}: internal_toggles");
        assert_eq!(got.outputs.len(), want.outputs.len(), "{ctx}: output count");
        for (k, (g, w)) in got.outputs.iter().zip(want.outputs.iter()).enumerate() {
            assert_eq!(g.initial, w.initial, "{ctx}: output {k} initial");
            assert_eq!(g.final_value, w.final_value, "{ctx}: output {k} final");
            let gb: Vec<u64> = g.transitions.iter().map(|t| t.to_bits()).collect();
            let wb: Vec<u64> = w.transitions.iter().map(|t| t.to_bits()).collect();
            assert_eq!(gb, wb, "{ctx}: output {k} transition list");
        }
    }

    fn pick(rng: &mut SplitMix64, sigs: &[Signal]) -> Signal {
        sigs[rng.gen_index(sigs.len())]
    }

    /// Random DAG over the full standard-cell library: any gate may sample
    /// any earlier signal (including constants and repeated pins), and
    /// outputs tap arbitrary internal nets.
    fn random_netlist(seed: u64) -> Netlist {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut b = Builder::new();
        let n_in = rng.gen_range_inclusive(3, 10);
        let mut sigs: Vec<Signal> = (0..n_in).map(|i| b.input(&format!("i{i}"))).collect();
        if rng.gen_bool() {
            sigs.push(b.const0());
        }
        if rng.gen_bool() {
            sigs.push(b.const1());
        }
        const KINDS: [CellKind; 10] = [
            CellKind::Inv,
            CellKind::Buf,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Maj3,
        ];
        let n_gates = rng.gen_range_inclusive(40, 200);
        for _ in 0..n_gates {
            let kind = KINDS[rng.gen_index(KINDS.len())];
            let s = match kind.arity() {
                1 => {
                    let a = pick(&mut rng, &sigs);
                    b.gate1(kind, a)
                }
                2 => {
                    let a = pick(&mut rng, &sigs);
                    let x = pick(&mut rng, &sigs);
                    b.gate2(kind, a, x)
                }
                _ => {
                    let a = pick(&mut rng, &sigs);
                    let x = pick(&mut rng, &sigs);
                    let y = pick(&mut rng, &sigs);
                    b.gate3(kind, a, x, y)
                }
            };
            sigs.push(s);
        }
        b.output("o_last", *sigs.last().expect("nonempty"));
        let n_out = rng.gen_range_inclusive(1, 6);
        for k in 0..n_out {
            let s = pick(&mut rng, &sigs);
            b.output(&format!("o{k}"), s);
        }
        b.finish()
    }

    fn random_vector(rng: &mut SplitMix64, width: usize) -> Vec<bool> {
        (0..width).map(|_| rng.gen_bool()).collect()
    }

    #[test]
    fn randomized_netlists_match_reference_bit_for_bit() {
        for seed in 0..12u64 {
            let nl = random_netlist(seed);
            let sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), seed);
            let mut sim = DynamicSim::new(&nl, &sig);
            let mut rng = SplitMix64::seed_from_u64(seed ^ 0xD1CE);
            let width = nl.inputs().len();
            for pair in 0..10 {
                let init = random_vector(&mut rng, width);
                let sens = random_vector(&mut rng, width);
                let want = simulate_pair_reference(&nl, &sig, &init, &sens);
                let got = sim.simulate_pair(&init, &sens);
                assert_bit_identical(&got, &want, &format!("netlist {seed}, pair {pair}"));
                // The lean path must agree with the full path exactly.
                let lean = sim.simulate_pair_minmax(&init, &sens);
                assert_eq!(
                    lean.min_ps.map(f64::to_bits),
                    want.min_delay_ps.map(f64::to_bits),
                    "netlist {seed}, pair {pair}: lean min"
                );
                assert_eq!(
                    lean.max_ps.map(f64::to_bits),
                    want.max_delay_ps.map(f64::to_bits),
                    "netlist {seed}, pair {pair}: lean max"
                );
            }
            // Quiet pair: identical vectors must produce zero activity in
            // both kernels.
            let v = random_vector(&mut rng, width);
            let want = simulate_pair_reference(&nl, &sig, &v, &v);
            let got = sim.simulate_pair(&v, &v);
            assert_bit_identical(&got, &want, &format!("netlist {seed}, quiet pair"));
            assert_eq!(want.total_output_transitions, 0);
        }
    }

    #[test]
    fn alu_matches_reference_bit_for_bit() {
        let alu = Alu::new(16);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 99);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        let cases = [
            (AluFunc::Add, 0u64, 0u64, AluFunc::Add, 0xFFFF, 1u64),
            (AluFunc::Buffer, 1, 0, AluFunc::Buffer, 3, 0),
            (AluFunc::Mult, 0, 0, AluFunc::Mult, 0xBEEF, 0x1357),
            (AluFunc::Xor, 0xAAAA, 0x5555, AluFunc::Nor, 0x0F0F, 0xF0F0),
            (AluFunc::And, 0x1234, 0x4321, AluFunc::Or, 0x8765, 0x5678),
        ];
        for (f1, a1, b1, f2, a2, b2) in cases {
            let init = alu.encode(f1, a1, b1);
            let sens = alu.encode(f2, a2, b2);
            let want = simulate_pair_reference(alu.netlist(), &sig, &init, &sens);
            let got = sim.simulate_pair(&init, &sens);
            assert_bit_identical(&got, &want, &format!("{f1}->{f2}"));
        }
    }

    #[test]
    fn glitch_heavy_netlist_exercises_event_cap() {
        // Deep xor/buffer reconvergence generates glitch trains that hit
        // the MAX_EVENTS_PER_NET cap; the truncation policy must agree
        // bit-for-bit too.
        let mut b = Builder::new();
        let ins: Vec<Signal> = (0..6).map(|i| b.input(&format!("i{i}"))).collect();
        let mut layer = ins.clone();
        for _ in 0..10 {
            let mut next = Vec::with_capacity(layer.len());
            for w in layer.windows(2) {
                next.push(b.xor(w[0], w[1]));
            }
            next.push(b.buf(*layer.last().expect("nonempty")));
            layer = next;
        }
        for (k, s) in layer.iter().enumerate() {
            b.output(&format!("o{k}"), *s);
        }
        let nl = b.finish();
        let sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 5);
        let mut sim = DynamicSim::new(&nl, &sig);
        let mut rng = SplitMix64::seed_from_u64(0xCAFE);
        let mut saw_cap = false;
        for pair in 0..20 {
            let init = random_vector(&mut rng, 6);
            let sens = random_vector(&mut rng, 6);
            let want = simulate_pair_reference(&nl, &sig, &init, &sens);
            let got = sim.simulate_pair(&init, &sens);
            assert_bit_identical(&got, &want, &format!("glitch pair {pair}"));
            saw_cap |= want
                .outputs
                .iter()
                .any(|o| o.transitions.len() == MAX_EVENTS_PER_NET);
        }
        assert!(saw_cap, "test netlist never filled a wave to the cap");
    }

    #[test]
    fn nan_delay_does_not_panic_the_reference_kernel() {
        // A corrupted signature (NaN gate delay) must degrade to NaN
        // delays, never panic the candidate sort — the daemon-facing
        // hardening contract of the `total_cmp` audit.
        let nl = random_netlist(3);
        let mut sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 3);
        let poisoned: Vec<usize> = nl
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.kind().is_pseudo())
            .map(|(i, _)| i)
            .collect();
        sig.inject_choke(&poisoned, f64::NAN);
        let mut rng = SplitMix64::seed_from_u64(0x4A4E);
        let width = nl.inputs().len();
        let init = random_vector(&mut rng, width);
        let sens = random_vector(&mut rng, width);
        let t = simulate_pair_reference(&nl, &sig, &init, &sens);
        // Any emitted transition went through a NaN delay sum.
        for o in &t.outputs {
            assert!(o.transitions.iter().all(|t| t.is_nan()));
        }
        // The event-driven kernel survives the same poisoned chip.
        let mut sim = DynamicSim::new(&nl, &sig);
        let _ = sim.simulate_pair_minmax(&init, &sens);
    }

    #[test]
    fn sensitized_gates_match_reference_activity() {
        let nl = random_netlist(7);
        let sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 7);
        let mut sim = DynamicSim::new(&nl, &sig);
        let mut rng = SplitMix64::seed_from_u64(0xBEEF);
        let width = nl.inputs().len();
        let init = random_vector(&mut rng, width);
        let sens = random_vector(&mut rng, width);
        let got = sim.simulate_pair(&init, &sens);
        let full = simulate_pair_reference(&nl, &sig, &init, &sens);
        assert_bit_identical(&got, &full, "sensitized-gates pair");
        // Sensitized gates are exactly the non-pseudo gates whose nets
        // toggled; the total toggle count across them equals the kernel's
        // internal_toggles only when no wave hit the cap, so check the
        // weaker invariants that always hold.
        let sens_gates = sim.sensitized_gates();
        for &g in &sens_gates {
            assert!(!nl.gates()[g].kind().is_pseudo());
        }
        if full.total_output_transitions > 0 {
            assert!(!sens_gates.is_empty());
        }
        assert!(sens_gates.len() <= full.internal_toggles);
    }
}
