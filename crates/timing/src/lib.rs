//! # ntc-timing
//!
//! Timing analysis for the `ntc-choke` cross-layer simulator: the in-house
//! "statistical dynamic timing analysis tool" the paper's circuit layer is
//! built around.
//!
//! * [`sta`] — static min/max arrival analysis and critical-path extraction
//!   under a per-chip delay signature;
//! * [`incr`] — retained incremental re-timing: delta-propagation of
//!   arrival state and screen bounds across chips / operating points,
//!   bit-identical to from-scratch analysis;
//! * [`dynamic`] — glitch-aware two-vector (initializing + sensitizing)
//!   timing simulation producing per-output transition waveforms;
//! * [`screen`] — conservative per-cycle screening (toggled-input cone
//!   bounds) that skips the exact kernel on provably-safe cycles;
//! * [`choke`] — CDL / CGL choke-point metrics over sensitized cycles;
//! * [`errors`] — classification of cycles into minimum / maximum timing
//!   violations and Trident's SE / CE error classes.
//!
//! # Examples
//!
//! Detect a maximum-timing violation on a PV-affected NTC chip:
//!
//! ```
//! use ntc_netlist::generators::alu::{Alu, AluFunc};
//! use ntc_timing::{classify_cycle, ClockSpec, DynamicSim, StaticTiming};
//! use ntc_varmodel::{ChipSignature, Corner, VariationParams};
//!
//! let alu = Alu::new(8);
//! let nominal = ChipSignature::nominal(alu.netlist(), Corner::NTC);
//! let critical = StaticTiming::analyze(alu.netlist(), &nominal).critical_delay_ps(alu.netlist());
//! let clock = ClockSpec::from_critical_delay(critical, 0.05, 0.12);
//!
//! let chip = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 42);
//! let mut sim = DynamicSim::new(alu.netlist(), &chip);
//! let timing = sim.simulate_pair(
//!     &alu.encode(AluFunc::Mult, 0, 0),
//!     &alu.encode(AluFunc::Mult, 0xFF, 0xFF),
//! );
//! let violation = classify_cycle(&timing, &clock);
//! // Whether this chip errs depends on the fabrication lottery; both
//! // outcomes are legal here.
//! let _ = violation.any();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod choke;
pub mod dynamic;
pub mod errors;
pub mod incr;
pub mod paths;
#[cfg(test)]
mod reference;
pub mod screen;
pub mod sta;

pub use choke::{identify_choke_event, CdlCategory, CdlCglProfile, ChokeEvent, ALL_CDL_CATEGORIES};
pub use dynamic::{
    CycleTiming, DynamicSim, MinMaxDelays, OutputActivity, SimWorkspace, MAX_EVENTS_PER_NET,
};
pub use errors::{
    classify_cycle, classify_stream, illegal_transition_count, ClockSpec, CycleViolation,
    ErrorClass,
};
pub use incr::{
    current_sta_scope, retime_count, set_sta_scope, take_sta_counters, IncrementalScreen,
    IncrementalSta, IncrementalTiming, RetimeOutcome, StaCounters, StaScope,
};
pub use paths::{k_critical_paths, RankedPath, SlackReport};
pub use screen::{ScreenBounds, ScreenVerdict, ScreenedSim, SCREEN_GUARD_PS};
pub use sta::{StaticTiming, TimingPath};
