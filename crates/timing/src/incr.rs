//! Incremental static re-timing: retained arrival/bound state plus
//! delta-propagation, for sweeps where one netlist topology is re-timed
//! under many per-gate delay assignments (new fabricated chip, a voltage
//! step, a resized buffer).
//!
//! [`StaticTiming::analyze`] is linear, but a chip sweep calls it once
//! per chip over an identical topology — only the delay signature
//! differs, and between neighbouring chips most arrivals don't move far
//! through the levelized DAG before converging. Following OpenSTA's
//! incremental-timing design, this module keeps the analysis *resident*:
//!
//! * [`IncrementalSta`] holds the forward min/max arrival state of the
//!   currently-loaded signature. [`retime`](IncrementalSta::retime)
//!   diffs a new signature's per-gate delays against the loaded one,
//!   seeds a dirty worklist with the changed gates, and repropagates in
//!   ascending (topological) index order through the netlist's CSR
//!   fanout index — terminating each ray early as soon as a recomputed
//!   gate's min/max arrivals are bit-identical to the stored ones.
//! * [`IncrementalScreen`] maintains the conservative
//!   [`ScreenBounds`] tables the same way in the reverse direction: a
//!   delay change at gate `g` can only move the toggle-to-output bounds
//!   of nets in `g`'s *fan-in* cone, so the refresh seeds `g`'s input
//!   nets and refolds descending, again stopping where the recomputed
//!   bounds match the stored bits.
//! * [`IncrementalTiming`] composes the two behind one
//!   [`retime`](IncrementalTiming::retime) entry point — what the
//!   chip-blank memo pool in `ntc-experiments` drives.
//!
//! # Bit-identity
//!
//! Incremental results are `f64::to_bits`-identical to from-scratch
//! analysis, not merely close. The argument: the full pass computes each
//! gate's arrivals by one fixed-order fold over its inputs
//! (`sta::fold_gate_arrivals`), and the incremental recompute calls *the
//! same fold* on the same stored state — so by induction along
//! topological order, a gate whose delay and input arrivals are
//! unchanged refolds to exactly its stored bits (which is also why
//! comparing bits is a sound early-termination test, never an
//! approximation). The reverse tables fold with `f64::max`/`min`, which
//! select among identically-computed sums, so gather order is
//! irrelevant and the same induction applies along descending net order.
//! The differential fuzz suite (`tests/proptest_incr.rs`) pins this for
//! sparse, dense, uniformly-scaled and single-gate deltas.
//!
//! # Counters
//!
//! Full analyses ([`StaticTiming::analyze_into`]) and incremental passes
//! bump process-wide draining counters surfaced as
//! [`StaCounters`] — `sta_full` / `sta_incremental` /
//! `incr_gates_touched` — which the delay-oracle stats fold into
//! `manifest.json`. The cumulative [`retime_count`] mirrors
//! [`crate::sta::analysis_count`] for budget-pinning regression tests.

use crate::screen::ScreenBounds;
use crate::sta::StaticTiming;
use ntc_netlist::Netlist;
use ntc_varmodel::ChipSignature;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of incremental re-timing passes, cumulative (never
/// reset) — the [`crate::sta::analysis_count`] analogue for regression
/// tests that pin how often a sweep re-times incrementally vs. fully.
static RETIME_COUNT: AtomicU64 = AtomicU64::new(0);

/// Draining telemetry counters, reset by [`take_sta_counters`].
static STAT_STA_FULL: AtomicU64 = AtomicU64::new(0);
static STAT_STA_INCREMENTAL: AtomicU64 = AtomicU64::new(0);
static STAT_INCR_GATES_TOUCHED: AtomicU64 = AtomicU64::new(0);

/// A per-run attribution scope for the STA counters. While installed on
/// a thread (see [`set_sta_scope`]), every increment lands in the scope
/// *in addition to* the process-wide drain — so a server handling
/// concurrent jobs can attribute timing work to the job that caused it
/// without perturbing the global telemetry other callers drain.
#[derive(Debug, Default)]
pub struct StaScope {
    sta_full: AtomicU64,
    sta_incremental: AtomicU64,
    incr_gates_touched: AtomicU64,
}

impl StaScope {
    /// The counters accumulated in this scope so far (non-draining).
    pub fn snapshot(&self) -> StaCounters {
        StaCounters {
            sta_full: self.sta_full.load(Ordering::Relaxed),
            sta_incremental: self.sta_incremental.load(Ordering::Relaxed),
            incr_gates_touched: self.incr_gates_touched.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static STA_SCOPE: std::cell::RefCell<Option<std::sync::Arc<StaScope>>> =
        const { std::cell::RefCell::new(None) };
}

/// Install (or, with `None`, clear) the calling thread's STA attribution
/// scope, returning the previously installed one so callers can restore
/// it. The scope is an `Arc`: install the same one on every worker
/// thread of a run to aggregate across them.
pub fn set_sta_scope(scope: Option<std::sync::Arc<StaScope>>) -> Option<std::sync::Arc<StaScope>> {
    STA_SCOPE.with(|s| s.replace(scope))
}

/// The calling thread's installed STA scope, if any — what a sweep
/// captures before spawning workers so the workers inherit it.
pub fn current_sta_scope() -> Option<std::sync::Arc<StaScope>> {
    STA_SCOPE.with(|s| s.borrow().clone())
}

/// Bump a global counter and mirror the increment into the thread's
/// installed scope, if any.
fn bump(global: &AtomicU64, pick: fn(&StaScope) -> &AtomicU64, n: u64) {
    global.fetch_add(n, Ordering::Relaxed);
    STA_SCOPE.with(|s| {
        if let Some(scope) = s.borrow().as_ref() {
            pick(scope).fetch_add(n, Ordering::Relaxed);
        }
    });
}

fn note_incremental(touched: u64) {
    bump(&STAT_STA_INCREMENTAL, |s| &s.sta_incremental, 1);
    note_gates_touched(touched);
}

fn note_gates_touched(n: u64) {
    bump(&STAT_INCR_GATES_TOUCHED, |s| &s.incr_gates_touched, n);
}

/// Total incremental re-timing passes in this process so far (forward
/// arrival repropagations; screen refreshes ride along with them).
pub fn retime_count() -> u64 {
    RETIME_COUNT.load(Ordering::Relaxed)
}

/// Record one full analysis pass (called by
/// [`StaticTiming::analyze_into`], so every full analysis in the process
/// counts, whichever entry point ran it).
pub(crate) fn note_full_analysis() {
    bump(&STAT_STA_FULL, |s| &s.sta_full, 1);
}

/// Static-timing cost counters since the last [`take_sta_counters`]
/// call, process-wide. The delay-oracle stats drain fold these into the
/// run telemetry (`manifest.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaCounters {
    /// Full from-scratch analysis passes ([`StaticTiming::analyze_into`]).
    pub sta_full: u64,
    /// Incremental re-timing passes (signature diffs and single-gate
    /// mutations propagated through a dirty worklist).
    pub sta_incremental: u64,
    /// Gates re-folded forward plus nets re-folded in the reverse screen
    /// tables across those incremental passes — the work an incremental
    /// pass actually did, to set against a full pass's `netlist.len()`.
    pub incr_gates_touched: u64,
}

/// Drain the process-wide [`StaCounters`], resetting them to zero.
/// Mirrors the delay oracle's stats drain (and is consumed by it).
pub fn take_sta_counters() -> StaCounters {
    StaCounters {
        sta_full: STAT_STA_FULL.swap(0, Ordering::Relaxed),
        sta_incremental: STAT_STA_INCREMENTAL.swap(0, Ordering::Relaxed),
        incr_gates_touched: STAT_INCR_GATES_TOUCHED.swap(0, Ordering::Relaxed),
    }
}

/// What one [`retime`](IncrementalSta::retime) call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetimeOutcome {
    /// The engine had no compatible loaded state and ran a full analysis
    /// instead of a delta pass.
    pub full: bool,
    /// Gates whose delay differed from the loaded signature (the dirty
    /// seeds). Zero for a bit-identical signature — and then nothing
    /// propagates at all.
    pub delay_changes: usize,
    /// Gates/nets actually re-folded by the delta propagation (0 when
    /// `full`; the full pass touches everything by definition).
    pub gates_touched: u64,
}

/// Retained forward min/max arrival state for one netlist topology,
/// re-timed signature-to-signature by delta propagation.
///
/// The engine is bound to a single topology: every `retime` call must
/// pass the *same* [`Netlist`] the current state was seeded from (the
/// caller owns that invariant, typically by storing the engine alongside
/// the netlist it analyzes; a length mismatch re-seeds from scratch).
#[derive(Debug, Default)]
pub struct IncrementalSta {
    /// Per-gate delays of the currently-loaded signature.
    delays: Vec<f64>,
    /// Arrival state of the currently-loaded signature.
    sta: StaticTiming,
    /// Dirty worklist: one pending bit per gate plus a live count,
    /// drained by a single ascending index sweep (gate indices are
    /// topological, and dirtying flows strictly upward through the
    /// fanout lists, so an ordered scan visits every pending gate after
    /// its inputs are final — no priority queue needed). Packed as a
    /// bitset so the sweep skips converged stretches 64 gates per
    /// branch: a sparse cone far from the seeds costs word tests, not
    /// per-gate flag tests, and pushing costs an OR instead of a heap
    /// rebalance. Retained across calls — steady-state re-timing
    /// allocates nothing.
    pending: Vec<u64>,
    remaining: usize,
    /// Seeds of the last delta pass: the gates whose delay changed. The
    /// reverse screen refresh starts from exactly these.
    changed: Vec<u32>,
    /// The seeds' *previous* delays, parallel to `changed` — the reverse
    /// refresh prices each seed's old fold candidates with these to
    /// decide which input nets actually need a refold.
    changed_old: Vec<f64>,
    /// Scratch for the diff's phase 1: indices of 16-wide chunks holding
    /// at least one mismatched delay. Retained so steady-state re-timing
    /// allocates nothing.
    dirty_chunks: Vec<u32>,
    loaded: bool,
}

impl IncrementalSta {
    /// An empty engine; the first [`retime`](Self::retime) (or an
    /// explicit [`load_full`](Self::load_full)) seeds it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether arrival state is loaded (i.e. [`timing`](Self::timing) is
    /// meaningful).
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// The arrival analysis of the currently-loaded signature.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been loaded yet.
    pub fn timing(&self) -> &StaticTiming {
        assert!(self.loaded, "no signature loaded");
        &self.sta
    }

    /// The per-gate delays of the currently-loaded signature.
    pub fn loaded_delays(&self) -> &[f64] {
        &self.delays
    }

    /// Gates whose delay changed in the last delta pass (empty after a
    /// full load) — the seed set a reverse consumer (the screen refresh)
    /// propagates from.
    pub fn delay_changes(&self) -> &[u32] {
        &self.changed
    }

    /// The previous delays of [`delay_changes`](Self::delay_changes),
    /// parallel by position — what a reverse consumer prices each seed's
    /// *old* fold candidates with.
    pub fn previous_delays(&self) -> &[f64] {
        &self.changed_old
    }

    /// Seed (or re-seed) the engine with a full analysis of `sig`,
    /// reusing the retained buffers.
    pub fn load_full(&mut self, nl: &Netlist, sig: &ChipSignature) {
        self.sta.analyze_into(nl, sig); // asserts the length match
        self.delays.clear();
        self.delays.extend_from_slice(sig.delays_ps());
        self.pending.clear();
        self.pending.resize(nl.len().div_ceil(64), 0);
        self.remaining = 0;
        self.changed.clear();
        self.changed_old.clear();
        self.loaded = true;
    }

    /// Re-time the loaded topology under a new signature: diff per-gate
    /// delays, propagate the changes through the fanout cones, stop each
    /// ray where recomputed arrivals are bit-identical to the stored
    /// ones. Falls back to [`load_full`](Self::load_full) when no
    /// compatible state is loaded.
    ///
    /// # Panics
    ///
    /// Panics if the signature length does not match the netlist.
    pub fn retime(&mut self, nl: &Netlist, sig: &ChipSignature) -> RetimeOutcome {
        assert_eq!(
            sig.delays_ps().len(),
            nl.len(),
            "signature/netlist mismatch"
        );
        if !self.loaded || self.delays.len() != nl.len() {
            self.load_full(nl, sig);
            return RetimeOutcome {
                full: true,
                delay_changes: 0,
                gates_touched: 0,
            };
        }
        // Diff the delay vectors and seed the worklist, in two phases.
        // Phase 1: an XOR-accumulate scan over 16-wide chunks — pure
        // bit-casts and ORs over two sequential slices, so it vectorizes
        // — records which chunks hold any mismatch. Phase 2 gives only
        // those chunks per-element treatment: compare bits, update the
        // loaded vector in place (no wholesale copy; a near-identical
        // signature writes almost nothing), seed. Pseudo gates (primary
        // inputs, constants) carry no delay into any fold —
        // `analyze_into` skips them and they feed no fanout gather — so
        // only logic-gate changes seed. The loaded vector still records
        // every slot, keeping future diffs exact.
        self.changed.clear();
        self.changed_old.clear();
        self.dirty_chunks.clear();
        let new = sig.delays_ps();
        let gates = nl.gates();
        let mut scan_from = usize::MAX;
        let n = self.delays.len();
        const CHUNK: usize = 16;
        for (c, (ca, cb)) in self
            .delays
            .chunks_exact(CHUNK)
            .zip(new.chunks_exact(CHUNK))
            .enumerate()
        {
            let mut any = 0u64;
            for (a, b) in ca.iter().zip(cb) {
                any |= a.to_bits() ^ b.to_bits();
            }
            if any != 0 {
                self.dirty_chunks.push(c as u32);
            }
        }
        let mut seed = |i: usize, cur: f64, delays: &mut [f64]| {
            let prev = delays[i];
            if prev.to_bits() != cur.to_bits() {
                delays[i] = cur;
                if !gates[i].kind().is_pseudo() {
                    self.changed.push(i as u32);
                    self.changed_old.push(prev);
                    self.pending[i >> 6] |= 1 << (i & 63);
                    self.remaining += 1;
                    scan_from = scan_from.min(i);
                }
            }
        };
        for &c in &self.dirty_chunks {
            let start = c as usize * CHUNK;
            for (k, &cur) in new[start..start + CHUNK].iter().enumerate() {
                seed(start + k, cur, &mut self.delays);
            }
        }
        for (k, &cur) in new.iter().enumerate().skip(n - n % CHUNK) {
            seed(k, cur, &mut self.delays);
        }
        let touched = self.propagate(nl, scan_from);
        RETIME_COUNT.fetch_add(1, Ordering::Relaxed);
        note_incremental(touched);
        RetimeOutcome {
            full: false,
            delay_changes: self.changed.len(),
            gates_touched: touched,
        }
    }

    /// Mutate a single gate's delay in place and re-time only its fanout
    /// cone — the hook adaptive schemes use to resize a buffer (see
    /// `InsertedBuffers::gate_indices` in `ntc-netlist`) mid-run without
    /// a full re-analysis. The loaded delay vector is updated, so
    /// subsequent [`retime`](Self::retime) diffs stay exact.
    ///
    /// # Panics
    ///
    /// Panics if nothing is loaded, the index is out of range, or the
    /// gate is a pseudo-cell (its delay enters no arrival fold).
    pub fn retime_gate(&mut self, nl: &Netlist, gate: usize, delay_ps: f64) -> RetimeOutcome {
        assert!(self.loaded, "no signature loaded");
        assert_eq!(self.delays.len(), nl.len(), "engine bound to another netlist");
        assert!(
            !nl.gates()[gate].kind().is_pseudo(),
            "pseudo-cells carry no delay"
        );
        self.changed.clear();
        self.changed_old.clear();
        let touched = if self.delays[gate].to_bits() != delay_ps.to_bits() {
            self.changed.push(gate as u32);
            self.changed_old.push(self.delays[gate]);
            self.delays[gate] = delay_ps;
            self.pending[gate >> 6] |= 1 << (gate & 63);
            self.remaining += 1;
            self.propagate(nl, gate)
        } else {
            0
        };
        RETIME_COUNT.fetch_add(1, Ordering::Relaxed);
        note_incremental(touched);
        RetimeOutcome {
            full: false,
            delay_changes: self.changed.len(),
            gates_touched: touched,
        }
    }

    /// Drain the dirty worklist by one ascending index sweep starting at
    /// the lowest seed. Gate indices are topological, so when the sweep
    /// reaches a pending gate every input is final — and a processed
    /// gate can never be re-dirtied (dirtying flows strictly upward in
    /// index through the fanout lists, always ahead of the sweep; within
    /// a word, always above the lowest set bit). The live pending count
    /// ends the sweep right after the last dirty gate, so a converged
    /// cone costs nothing past its frontier.
    fn propagate(&mut self, nl: &Netlist, scan_from: usize) -> u64 {
        let mut touched = 0u64;
        let gates = nl.gates();
        let mut w = scan_from >> 6;
        while self.remaining > 0 {
            let word = self.pending[w];
            if word == 0 {
                w += 1;
                continue;
            }
            let i = (w << 6) | word.trailing_zeros() as usize;
            self.pending[w] = word & (word - 1); // clear the lowest set bit
            self.remaining -= 1;
            touched += 1;
            let (lo, hi) = self.sta.refold_gate(&gates[i], self.delays[i]);
            let stale = self.sta.min_arrival(i).to_bits() != lo.to_bits()
                || self.sta.max_arrival(i).to_bits() != hi.to_bits();
            if stale {
                self.sta.set_arrivals(i, lo, hi);
                for &t in nl.fanout_of_index(i) {
                    let t = t as usize;
                    let m = 1u64 << (t & 63);
                    if self.pending[t >> 6] & m == 0 {
                        self.pending[t >> 6] |= m;
                        self.remaining += 1;
                    }
                }
            }
        }
        touched
    }
}

/// Retained [`ScreenBounds`] tables for one topology, refreshed by
/// reverse delta propagation: a delay change at gate `g` can only move
/// the toggle-to-output bounds of `g`'s fan-in cone, so the refresh
/// seeds `g`'s input nets and refolds in descending (reverse
/// topological) net order, stopping where recomputed bounds match the
/// stored bits.
#[derive(Debug, Default)]
pub struct IncrementalScreen {
    bounds: Option<ScreenBounds>,
    /// Reverse dirty worklist: one pending bit per net plus a live
    /// count, drained by a single *descending* bitset sweep so every net
    /// refolds after its entire fanout is final (dirtying flows strictly
    /// downward — a net's refold can only re-seed the driving gate's
    /// input nets, all below it). Mirror image of the forward sweep in
    /// [`IncrementalSta`].
    pending: Vec<u64>,
    remaining: usize,
}

impl IncrementalScreen {
    /// An empty holder; [`rebuild`](Self::rebuild) seeds it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the tables from scratch (first chip of a topology, or after
    /// a full re-seed of the forward engine).
    pub fn rebuild(&mut self, nl: &Netlist, sig: &ChipSignature, sta: &StaticTiming) {
        self.bounds = Some(ScreenBounds::build(nl, sig, sta));
        self.pending.clear();
        self.pending.resize(nl.len().div_ceil(64), 0);
        self.remaining = 0;
    }

    /// The current tables, or `None` before the first
    /// [`rebuild`](Self::rebuild)/[`refresh`](Self::refresh). Recoverable
    /// by design: a long-lived server must be able to probe the engine's
    /// state without risking an abort on request ordering.
    pub fn bounds(&self) -> Option<&ScreenBounds> {
        self.bounds.as_ref()
    }

    /// Refresh the tables after the forward engine re-timed: `delays` is
    /// the newly-loaded per-gate delay vector
    /// ([`IncrementalSta::loaded_delays`]), `seeds` the gates whose delay
    /// changed ([`IncrementalSta::delay_changes`]) with their previous
    /// delays in `old_delays` ([`IncrementalSta::previous_delays`],
    /// parallel by position), `sta` the *updated* arrival analysis (its
    /// critical delay re-anchors the tables' cross-check). Only cones
    /// containing a dirty gate re-fold, and within those only nets whose
    /// stored extreme a changed fold candidate can actually move — an
    /// edge from gate `g` into net `k` is re-priced only if its old
    /// candidate *realized* `k`'s min or max (it may drop out) or its new
    /// candidate beats it (it takes over). The candidate arithmetic
    /// reproduces the build's bit-for-bit, so the pruned refolds are
    /// provably identical refolds, skipped. Returns the number of nets
    /// refolded.
    ///
    /// Called before any tables exist (refresh-before-build — e.g. a
    /// server request re-timing a freshly memoized topology out of
    /// order), it builds them on demand from `delays` instead of
    /// aborting: the build *is* the refresh in that state, touching all
    /// `n` nets.
    ///
    /// # Panics
    ///
    /// Panics if the refreshed tables fail their STA cross-check (which
    /// would mean the dirty set was incomplete — a bug, not an input
    /// error).
    pub fn refresh(
        &mut self,
        nl: &Netlist,
        delays: &[f64],
        sta: &StaticTiming,
        seeds: &[u32],
        old_delays: &[f64],
    ) -> u64 {
        debug_assert_eq!(seeds.len(), old_delays.len());
        if self.bounds.is_none() {
            // Build on demand: there is no stored state to delta against,
            // so the flat build is both the cheapest and the only sound
            // answer. Recoverable replacement for the historical
            // `expect("no screen tables built")` abort.
            self.bounds = Some(ScreenBounds::build_from_delays(nl, delays, sta));
            self.pending.clear();
            self.pending.resize(nl.len().div_ceil(64), 0);
            self.remaining = 0;
            let n = nl.len() as u64;
            note_gates_touched(n);
            return n;
        }
        let bounds = self.bounds.as_mut().expect("just checked Some");
        let gates = nl.gates();
        // An edge from gate g into input net k carries the fold candidate
        // `to_out[g] + d_g`; net k needs a refold only if that candidate
        // moved in a way that can change k's stored extreme. Both sides
        // of each test recompute the candidate with the same add the
        // build used, so equality against the stored extreme is exact.
        let push = |pending: &mut [u64], remaining: &mut usize, k: usize| {
            let m = 1u64 << (k & 63);
            if pending[k >> 6] & m == 0 {
                pending[k >> 6] |= m;
                *remaining += 1;
            }
        };
        // A delay change at gate g re-prices g's edges only; g's own
        // bounds don't depend on d_g. Gates with no path to an output
        // contribute no candidates, before or after.
        let mut scan_from = 0usize;
        for (&g, &d_old) in seeds.iter().zip(old_delays) {
            let g = g as usize;
            let (gl, gh) = bounds.net_bounds(g);
            if gh == f64::NEG_INFINITY {
                continue;
            }
            let d_new = delays[g];
            for s in gates[g].inputs() {
                let k = s.index();
                let (klo, khi) = bounds.net_bounds(k);
                if gh + d_old == khi
                    || gh + d_new > khi
                    || gl + d_old == klo
                    || gl + d_new < klo
                {
                    push(&mut self.pending, &mut self.remaining, k);
                    scan_from = scan_from.max(k);
                }
            }
        }
        let mut refolded = 0u64;
        let mut w = scan_from >> 6;
        while self.remaining > 0 {
            let word = self.pending[w];
            if word == 0 {
                w -= 1;
                continue;
            }
            let b = 63 - word.leading_zeros() as usize;
            let j = (w << 6) | b;
            self.pending[w] = word & !(1u64 << b); // clear the highest set bit
            self.remaining -= 1;
            refolded += 1;
            let (lo, hi) = bounds.fold_net(nl, delays, j);
            let (old_lo, old_hi) = bounds.net_bounds(j);
            let stale =
                old_lo.to_bits() != lo.to_bits() || old_hi.to_bits() != hi.to_bits();
            if stale {
                bounds.set_net(j, lo, hi);
                // Net j's new bound re-prices the edges of the gate
                // driving j (pseudo drivers — primary inputs — have no
                // inputs, ending the ray). The descending sweep pops j
                // after its whole fanout, so (old_lo, old_hi) → (lo, hi)
                // is j's one and only move this refresh; each edge test
                // below covers it completely against the target net's
                // still-pre-refresh extremes.
                let dj = delays[j];
                for s in gates[j].inputs() {
                    let k = s.index();
                    let (klo, khi) = bounds.net_bounds(k);
                    if old_hi + dj == khi
                        || hi + dj > khi
                        || old_lo + dj == klo
                        || lo + dj < klo
                    {
                        push(&mut self.pending, &mut self.remaining, k);
                    }
                }
            }
        }
        bounds.set_static_critical_ps(sta.critical_delay_ps(nl));
        bounds.check_against_critical();
        note_gates_touched(refolded);
        refolded
    }
}

/// The composed retained engine: forward arrivals plus reverse screen
/// tables, re-timed together — the unit the chip-blank memo pool in
/// `ntc-experiments` keeps per netlist topology.
#[derive(Debug, Default)]
pub struct IncrementalTiming {
    sta: IncrementalSta,
    screen: IncrementalScreen,
}

impl IncrementalTiming {
    /// An empty engine; the first [`retime`](Self::retime) seeds it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-time `sig` on this topology: delta-propagate the forward
    /// arrivals, then refresh the screen tables from the same diff. The
    /// first call (or a topology change) seeds both from scratch.
    ///
    /// A diff that re-delayed most of the die (a chip swap, a voltage
    /// step — every gate moves) is not a delta: refolding net by net
    /// with per-edge re-pricing costs several times the flat
    /// descending-order table build, so past a quarter of the gates the
    /// screen spills to [`IncrementalScreen::rebuild`]. The build is
    /// itself one canonical per-net fold per net, so the outcome counts
    /// all `n` nets as touched — same units as the refresh.
    pub fn retime(&mut self, nl: &Netlist, sig: &ChipSignature) -> RetimeOutcome {
        let mut out = self.sta.retime(nl, sig);
        let dirty_heavy = self.sta.delay_changes().len() * 4 > nl.len();
        if out.full || self.screen.bounds.is_none() || dirty_heavy {
            self.screen.rebuild(nl, sig, self.sta.timing());
            if !out.full {
                let n = nl.len() as u64;
                out.gates_touched += n;
                note_gates_touched(n);
            }
        } else {
            out.gates_touched += self.screen.refresh(
                nl,
                self.sta.loaded_delays(),
                self.sta.timing(),
                self.sta.delay_changes(),
                self.sta.previous_delays(),
            );
        }
        out
    }

    /// Single-gate mutation: re-time gate `gate` to `delay_ps` and
    /// refresh both directions from that one seed — the adaptive-scheme
    /// hook (resized buffers, in-situ slowdown injection).
    ///
    /// # Panics
    ///
    /// Panics if nothing is loaded yet (seed with
    /// [`retime`](Self::retime) first) — a point mutation needs a base
    /// signature to mutate.
    pub fn retime_gate(&mut self, nl: &Netlist, gate: usize, delay_ps: f64) -> RetimeOutcome {
        let mut out = self.sta.retime_gate(nl, gate, delay_ps);
        // The loaded delay vector *is* the mutated signature's delays, so
        // the screen refresh reads straight from it — no `ChipSignature`
        // round-trip for a point mutation.
        out.gates_touched += self.screen.refresh(
            nl,
            self.sta.loaded_delays(),
            self.sta.timing(),
            self.sta.delay_changes(),
            self.sta.previous_delays(),
        );
        out
    }

    /// The arrival analysis of the currently-loaded signature.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been loaded yet.
    pub fn timing(&self) -> &StaticTiming {
        self.sta.timing()
    }

    /// The screen tables of the currently-loaded signature, or `None`
    /// before the first [`retime`](Self::retime). Recoverable by design
    /// (no abort on request ordering): callers that need tables
    /// unconditionally can fall back to a flat
    /// [`ScreenBounds::build`].
    pub fn screen_bounds(&self) -> Option<&ScreenBounds> {
        self.screen.bounds()
    }

    /// The forward engine (loaded delays, diff seeds).
    pub fn sta(&self) -> &IncrementalSta {
        &self.sta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::Alu;
    use ntc_varmodel::{Corner, VariationParams};

    /// Regression: `refresh` before any `rebuild` used to abort with
    /// `expect("no screen tables built")`; it must now build on demand,
    /// bit-identical to the flat build.
    #[test]
    fn refresh_before_rebuild_builds_on_demand() {
        let alu = Alu::new(8);
        let nl = alu.netlist();
        let sig = ChipSignature::fabricate(nl, Corner::NTC, VariationParams::ntc(), 11);
        let sta = StaticTiming::analyze(nl, &sig);

        let mut screen = IncrementalScreen::new();
        assert!(screen.bounds().is_none(), "fresh engine holds no tables");
        let touched = screen.refresh(nl, sig.delays_ps(), &sta, &[], &[]);
        assert_eq!(touched, nl.len() as u64, "on-demand build touches every net");

        let flat = ScreenBounds::build(nl, &sig, &sta);
        let built = screen.bounds().expect("tables exist after on-demand build");
        for j in 0..nl.len() {
            let (al, ah) = built.net_bounds(j);
            let (bl, bh) = flat.net_bounds(j);
            assert_eq!(al.to_bits(), bl.to_bits(), "net {j} lo");
            assert_eq!(ah.to_bits(), bh.to_bits(), "net {j} hi");
        }

        // A second refresh with an empty seed set is now a real delta
        // pass over the retained tables: nothing dirty, nothing folded.
        assert_eq!(screen.refresh(nl, sig.delays_ps(), &sta, &[], &[]), 0);
    }

    /// The composed engine reports its screen tables recoverably: `None`
    /// before the first retime, `Some` after.
    #[test]
    fn screen_bounds_is_none_until_retimed() {
        let alu = Alu::new(8);
        let nl = alu.netlist();
        let mut engine = IncrementalTiming::new();
        assert!(engine.screen_bounds().is_none());
        let sig = ChipSignature::fabricate(nl, Corner::NTC, VariationParams::ntc(), 3);
        let out = engine.retime(nl, &sig);
        assert!(out.full);
        assert!(engine.screen_bounds().is_some());
    }
}
