//! Path enumeration and slack reporting: the K most-critical paths of a
//! netlist under a chip signature, with per-path choke-gate annotation.
//!
//! Static arrival analysis (see [`crate::sta`]) gives one critical path;
//! post-silicon debugging of choke points needs the *population* of
//! near-critical paths — which paths a choke gate newly promoted, how much
//! slack the runner-up paths have, and which gates dominate each path's
//! delay. This module provides that view.

use ntc_netlist::{Netlist, Signal};
use ntc_varmodel::ChipSignature;
use std::collections::BinaryHeap;

/// One enumerated path with its delay and the share contributed by each
/// gate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPath {
    /// Total path delay, ps.
    pub delay_ps: f64,
    /// Signals from the launching input to the captured output.
    pub signals: Vec<Signal>,
    /// The output this path terminates at.
    pub endpoint: Signal,
}

impl RankedPath {
    /// Gates on this path whose delay multiplier (vs the chip's nominal)
    /// is at least `threshold` — the path's choke gates.
    pub fn choke_gates(&self, sig: &ChipSignature, threshold: f64) -> Vec<Signal> {
        self.signals
            .iter()
            .copied()
            .filter(|s| sig.multiplier(s.index()) >= threshold)
            .collect()
    }

    /// The fraction of this path's delay contributed by its single slowest
    /// gate — near 1.0 means one gate dominates the path (the defining
    /// property of a choke point).
    pub fn dominance(&self, sig: &ChipSignature) -> f64 {
        if self.delay_ps <= 0.0 {
            return 0.0;
        }
        let max_gate = self
            .signals
            .iter()
            .map(|s| sig.delay_ps(s.index()))
            .fold(0.0f64, f64::max);
        max_gate / self.delay_ps
    }

    /// Logic depth (number of real gates) of the path.
    pub fn depth(&self, nl: &Netlist) -> usize {
        self.signals
            .iter()
            .filter(|s| !nl.gate(**s).kind().is_pseudo())
            .count()
    }
}

/// Enumerate the `k` longest register-to-register paths of `nl` under
/// `sig`, in decreasing delay order.
///
/// Enumeration uses the standard deviation-ranked approach: for every
/// output, walk the max-arrival tree, and at each gate optionally branch
/// to the second-best input, priced by the arrival-time sacrifice. A
/// bounded priority queue keeps the cost `O(k · depth · log k)`.
///
/// # Panics
///
/// Panics if the signature does not match the netlist or `k == 0`.
pub fn k_critical_paths(nl: &Netlist, sig: &ChipSignature, k: usize) -> Vec<RankedPath> {
    assert!(k > 0, "need at least one path");
    assert_eq!(sig.delays_ps().len(), nl.len(), "signature/netlist mismatch");

    // Max arrival per signal.
    let n = nl.len();
    let mut arrival = vec![0.0f64; n];
    for (i, gate) in nl.gates().iter().enumerate() {
        if gate.kind().is_pseudo() {
            continue;
        }
        let hi = gate
            .inputs()
            .iter()
            .map(|s| arrival[s.index()])
            .fold(0.0f64, f64::max);
        arrival[i] = hi + sig.delay_ps(i);
    }

    // Partial path state: current frontier signal (walking backwards from
    // an endpoint), accumulated suffix delay, and the signals collected so
    // far (endpoint-first).
    #[derive(Debug)]
    struct Partial {
        // Total delay this partial will realize if completed greedily:
        // arrival(frontier) + suffix.
        score: f64,
        frontier: Signal,
        suffix: f64,
        collected: Vec<Signal>,
    }
    impl PartialEq for Partial {
        fn eq(&self, other: &Self) -> bool {
            // Consistent with the `total_cmp` ordering below (plain `==`
            // would disagree with `Ord` on NaN scores).
            self.score.total_cmp(&other.score).is_eq()
        }
    }
    impl Eq for Partial {}
    impl PartialOrd for Partial {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Partial {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // `total_cmp`: a NaN delay in the signature must not abort
            // path ranking (NaN scores order last, finite scores order
            // exactly as before).
            self.score.total_cmp(&other.score)
        }
    }

    let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
    for &o in nl.outputs() {
        heap.push(Partial {
            score: arrival[o.index()],
            frontier: o,
            suffix: 0.0,
            collected: vec![o],
        });
    }

    let mut done: Vec<RankedPath> = Vec::with_capacity(k);
    while let Some(p) = heap.pop() {
        if done.len() >= k {
            break;
        }
        let gate = nl.gate(p.frontier);
        if gate.kind().is_pseudo() {
            // Reached a launching register: the path is complete.
            let mut signals = p.collected.clone();
            signals.reverse();
            let endpoint = *signals.last().expect("nonempty path");
            done.push(RankedPath {
                delay_ps: p.score,
                signals,
                endpoint,
            });
            continue;
        }
        let d = sig.delay_ps(p.frontier.index());
        // Branch into each input, scored by the arrival it realizes. The
        // heap keeps overall exploration best-first; pushing every input
        // (not just best + second-best) is fine at these sizes because the
        // heap is popped at most k·depth times before k completions.
        let mut seen_inputs: Vec<Signal> = Vec::with_capacity(3);
        for &u in gate.inputs() {
            if seen_inputs.contains(&u) {
                continue; // single-input cells repeat their input signal
            }
            seen_inputs.push(u);
            let mut collected = p.collected.clone();
            collected.push(u);
            heap.push(Partial {
                score: arrival[u.index()] + d + p.suffix,
                frontier: u,
                suffix: d + p.suffix,
                collected,
            });
        }
    }
    done
}

/// Per-endpoint slack report against a clock period: negative slack means
/// a setup (maximum-timing) violation is possible on that output.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackReport {
    /// (output signal, worst arrival ps, slack ps), sorted by slack
    /// ascending (most critical first).
    pub endpoints: Vec<(Signal, f64, f64)>,
}

impl SlackReport {
    /// Build the report.
    pub fn analyze(nl: &Netlist, sig: &ChipSignature, period_ps: f64) -> Self {
        let sta = crate::sta::StaticTiming::analyze(nl, sig);
        let mut endpoints: Vec<(Signal, f64, f64)> = nl
            .outputs()
            .iter()
            .map(|&o| {
                let a = sta.max_arrival(o.index());
                (o, a, period_ps - a)
            })
            .collect();
        endpoints.sort_by(|x, y| x.2.total_cmp(&y.2));
        SlackReport { endpoints }
    }

    /// Outputs with negative slack (possible setup violations).
    pub fn failing(&self) -> impl Iterator<Item = &(Signal, f64, f64)> {
        self.endpoints.iter().filter(|(_, _, s)| *s < 0.0)
    }

    /// The worst (smallest) slack, ps.
    pub fn worst_slack_ps(&self) -> f64 {
        self.endpoints.first().map(|e| e.2).unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::Alu;
    use ntc_netlist::Builder;
    use ntc_varmodel::{Corner, VariationParams};

    #[test]
    fn paths_are_ranked_and_connected() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 3);
        let paths = k_critical_paths(alu.netlist(), &sig, 8);
        assert_eq!(paths.len(), 8);
        for w in paths.windows(2) {
            assert!(w[0].delay_ps >= w[1].delay_ps - 1e-9, "decreasing order");
        }
        for p in &paths {
            // Connectivity: each signal drives the next.
            for pair in p.signals.windows(2) {
                assert!(alu.netlist().gate(pair[1]).inputs().contains(&pair[0]));
            }
            // Delay equals the sum of gate delays along the path.
            let sum: f64 = p.signals.iter().map(|s| sig.delay_ps(s.index())).sum();
            assert!((sum - p.delay_ps).abs() < 1e-6, "{sum} vs {}", p.delay_ps);
        }
    }

    #[test]
    fn top_path_matches_static_critical() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 5);
        let sta = crate::sta::StaticTiming::analyze(alu.netlist(), &sig);
        let paths = k_critical_paths(alu.netlist(), &sig, 1);
        assert!(
            (paths[0].delay_ps - sta.critical_delay_ps(alu.netlist())).abs() < 1e-6,
            "top enumerated path is the static critical path"
        );
    }

    #[test]
    fn choke_annotation_finds_injected_gate() {
        let mut b = Builder::new();
        let a = b.input("a");
        let g1 = b.not(a);
        let g2 = b.not(g1);
        let g3 = b.not(g2);
        b.output("y", g3);
        let nl = b.finish();
        let mut sig = ChipSignature::nominal(&nl, Corner::NTC);
        sig.inject_choke(&[g2.index()], 10.0);
        let paths = k_critical_paths(&nl, &sig, 1);
        let chokes = paths[0].choke_gates(&sig, 2.0);
        assert_eq!(chokes, vec![g2]);
        // One 10x gate among three: it contributes 10/12 of the delay.
        assert!(paths[0].dominance(&sig) > 0.8);
        assert_eq!(paths[0].depth(&nl), 3);
    }

    #[test]
    fn slack_report_orders_and_flags() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);
        let sta = crate::sta::StaticTiming::analyze(alu.netlist(), &sig);
        let crit = sta.critical_delay_ps(alu.netlist());
        // Clock below critical: at least one endpoint must fail.
        let report = SlackReport::analyze(alu.netlist(), &sig, crit * 0.9);
        assert!(report.failing().count() >= 1);
        assert!(report.worst_slack_ps() < 0.0);
        // Clock above critical: nothing fails.
        let report = SlackReport::analyze(alu.netlist(), &sig, crit * 1.1);
        assert_eq!(report.failing().count(), 0);
        assert!(report.worst_slack_ps() > 0.0);
        // Sorted ascending by slack.
        for w in report.endpoints.windows(2) {
            assert!(w[0].2 <= w[1].2 + 1e-9);
        }
    }

    #[test]
    fn nan_delay_does_not_panic_path_ranking() {
        // A poisoned signature (NaN gate delay) must not abort the
        // priority-queue ordering — part of the `total_cmp` audit.
        let alu = Alu::new(8);
        let mut sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let victim = alu
            .netlist()
            .gates()
            .iter()
            .position(|g| !g.kind().is_pseudo())
            .expect("alu has logic gates");
        sig.inject_choke(&[victim], f64::NAN);
        let paths = k_critical_paths(alu.netlist(), &sig, 4);
        assert!(!paths.is_empty());
    }

    #[test]
    fn distinct_paths_enumerated() {
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let paths = k_critical_paths(alu.netlist(), &sig, 12);
        let unique: std::collections::HashSet<Vec<Signal>> =
            paths.iter().map(|p| p.signals.clone()).collect();
        assert_eq!(unique.len(), paths.len(), "no duplicate paths");
    }
}
