//! Conservative per-cycle screening in front of the exact dynamic kernel
//! — the cheap first tier of the two-tier timing oracle.
//!
//! The exact kernel ([`crate::dynamic`]) pays an event-driven simulation
//! on every `(initializing, sensitizing)` vector pair, yet on most cycles
//! no sensitized path comes anywhere near the clock period (the FATE
//! observation). [`ScreenBounds`] precomputes, per net, the longest and
//! shortest delay from a toggle at that net to *any* primary output; a
//! per-cycle screen then maxes/mins those precomputed bounds over the
//! toggled primary inputs only. When even the resulting conservative
//! delay envelope cannot violate the clock, the kernel is provably
//! redundant and the cycle is skipped.
//!
//! # Soundness
//!
//! Every output transition the kernel emits occurs at a time of the form
//! `sum of gate delays along a combinational path from a toggled primary
//! input to an output` (the kernel only seeds events at toggled PIs, only
//! propagates them along gate fanout adding that gate's delay, and its
//! event dedup/truncation only ever *drops* interior events, keeping the
//! extremes). [`ScreenBounds::build`] relaxes exactly those path sums in
//! reverse topological order, so for a toggled input `i` every real
//! transition time `t` caused by `i` satisfies
//! `to_out_min[i] <= t <= to_out_max[i]`. Taking the min/max over the
//! toggled inputs of a cycle therefore brackets every transition the
//! kernel could produce:
//!
//! * no toggled input reaches an output → the kernel produces no output
//!   transitions at all ([`ScreenVerdict::Quiet`], exact);
//! * `max bound + guard <= period` and `min bound - guard >= hold` → the
//!   cycle cannot violate either clock edge ([`ScreenVerdict::Safe`]);
//! * otherwise the screen abstains ([`ScreenVerdict::Inconclusive`]) and
//!   the exact kernel runs.
//!
//! The screen never claims a violation and never replaces an unsafe
//! cycle's delays — consumers that only *threshold* the delays against
//! the screened clock (every `ResilienceScheme` in `ntc-core`) observe
//! results identical to the exact kernel's. [`SCREEN_GUARD_PS`] absorbs
//! the ulp-level difference between the reverse-accumulated bound and the
//! kernel's forward-order path sums.

use crate::dynamic::{CycleTiming, DynamicSim, MinMaxDelays};
use crate::errors::ClockSpec;
use crate::sta::StaticTiming;
use ntc_netlist::Netlist;
use ntc_varmodel::ChipSignature;
use std::sync::Arc;

/// Safety margin (ps) added to the screen's comparisons against the clock
/// thresholds. The bound tables accumulate gate delays output-to-input
/// while the kernel sums them input-to-output; floating-point addition is
/// not associative, so the two can differ by a few ulps. One microsecond
/// of a picosecond dwarfs any such error yet is far below the ~0.1 ps
/// scale at which delays become behaviourally distinct.
pub const SCREEN_GUARD_PS: f64 = 1e-6;

/// Per-net toggle-to-output delay bounds for one fabricated chip,
/// precomputed once and shared (via [`Arc`]) by every screen user bound
/// to that chip.
#[derive(Debug, Clone)]
pub struct ScreenBounds {
    /// `to_out_max[n]`: longest delay from a toggle at net `n` to any
    /// primary output; `-inf` when no output is reachable from `n`.
    to_out_max: Vec<f64>,
    /// `to_out_min[n]`: shortest such delay; `+inf` when unreachable.
    to_out_min: Vec<f64>,
    /// Net index of each primary input, in port order (the order of the
    /// kernel's `initializing`/`sensitizing` vectors).
    inputs: Vec<u32>,
    /// The chip's static critical delay, kept for diagnostics.
    static_critical_ps: f64,
}

impl ScreenBounds {
    /// Build the bound tables for `nl` under delay signature `sig`.
    ///
    /// `sta` must be the [`StaticTiming`] analysis of the same
    /// `(nl, sig)` pair; it is used to cross-check the tables (the
    /// longest toggle-to-output delay over all primary inputs must equal
    /// the static critical delay) and to seed diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if the signature length does not match the netlist, or if
    /// the bound tables disagree with the static analysis.
    pub fn build(nl: &Netlist, sig: &ChipSignature, sta: &StaticTiming) -> Self {
        assert_eq!(sig.delays_ps().len(), nl.len(), "signature/netlist mismatch");
        let n = nl.len();
        let mut to_out_max = vec![f64::NEG_INFINITY; n];
        let mut to_out_min = vec![f64::INFINITY; n];
        for s in nl.outputs() {
            to_out_max[s.index()] = 0.0;
            to_out_min[s.index()] = 0.0;
        }
        // Gates are stored in topological order by ascending index, so one
        // descending pass relaxes every gate after its entire fanout.
        for (i, gate) in nl.gates().iter().enumerate().rev() {
            if gate.kind().is_pseudo() {
                continue;
            }
            let hi = to_out_max[i];
            if hi == f64::NEG_INFINITY {
                continue; // no output reachable from this gate
            }
            let lo = to_out_min[i];
            // A toggle at input `s` that propagates through this gate
            // reaches the outputs this gate reaches, delayed by the gate's
            // own delay — mirroring the forward convention of `sta.rs`
            // (primary inputs are pseudo gates and contribute no delay;
            // a path's delay includes the output gate's).
            let d = sig.delay_ps(i);
            for s in gate.inputs() {
                let j = s.index();
                to_out_max[j] = to_out_max[j].max(hi + d);
                to_out_min[j] = to_out_min[j].min(lo + d);
            }
        }
        let inputs: Vec<u32> = nl.inputs().iter().map(|s| s.index() as u32).collect();
        let static_critical_ps = sta.critical_delay_ps(nl);
        let table_critical = inputs
            .iter()
            .map(|&i| to_out_max[i as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (table_critical - static_critical_ps).abs() <= SCREEN_GUARD_PS,
            "screen bound tables disagree with STA: {table_critical} vs {static_critical_ps}"
        );
        ScreenBounds {
            to_out_max,
            to_out_min,
            inputs,
            static_critical_ps,
        }
    }

    /// Number of nets the tables were built for (= `netlist.len()`).
    pub fn len(&self) -> usize {
        self.to_out_max.len()
    }

    /// True for a degenerate netlist with no nets.
    pub fn is_empty(&self) -> bool {
        self.to_out_max.is_empty()
    }

    /// The chip's static critical delay the tables were checked against.
    pub fn static_critical_ps(&self) -> f64 {
        self.static_critical_ps
    }

    /// The conservative delay envelope of the cycle: `(min, max)` bounds
    /// over every transition the kernel could emit for this vector pair,
    /// or `None` when no toggled input reaches an output (the kernel
    /// would emit nothing).
    ///
    /// # Panics
    ///
    /// Panics if the vectors' length differs from the primary input count.
    pub fn cone_bounds(&self, init: &[bool], sens: &[bool]) -> Option<(f64, f64)> {
        assert_eq!(init.len(), self.inputs.len(), "initializing vector width");
        assert_eq!(sens.len(), self.inputs.len(), "sensitizing vector width");
        let mut hi = f64::NEG_INFINITY;
        let mut lo = f64::INFINITY;
        // Same toggle condition as the kernel's seeding loop: an input
        // participates iff its sensitizing value differs from its settled
        // (initializing) value.
        for (k, &net) in self.inputs.iter().enumerate() {
            if init[k] != sens[k] {
                let net = net as usize;
                hi = hi.max(self.to_out_max[net]);
                lo = lo.min(self.to_out_min[net]);
            }
        }
        (hi != f64::NEG_INFINITY).then_some((lo, hi))
    }

    /// Screen one cycle against `clock`.
    pub fn screen(&self, init: &[bool], sens: &[bool], clock: &ClockSpec) -> ScreenVerdict {
        match self.cone_bounds(init, sens) {
            None => ScreenVerdict::Quiet,
            Some((lo, hi)) => {
                if hi + SCREEN_GUARD_PS <= clock.period_ps && lo - SCREEN_GUARD_PS >= clock.hold_ps
                {
                    ScreenVerdict::Safe {
                        min_ps: lo,
                        max_ps: hi,
                    }
                } else {
                    ScreenVerdict::Inconclusive
                }
            }
        }
    }

    /// Deliberately corrupt the tables into an *optimistic* (unsound)
    /// bound: max bounds scaled down by `factor`, min bounds scaled up by
    /// `1/factor`. Exists solely so the conformance suite can prove it
    /// catches a buggy screen; never call outside tests.
    #[doc(hidden)]
    pub fn corrupted_for_tests(mut self, factor: f64) -> Self {
        assert!((0.0..1.0).contains(&factor));
        for v in &mut self.to_out_max {
            if v.is_finite() {
                *v *= factor;
            }
        }
        for v in &mut self.to_out_min {
            if v.is_finite() {
                *v /= factor;
            }
        }
        self
    }
}

/// Outcome of screening one cycle against a clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScreenVerdict {
    /// No toggled primary input reaches any output: the kernel would emit
    /// no output transitions at all. Exact, not merely safe.
    Quiet,
    /// Every possible transition lies inside `[hold, period]` at both
    /// clock edges; the bracketing bounds are returned as stand-in
    /// delays. Conservative: the true extremes lie within `[min, max]`.
    Safe {
        /// Lower bound on the earliest possible output transition, ps.
        min_ps: f64,
        /// Upper bound on the latest possible output transition, ps.
        max_ps: f64,
    },
    /// The envelope crosses a threshold — only the exact kernel can tell.
    Inconclusive,
}

/// A screened dynamic simulator: [`DynamicSim`] behind a [`ScreenBounds`]
/// filter, skipping the exact kernel on cycles the screen proves safe for
/// the wrapped clock.
///
/// [`simulate_pair_minmax`](Self::simulate_pair_minmax) is the fast path:
/// a [`ScreenVerdict::Safe`] cycle returns the conservative envelope
/// without simulating — interchangeable with the exact result for any
/// consumer that only compares the delays against the screened clock's
/// thresholds. The full-activity entry points
/// ([`simulate_pair`](Self::simulate_pair) /
/// [`simulate_pair_into`](Self::simulate_pair_into)) must report exact
/// per-output waveforms and internal toggle counts, which a skipped
/// simulation cannot reconstruct, so they only short-circuit the
/// [`ScreenVerdict::Quiet`] case with *no toggled inputs at all* — there
/// the settled activity is fully determined by evaluation.
#[derive(Debug)]
pub struct ScreenedSim<'a> {
    inner: DynamicSim<'a>,
    bounds: Arc<ScreenBounds>,
    clock: ClockSpec,
    hits: u64,
    misses: u64,
}

impl<'a> ScreenedSim<'a> {
    /// Wrap a dynamic simulator for `(nl, sig)` behind `bounds`, screening
    /// against `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` was built for a different netlist (length
    /// mismatch).
    pub fn new(
        nl: &'a Netlist,
        sig: &'a ChipSignature,
        bounds: Arc<ScreenBounds>,
        clock: ClockSpec,
    ) -> Self {
        assert_eq!(bounds.len(), nl.len(), "screen bounds/netlist mismatch");
        ScreenedSim {
            inner: DynamicSim::new(nl, sig),
            bounds,
            clock,
            hits: 0,
            misses: 0,
        }
    }

    /// Screen the pair without simulating: the verdict the min/max fast
    /// path acts on.
    pub fn verdict(&self, initializing: &[bool], sensitizing: &[bool]) -> ScreenVerdict {
        self.bounds.screen(initializing, sensitizing, &self.clock)
    }

    /// Min/max sensitized delays, screened: safe cycles return the
    /// conservative envelope (quiet cycles `None`/`None`, exactly as the
    /// kernel would); inconclusive cycles fall back to the exact kernel.
    pub fn simulate_pair_minmax(
        &mut self,
        initializing: &[bool],
        sensitizing: &[bool],
    ) -> MinMaxDelays {
        match self.bounds.screen(initializing, sensitizing, &self.clock) {
            ScreenVerdict::Quiet => {
                self.hits += 1;
                MinMaxDelays {
                    min_ps: None,
                    max_ps: None,
                }
            }
            ScreenVerdict::Safe { min_ps, max_ps } => {
                self.hits += 1;
                MinMaxDelays {
                    min_ps: Some(min_ps),
                    max_ps: Some(max_ps),
                }
            }
            ScreenVerdict::Inconclusive => {
                self.misses += 1;
                self.inner.simulate_pair_minmax(initializing, sensitizing)
            }
        }
    }

    /// Full-activity simulation, screened (see the type docs for why only
    /// the no-toggled-inputs case is skipped).
    pub fn simulate_pair(&mut self, initializing: &[bool], sensitizing: &[bool]) -> CycleTiming {
        let mut out = CycleTiming::default();
        self.simulate_pair_into(initializing, sensitizing, &mut out);
        out
    }

    /// Buffer-reusing variant of [`simulate_pair`](Self::simulate_pair).
    pub fn simulate_pair_into(
        &mut self,
        initializing: &[bool],
        sensitizing: &[bool],
        out: &mut CycleTiming,
    ) {
        if initializing == sensitizing {
            self.hits += 1;
            // Settled cycle: every output holds its evaluated value, no
            // transitions anywhere — identical to what the kernel returns
            // for an identical vector pair.
            let vals = self.inner.netlist().eval(initializing);
            out.outputs.resize_with(vals.len(), Default::default);
            for (o, v) in out.outputs.iter_mut().zip(vals) {
                o.initial = v;
                o.final_value = v;
                o.transitions.clear();
            }
            out.min_delay_ps = None;
            out.max_delay_ps = None;
            out.total_output_transitions = 0;
            out.internal_toggles = 0;
            return;
        }
        self.misses += 1;
        self.inner
            .simulate_pair_into(initializing, sensitizing, out);
    }

    /// Cycles answered by the screen (kernel skipped).
    pub fn screen_hits(&self) -> u64 {
        self.hits
    }

    /// Cycles that fell back to the exact kernel.
    pub fn screen_misses(&self) -> u64 {
        self.misses
    }

    /// The clock the screen compares against.
    pub fn clock(&self) -> &ClockSpec {
        &self.clock
    }

    /// The bound tables in use.
    pub fn bounds(&self) -> &ScreenBounds {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::classify_cycle;
    use ntc_netlist::generators::alu::{Alu, AluFunc};
    use ntc_varmodel::{Corner, VariationParams};

    fn chip() -> (Alu, ChipSignature) {
        let alu = Alu::new(8);
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);
        (alu, sig)
    }

    fn bounds_of(alu: &Alu, sig: &ChipSignature) -> ScreenBounds {
        let sta = StaticTiming::analyze(alu.netlist(), sig);
        ScreenBounds::build(alu.netlist(), sig, &sta)
    }

    #[test]
    fn max_bound_over_inputs_equals_static_critical() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let sta = StaticTiming::analyze(alu.netlist(), &sig);
        assert!((b.static_critical_ps() - sta.critical_delay_ps(alu.netlist())).abs() < 1e-9);
    }

    #[test]
    fn identical_vectors_screen_quiet() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let v = alu.encode(AluFunc::Add, 0x5A, 0xC3);
        let clock = ClockSpec {
            period_ps: 1.0,
            hold_ps: 0.5,
        };
        assert_eq!(b.screen(&v, &v, &clock), ScreenVerdict::Quiet);
    }

    #[test]
    fn loose_clock_screens_safe_tight_clock_does_not() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let init = alu.encode(AluFunc::Mult, 0, 0);
        let sens = alu.encode(AluFunc::Mult, 0xFF, 0xFF);
        let (lo, hi) = b.cone_bounds(&init, &sens).expect("mult toggles inputs");
        assert!(lo <= hi);
        let loose = ClockSpec {
            period_ps: hi * 2.0,
            hold_ps: lo * 0.5,
        };
        assert!(matches!(
            b.screen(&init, &sens, &loose),
            ScreenVerdict::Safe { .. }
        ));
        let tight = ClockSpec {
            period_ps: hi * 0.5,
            hold_ps: lo * 0.5,
        };
        assert_eq!(b.screen(&init, &sens, &tight), ScreenVerdict::Inconclusive);
    }

    #[test]
    fn bounds_bracket_the_exact_kernel() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        for (f, a, x) in [
            (AluFunc::Add, 0xFFu64, 0x01u64),
            (AluFunc::Mult, 0xAB, 0xCD),
            (AluFunc::Xor, 0xF0, 0x0F),
            (AluFunc::Buffer, 0x00, 0x80),
        ] {
            let init = alu.encode(AluFunc::Buffer, 0, 0);
            let sens = alu.encode(f, a, x);
            let t = sim.simulate_pair_minmax(&init, &sens);
            let Some((lo, hi)) = b.cone_bounds(&init, &sens) else {
                assert_eq!(t.max_ps, None);
                continue;
            };
            if let Some(max) = t.max_ps {
                assert!(max <= hi + SCREEN_GUARD_PS, "{f:?}: {max} > bound {hi}");
            }
            if let Some(min) = t.min_ps {
                assert!(min >= lo - SCREEN_GUARD_PS, "{f:?}: {min} < bound {lo}");
            }
        }
    }

    #[test]
    fn screened_minmax_agrees_with_kernel_on_classification() {
        let (alu, sig) = chip();
        let b = Arc::new(bounds_of(&alu, &sig));
        // Period right at the envelope of one specific pair: the screen
        // accepts it as safe, and the kernel must agree that nothing
        // violates — the adversarial near-threshold case.
        let init = alu.encode(AluFunc::Add, 0x0F, 0x01);
        let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
        let (lo, hi) = b.cone_bounds(&init, &sens).expect("adder toggles");
        let clock = ClockSpec {
            period_ps: hi + SCREEN_GUARD_PS,
            hold_ps: lo - SCREEN_GUARD_PS,
        };
        let mut screened = ScreenedSim::new(alu.netlist(), &sig, b, clock);
        let s = screened.simulate_pair_minmax(&init, &sens);
        assert_eq!(screened.screen_hits(), 1, "cycle must be screened");
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let e = exact.simulate_pair_minmax(&init, &sens);
        // Both sides must classify as clean at the screened clock.
        for d in [s, e] {
            assert!(!d.max_ps.is_some_and(|m| m > clock.period_ps));
            assert!(!d.min_ps.is_some_and(|m| m < clock.hold_ps));
        }
    }

    #[test]
    fn screened_full_timing_is_exact() {
        let (alu, sig) = chip();
        let b = Arc::new(bounds_of(&alu, &sig));
        let clock = ClockSpec {
            period_ps: 1e6,
            hold_ps: 0.0,
        };
        let mut screened = ScreenedSim::new(alu.netlist(), &sig, b, clock);
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(AluFunc::Sub, 0x3C, 0xA5);
        let w = alu.encode(AluFunc::Sub, 0x3D, 0xA5);
        // Settled pair: skipped, yet byte-equal to the kernel.
        assert_eq!(screened.simulate_pair(&v, &v), exact.simulate_pair(&v, &v));
        assert_eq!(screened.screen_hits(), 1);
        // Toggling pair: never skipped regardless of clock slack, because
        // full activity must be exact.
        assert_eq!(screened.simulate_pair(&v, &w), exact.simulate_pair(&v, &w));
        assert_eq!(screened.screen_misses(), 1);
    }

    #[test]
    fn corrupted_bounds_admit_violations() {
        let (alu, sig) = chip();
        let honest = bounds_of(&alu, &sig);
        let init = alu.encode(AluFunc::Mult, 0, 0);
        let sens = alu.encode(AluFunc::Mult, 0xFF, 0xFF);
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let t = exact.simulate_pair_minmax(&init, &sens);
        let max = t.max_ps.expect("mult toggles outputs");
        // A clock the real circuit violates…
        let clock = ClockSpec {
            period_ps: max * 0.8,
            hold_ps: 0.0,
        };
        let ct = CycleTiming {
            min_delay_ps: t.min_ps,
            max_delay_ps: t.max_ps,
            ..Default::default()
        };
        assert!(classify_cycle(&ct, &clock).max, "fixture must violate");
        // …the honest screen abstains on, but an optimistic screen
        // wrongly declares safe — the bug the conformance battery exists
        // to catch.
        assert_eq!(
            honest.screen(&init, &sens, &clock),
            ScreenVerdict::Inconclusive
        );
        let buggy = bounds_of(&alu, &sig).corrupted_for_tests(0.5);
        assert!(matches!(
            buggy.screen(&init, &sens, &clock),
            ScreenVerdict::Safe { .. }
        ));
    }
}
