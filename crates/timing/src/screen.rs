//! Conservative per-cycle screening in front of the exact dynamic kernel
//! — the cheap first tier of the two-tier timing oracle.
//!
//! The exact kernel ([`crate::dynamic`]) pays an event-driven simulation
//! on every `(initializing, sensitizing)` vector pair, yet on most cycles
//! no sensitized path comes anywhere near the clock period (the FATE
//! observation). [`ScreenBounds`] precomputes, per net, the longest and
//! shortest delay from a toggle at that net to *any* primary output; a
//! per-cycle screen then maxes/mins those precomputed bounds over the
//! toggled primary inputs only. When even the resulting conservative
//! delay envelope cannot violate the clock, the kernel is provably
//! redundant and the cycle is skipped.
//!
//! # Soundness
//!
//! Every output transition the kernel emits occurs at a time of the form
//! `sum of gate delays along a combinational path from a toggled primary
//! input to an output` (the kernel only seeds events at toggled PIs, only
//! propagates them along gate fanout adding that gate's delay, and its
//! event dedup/truncation only ever *drops* interior events, keeping the
//! extremes). [`ScreenBounds::build`] relaxes exactly those path sums in
//! reverse topological order, so for a toggled input `i` every real
//! transition time `t` caused by `i` satisfies
//! `to_out_min[i] <= t <= to_out_max[i]`. Taking the min/max over the
//! toggled inputs of a cycle therefore brackets every transition the
//! kernel could produce:
//!
//! * no toggled input reaches an output → the kernel produces no output
//!   transitions at all ([`ScreenVerdict::Quiet`], exact);
//! * `max bound + guard <= period` and `min bound - guard >= hold` → the
//!   cycle cannot violate either clock edge ([`ScreenVerdict::Safe`]);
//! * otherwise the screen abstains ([`ScreenVerdict::Inconclusive`]) and
//!   the exact kernel runs.
//!
//! The screen never claims a violation and never replaces an unsafe
//! cycle's delays — consumers that only *threshold* the delays against
//! the screened clock (every `ResilienceScheme` in `ntc-core`) observe
//! results identical to the exact kernel's. [`SCREEN_GUARD_PS`] absorbs
//! the ulp-level difference between the reverse-accumulated bound and the
//! kernel's forward-order path sums.

use crate::dynamic::{CycleTiming, DynamicSim, MinMaxDelays};
use crate::errors::ClockSpec;
use crate::sta::StaticTiming;
use ntc_netlist::Netlist;
use ntc_varmodel::ChipSignature;
use std::sync::Arc;

/// Safety margin (ps) added to the screen's comparisons against the clock
/// thresholds. The bound tables accumulate gate delays output-to-input
/// while the kernel sums them input-to-output; floating-point addition is
/// not associative, so the two can differ by a few ulps. One microsecond
/// of a picosecond dwarfs any such error yet is far below the ~0.1 ps
/// scale at which delays become behaviourally distinct.
pub const SCREEN_GUARD_PS: f64 = 1e-6;

/// Per-net toggle-to-output delay bounds for one fabricated chip,
/// precomputed once and shared (via [`Arc`]) by every screen user bound
/// to that chip.
#[derive(Debug, Clone)]
pub struct ScreenBounds {
    /// `to_out[n] = (min, max)`: shortest and longest delay from a toggle
    /// at net `n` to any primary output; `(+inf, -inf)` when no output is
    /// reachable from `n`. Min and max interleave so one fanout visit in
    /// [`fold_net`](Self::fold_net) touches one cache line, not two — the
    /// incremental refresh ([`crate::incr`]) gathers these at random net
    /// indices, where the extra line is a real miss.
    to_out: Vec<(f64, f64)>,
    /// Whether net `n` is a primary output — the seed of its own fold
    /// (a toggle at an output is already *at* an output, delay `0.0`).
    is_output: Vec<bool>,
    /// Net index of each primary input, in port order (the order of the
    /// kernel's `initializing`/`sensitizing` vectors).
    inputs: Vec<u32>,
    /// The chip's static critical delay, kept for diagnostics.
    static_critical_ps: f64,
}

impl ScreenBounds {
    /// Build the bound tables for `nl` under delay signature `sig`.
    ///
    /// `sta` must be the [`StaticTiming`] analysis of the same
    /// `(nl, sig)` pair; the tables fold their cross-check against *its*
    /// critical delay rather than re-deriving arrivals of their own (the
    /// longest toggle-to-output delay over all primary inputs must equal
    /// the static critical delay).
    ///
    /// Each net's bounds come from one descending-order **gather** over
    /// the netlist's CSR fanout index — the same per-net fold the
    /// incremental engine ([`crate::incr`]) replays on dirty cones, so a
    /// refreshed table is bit-for-bit a rebuilt one. (The gather visits
    /// the identical candidate set the historical input-scatter formulation
    /// produced; `f64::max`/`min` select among identical sums, so the
    /// stored bits are unchanged.)
    ///
    /// # Panics
    ///
    /// Panics if the signature length does not match the netlist, or if
    /// the bound tables disagree with the static analysis.
    pub fn build(nl: &Netlist, sig: &ChipSignature, sta: &StaticTiming) -> Self {
        Self::build_from_delays(nl, sig.delays_ps(), sta)
    }

    /// [`build`](Self::build) from a bare per-gate delay slice — what the
    /// incremental engine ([`crate::incr`]) holds once the signature is
    /// loaded, so it can (re)build tables on demand without a
    /// [`ChipSignature`] round-trip. Same table bits as `build` for the
    /// signature the slice came from.
    ///
    /// # Panics
    ///
    /// Panics if the delay slice length does not match the netlist, or if
    /// the bound tables disagree with the static analysis.
    pub fn build_from_delays(nl: &Netlist, delays: &[f64], sta: &StaticTiming) -> Self {
        assert_eq!(delays.len(), nl.len(), "signature/netlist mismatch");
        let n = nl.len();
        let mut bounds = ScreenBounds {
            to_out: vec![(f64::INFINITY, f64::NEG_INFINITY); n],
            is_output: vec![false; n],
            inputs: nl.inputs().iter().map(|s| s.index() as u32).collect(),
            static_critical_ps: sta.critical_delay_ps(nl),
        };
        for s in nl.outputs() {
            bounds.is_output[s.index()] = true;
        }
        // Nets are in topological order by ascending index, so one
        // descending pass folds every net after its entire fanout is final.
        for j in (0..n).rev() {
            let (lo, hi) = bounds.fold_net(nl, delays, j);
            bounds.to_out[j] = (lo, hi);
        }
        bounds.check_against_critical();
        bounds
    }

    /// Gather one net's toggle-to-output bounds from the *current* table
    /// state of its fanout gates: a toggle at net `j` that propagates
    /// through fanout gate `g` reaches the outputs `g` reaches, delayed by
    /// `g`'s own delay — mirroring the forward convention of `sta.rs`
    /// (primary inputs are pseudo gates and contribute no delay; a path's
    /// delay includes the output gate's). Output nets seed at `0.0` (a
    /// toggle there *is* at an output).
    ///
    /// This is the one canonical per-net fold: [`build`](Self::build)
    /// calls it for every net, the incremental refresh only for dirty
    /// ones — identical fanout state folds to identical bits.
    #[inline]
    pub(crate) fn fold_net(&self, nl: &Netlist, delays: &[f64], j: usize) -> (f64, f64) {
        let (mut lo, mut hi) = if self.is_output[j] {
            (0.0f64, 0.0f64)
        } else {
            (f64::INFINITY, f64::NEG_INFINITY)
        };
        for &g in nl.fanout_of_index(j) {
            let (gl, gh) = self.to_out[g as usize];
            if gh == f64::NEG_INFINITY {
                continue; // no output reachable through this fanout gate
            }
            let d = delays[g as usize];
            hi = hi.max(gh + d);
            lo = lo.min(gl + d);
        }
        (lo, hi)
    }

    /// Store one net's bounds (incremental-refresh write access).
    #[inline]
    pub(crate) fn set_net(&mut self, j: usize, lo: f64, hi: f64) {
        self.to_out[j] = (lo, hi);
    }

    /// The `(min, max)` toggle-to-output bound of net `j` — `(+inf, -inf)`
    /// when no output is reachable from `j`. The incremental refresh's
    /// convergence test reads this, and the differential suite compares
    /// refreshed tables against rebuilt ones through it.
    #[inline]
    pub fn net_bounds(&self, j: usize) -> (f64, f64) {
        self.to_out[j]
    }

    /// Replace the cached static critical delay (the incremental refresh
    /// re-derives it from the updated [`StaticTiming`]).
    pub(crate) fn set_static_critical_ps(&mut self, ps: f64) {
        self.static_critical_ps = ps;
    }

    /// Cross-check the tables against the recorded static critical delay:
    /// the longest toggle-to-output bound over the primary inputs must
    /// equal it. Called after every full build *and* incremental refresh.
    ///
    /// # Panics
    ///
    /// Panics when the tables and the static analysis disagree.
    pub(crate) fn check_against_critical(&self) {
        let table_critical = self
            .inputs
            .iter()
            .map(|&i| self.to_out[i as usize].1)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (table_critical - self.static_critical_ps).abs() <= SCREEN_GUARD_PS,
            "screen bound tables disagree with STA: {table_critical} vs {}",
            self.static_critical_ps
        );
    }

    /// Number of nets the tables were built for (= `netlist.len()`).
    pub fn len(&self) -> usize {
        self.to_out.len()
    }

    /// True for a degenerate netlist with no nets.
    pub fn is_empty(&self) -> bool {
        self.to_out.is_empty()
    }

    /// The chip's static critical delay the tables were checked against.
    pub fn static_critical_ps(&self) -> f64 {
        self.static_critical_ps
    }

    /// The conservative delay envelope of the cycle: `(min, max)` bounds
    /// over every transition the kernel could emit for this vector pair,
    /// or `None` when no toggled input reaches an output (the kernel
    /// would emit nothing).
    ///
    /// # Panics
    ///
    /// Panics if the vectors' length differs from the primary input count.
    pub fn cone_bounds(&self, init: &[bool], sens: &[bool]) -> Option<(f64, f64)> {
        assert_eq!(init.len(), self.inputs.len(), "initializing vector width");
        assert_eq!(sens.len(), self.inputs.len(), "sensitizing vector width");
        let mut hi = f64::NEG_INFINITY;
        let mut lo = f64::INFINITY;
        // Same toggle condition as the kernel's seeding loop: an input
        // participates iff its sensitizing value differs from its settled
        // (initializing) value.
        for (k, &net) in self.inputs.iter().enumerate() {
            if init[k] != sens[k] {
                let (l, h) = self.to_out[net as usize];
                hi = hi.max(h);
                lo = lo.min(l);
            }
        }
        (hi != f64::NEG_INFINITY).then_some((lo, hi))
    }

    /// Screen one cycle against `clock`.
    pub fn screen(&self, init: &[bool], sens: &[bool], clock: &ClockSpec) -> ScreenVerdict {
        match self.cone_bounds(init, sens) {
            None => ScreenVerdict::Quiet,
            Some((lo, hi)) => {
                if hi + SCREEN_GUARD_PS <= clock.period_ps && lo - SCREEN_GUARD_PS >= clock.hold_ps
                {
                    ScreenVerdict::Safe {
                        min_ps: lo,
                        max_ps: hi,
                    }
                } else {
                    ScreenVerdict::Inconclusive
                }
            }
        }
    }

    /// Deliberately corrupt the tables into an *optimistic* (unsound)
    /// bound: max bounds scaled down by `factor`, min bounds scaled up by
    /// `1/factor`. Exists solely so the conformance suite can prove it
    /// catches a buggy screen; never call outside tests.
    #[doc(hidden)]
    pub fn corrupted_for_tests(mut self, factor: f64) -> Self {
        assert!((0.0..1.0).contains(&factor));
        for (lo, hi) in &mut self.to_out {
            if hi.is_finite() {
                *hi *= factor;
            }
            if lo.is_finite() {
                *lo /= factor;
            }
        }
        self
    }
}

/// Outcome of screening one cycle against a clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScreenVerdict {
    /// No toggled primary input reaches any output: the kernel would emit
    /// no output transitions at all. Exact, not merely safe.
    Quiet,
    /// Every possible transition lies inside `[hold, period]` at both
    /// clock edges; the bracketing bounds are returned as stand-in
    /// delays. Conservative: the true extremes lie within `[min, max]`.
    Safe {
        /// Lower bound on the earliest possible output transition, ps.
        min_ps: f64,
        /// Upper bound on the latest possible output transition, ps.
        max_ps: f64,
    },
    /// The envelope crosses a threshold — only the exact kernel can tell.
    Inconclusive,
}

/// A screened dynamic simulator: [`DynamicSim`] behind a [`ScreenBounds`]
/// filter, skipping the exact kernel on cycles the screen proves safe for
/// the wrapped clock.
///
/// [`simulate_pair_minmax`](Self::simulate_pair_minmax) is the fast path:
/// a [`ScreenVerdict::Safe`] cycle returns the conservative envelope
/// without simulating — interchangeable with the exact result for any
/// consumer that only compares the delays against the screened clock's
/// thresholds. The full-activity entry points
/// ([`simulate_pair`](Self::simulate_pair) /
/// [`simulate_pair_into`](Self::simulate_pair_into)) must report exact
/// per-output waveforms and internal toggle counts, which a skipped
/// simulation cannot reconstruct, so they only short-circuit the
/// [`ScreenVerdict::Quiet`] case with *no toggled inputs at all* — there
/// the settled activity is fully determined by evaluation.
#[derive(Debug)]
pub struct ScreenedSim<'a> {
    inner: DynamicSim<'a>,
    bounds: Arc<ScreenBounds>,
    clock: ClockSpec,
    hits: u64,
    misses: u64,
}

impl<'a> ScreenedSim<'a> {
    /// Wrap a dynamic simulator for `(nl, sig)` behind `bounds`, screening
    /// against `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` was built for a different netlist (length
    /// mismatch).
    pub fn new(
        nl: &'a Netlist,
        sig: &'a ChipSignature,
        bounds: Arc<ScreenBounds>,
        clock: ClockSpec,
    ) -> Self {
        assert_eq!(bounds.len(), nl.len(), "screen bounds/netlist mismatch");
        ScreenedSim {
            inner: DynamicSim::new(nl, sig),
            bounds,
            clock,
            hits: 0,
            misses: 0,
        }
    }

    /// Screen the pair without simulating: the verdict the min/max fast
    /// path acts on.
    pub fn verdict(&self, initializing: &[bool], sensitizing: &[bool]) -> ScreenVerdict {
        self.bounds.screen(initializing, sensitizing, &self.clock)
    }

    /// Min/max sensitized delays, screened: safe cycles return the
    /// conservative envelope (quiet cycles `None`/`None`, exactly as the
    /// kernel would); inconclusive cycles fall back to the exact kernel.
    pub fn simulate_pair_minmax(
        &mut self,
        initializing: &[bool],
        sensitizing: &[bool],
    ) -> MinMaxDelays {
        match self.bounds.screen(initializing, sensitizing, &self.clock) {
            ScreenVerdict::Quiet => {
                self.hits += 1;
                MinMaxDelays {
                    min_ps: None,
                    max_ps: None,
                }
            }
            ScreenVerdict::Safe { min_ps, max_ps } => {
                self.hits += 1;
                MinMaxDelays {
                    min_ps: Some(min_ps),
                    max_ps: Some(max_ps),
                }
            }
            ScreenVerdict::Inconclusive => {
                self.misses += 1;
                self.inner.simulate_pair_minmax(initializing, sensitizing)
            }
        }
    }

    /// Full-activity simulation, screened (see the type docs for why only
    /// the no-toggled-inputs case is skipped).
    pub fn simulate_pair(&mut self, initializing: &[bool], sensitizing: &[bool]) -> CycleTiming {
        let mut out = CycleTiming::default();
        self.simulate_pair_into(initializing, sensitizing, &mut out);
        out
    }

    /// Buffer-reusing variant of [`simulate_pair`](Self::simulate_pair).
    pub fn simulate_pair_into(
        &mut self,
        initializing: &[bool],
        sensitizing: &[bool],
        out: &mut CycleTiming,
    ) {
        if initializing == sensitizing {
            self.hits += 1;
            // Settled cycle: every output holds its evaluated value, no
            // transitions anywhere — identical to what the kernel returns
            // for an identical vector pair.
            let vals = self.inner.netlist().eval(initializing);
            out.outputs.resize_with(vals.len(), Default::default);
            for (o, v) in out.outputs.iter_mut().zip(vals) {
                o.initial = v;
                o.final_value = v;
                o.transitions.clear();
            }
            out.min_delay_ps = None;
            out.max_delay_ps = None;
            out.total_output_transitions = 0;
            out.internal_toggles = 0;
            return;
        }
        self.misses += 1;
        self.inner
            .simulate_pair_into(initializing, sensitizing, out);
    }

    /// Cycles answered by the screen (kernel skipped).
    pub fn screen_hits(&self) -> u64 {
        self.hits
    }

    /// Cycles that fell back to the exact kernel.
    pub fn screen_misses(&self) -> u64 {
        self.misses
    }

    /// The clock the screen compares against.
    pub fn clock(&self) -> &ClockSpec {
        &self.clock
    }

    /// The bound tables in use.
    pub fn bounds(&self) -> &ScreenBounds {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::classify_cycle;
    use ntc_netlist::generators::alu::{Alu, AluFunc};
    use ntc_varmodel::{Corner, VariationParams};

    fn chip() -> (Alu, ChipSignature) {
        let alu = Alu::new(8);
        let sig =
            ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);
        (alu, sig)
    }

    fn bounds_of(alu: &Alu, sig: &ChipSignature) -> ScreenBounds {
        let sta = StaticTiming::analyze(alu.netlist(), sig);
        ScreenBounds::build(alu.netlist(), sig, &sta)
    }

    #[test]
    fn max_bound_over_inputs_equals_static_critical() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let sta = StaticTiming::analyze(alu.netlist(), &sig);
        assert!((b.static_critical_ps() - sta.critical_delay_ps(alu.netlist())).abs() < 1e-9);
    }

    #[test]
    fn identical_vectors_screen_quiet() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let v = alu.encode(AluFunc::Add, 0x5A, 0xC3);
        let clock = ClockSpec {
            period_ps: 1.0,
            hold_ps: 0.5,
        };
        assert_eq!(b.screen(&v, &v, &clock), ScreenVerdict::Quiet);
    }

    #[test]
    fn loose_clock_screens_safe_tight_clock_does_not() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let init = alu.encode(AluFunc::Mult, 0, 0);
        let sens = alu.encode(AluFunc::Mult, 0xFF, 0xFF);
        let (lo, hi) = b.cone_bounds(&init, &sens).expect("mult toggles inputs");
        assert!(lo <= hi);
        let loose = ClockSpec {
            period_ps: hi * 2.0,
            hold_ps: lo * 0.5,
        };
        assert!(matches!(
            b.screen(&init, &sens, &loose),
            ScreenVerdict::Safe { .. }
        ));
        let tight = ClockSpec {
            period_ps: hi * 0.5,
            hold_ps: lo * 0.5,
        };
        assert_eq!(b.screen(&init, &sens, &tight), ScreenVerdict::Inconclusive);
    }

    #[test]
    fn bounds_bracket_the_exact_kernel() {
        let (alu, sig) = chip();
        let b = bounds_of(&alu, &sig);
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        for (f, a, x) in [
            (AluFunc::Add, 0xFFu64, 0x01u64),
            (AluFunc::Mult, 0xAB, 0xCD),
            (AluFunc::Xor, 0xF0, 0x0F),
            (AluFunc::Buffer, 0x00, 0x80),
        ] {
            let init = alu.encode(AluFunc::Buffer, 0, 0);
            let sens = alu.encode(f, a, x);
            let t = sim.simulate_pair_minmax(&init, &sens);
            let Some((lo, hi)) = b.cone_bounds(&init, &sens) else {
                assert_eq!(t.max_ps, None);
                continue;
            };
            if let Some(max) = t.max_ps {
                assert!(max <= hi + SCREEN_GUARD_PS, "{f:?}: {max} > bound {hi}");
            }
            if let Some(min) = t.min_ps {
                assert!(min >= lo - SCREEN_GUARD_PS, "{f:?}: {min} < bound {lo}");
            }
        }
    }

    #[test]
    fn screened_minmax_agrees_with_kernel_on_classification() {
        let (alu, sig) = chip();
        let b = Arc::new(bounds_of(&alu, &sig));
        // Period right at the envelope of one specific pair: the screen
        // accepts it as safe, and the kernel must agree that nothing
        // violates — the adversarial near-threshold case.
        let init = alu.encode(AluFunc::Add, 0x0F, 0x01);
        let sens = alu.encode(AluFunc::Add, 0xFF, 0x01);
        let (lo, hi) = b.cone_bounds(&init, &sens).expect("adder toggles");
        let clock = ClockSpec {
            period_ps: hi + SCREEN_GUARD_PS,
            hold_ps: lo - SCREEN_GUARD_PS,
        };
        let mut screened = ScreenedSim::new(alu.netlist(), &sig, b, clock);
        let s = screened.simulate_pair_minmax(&init, &sens);
        assert_eq!(screened.screen_hits(), 1, "cycle must be screened");
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let e = exact.simulate_pair_minmax(&init, &sens);
        // Both sides must classify as clean at the screened clock.
        for d in [s, e] {
            assert!(!d.max_ps.is_some_and(|m| m > clock.period_ps));
            assert!(!d.min_ps.is_some_and(|m| m < clock.hold_ps));
        }
    }

    #[test]
    fn screened_full_timing_is_exact() {
        let (alu, sig) = chip();
        let b = Arc::new(bounds_of(&alu, &sig));
        let clock = ClockSpec {
            period_ps: 1e6,
            hold_ps: 0.0,
        };
        let mut screened = ScreenedSim::new(alu.netlist(), &sig, b, clock);
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let v = alu.encode(AluFunc::Sub, 0x3C, 0xA5);
        let w = alu.encode(AluFunc::Sub, 0x3D, 0xA5);
        // Settled pair: skipped, yet byte-equal to the kernel.
        assert_eq!(screened.simulate_pair(&v, &v), exact.simulate_pair(&v, &v));
        assert_eq!(screened.screen_hits(), 1);
        // Toggling pair: never skipped regardless of clock slack, because
        // full activity must be exact.
        assert_eq!(screened.simulate_pair(&v, &w), exact.simulate_pair(&v, &w));
        assert_eq!(screened.screen_misses(), 1);
    }

    #[test]
    fn corrupted_bounds_admit_violations() {
        let (alu, sig) = chip();
        let honest = bounds_of(&alu, &sig);
        let init = alu.encode(AluFunc::Mult, 0, 0);
        let sens = alu.encode(AluFunc::Mult, 0xFF, 0xFF);
        let mut exact = DynamicSim::new(alu.netlist(), &sig);
        let t = exact.simulate_pair_minmax(&init, &sens);
        let max = t.max_ps.expect("mult toggles outputs");
        // A clock the real circuit violates…
        let clock = ClockSpec {
            period_ps: max * 0.8,
            hold_ps: 0.0,
        };
        let ct = CycleTiming {
            min_delay_ps: t.min_ps,
            max_delay_ps: t.max_ps,
            ..Default::default()
        };
        assert!(classify_cycle(&ct, &clock).max, "fixture must violate");
        // …the honest screen abstains on, but an optimistic screen
        // wrongly declares safe — the bug the conformance battery exists
        // to catch.
        assert_eq!(
            honest.screen(&init, &sens, &clock),
            ScreenVerdict::Inconclusive
        );
        let buggy = bounds_of(&alu, &sig).corrupted_for_tests(0.5);
        assert!(matches!(
            buggy.screen(&init, &sens, &clock),
            ScreenVerdict::Safe { .. }
        ));
    }
}
