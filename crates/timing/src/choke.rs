//! Choke-point analysis: the CDL / CGL metrics of the paper's motivation
//! study.
//!
//! * **CDL** (Choke Delay Level): the extra delay a choke point adds to
//!   create the new critical path, as a percentage of the nominal critical
//!   path delay of the sensitized operation.
//! * **CGL** (Choke Gate Level): the number of gates forming the choke
//!   point, as a percentage of the total logic gates in the circuit.
//!
//! A low CGL together with a high CDL marks a *highly potent* choke point —
//! a tiny set of PV-affected gates dominating an entire path.

use ntc_netlist::Netlist;
use ntc_varmodel::ChipSignature;
use std::fmt;

/// CDL categories as used by Fig. 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CdlCategory {
    /// CDL in (0 %, 5 %].
    Low,
    /// CDL in (5 %, 10 %].
    MediumLow,
    /// CDL in (10 %, 20 %].
    MediumHigh,
    /// CDL above 20 %.
    High,
}

/// All CDL categories, in increasing-severity order.
pub const ALL_CDL_CATEGORIES: [CdlCategory; 4] = [
    CdlCategory::Low,
    CdlCategory::MediumLow,
    CdlCategory::MediumHigh,
    CdlCategory::High,
];

impl CdlCategory {
    /// Classify a CDL percentage; returns `None` for non-positive CDL
    /// (no overshoot, hence no choke path).
    pub fn of(cdl_pct: f64) -> Option<Self> {
        if cdl_pct <= 0.0 {
            None
        } else if cdl_pct <= 5.0 {
            Some(CdlCategory::Low)
        } else if cdl_pct <= 10.0 {
            Some(CdlCategory::MediumLow)
        } else if cdl_pct <= 20.0 {
            Some(CdlCategory::MediumHigh)
        } else {
            Some(CdlCategory::High)
        }
    }

    /// The paper's label for this category.
    pub fn label(self) -> &'static str {
        match self {
            CdlCategory::Low => "CDL_L",
            CdlCategory::MediumLow => "CDL_ML",
            CdlCategory::MediumHigh => "CDL_MH",
            CdlCategory::High => "CDL_H",
        }
    }
}

impl fmt::Display for CdlCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One observed choke event: a sensitized cycle whose delay overshot the
/// operation's nominal critical delay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChokeEvent {
    /// Choke Delay Level, percent of the nominal critical delay.
    pub cdl_pct: f64,
    /// Choke Gate Level, percent of total logic gates.
    pub cgl_pct: f64,
    /// The minimal set of sensitized PV-affected gates accounting for the
    /// overshoot (greedy, largest deviation first).
    pub choke_gates: Vec<usize>,
}

impl ChokeEvent {
    /// The CDL category of this event (`None` never occurs for constructed
    /// events, which always have positive CDL).
    pub fn category(&self) -> CdlCategory {
        CdlCategory::of(self.cdl_pct).expect("choke events have positive CDL")
    }
}

/// Identify the choke event (if any) in one sensitized cycle.
///
/// * `d_pv_ps` — the cycle's observed (PV-affected) max sensitized delay;
/// * `d_nominal_ps` — the operation's nominal critical delay on a PV-free
///   chip;
/// * `sensitized` — gate indices that toggled this cycle
///   ([`DynamicSim::sensitized_gates`](crate::DynamicSim::sensitized_gates)).
///
/// The choke-gate set is the smallest set of sensitized gates whose delay
/// deviations (post-silicon minus nominal), removed, would bring the cycle
/// back under the nominal critical delay — taking the largest deviations
/// first. Returns `None` when the cycle does not overshoot.
pub fn identify_choke_event(
    nl: &Netlist,
    sig: &ChipSignature,
    sensitized: &[usize],
    d_pv_ps: f64,
    d_nominal_ps: f64,
) -> Option<ChokeEvent> {
    if d_pv_ps <= d_nominal_ps || d_nominal_ps <= 0.0 {
        return None;
    }
    let overshoot = d_pv_ps - d_nominal_ps;
    // Positive deviations of sensitized gates, largest first.
    let mut devs: Vec<(usize, f64)> = sensitized
        .iter()
        .map(|&g| (g, sig.delay_ps(g) - sig.nominal_ps(g)))
        .filter(|(_, d)| *d > 0.0)
        .collect();
    devs.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut covered = 0.0;
    let mut choke_gates = Vec::new();
    for (g, d) in devs {
        if covered >= overshoot {
            break;
        }
        covered += d;
        choke_gates.push(g);
    }
    if choke_gates.is_empty() {
        // Overshoot without any slow sensitized gate (cannot happen with a
        // consistent signature, but guard against numerical noise).
        return None;
    }
    let cdl_pct = 100.0 * overshoot / d_nominal_ps;
    let cgl_pct = 100.0 * choke_gates.len() as f64 / nl.logic_gate_count().max(1) as f64;
    Some(ChokeEvent {
        cdl_pct,
        cgl_pct,
        choke_gates,
    })
}

/// Accumulates, per CDL category, the minimum CGL observed — the quantity
/// Fig. 3.2 plots ("how few gates suffice to reach this CDL band").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CdlCglProfile {
    /// Minimum CGL seen in each category (index order of
    /// [`ALL_CDL_CATEGORIES`]); `None` until a sample lands in the band.
    pub min_cgl_pct: [Option<f64>; 4],
    /// Maximum CDL observed overall, percent.
    pub max_cdl_pct: f64,
    /// Number of choke events recorded.
    pub events: usize,
}

impl CdlCglProfile {
    /// Create an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one choke event into the profile.
    pub fn record(&mut self, ev: &ChokeEvent) {
        let idx = ALL_CDL_CATEGORIES
            .iter()
            .position(|&c| c == ev.category())
            .expect("category is in the list");
        let slot = &mut self.min_cgl_pct[idx];
        *slot = Some(match *slot {
            Some(cur) => cur.min(ev.cgl_pct),
            None => ev.cgl_pct,
        });
        self.max_cdl_pct = self.max_cdl_pct.max(ev.cdl_pct);
        self.events += 1;
    }

    /// Fold another profile into this one — the parallel-sweep reduction:
    /// per-category minimum CGL, overall maximum CDL, summed event count.
    /// All three folds are commutative and exact (no floating-point
    /// accumulation), so merge order cannot change the result.
    pub fn merge(&mut self, other: &CdlCglProfile) {
        for (slot, o) in self.min_cgl_pct.iter_mut().zip(&other.min_cgl_pct) {
            *slot = match (*slot, *o) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        self.max_cdl_pct = self.max_cdl_pct.max(other.max_cdl_pct);
        self.events += other.events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::Alu;
    use ntc_varmodel::Corner;

    #[test]
    fn categories_cover_the_range() {
        assert_eq!(CdlCategory::of(0.0), None);
        assert_eq!(CdlCategory::of(-2.0), None);
        assert_eq!(CdlCategory::of(3.0), Some(CdlCategory::Low));
        assert_eq!(CdlCategory::of(5.0), Some(CdlCategory::Low));
        assert_eq!(CdlCategory::of(7.5), Some(CdlCategory::MediumLow));
        assert_eq!(CdlCategory::of(15.0), Some(CdlCategory::MediumHigh));
        assert_eq!(CdlCategory::of(27.0), Some(CdlCategory::High));
    }

    #[test]
    fn no_overshoot_no_event() {
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        assert!(identify_choke_event(alu.netlist(), &sig, &[5, 6], 100.0, 100.0).is_none());
        assert!(identify_choke_event(alu.netlist(), &sig, &[5, 6], 90.0, 100.0).is_none());
    }

    #[test]
    fn injected_choke_is_identified() {
        let alu = Alu::new(8);
        let mut sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        // Find a logic gate and make it 10x slower.
        let g = alu
            .netlist()
            .gates()
            .iter()
            .position(|x| !x.kind().is_pseudo())
            .expect("logic gate");
        sig.inject_choke(&[g], 10.0);
        let extra = sig.delay_ps(g) - sig.nominal_ps(g);
        let d_nom = 500.0;
        let d_pv = d_nom + extra * 0.8; // overshoot attributable to g alone
        let ev = identify_choke_event(alu.netlist(), &sig, &[g, g + 1], d_pv, d_nom)
            .expect("choke event");
        assert_eq!(ev.choke_gates, vec![g]);
        assert!(ev.cdl_pct > 0.0);
        assert!(ev.cgl_pct > 0.0 && ev.cgl_pct < 1.0);
    }

    #[test]
    fn greedy_takes_largest_deviation_first() {
        let alu = Alu::new(8);
        let mut sig = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let gates: Vec<usize> = alu
            .netlist()
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, x)| !x.kind().is_pseudo())
            .map(|(i, _)| i)
            .take(3)
            .collect();
        sig.inject_choke(&[gates[0]], 2.0);
        sig.inject_choke(&[gates[1]], 20.0);
        sig.inject_choke(&[gates[2]], 3.0);
        let big_dev = sig.delay_ps(gates[1]) - sig.nominal_ps(gates[1]);
        let ev = identify_choke_event(alu.netlist(), &sig, &gates, 500.0 + big_dev * 0.5, 500.0)
            .expect("event");
        assert_eq!(ev.choke_gates[0], gates[1], "largest deviation first");
        assert_eq!(ev.choke_gates.len(), 1);
    }

    #[test]
    fn profile_records_min_cgl_per_band() {
        let mut p = CdlCglProfile::new();
        p.record(&ChokeEvent {
            cdl_pct: 3.0,
            cgl_pct: 0.5,
            choke_gates: vec![1],
        });
        p.record(&ChokeEvent {
            cdl_pct: 4.0,
            cgl_pct: 0.2,
            choke_gates: vec![2],
        });
        p.record(&ChokeEvent {
            cdl_pct: 25.0,
            cgl_pct: 0.9,
            choke_gates: vec![3, 4],
        });
        assert_eq!(p.events, 3);
        assert_eq!(p.min_cgl_pct[0], Some(0.2));
        assert_eq!(p.min_cgl_pct[3], Some(0.9));
        assert_eq!(p.min_cgl_pct[1], None);
        assert!((p.max_cdl_pct - 25.0).abs() < 1e-12);
    }
}
