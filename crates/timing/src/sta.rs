//! Static timing analysis: earliest/latest possible arrival times under a
//! per-chip delay signature, and critical-path extraction.
//!
//! Static analysis is topological and input-independent (every path is
//! assumed sensitizable); the *dynamic* analysis in [`crate::dynamic`]
//! refines this with actual input vectors.

use ntc_varmodel::ChipSignature;
use ntc_netlist::{Netlist, Signal};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`StaticTiming::analyze`] runs, for regression
/// tests that pin how often the (linear but non-free) analysis executes —
/// e.g. that the chip memo pool builds each chip's tables exactly once.
static ANALYSIS_COUNT: AtomicU64 = AtomicU64::new(0);

/// Total [`StaticTiming::analyze`] invocations in this process so far.
pub fn analysis_count() -> u64 {
    ANALYSIS_COUNT.load(Ordering::Relaxed)
}

/// Static arrival times for every signal of a netlist under one chip's
/// delay signature.
#[derive(Debug, Clone, Default)]
pub struct StaticTiming {
    max_arrival: Vec<f64>,
    min_arrival: Vec<f64>,
}

impl StaticTiming {
    /// An empty analysis holding no arrival state — a target for
    /// [`analyze_into`](Self::analyze_into) when the caller retains the
    /// buffers across chips (the incremental engine, the chip memo pool).
    pub fn with_capacity(n: usize) -> Self {
        StaticTiming {
            max_arrival: Vec::with_capacity(n),
            min_arrival: Vec::with_capacity(n),
        }
    }

    /// Run static min/max arrival analysis.
    ///
    /// # Panics
    ///
    /// Panics if the signature was fabricated for a different netlist
    /// (length mismatch).
    pub fn analyze(nl: &Netlist, sig: &ChipSignature) -> Self {
        let mut t = StaticTiming::with_capacity(nl.len());
        t.analyze_into(nl, sig);
        t
    }

    /// Run a full analysis *into* this instance, reusing its arrival
    /// buffers — no per-chip allocations once the buffers have grown to
    /// the netlist's size. [`analyze`](Self::analyze) routes through this.
    ///
    /// # Panics
    ///
    /// Panics if the signature was fabricated for a different netlist
    /// (length mismatch).
    pub fn analyze_into(&mut self, nl: &Netlist, sig: &ChipSignature) {
        assert_eq!(
            sig.delays_ps().len(),
            nl.len(),
            "signature/netlist mismatch"
        );
        ANALYSIS_COUNT.fetch_add(1, Ordering::Relaxed);
        crate::incr::note_full_analysis();
        let n = nl.len();
        self.max_arrival.clear();
        self.max_arrival.resize(n, 0.0);
        self.min_arrival.clear();
        self.min_arrival.resize(n, 0.0);
        for (i, gate) in nl.gates().iter().enumerate() {
            if gate.kind().is_pseudo() {
                continue;
            }
            let (lo, hi) = fold_gate_arrivals(gate, &self.min_arrival, &self.max_arrival);
            let d = sig.delay_ps(i);
            self.min_arrival[i] = lo + d;
            self.max_arrival[i] = hi + d;
        }
    }

    /// Re-fold one gate's arrivals from the current state of this
    /// analysis — *exactly* the fold [`analyze_into`](Self::analyze_into)
    /// performs for that gate, so a recompute from unchanged inputs is
    /// bit-for-bit the stored value. This is the primitive the
    /// incremental engine's dirty worklist is built on.
    ///
    /// Returns the `(min, max)` arrival the gate takes under delay `d`.
    #[inline]
    pub(crate) fn refold_gate(&self, gate: &ntc_netlist::Gate, d: f64) -> (f64, f64) {
        let (lo, hi) = fold_gate_arrivals(gate, &self.min_arrival, &self.max_arrival);
        (lo + d, hi + d)
    }

    /// Store the arrivals of one gate (incremental-engine write access).
    #[inline]
    pub(crate) fn set_arrivals(&mut self, idx: usize, min_ps: f64, max_ps: f64) {
        self.min_arrival[idx] = min_ps;
        self.max_arrival[idx] = max_ps;
    }

    /// Latest possible arrival at signal index `idx`, ps.
    #[inline]
    pub fn max_arrival(&self, idx: usize) -> f64 {
        self.max_arrival[idx]
    }

    /// Earliest possible arrival at signal index `idx`, ps.
    #[inline]
    pub fn min_arrival(&self, idx: usize) -> f64 {
        self.min_arrival[idx]
    }

    /// The circuit's static critical-path delay: max arrival over outputs.
    pub fn critical_delay_ps(&self, nl: &Netlist) -> f64 {
        nl.outputs()
            .iter()
            .map(|s| self.max_arrival[s.index()])
            .fold(0.0, f64::max)
    }

    /// The circuit's shortest output arrival: min arrival over outputs.
    pub fn shortest_delay_ps(&self, nl: &Netlist) -> f64 {
        nl.outputs()
            .iter()
            .map(|s| self.min_arrival[s.index()])
            .fold(f64::INFINITY, f64::min)
    }

    /// Extract the static critical path: the chain of signals realizing the
    /// maximum arrival at the latest output, listed input-to-output.
    pub fn critical_path(&self, nl: &Netlist) -> TimingPath {
        let &end = nl
            .outputs()
            .iter()
            .max_by(|a, b| self.max_arrival[a.index()].total_cmp(&self.max_arrival[b.index()]))
            .expect("netlist has outputs");
        let mut chain = vec![end];
        let mut cur = end;
        loop {
            let gate = nl.gate(cur);
            if gate.kind().is_pseudo() {
                break;
            }
            let &next = gate
                .inputs()
                .iter()
                .max_by(|a, b| self.max_arrival[a.index()].total_cmp(&self.max_arrival[b.index()]))
                .expect("logic gates have inputs");
            chain.push(next);
            cur = next;
        }
        chain.reverse();
        TimingPath {
            delay_ps: self.max_arrival[end.index()],
            signals: chain,
        }
    }
}

/// The one canonical per-gate arrival fold: min/max over the gate's
/// inputs *in pin order*. Both the full pass and the incremental
/// recompute go through this function, which is what makes an
/// incremental result provably bit-identical to a from-scratch one —
/// identical inputs fold to identical bits.
#[inline]
fn fold_gate_arrivals(
    gate: &ntc_netlist::Gate,
    min_arrival: &[f64],
    max_arrival: &[f64],
) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for s in gate.inputs() {
        lo = lo.min(min_arrival[s.index()]);
        hi = hi.max(max_arrival[s.index()]);
    }
    (lo, hi)
}

/// A timing path: an input-to-output chain of signals and its total delay.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Total path delay in picoseconds.
    pub delay_ps: f64,
    /// Signals along the path, from the launching input to the captured
    /// output.
    pub signals: Vec<Signal>,
}

impl TimingPath {
    /// Number of logic stages on the path (excluding the pseudo input).
    pub fn logic_depth(&self, nl: &Netlist) -> usize {
        self.signals
            .iter()
            .filter(|s| !nl.gate(**s).kind().is_pseudo())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::Alu;
    use ntc_netlist::Builder;
    use ntc_varmodel::{ChipSignature, Corner, VariationParams};

    #[test]
    fn chain_delay_adds_up() {
        let mut b = Builder::new();
        let a = b.input("a");
        let g1 = b.not(a);
        let g2 = b.not(g1);
        let g3 = b.not(g2);
        b.output("y", g3);
        let nl = b.finish();
        let sig = ChipSignature::nominal(&nl, Corner::STC);
        let t = StaticTiming::analyze(&nl, &sig);
        let inv = ntc_netlist::CellKind::Inv.nominal_delay_ps();
        assert!((t.critical_delay_ps(&nl) - 3.0 * inv).abs() < 1e-9);
        assert!((t.shortest_delay_ps(&nl) - 3.0 * inv).abs() < 1e-9);
        let path = t.critical_path(&nl);
        assert_eq!(path.logic_depth(&nl), 3);
        assert_eq!(path.signals.len(), 4); // input + 3 inverters
    }

    #[test]
    fn min_le_max_everywhere() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 1);
        let t = StaticTiming::analyze(alu.netlist(), &sig);
        for i in 0..alu.netlist().len() {
            assert!(t.min_arrival(i) <= t.max_arrival(i) + 1e-9);
        }
        assert!(t.shortest_delay_ps(alu.netlist()) < t.critical_delay_ps(alu.netlist()));
    }

    #[test]
    fn pv_moves_the_critical_delay() {
        let alu = Alu::new(8);
        let nom = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let pv = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 5);
        let t_nom = StaticTiming::analyze(alu.netlist(), &nom).critical_delay_ps(alu.netlist());
        let t_pv = StaticTiming::analyze(alu.netlist(), &pv).critical_delay_ps(alu.netlist());
        assert!((t_pv - t_nom).abs() / t_nom > 0.02, "nom {t_nom} pv {t_pv}");
    }

    #[test]
    fn critical_path_is_connected() {
        let alu = Alu::new(8);
        let sig = ChipSignature::nominal(alu.netlist(), Corner::STC);
        let t = StaticTiming::analyze(alu.netlist(), &sig);
        let path = t.critical_path(alu.netlist());
        for pair in path.signals.windows(2) {
            let gate = alu.netlist().gate(pair[1]);
            assert!(
                gate.inputs().contains(&pair[0]),
                "path must follow gate inputs"
            );
        }
    }
}
