//! The netlist data structure: a combinational cloud between two pipeline
//! register boundaries.
//!
//! Every signal is the output of exactly one gate, identified by a
//! [`Signal`]. Gates can only reference signals created before them, so the
//! gate order *is* a topological order — an invariant every analysis in
//! `ntc-timing` relies on.

use crate::cell::CellKind;
use std::collections::HashMap;
use std::fmt;

/// A signal: the output net of one gate, identified by the gate's index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(pub(crate) u32);

impl Signal {
    /// Index of the driving gate in [`Netlist::gates`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    kind: CellKind,
    ins: [Signal; 3],
}

impl Gate {
    /// The cell kind of this gate.
    #[inline]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The input signals (exactly `kind().arity()` of them).
    #[inline]
    pub fn inputs(&self) -> &[Signal] {
        &self.ins[..self.kind.arity()]
    }
}

/// A named group of signals (a bus) exposed at the netlist boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, e.g. `"a"` or `"result"`.
    pub name: String,
    /// Bus bits, LSB first.
    pub bits: Vec<Signal>,
}

/// Errors raised while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetlistError {
    /// A gate referenced a signal with an index >= its own, violating the
    /// creation-order topological invariant.
    ForwardReference {
        /// Index of the offending gate.
        gate: usize,
        /// The forward-referencing input signal.
        input: Signal,
    },
    /// Two ports were registered under the same name.
    DuplicatePort(String),
    /// An output port referenced a signal outside the netlist.
    DanglingOutput(Signal),
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::ForwardReference { gate, input } => {
                write!(f, "gate {gate} references not-yet-created signal {input}")
            }
            BuildNetlistError::DuplicatePort(name) => {
                write!(f, "duplicate port name `{name}`")
            }
            BuildNetlistError::DanglingOutput(sig) => {
                write!(f, "output port references dangling signal {sig}")
            }
        }
    }
}

impl std::error::Error for BuildNetlistError {}

/// A combinational gate-level netlist.
///
/// Constructed through [`Builder`]; immutable afterwards (transformation
/// passes such as [buffer insertion](crate::buffer_insertion) produce a new
/// netlist).
///
/// # Examples
///
/// ```
/// use ntc_netlist::{Builder, CellKind};
///
/// let mut b = Builder::new();
/// let a = b.input("a");
/// let c = b.input("b");
/// let y = b.gate2(CellKind::Xor2, a, c);
/// b.output("y", y);
/// let nl = b.finish();
///
/// assert_eq!(nl.eval(&[true, false]), vec![true]);
/// assert_eq!(nl.eval(&[true, true]), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<Signal>,
    outputs: Vec<Signal>,
    input_ports: Vec<Port>,
    output_ports: Vec<Port>,
    /// CSR fanout index: gates fed by signal `i` live at
    /// `fanout_targets[fanout_offsets[i]..fanout_offsets[i + 1]]`, in
    /// ascending gate order. Built once in [`Builder::finish`]; the
    /// event-driven dynamic simulator walks it instead of scanning every
    /// gate.
    fanout_offsets: Vec<u32>,
    fanout_targets: Vec<u32>,
}

impl Netlist {
    /// All gates in topological (creation) order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `sig`.
    #[inline]
    pub fn gate(&self, sig: Signal) -> &Gate {
        &self.gates[sig.index()]
    }

    /// Total number of gates, including pseudo-cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the netlist contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of *logic* gates (excluding inputs and constants) — the count
    /// used for CGL percentages and the overhead tables.
    pub fn logic_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.kind.is_pseudo()).count()
    }

    /// Primary input signals, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[Signal] {
        &self.inputs
    }

    /// Primary output signals (capture-flop data pins), in declaration order.
    #[inline]
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Named input ports.
    #[inline]
    pub fn input_ports(&self) -> &[Port] {
        &self.input_ports
    }

    /// Named output ports.
    #[inline]
    pub fn output_ports(&self) -> &[Port] {
        &self.output_ports
    }

    /// Look up an input port by name.
    pub fn input_port(&self, name: &str) -> Option<&Port> {
        self.input_ports.iter().find(|p| p.name == name)
    }

    /// Look up an output port by name.
    pub fn output_port(&self, name: &str) -> Option<&Port> {
        self.output_ports.iter().find(|p| p.name == name)
    }

    /// Iterate over `(Signal, &Gate)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (Signal, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (Signal(i as u32), g))
    }

    /// Evaluate the netlist combinationally for one input assignment.
    ///
    /// `pi_values` are the primary input values in declaration order.
    /// Returns the output values in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the number of primary inputs.
    pub fn eval(&self, pi_values: &[bool]) -> Vec<bool> {
        let values = self.eval_all(pi_values);
        self.outputs.iter().map(|s| values[s.index()]).collect()
    }

    /// Evaluate the netlist and return the value of *every* signal, indexed
    /// by [`Signal::index`]. Used by the dynamic timing simulator to settle
    /// the initializing vector.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the number of primary inputs.
    pub fn eval_all(&self, pi_values: &[bool]) -> Vec<bool> {
        let mut values = Vec::new();
        self.eval_all_into(pi_values, &mut values);
        values
    }

    /// [`eval_all`](Self::eval_all) into a caller-owned buffer, so settle
    /// loops (the dynamic timing simulator runs one per vector pair) reuse
    /// one allocation across calls. The buffer is cleared and refilled.
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the number of primary inputs.
    pub fn eval_all_into(&self, pi_values: &[bool], values: &mut Vec<bool>) {
        assert_eq!(
            pi_values.len(),
            self.inputs.len(),
            "stimulus width mismatch: got {}, netlist has {} inputs",
            pi_values.len(),
            self.inputs.len()
        );
        values.clear();
        values.resize(self.gates.len(), false);
        let mut pi_iter = pi_values.iter();
        let mut scratch = [false; 3];
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match g.kind {
                CellKind::Input => *pi_iter.next().expect("input count checked above"),
                kind => {
                    let arity = kind.arity();
                    for (j, s) in g.ins[..arity].iter().enumerate() {
                        scratch[j] = values[s.index()];
                    }
                    kind.eval(&scratch[..arity])
                }
            };
        }
    }

    /// Gate indices fed by `sig`'s net, in ascending (topological) order —
    /// the precomputed fanout index. A gate sampling the same signal on
    /// two pins appears once per pin.
    #[inline]
    pub fn fanout_of(&self, sig: Signal) -> &[u32] {
        self.fanout_of_index(sig.index())
    }

    /// [`fanout_of`](Self::fanout_of) addressed by raw signal index — the
    /// form the event-driven simulator's worklist uses.
    #[inline]
    pub fn fanout_of_index(&self, i: usize) -> &[u32] {
        let lo = self.fanout_offsets[i] as usize;
        let hi = self.fanout_offsets[i + 1] as usize;
        &self.fanout_targets[lo..hi]
    }

    /// Per-gate fanout counts (number of gate input pins each signal feeds,
    /// plus one for each primary-output use).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for s in g.inputs() {
                counts[s.index()] += 1;
            }
        }
        for s in &self.outputs {
            counts[s.index()] += 1;
        }
        counts
    }

    /// Logic depth (in gates) of each signal: pseudo-cells have depth 0.
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_pseudo() {
                continue;
            }
            let d = g
                .inputs()
                .iter()
                .map(|s| depth[s.index()])
                .max()
                .unwrap_or(0);
            depth[i] = d + 1;
        }
        depth
    }

    /// Maximum logic depth over all primary outputs.
    pub fn max_depth(&self) -> u32 {
        let depths = self.depths();
        self.outputs
            .iter()
            .map(|s| depths[s.index()])
            .max()
            .unwrap_or(0)
    }

    /// Validate the topological invariant and port consistency.
    ///
    /// The [`Builder`] maintains these invariants by construction; this is a
    /// defence-in-depth check used by transformation passes and tests.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), BuildNetlistError> {
        for (i, g) in self.gates.iter().enumerate() {
            for &s in g.inputs() {
                if s.index() >= i {
                    return Err(BuildNetlistError::ForwardReference { gate: i, input: s });
                }
            }
        }
        for s in self.outputs.iter().chain(self.inputs.iter()) {
            if s.index() >= self.gates.len() {
                return Err(BuildNetlistError::DanglingOutput(*s));
            }
        }
        Ok(())
    }

    /// Histogram of logic-cell usage, e.g. for library reports.
    pub fn cell_histogram(&self) -> HashMap<CellKind, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            if !g.kind.is_pseudo() {
                *h.entry(g.kind).or_insert(0) += 1;
            }
        }
        h
    }

    /// Total standard-cell area in square micrometres.
    pub fn area_um2(&self) -> f64 {
        self.gates.iter().map(|g| g.kind.area_um2()).sum()
    }

    /// Total leakage power at the nominal corner, in nanowatts.
    pub fn leakage_nw(&self) -> f64 {
        self.gates.iter().map(|g| g.kind.leakage_nw()).sum()
    }

    /// Estimated total wirelength in micrometres, using a Rent's-rule style
    /// half-perimeter model: each net's length scales with the square root
    /// of the placement area times a fanout factor.
    ///
    /// This substitutes for the place-and-route wirelength the paper obtains
    /// from Cadence SoC Encounter; only *relative* wirelengths (overhead
    /// percentages) are consumed downstream.
    pub fn estimated_wirelength_um(&self) -> f64 {
        let area = self.area_um2().max(1e-9);
        let pitch = area.sqrt() / (self.logic_gate_count().max(1) as f64).sqrt();
        self.fanout_counts()
            .iter()
            .zip(self.gates.iter())
            .filter(|(_, g)| !g.kind.is_pseudo())
            .map(|(&fo, _)| pitch * (1.0 + (fo as f64).sqrt()))
            .sum()
    }
}

/// Build the CSR fanout adjacency (offsets + targets) for a gate list.
/// Filling in gate order keeps each signal's target list ascending.
fn build_fanout_index(gates: &[Gate]) -> (Vec<u32>, Vec<u32>) {
    let n = gates.len();
    let mut offsets = vec![0u32; n + 1];
    for g in gates {
        for s in g.inputs() {
            offsets[s.index() + 1] += 1;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let total = offsets[n] as usize;
    let mut targets = vec![0u32; total];
    for (i, g) in gates.iter().enumerate() {
        for s in g.inputs() {
            let c = &mut cursor[s.index()];
            targets[*c as usize] = i as u32;
            *c += 1;
        }
    }
    (offsets, targets)
}

/// Incremental netlist builder.
///
/// Signals can only be used after they are created, which guarantees the
/// resulting [`Netlist`] is a DAG in topological order.
#[derive(Debug, Default)]
pub struct Builder {
    gates: Vec<Gate>,
    inputs: Vec<Signal>,
    outputs: Vec<Signal>,
    input_ports: Vec<Port>,
    output_ports: Vec<Port>,
    const0: Option<Signal>,
    const1: Option<Signal>,
}

impl Builder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: CellKind, ins: [Signal; 3]) -> Signal {
        let arity = kind.arity();
        for &s in &ins[..arity] {
            assert!(
                s.index() < self.gates.len(),
                "input {s} does not exist yet (builder has {} gates)",
                self.gates.len()
            );
        }
        let id = Signal(u32::try_from(self.gates.len()).expect("netlist too large"));
        self.gates.push(Gate { kind, ins });
        id
    }

    /// Declare a single-bit primary input port.
    pub fn input(&mut self, name: &str) -> Signal {
        let bus = self.input_bus(name, 1);
        bus[0]
    }

    /// Declare an `n`-bit primary input bus (LSB first).
    pub fn input_bus(&mut self, name: &str, n: usize) -> Vec<Signal> {
        let dummy = Signal(0);
        let bits: Vec<Signal> = (0..n)
            .map(|_| {
                let s = self.push(CellKind::Input, [dummy; 3]);
                self.inputs.push(s);
                s
            })
            .collect();
        self.input_ports.push(Port {
            name: name.to_owned(),
            bits: bits.clone(),
        });
        bits
    }

    /// The shared constant-0 signal (created on first use).
    pub fn const0(&mut self) -> Signal {
        match self.const0 {
            Some(s) => s,
            None => {
                let s = self.push(CellKind::Const0, [Signal(0); 3]);
                self.const0 = Some(s);
                s
            }
        }
    }

    /// The shared constant-1 signal (created on first use).
    pub fn const1(&mut self) -> Signal {
        match self.const1 {
            Some(s) => s,
            None => {
                let s = self.push(CellKind::Const1, [Signal(0); 3]);
                self.const1 = Some(s);
                s
            }
        }
    }

    /// Add a 1-input gate.
    ///
    /// # Panics
    ///
    /// Panics if `kind.arity() != 1` or an input does not exist yet.
    pub fn gate1(&mut self, kind: CellKind, a: Signal) -> Signal {
        assert_eq!(kind.arity(), 1, "{kind} is not a 1-input cell");
        self.push(kind, [a, a, a])
    }

    /// Add a 2-input gate.
    ///
    /// # Panics
    ///
    /// Panics if `kind.arity() != 2` or an input does not exist yet.
    pub fn gate2(&mut self, kind: CellKind, a: Signal, b: Signal) -> Signal {
        assert_eq!(kind.arity(), 2, "{kind} is not a 2-input cell");
        self.push(kind, [a, b, b])
    }

    /// Add a 3-input gate (`Mux2` inputs are `[a, b, sel]`).
    ///
    /// # Panics
    ///
    /// Panics if `kind.arity() != 3` or an input does not exist yet.
    pub fn gate3(&mut self, kind: CellKind, a: Signal, b: Signal, c: Signal) -> Signal {
        assert_eq!(kind.arity(), 3, "{kind} is not a 3-input cell");
        self.push(kind, [a, b, c])
    }

    /// Convenience: inverter.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.gate1(CellKind::Inv, a)
    }

    /// Convenience: buffer.
    pub fn buf(&mut self, a: Signal) -> Signal {
        self.gate1(CellKind::Buf, a)
    }

    /// Convenience: AND2.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate2(CellKind::And2, a, b)
    }

    /// Convenience: OR2.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate2(CellKind::Or2, a, b)
    }

    /// Convenience: XOR2.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate2(CellKind::Xor2, a, b)
    }

    /// Convenience: NOR2.
    pub fn nor(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate2(CellKind::Nor2, a, b)
    }

    /// Convenience: NAND2.
    pub fn nand(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate2(CellKind::Nand2, a, b)
    }

    /// Convenience: 2:1 mux (`sel == 0` → `a`, `sel == 1` → `b`).
    pub fn mux(&mut self, a: Signal, b: Signal, sel: Signal) -> Signal {
        self.gate3(CellKind::Mux2, a, b, sel)
    }

    /// Convenience: majority-of-3 (full-adder carry).
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        self.gate3(CellKind::Maj3, a, b, c)
    }

    /// Bitwise mux over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn mux_bus(&mut self, a: &[Signal], b: &[Signal], sel: Signal) -> Vec<Signal> {
        assert_eq!(a.len(), b.len(), "mux bus width mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.mux(x, y, sel))
            .collect()
    }

    /// Register a single-bit output port.
    pub fn output(&mut self, name: &str, s: Signal) {
        self.output_bus(name, &[s]);
    }

    /// Register an output bus (LSB first).
    pub fn output_bus(&mut self, name: &str, bits: &[Signal]) {
        self.outputs.extend_from_slice(bits);
        self.output_ports.push(Port {
            name: name.to_owned(),
            bits: bits.to_vec(),
        });
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gates have been added yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics if a port name was registered twice (a programming error in
    /// the generator).
    pub fn finish(self) -> Netlist {
        let (fanout_offsets, fanout_targets) = build_fanout_index(&self.gates);
        let nl = Netlist {
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            input_ports: self.input_ports,
            output_ports: self.output_ports,
            fanout_offsets,
            fanout_targets,
        };
        for ports in [&nl.input_ports, &nl.output_ports] {
            for (i, p) in ports.iter().enumerate() {
                assert!(
                    !ports[..i].iter().any(|q| q.name == p.name),
                    "duplicate port name `{}`",
                    p.name
                );
            }
        }
        debug_assert!(nl.validate().is_ok());
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder_netlist() -> Netlist {
        let mut b = Builder::new();
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let axb = b.xor(a, c);
        let sum = b.xor(axb, cin);
        let cout = b.maj(a, c, cin);
        b.output("sum", sum);
        b.output("cout", cout);
        b.finish()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder_netlist();
        for a in 0..2u8 {
            for c in 0..2u8 {
                for cin in 0..2u8 {
                    let out = nl.eval(&[a == 1, c == 1, cin == 1]);
                    let total = a + c + cin;
                    assert_eq!(out[0], total & 1 == 1, "sum for {a}+{c}+{cin}");
                    assert_eq!(out[1], total >= 2, "cout for {a}+{c}+{cin}");
                }
            }
        }
    }

    #[test]
    fn topo_invariant_holds_and_validates() {
        let nl = full_adder_netlist();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.logic_gate_count(), 3);
        assert_eq!(nl.max_depth(), 2);
    }

    #[test]
    fn constants_are_shared() {
        let mut b = Builder::new();
        let c0a = b.const0();
        let c0b = b.const0();
        let c1a = b.const1();
        let c1b = b.const1();
        assert_eq!(c0a, c0b);
        assert_eq!(c1a, c1b);
        assert_ne!(c0a, c1a);
    }

    #[test]
    fn ports_are_recorded() {
        let nl = full_adder_netlist();
        assert_eq!(nl.input_ports().len(), 3);
        assert_eq!(nl.output_port("sum").expect("sum port").bits.len(), 1);
        assert!(nl.output_port("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut b = Builder::new();
        let a = b.input("a");
        // Signal index 5 does not exist.
        let bogus = Signal(5);
        let _ = b.and(a, bogus);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let nl = full_adder_netlist();
        let fo = nl.fanout_counts();
        // inputs a, b feed xor+maj each => fanout 2.
        assert_eq!(fo[nl.inputs()[0].index()], 2);
        // sum gate feeds only the output port.
        let sum = nl.output_port("sum").expect("sum").bits[0];
        assert_eq!(fo[sum.index()], 1);
    }

    #[test]
    fn area_and_wirelength_positive() {
        let nl = full_adder_netlist();
        assert!(nl.area_um2() > 0.0);
        assert!(nl.estimated_wirelength_um() > 0.0);
        assert!(nl.leakage_nw() > 0.0);
    }

    #[test]
    fn fanout_index_matches_gate_inputs() {
        let nl = full_adder_netlist();
        // Rebuild the adjacency the slow way and compare.
        for (sig, _) in nl.iter() {
            let expect: Vec<u32> = nl
                .gates()
                .iter()
                .enumerate()
                .flat_map(|(i, g)| {
                    g.inputs()
                        .iter()
                        .filter(|s| **s == sig)
                        .map(move |_| i as u32)
                        .collect::<Vec<_>>()
                })
                .collect();
            assert_eq!(nl.fanout_of(sig), expect.as_slice(), "fanout of {sig}");
        }
        // a feeds xor(axb) and maj(cout): two fanout pins.
        assert_eq!(nl.fanout_of(nl.inputs()[0]).len(), 2);
    }

    #[test]
    fn eval_all_into_reuses_buffer() {
        let nl = full_adder_netlist();
        let mut buf = vec![true; 99];
        nl.eval_all_into(&[true, true, false], &mut buf);
        assert_eq!(buf, nl.eval_all(&[true, true, false]));
    }

    #[test]
    fn eval_all_exposes_internal_nets() {
        let nl = full_adder_netlist();
        let vals = nl.eval_all(&[true, true, false]);
        assert_eq!(vals.len(), nl.len());
        // sum = 0, cout = 1 for 1+1+0
        let sum = nl.output_port("sum").expect("sum").bits[0];
        let cout = nl.output_port("cout").expect("cout").bits[0];
        assert!(!vals[sum.index()]);
        assert!(vals[cout.index()]);
    }
}
