//! Gate-level synthesis of the resilience hardware (lookup tables,
//! controllers, transition detectors) so the overhead tables (§3.5.6,
//! §4.5.7) can be computed from real structure counts instead of guesses.
//!
//! Storage is modelled the way the paper builds it: the CSLT/CET are
//! "managed dynamically, in the form of a RAM" (§3.3.4) with a Bloom-filter
//! lookup front-end — *not* a CAM with per-entry comparators. Gate counts
//! therefore cover the peripheral logic (address decode, one verify
//! comparator, replacement bookkeeping, controller FSMs), while table bits
//! are charged at SRAM density. Small architectural registers (history
//! buffers, counters) are charged as flip-flops.

use crate::cell::CellKind;
use crate::netlist::{Builder, Netlist};

/// Gate-equivalents charged per flip-flop bit (a D flip-flop is roughly six
/// NAND2-equivalents in a standard-cell library).
pub const DFF_GATE_EQUIV: f64 = 6.0;

/// Area charged per flip-flop bit, in square micrometres (15 nm class).
pub const DFF_AREA_UM2: f64 = 1.1;

/// Gate-equivalents charged per SRAM bit (6T cell ≈ one-third of a NAND2
/// pair's transistor budget).
pub const RAM_BIT_GATE_EQUIV: f64 = 0.35;

/// Area per SRAM bit, µm² (15 nm class bitcell).
pub const RAM_BIT_AREA_UM2: f64 = 0.055;

/// Leakage per SRAM bit, nW.
pub const RAM_BIT_LEAKAGE_NW: f64 = 0.22;

/// Synthesized hardware block report: gate count, area, leakage and an
/// activity-based dynamic energy estimate per access.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareReport {
    /// Block name.
    pub name: String,
    /// Flip-flop storage bits (registers, counters).
    pub ff_bits: usize,
    /// RAM storage bits (table payload).
    pub ram_bits: usize,
    /// Combinational logic gate count (peripheral logic).
    pub logic_gates: usize,
    /// Total gate-equivalents (logic + storage equivalents).
    pub gate_equivalents: usize,
    /// Total area, µm².
    pub area_um2: f64,
    /// Leakage, nW, at the nominal corner.
    pub leakage_nw: f64,
    /// Estimated dynamic energy per lookup/access, fJ at 0.8 V.
    pub access_energy_fj: f64,
    /// Estimated wirelength, µm.
    pub wirelength_um: f64,
}

impl HardwareReport {
    fn from_netlist(name: &str, ff_bits: usize, ram_bits: usize, nl: &Netlist) -> Self {
        let logic_gates = nl.logic_gate_count();
        // ~25% of combinational cells toggle on a typical access; storage
        // contributes word-line/bit-line energy.
        let access_energy_fj: f64 = nl
            .gates()
            .iter()
            .map(|g| g.kind().switch_energy_fj())
            .sum::<f64>()
            * 0.25
            + ff_bits as f64 * 0.4
            + (ram_bits as f64).sqrt() * 0.8;
        let gate_equivalents = logic_gates as f64
            + ff_bits as f64 * DFF_GATE_EQUIV
            + ram_bits as f64 * RAM_BIT_GATE_EQUIV;
        HardwareReport {
            name: name.to_owned(),
            ff_bits,
            ram_bits,
            logic_gates,
            gate_equivalents: gate_equivalents.round() as usize,
            area_um2: nl.area_um2()
                + ff_bits as f64 * DFF_AREA_UM2
                + ram_bits as f64 * RAM_BIT_AREA_UM2,
            leakage_nw: nl.leakage_nw()
                + ff_bits as f64 * 2.5
                + ram_bits as f64 * RAM_BIT_LEAKAGE_NW,
            access_energy_fj,
            wirelength_um: nl.estimated_wirelength_um()
                + ff_bits as f64 * 3.0
                + ram_bits as f64 * 0.4,
        }
    }
}

/// Equality comparator over `tag_bits` (XNOR per bit + AND tree) gated by a
/// valid bit — the single verify comparator of a RAM-based lookup table.
fn tag_comparator(b: &mut Builder, tag_bits: usize) {
    let probe = b.input_bus("probe", tag_bits);
    let stored = b.input_bus("stored", tag_bits);
    let valid = b.input("valid");
    let eq_bits: Vec<_> = probe
        .iter()
        .zip(stored.iter())
        .map(|(&p, &s)| b.gate2(CellKind::Xnor2, p, s))
        .collect();
    let eq = crate::generators::logic::and_tree(b, &eq_bits);
    let hit = b.and(eq, valid);
    b.output("hit", hit);
}

fn index_bits(entries: usize) -> usize {
    (usize::BITS - (entries.max(2) - 1).leading_zeros()) as usize
}

/// Synthesize a fully-associative, RAM-backed lookup table (the DCS
/// **ICSLT** or the Trident **CET**): the Bloom filter screens lookups, a
/// hashed index addresses the RAM, and one verify comparator confirms the
/// tag; pseudo-LRU bookkeeping handles replacement.
pub fn synth_associative_table(name: &str, entries: usize, tag_bits: usize) -> HardwareReport {
    assert!(entries > 0 && tag_bits > 0);
    let mut b = Builder::new();
    // Address decoder for the RAM row.
    let idx = b.input_bus("index", index_bits(entries));
    let rows = crate::generators::logic::decoder(&mut b, &idx, entries.min(1 << idx.len()));
    // Row-select OR tree models the word-line driver network.
    let _wl = crate::generators::logic::or_tree(&mut b, &rows);
    // Verify comparator on the read-out tag.
    tag_comparator(&mut b, tag_bits);
    // Pseudo-LRU update logic: one mux + one AND per tree level.
    let lvl = index_bits(entries);
    let seed = b.input("lru_in");
    let mut cur = seed;
    for level in 0..lvl {
        let s = b.input(&format!("lru_sel{level}"));
        cur = b.mux(cur, s, s);
    }
    b.output("lru_out", cur);
    let nl = b.finish();

    // RAM payload: tag + valid per entry, plus the pseudo-LRU tree bits.
    let plru_bits = entries.saturating_sub(1);
    let ram_bits = entries * (tag_bits + 1) + plru_bits;
    HardwareReport::from_netlist(name, 0, ram_bits, &nl)
}

/// Synthesize a set-associative, RAM-backed lookup table (the DCS
/// **ACSLT**): a set directory keyed by the errant opcode+OWM pair and a
/// way array of previous-cycle pairs; two verify comparators (set + way).
pub fn synth_set_associative_table(
    name: &str,
    sets: usize,
    ways: usize,
    set_tag_bits: usize,
    way_tag_bits: usize,
) -> HardwareReport {
    assert!(sets > 0 && ways > 0);
    let mut b = Builder::new();
    let set_idx = b.input_bus("set_index", index_bits(sets));
    let rows = crate::generators::logic::decoder(&mut b, &set_idx, sets.min(1 << set_idx.len()));
    let _wl = crate::generators::logic::or_tree(&mut b, &rows);
    tag_comparator(&mut b, set_tag_bits);
    // Way comparators are time-multiplexed in the RAM design: one way
    // comparator plus a way-select decoder.
    let way_idx = b.input_bus("way_index", index_bits(ways));
    let wsel = crate::generators::logic::decoder(&mut b, &way_idx, ways.min(1 << way_idx.len()));
    let _ws = crate::generators::logic::or_tree(&mut b, &wsel);
    {
        // Second comparator (distinct ports).
        let probe = b.input_bus("way_probe", way_tag_bits);
        let stored = b.input_bus("way_stored", way_tag_bits);
        let valid = b.input("way_valid");
        let eq_bits: Vec<_> = probe
            .iter()
            .zip(stored.iter())
            .map(|(&p, &s)| b.gate2(CellKind::Xnor2, p, s))
            .collect();
        let eq = crate::generators::logic::and_tree(&mut b, &eq_bits);
        let hit = b.and(eq, valid);
        b.output("way_hit", hit);
    }
    let nl = b.finish();

    let plru_bits = sets * ways.saturating_sub(1) + sets.saturating_sub(1);
    let ram_bits = sets * (set_tag_bits + 1) + sets * ways * (way_tag_bits + 1) + plru_bits;
    HardwareReport::from_netlist(name, 0, ram_bits, &nl)
}

/// Synthesize the Choke Controller / Choke Detection Controller: a small
/// FSM with stall/flush outputs, an opcode-OWM history buffer (the paper's
/// De→WB buffer or Trident's CCR), and the replay address register.
pub fn synth_controller(name: &str, pipeline_stages: usize, entry_bits: usize) -> HardwareReport {
    assert!(pipeline_stages > 0);
    let mut b = Builder::new();
    // FSM: 2 state bits, decode to 4 states, stall/flush outputs.
    let state = b.input_bus("state", 2);
    let hit = b.input("hit");
    let error = b.input("error");
    let states = crate::generators::logic::decoder(&mut b, &state, 4);
    let stall = b.and(states[1], hit);
    let flush = b.and(states[2], error);
    let ns0 = b.mux(states[0], stall, hit);
    let ns1 = b.mux(states[3], flush, error);
    let ns0b = b.or(ns0, flush);
    let ns1b = b.or(ns1, stall);
    b.output("stall", stall);
    b.output("flush", flush);
    b.output("ns0", ns0b);
    b.output("ns1", ns1b);
    let nl = b.finish();

    // History buffer: one entry_bits-wide register per stage between De and
    // WB, plus PC register (32 bits) for replay and the FSM state.
    let ff_bits = pipeline_stages * entry_bits + 32 + 2;
    HardwareReport::from_netlist(name, ff_bits, 0, &nl)
}

/// Synthesize one Trident Transition Detector and Counter (TDC): a
/// double-edge-triggered detector per monitored output plus a 2-bit
/// saturating counter and the detection-clock gating.
pub fn synth_tdc(name: &str, monitored_outputs: usize) -> HardwareReport {
    assert!(monitored_outputs > 0);
    let mut b = Builder::new();
    let data = b.input_bus("data", monitored_outputs);
    let prev = b.input_bus("prev", monitored_outputs);
    let window = b.input("window");
    // Transition detect: XOR current vs previous sample, gated by the
    // detection window.
    let toggles: Vec<_> = data
        .iter()
        .zip(prev.iter())
        .map(|(&d, &p)| b.xor(d, p))
        .collect();
    let any = crate::generators::logic::or_tree(&mut b, &toggles);
    let illegal = b.and(any, window);
    // 2-bit counter increment logic.
    let c0 = b.input("c0");
    let c1 = b.input("c1");
    let nc0 = b.xor(c0, illegal);
    let carry = b.and(c0, illegal);
    let nc1 = b.or(c1, carry);
    b.output("illegal", illegal);
    b.output("nc0", nc0);
    b.output("nc1", nc1);
    let nl = b.finish();

    // Double-edge flops per monitored output (sample + shadow) + counter.
    let ff_bits = monitored_outputs * 2 + 2;
    HardwareReport::from_netlist(name, ff_bits, 0, &nl)
}

/// Bloom-filter lookup front-end: two hash-index XOR networks plus the
/// membership bit array (RAM density).
pub fn synth_bloom_filter(name: &str, bits: usize, hashes: usize) -> HardwareReport {
    assert!(
        bits.is_power_of_two(),
        "bloom array size must be a power of two"
    );
    let index_bits = bits.trailing_zeros() as usize;
    let mut b = Builder::new();
    let tag = b.input_bus("tag", 18);
    let mut hit_terms = Vec::with_capacity(hashes);
    for h in 0..hashes {
        // Hash network: XOR-fold the tag down to index_bits.
        let mut folded = tag.to_vec();
        while folded.len() > index_bits {
            let a = folded.remove(0);
            let last = folded.len() - 1;
            let mixed = b.xor(folded[last], a);
            folded[last] = mixed;
        }
        let bit_in = b.input(&format!("bit{h}"));
        let gate = crate::generators::logic::or_tree(&mut b, &folded);
        hit_terms.push(b.and(bit_in, gate));
    }
    let hit = crate::generators::logic::and_tree(&mut b, &hit_terms);
    b.output("hit", hit);
    let nl = b.finish();
    HardwareReport::from_netlist(name, 0, bits, &nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icslt_style_table_counts() {
        // 128-entry ICSLT with the DCS tag: 2 × (8-bit opcode + 1-bit OWM)
        // = 18 tag bits. The paper reports 567 gates for the CSLT proper;
        // the RAM-based structure must land in the same order of magnitude.
        let r = synth_associative_table("ICSLT-128", 128, 18);
        assert!(r.ram_bits >= 128 * 19);
        assert!(
            (200..4000).contains(&r.gate_equivalents),
            "gate equivalents {}",
            r.gate_equivalents
        );
        assert!(r.area_um2 > 0.0);
        assert!(r.logic_gates > 50, "peripheral logic present: {}", r.logic_gates);
    }

    #[test]
    fn acslt_larger_than_icslt_but_denser_per_instance() {
        // 32 sets × 16 ways stores 512 error instances; a flat table with
        // the same capacity stores the errant pair redundantly per entry.
        let acslt = synth_set_associative_table("ACSLT-32x16", 32, 16, 9, 9);
        let flat = synth_associative_table("ICSLT-512", 32 * 16, 18);
        assert!(acslt.ram_bits < flat.ram_bits);
        // And the paper's chosen configs: ACSLT-32x16 costs more hardware
        // than ICSLT-128 (3241 vs 1553 gates).
        let icslt = synth_associative_table("ICSLT-128", 128, 18);
        assert!(acslt.gate_equivalents > icslt.gate_equivalents);
    }

    #[test]
    fn controller_and_tdc_are_small() {
        let cc = synth_controller("CC", 11, 18);
        let tdc = synth_tdc("TDC", 34);
        assert!(cc.gate_equivalents < 2500);
        assert!(tdc.gate_equivalents < 1000);
        assert!(cc.ff_bits > 0);
        assert_eq!(cc.ram_bits, 0);
    }

    #[test]
    fn bloom_filter_storage_matches_bits() {
        let r = synth_bloom_filter("bloom", 256, 2);
        assert_eq!(r.ram_bits, 256);
        assert!(r.logic_gates > 10, "hash networks synthesized");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bloom_filter_rejects_non_pow2() {
        let _ = synth_bloom_filter("bloom", 100, 2);
    }

    #[test]
    fn reports_have_consistent_totals() {
        let r = synth_associative_table("t", 64, 18);
        let expect = r.logic_gates as f64
            + r.ff_bits as f64 * DFF_GATE_EQUIV
            + r.ram_bits as f64 * RAM_BIT_GATE_EQUIV;
        assert_eq!(r.gate_equivalents, expect.round() as usize);
    }
}
