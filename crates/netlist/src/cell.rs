//! The standard-cell library.
//!
//! Cell timing/area/energy numbers are inspired by the relative figures of a
//! 15 nm FinFET open cell library (the paper synthesizes against NanGate's
//! 15 nm OpenCell library). Absolute values are nominal super-threshold
//! (0.8 V) numbers; the device layer in `ntc-varmodel` rescales them for the
//! near-threshold corner and applies process variation per fabricated chip.

use std::fmt;

/// The kind of a logic cell (or netlist pseudo-cell).
///
/// `Input` and the constant cells are pseudo-cells: they have no inputs and
/// no delay, and exist so every signal in a [`Netlist`](crate::Netlist) is
/// the output of exactly one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Primary input (launched from a pipeline register).
    Input,
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Inverter.
    Inv,
    /// Non-inverting buffer (also used by the hold-fixing pass).
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `[a, b, sel]`, output is `a` when
    /// `sel == 0` and `b` when `sel == 1`.
    Mux2,
    /// 3-input majority gate (full-adder carry).
    Maj3,
}

/// All cell kinds, in a stable order (useful for iterating library reports).
pub const ALL_CELL_KINDS: [CellKind; 13] = [
    CellKind::Input,
    CellKind::Const0,
    CellKind::Const1,
    CellKind::Inv,
    CellKind::Buf,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Maj3,
];

impl CellKind {
    /// Number of input pins of this cell.
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            CellKind::Input | CellKind::Const0 | CellKind::Const1 => 0,
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 | CellKind::Maj3 => 3,
        }
    }

    /// Whether this is a pseudo-cell (input/constant) rather than real logic.
    #[inline]
    pub fn is_pseudo(self) -> bool {
        matches!(self, CellKind::Input | CellKind::Const0 | CellKind::Const1)
    }

    /// Nominal propagation delay in picoseconds at the super-threshold
    /// corner (0.8 V), before process variation.
    #[inline]
    pub fn nominal_delay_ps(self) -> f64 {
        match self {
            CellKind::Input | CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Inv => 8.0,
            CellKind::Buf => 13.0,
            CellKind::Nand2 => 10.0,
            CellKind::Nor2 => 12.0,
            CellKind::And2 => 14.0,
            CellKind::Or2 => 15.0,
            CellKind::Xor2 => 19.0,
            CellKind::Xnor2 => 19.0,
            CellKind::Mux2 => 17.0,
            CellKind::Maj3 => 21.0,
        }
    }

    /// Cell area in square micrometres (15 nm-class relative values).
    #[inline]
    pub fn area_um2(self) -> f64 {
        match self {
            CellKind::Input | CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Inv => 0.196,
            CellKind::Buf => 0.245,
            CellKind::Nand2 => 0.245,
            CellKind::Nor2 => 0.245,
            CellKind::And2 => 0.294,
            CellKind::Or2 => 0.294,
            CellKind::Xor2 => 0.441,
            CellKind::Xnor2 => 0.441,
            CellKind::Mux2 => 0.490,
            CellKind::Maj3 => 0.539,
        }
    }

    /// Switching energy per output transition in femtojoules at 0.8 V.
    ///
    /// Dynamic energy scales quadratically with supply voltage; the energy
    /// model in `ntc-pipeline` applies that scaling for the NTC corner.
    #[inline]
    pub fn switch_energy_fj(self) -> f64 {
        // Roughly proportional to cell area (load + internal capacitance).
        self.area_um2() * 1.6
    }

    /// Leakage power in nanowatts at 0.8 V.
    #[inline]
    pub fn leakage_nw(self) -> f64 {
        self.area_um2() * 0.9
    }

    /// Evaluate the cell's logic function.
    ///
    /// `ins` must contain at least [`arity`](Self::arity) values; extra
    /// entries are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `ins` is shorter than the cell's arity, or if called on
    /// [`CellKind::Input`] (inputs have no logic function; their value comes
    /// from the stimulus).
    #[inline]
    pub fn eval(self, ins: &[bool]) -> bool {
        match self {
            CellKind::Input => panic!("primary inputs have no logic function"),
            CellKind::Const0 => false,
            CellKind::Const1 => true,
            CellKind::Inv => !ins[0],
            CellKind::Buf => ins[0],
            CellKind::And2 => ins[0] & ins[1],
            CellKind::Or2 => ins[0] | ins[1],
            CellKind::Nand2 => !(ins[0] & ins[1]),
            CellKind::Nor2 => !(ins[0] | ins[1]),
            CellKind::Xor2 => ins[0] ^ ins[1],
            CellKind::Xnor2 => !(ins[0] ^ ins[1]),
            CellKind::Mux2 => {
                if ins[2] {
                    ins[1]
                } else {
                    ins[0]
                }
            }
            CellKind::Maj3 => (ins[0] & ins[1]) | (ins[2] & (ins[0] ^ ins[1])),
        }
    }

    /// Short library-style cell name (e.g. `NAND2_X1`).
    pub fn lib_name(self) -> &'static str {
        match self {
            CellKind::Input => "INPUT",
            CellKind::Const0 => "TIE0",
            CellKind::Const1 => "TIE1",
            CellKind::Inv => "INV_X1",
            CellKind::Buf => "BUF_X1",
            CellKind::And2 => "AND2_X1",
            CellKind::Or2 => "OR2_X1",
            CellKind::Nand2 => "NAND2_X1",
            CellKind::Nor2 => "NOR2_X1",
            CellKind::Xor2 => "XOR2_X1",
            CellKind::Xnor2 => "XNOR2_X1",
            CellKind::Mux2 => "MUX2_X1",
            CellKind::Maj3 => "MAJ3_X1",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.lib_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_requirements() {
        for kind in ALL_CELL_KINDS {
            if kind == CellKind::Input {
                continue;
            }
            let ins = vec![true; kind.arity()];
            // Must not panic with exactly `arity` inputs.
            let _ = kind.eval(&ins);
        }
    }

    #[test]
    fn logic_truth_tables() {
        use CellKind::*;
        assert!(!Const0.eval(&[]));
        assert!(Const1.eval(&[]));
        assert!(Inv.eval(&[false]));
        assert!(!Inv.eval(&[true]));
        assert!(Buf.eval(&[true]));
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(And2.eval(&[a, b]), a & b);
                assert_eq!(Or2.eval(&[a, b]), a | b);
                assert_eq!(Nand2.eval(&[a, b]), !(a & b));
                assert_eq!(Nor2.eval(&[a, b]), !(a | b));
                assert_eq!(Xor2.eval(&[a, b]), a ^ b);
                assert_eq!(Xnor2.eval(&[a, b]), !(a ^ b));
                for s in [false, true] {
                    assert_eq!(Mux2.eval(&[a, b, s]), if s { b } else { a });
                    let maj = (a & b) | (b & s) | (a & s);
                    assert_eq!(Maj3.eval(&[a, b, s]), maj);
                }
            }
        }
    }

    #[test]
    fn pseudo_cells_are_free() {
        for kind in [CellKind::Input, CellKind::Const0, CellKind::Const1] {
            assert!(kind.is_pseudo());
            assert_eq!(kind.nominal_delay_ps(), 0.0);
            assert_eq!(kind.area_um2(), 0.0);
        }
        assert!(!CellKind::Nand2.is_pseudo());
    }

    #[test]
    fn xor_slower_than_nand() {
        assert!(CellKind::Xor2.nominal_delay_ps() > CellKind::Nand2.nominal_delay_ps());
    }
}
