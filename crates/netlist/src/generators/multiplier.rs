//! Multiplier generators for the ALU's MULT / MFLO datapath.
//!
//! Two structures are provided:
//!
//! * [`array_multiplier_low`] — the classic row-by-row carry-save array;
//!   linear depth, compact. Used for depth-contrast studies.
//! * [`wallace_multiplier_low`] — a Wallace/CSA-tree reduction with a
//!   parallel-prefix final adder; logarithmic depth. This is what a
//!   timing-constrained synthesis run emits, and it is the variant the
//!   ALU uses: the multiplier stays the *deepest* unit (matching the
//!   paper's observation that MULT/MFLO sensitize the longest paths)
//!   without towering an order of magnitude over the rest of the
//!   datapath.

use crate::generators::adder;
use crate::netlist::{Builder, Signal};

/// Build an array multiplier returning the low `width` bits of `a * x`.
///
/// Partial products are formed by an AND array and reduced row-by-row with
/// carry-save full adders; a final ripple stage resolves the remaining
/// carries. Only the low half of the product is kept (the ISA's `MULT`
/// writes LO, and `MFLO` reads it).
///
/// # Panics
///
/// Panics if the operand buses differ in width or are empty.
pub fn array_multiplier_low(b: &mut Builder, a: &[Signal], x: &[Signal]) -> Vec<Signal> {
    let w = a.len();
    assert_eq!(w, x.len(), "multiplier operand width mismatch");
    assert!(w > 0, "multiplier width must be nonzero");

    if w == 1 {
        return vec![b.and(a[0], x[0])];
    }

    // Row 0: partial product of x[0].
    let mut acc: Vec<Signal> = a.iter().map(|&ai| b.and(ai, x[0])).collect();
    let mut result = Vec::with_capacity(w);

    // Each subsequent row adds (a & x[j]) << j. Working in a shifted frame:
    // after processing row j, acc holds bits [j..w) of the running sum and
    // result holds bits [0..j).
    for j in 1..w {
        // Bit j of the final (low-w) product is acc[0] before adding row j
        // shifted... careful: row j aligns with acc starting at offset 0 in
        // the shifted frame *after* we retire one bit.
        result.push(acc[0]);
        // Remaining accumulator bits shift down by one.
        let hi: Vec<Signal> = acc[1..].to_vec();
        // Partial product row j contributes to bits [j..w) => in the shifted
        // frame, to positions [0..w-j).
        let pp: Vec<Signal> = a[..w - j].iter().map(|&ai| b.and(ai, x[j])).collect();
        // hi has w-1 bits but only the low w-j positions matter for the low
        // product; truncate (upper product bits are discarded by the ISA).
        let hi_trunc = &hi[..w - j];
        let zero = b.const0();
        let sum = adder::ripple_carry(b, hi_trunc, &pp, zero);
        acc = sum.sum;
    }
    result.push(acc[0]);
    debug_assert_eq!(result.len(), w);
    result
}

/// Build a Wallace-tree multiplier returning the low `width` bits of
/// `a * x`: the partial-product matrix is reduced column-wise with 3:2
/// carry-save compressors until at most two bits per column remain, then a
/// Kogge–Stone adder resolves the final sum.
///
/// # Panics
///
/// Panics if the operand buses differ in width or are empty.
pub fn wallace_multiplier_low(b: &mut Builder, a: &[Signal], x: &[Signal]) -> Vec<Signal> {
    let w = a.len();
    assert_eq!(w, x.len(), "multiplier operand width mismatch");
    assert!(w > 0, "multiplier width must be nonzero");

    if w == 1 {
        return vec![b.and(a[0], x[0])];
    }

    // Partial-product matrix, column-wise (only the low w columns matter).
    let mut columns: Vec<Vec<Signal>> = vec![Vec::new(); w];
    for (j, &xj) in x.iter().enumerate() {
        for (i, &ai) in a.iter().enumerate() {
            if i + j < w {
                columns[i + j].push(b.and(ai, xj));
            }
        }
    }

    // Carry-save reduction: compress every column with full/half adders
    // until no column holds more than two bits. Carries out of column
    // w-1 are discarded (low-half product).
    loop {
        let tallest = columns.iter().map(Vec::len).max().unwrap_or(0);
        if tallest <= 2 {
            break;
        }
        let mut next: Vec<Vec<Signal>> = vec![Vec::new(); w];
        for c in 0..w {
            let bits = std::mem::take(&mut columns[c]);
            let mut chunks = bits.chunks_exact(3);
            for t in chunks.by_ref() {
                // Full adder: sum stays, carry moves up a column.
                let s1 = b.xor(t[0], t[1]);
                let sum = b.xor(s1, t[2]);
                next[c].push(sum);
                if c + 1 < w {
                    let carry = b.maj(t[0], t[1], t[2]);
                    next[c + 1].push(carry);
                }
            }
            let rest = chunks.remainder();
            if rest.len() == 2 && bits.len() > 2 {
                // Half adder only when the column still needs shrinking.
                let sum = b.xor(rest[0], rest[1]);
                next[c].push(sum);
                if c + 1 < w {
                    let carry = b.and(rest[0], rest[1]);
                    next[c + 1].push(carry);
                }
            } else {
                next[c].extend_from_slice(rest);
            }
        }
        columns = next;
    }

    // Final carry-propagate add of the two remaining rows.
    let zero = b.const0();
    let row0: Vec<Signal> = columns
        .iter()
        .map(|col| col.first().copied().unwrap_or(zero))
        .collect();
    let row1: Vec<Signal> = columns
        .iter()
        .map(|col| col.get(1).copied().unwrap_or(zero))
        .collect();
    adder::kogge_stone(b, &row0, &row1, zero).sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn build_wallace(w: usize) -> Netlist {
        let mut b = Builder::new();
        let a = b.input_bus("a", w);
        let x = b.input_bus("x", w);
        let p = wallace_multiplier_low(&mut b, &a, &x);
        b.output_bus("p", &p);
        b.finish()
    }

    fn build(w: usize) -> Netlist {
        let mut b = Builder::new();
        let a = b.input_bus("a", w);
        let x = b.input_bus("x", w);
        let p = array_multiplier_low(&mut b, &a, &x);
        b.output_bus("p", &p);
        b.finish()
    }

    fn run(nl: &Netlist, w: usize, a: u64, x: u64) -> u64 {
        let mut pis: Vec<bool> = (0..w).map(|i| (a >> i) & 1 == 1).collect();
        pis.extend((0..w).map(|i| (x >> i) & 1 == 1));
        nl.eval(&pis)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i))
    }

    #[test]
    fn exhaustive_4_bit() {
        let nl = build(4);
        for a in 0..16u64 {
            for x in 0..16u64 {
                assert_eq!(run(&nl, 4, a, x), (a * x) & 0xF, "{a} * {x}");
            }
        }
    }

    #[test]
    fn spot_checks_16_bit() {
        let nl = build(16);
        for (a, x) in [
            (0u64, 0u64),
            (1, 0xFFFF),
            (0xFFFF, 0xFFFF),
            (1234, 5678),
            (0x8000, 2),
            (257, 255),
        ] {
            assert_eq!(run(&nl, 16, a, x), a.wrapping_mul(x) & 0xFFFF, "{a} * {x}");
        }
    }

    #[test]
    fn spot_checks_32_bit() {
        let nl = build(32);
        for (a, x) in [
            (0xDEAD_BEEFu64, 0xCAFE_F00Du64),
            (u32::MAX as u64, u32::MAX as u64),
            (3, 0x5555_5555),
        ] {
            assert_eq!(
                run(&nl, 32, a, x),
                a.wrapping_mul(x) & 0xFFFF_FFFF,
                "{a} * {x}"
            );
        }
    }

    #[test]
    fn width_one_is_an_and_gate() {
        let nl = build(1);
        assert_eq!(run(&nl, 1, 1, 1), 1);
        assert_eq!(run(&nl, 1, 1, 0), 0);
    }

    #[test]
    fn wallace_exhaustive_4_bit() {
        let nl = build_wallace(4);
        for a in 0..16u64 {
            for x in 0..16u64 {
                assert_eq!(run(&nl, 4, a, x), (a * x) & 0xF, "{a} * {x}");
            }
        }
    }

    #[test]
    fn wallace_exhaustive_5_bit() {
        // Odd width exercises the half-adder remainder handling.
        let nl = build_wallace(5);
        for a in 0..32u64 {
            for x in 0..32u64 {
                assert_eq!(run(&nl, 5, a, x), (a * x) & 0x1F, "{a} * {x}");
            }
        }
    }

    #[test]
    fn wallace_spot_checks_32_bit() {
        let nl = build_wallace(32);
        for (a, x) in [
            (0xDEAD_BEEFu64, 0xCAFE_F00Du64),
            (u32::MAX as u64, u32::MAX as u64),
            (3, 0x5555_5555),
            (0x8000_0001, 0x7FFF_FFFF),
            (0, 12345),
        ] {
            assert_eq!(
                run(&nl, 32, a, x),
                a.wrapping_mul(x) & 0xFFFF_FFFF,
                "{a} * {x}"
            );
        }
    }

    #[test]
    fn wallace_is_much_shallower_than_array() {
        let wallace = build_wallace(32);
        let array = build(32);
        assert!(
            wallace.max_depth() * 2 < array.max_depth(),
            "wallace {} vs array {}",
            wallace.max_depth(),
            array.max_depth()
        );
    }

    #[test]
    fn multiplier_is_deepest_datapath_unit() {
        let mul = build(16);
        // Compare against a Kogge-Stone adder of the same width.
        let mut b = Builder::new();
        let a = b.input_bus("a", 16);
        let x = b.input_bus("x", 16);
        let zero = b.const0();
        let s = crate::generators::adder::kogge_stone(&mut b, &a, &x, zero);
        b.output_bus("s", &s.sum);
        let add = b.finish();
        assert!(mul.max_depth() > 2 * add.max_depth());
    }
}
