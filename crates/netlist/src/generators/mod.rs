//! Structural netlist generators: the substitute for RTL synthesis.
//!
//! Each generator emits the gate-level structure a synthesis tool would
//! produce for the corresponding datapath block, preserving the logic-depth
//! and path-diversity characteristics the timing study depends on.

pub mod adder;
pub mod alu;
pub mod ex_stage;
pub mod logic;
pub mod multiplier;
pub mod shifter;
