//! Adder generators: ripple-carry (compact, deep) and Kogge–Stone
//! (parallel-prefix, the shape a synthesis tool would pick for a
//! performance-constrained 64-bit ALU datapath).

use crate::netlist::{Builder, Signal};

/// Result of an addition: sum bits (LSB first) and carry-out.
#[derive(Debug, Clone)]
pub struct AdderOut {
    /// Sum bits, LSB first, same width as the operands.
    pub sum: Vec<Signal>,
    /// Carry out of the most significant bit.
    pub cout: Signal,
}

/// Build a ripple-carry adder.
///
/// Logic depth grows linearly with width; used for the compact rows of the
/// array multiplier and as a baseline in the depth/ablation studies.
///
/// # Panics
///
/// Panics if the operand buses differ in width or are empty.
pub fn ripple_carry(b: &mut Builder, a: &[Signal], x: &[Signal], cin: Signal) -> AdderOut {
    assert_eq!(a.len(), x.len(), "adder operand width mismatch");
    assert!(!a.is_empty(), "adder width must be nonzero");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &xi) in a.iter().zip(x.iter()) {
        let axb = b.xor(ai, xi);
        sum.push(b.xor(axb, carry));
        carry = b.maj(ai, xi, carry);
    }
    AdderOut { sum, cout: carry }
}

/// Build a Kogge–Stone parallel-prefix adder.
///
/// Logic depth is `O(log2 width)`; this is the adder used in the ALU's ADD /
/// SUB / LOAD (address-generation) datapaths.
///
/// # Panics
///
/// Panics if the operand buses differ in width or are empty.
pub fn kogge_stone(b: &mut Builder, a: &[Signal], x: &[Signal], cin: Signal) -> AdderOut {
    assert_eq!(a.len(), x.len(), "adder operand width mismatch");
    let w = a.len();
    assert!(w > 0, "adder width must be nonzero");

    // Bit-level generate/propagate.
    let mut g: Vec<Signal> = Vec::with_capacity(w);
    let mut p: Vec<Signal> = Vec::with_capacity(w);
    for i in 0..w {
        g.push(b.and(a[i], x[i]));
        p.push(b.xor(a[i], x[i]));
    }
    let p0 = p.clone(); // half-sum bits, needed for the final sum stage

    // Fold carry-in into bit 0: g0' = g0 | (p0 & cin), p0' = 0 conceptually;
    // we keep p0 and simply treat the prefix result as "carry out of bit i".
    let pc = b.and(p[0], cin);
    g[0] = b.or(g[0], pc);

    // Prefix tree: (g, p) composition (G, P) o (g, p) = (G | P&g, P&p).
    let mut dist = 1;
    while dist < w {
        let mut new_g = g.clone();
        let mut new_p = p.clone();
        for i in dist..w {
            let pg = b.and(p[i], g[i - dist]);
            new_g[i] = b.or(g[i], pg);
            new_p[i] = b.and(p[i], p[i - dist]);
        }
        g = new_g;
        p = new_p;
        dist *= 2;
    }

    // carries[i] = carry INTO bit i.
    let mut sum = Vec::with_capacity(w);
    sum.push(b.xor(p0[0], cin));
    for i in 1..w {
        sum.push(b.xor(p0[i], g[i - 1]));
    }
    AdderOut {
        sum,
        cout: g[w - 1],
    }
}

/// Build a carry-select adder: ripple blocks of `block` bits computed for
/// both carry-in values, with the true carry selecting per block.
///
/// Depth grows with `width / block` mux stages — far below the ripple
/// chain, with a mux-heavy gate mix unlike the prefix tree's and/or mix;
/// used by the adder-architecture ablation.
///
/// # Panics
///
/// Panics if the operand buses differ in width, are empty, or `block` is
/// zero.
pub fn carry_select(
    b: &mut Builder,
    a: &[Signal],
    x: &[Signal],
    cin: Signal,
    block: usize,
) -> AdderOut {
    assert_eq!(a.len(), x.len(), "adder operand width mismatch");
    assert!(!a.is_empty(), "adder width must be nonzero");
    assert!(block > 0, "block size must be nonzero");
    let w = a.len();
    let mut sum = Vec::with_capacity(w);
    let mut carry = cin;
    let mut lo = 0usize;
    while lo < w {
        let hi = (lo + block).min(w);
        let (ab, xb) = (&a[lo..hi], &x[lo..hi]);
        if lo == 0 {
            // First block: the carry-in is known, plain ripple.
            let out = ripple_carry(b, ab, xb, carry);
            sum.extend(out.sum);
            carry = out.cout;
        } else {
            // Speculate both carry values, select with the true carry.
            let zero = b.const0();
            let one = b.const1();
            let out0 = ripple_carry(b, ab, xb, zero);
            let out1 = ripple_carry(b, ab, xb, one);
            for (s0, s1) in out0.sum.iter().zip(out1.sum.iter()) {
                sum.push(b.mux(*s0, *s1, carry));
            }
            carry = b.mux(out0.cout, out1.cout, carry);
        }
        lo = hi;
    }
    AdderOut { sum, cout: carry }
}

/// Two's-complement subtract (`a - x`) via inverted `x` and carry-in 1,
/// built on the Kogge–Stone adder.
///
/// # Panics
///
/// Panics if the operand buses differ in width or are empty.
pub fn subtractor(b: &mut Builder, a: &[Signal], x: &[Signal]) -> AdderOut {
    let inv: Vec<Signal> = x.iter().map(|&s| b.not(s)).collect();
    let one = b.const1();
    kogge_stone(b, a, &inv, one)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn build_adder(w: usize, kogge: bool, sub: bool) -> Netlist {
        let mut b = Builder::new();
        let a = b.input_bus("a", w);
        let x = b.input_bus("x", w);
        let cin = b.input("cin");
        let out = if sub {
            subtractor(&mut b, &a, &x)
        } else if kogge {
            kogge_stone(&mut b, &a, &x, cin)
        } else {
            ripple_carry(&mut b, &a, &x, cin)
        };
        b.output_bus("sum", &out.sum);
        b.output("cout", out.cout);
        b.finish()
    }

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i))
    }

    fn check_adder(w: usize, kogge: bool) {
        let nl = build_adder(w, kogge, false);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let cases = [
            (0u64, 0u64, 0u64),
            (1, 1, 0),
            (mask, 1, 0),
            (mask, mask, 1),
            (0x5555_5555_5555_5555 & mask, 0xAAAA_AAAA_AAAA_AAAA & mask, 0),
            (0x1234_5678_9ABC_DEF0 & mask, 0x0FED_CBA9_8765_4321 & mask, 1),
        ];
        for (a, x, cin) in cases {
            let mut pis = to_bits(a, w);
            pis.extend(to_bits(x, w));
            pis.push(cin == 1);
            let out = nl.eval(&pis);
            let full = (a as u128) + (x as u128) + (cin as u128);
            assert_eq!(
                from_bits(&out[..w]),
                (full as u64) & mask,
                "{a} + {x} + {cin} (w={w}, kogge={kogge})"
            );
            assert_eq!(out[w], full >> w & 1 == 1, "cout of {a} + {x} + {cin}");
        }
    }

    #[test]
    fn ripple_matches_arithmetic() {
        for w in [1, 2, 3, 8, 16, 64] {
            check_adder(w, false);
        }
    }

    #[test]
    fn kogge_stone_matches_arithmetic() {
        for w in [1, 2, 3, 5, 8, 16, 64] {
            check_adder(w, true);
        }
    }

    #[test]
    fn kogge_stone_exhaustive_small() {
        let w = 4;
        let nl = build_adder(w, true, false);
        for a in 0..16u64 {
            for x in 0..16u64 {
                for cin in 0..2u64 {
                    let mut pis = to_bits(a, w);
                    pis.extend(to_bits(x, w));
                    pis.push(cin == 1);
                    let out = nl.eval(&pis);
                    let expected = a + x + cin;
                    assert_eq!(from_bits(&out[..w]), expected & 0xF);
                    assert_eq!(out[w], expected >> w == 1);
                }
            }
        }
    }

    #[test]
    fn subtractor_wraps_like_twos_complement() {
        let w = 8;
        let nl = build_adder(w, true, true);
        for (a, x) in [(5u64, 3u64), (3, 5), (0, 1), (255, 255), (128, 64)] {
            let mut pis = to_bits(a, w);
            pis.extend(to_bits(x, w));
            pis.push(false); // cin input exists but is unused by subtractor
            let out = nl.eval(&pis);
            assert_eq!(from_bits(&out[..w]), a.wrapping_sub(x) & 0xFF, "{a} - {x}");
        }
    }

    #[test]
    fn carry_select_matches_arithmetic() {
        for (w, block) in [(8usize, 4usize), (16, 4), (16, 8), (13, 5)] {
            let mut b = Builder::new();
            let a = b.input_bus("a", w);
            let x = b.input_bus("x", w);
            let cin = b.input("cin");
            let out = carry_select(&mut b, &a, &x, cin, block);
            b.output_bus("sum", &out.sum);
            b.output("cout", out.cout);
            let nl = b.finish();
            let mask = (1u64 << w) - 1;
            for (av, xv, c) in [
                (0u64, 0u64, 0u64),
                (mask, 1, 0),
                (mask, mask, 1),
                (0x1234 & mask, 0x0F0F & mask, 1),
                (0x00FF & mask, 0x0101 & mask, 0),
            ] {
                let mut pis = to_bits(av, w);
                pis.extend(to_bits(xv, w));
                pis.push(c == 1);
                let res = nl.eval(&pis);
                let full = (av as u128) + (xv as u128) + (c as u128);
                assert_eq!(
                    from_bits(&res[..w]),
                    (full as u64) & mask,
                    "{av}+{xv}+{c} (w={w} block={block})"
                );
                assert_eq!(res[w], full >> w & 1 == 1);
            }
        }
    }

    #[test]
    fn carry_select_depth_between_ripple_and_kogge() {
        let w = 32;
        let build = |kind: u8| {
            let mut b = Builder::new();
            let a = b.input_bus("a", w);
            let x = b.input_bus("x", w);
            let cin = b.input("cin");
            let out = match kind {
                0 => ripple_carry(&mut b, &a, &x, cin),
                1 => carry_select(&mut b, &a, &x, cin, 4),
                _ => kogge_stone(&mut b, &a, &x, cin),
            };
            b.output_bus("sum", &out.sum);
            b.finish().max_depth()
        };
        let (ripple, select, kogge) = (build(0), build(1), build(2));
        // Both parallel structures are far shallower than the ripple chain;
        // at this width/block the carry-select's mux chain lands in the
        // same depth class as the prefix tree (their gate *mixes* differ:
        // mux-heavy vs and/or-heavy, which is what the choke-susceptibility
        // ablation contrasts).
        assert!(select < ripple / 2, "select {select} vs ripple {ripple}");
        assert!(kogge < ripple / 2, "kogge {kogge} vs ripple {ripple}");
    }

    #[test]
    fn kogge_stone_is_logarithmic_depth() {
        let nl64 = build_adder(64, true, false);
        let ripple64 = build_adder(64, false, false);
        assert!(
            nl64.max_depth() < ripple64.max_depth() / 3,
            "kogge-stone depth {} should be far below ripple depth {}",
            nl64.max_depth(),
            ripple64.max_depth()
        );
    }
}
