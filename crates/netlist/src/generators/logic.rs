//! Bitwise logic unit (AND / OR / XOR / NOR arrays) and small glue blocks
//! (decoders, one-hot result selection, reduction trees).

use crate::cell::CellKind;
use crate::netlist::{Builder, Signal};

/// Bitwise application of a 2-input cell across two buses.
///
/// # Panics
///
/// Panics if the buses differ in width or `kind` is not a 2-input cell.
pub fn bitwise(b: &mut Builder, kind: CellKind, a: &[Signal], x: &[Signal]) -> Vec<Signal> {
    assert_eq!(a.len(), x.len(), "bitwise operand width mismatch");
    a.iter()
        .zip(x.iter())
        .map(|(&ai, &xi)| b.gate2(kind, ai, xi))
        .collect()
}

/// Balanced OR-reduction tree over a bus (returns const-0 for an empty bus).
pub fn or_tree(b: &mut Builder, bits: &[Signal]) -> Signal {
    reduce_tree(b, CellKind::Or2, bits)
}

/// Balanced AND-reduction tree over a bus (returns const-1 for an empty bus).
pub fn and_tree(b: &mut Builder, bits: &[Signal]) -> Signal {
    reduce_tree(b, CellKind::And2, bits)
}

fn reduce_tree(b: &mut Builder, kind: CellKind, bits: &[Signal]) -> Signal {
    if bits.is_empty() {
        return match kind {
            CellKind::And2 => b.const1(),
            _ => b.const0(),
        };
    }
    let mut level: Vec<Signal> = bits.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                b.gate2(kind, pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        level = next;
    }
    level[0]
}

/// Build a binary-to-one-hot decoder.
///
/// Output `i` is high iff the select bus (LSB first) encodes `i`. Only the
/// first `count` outputs are produced.
///
/// # Panics
///
/// Panics if `count > 2^sel.len()`.
pub fn decoder(b: &mut Builder, sel: &[Signal], count: usize) -> Vec<Signal> {
    assert!(
        count <= 1usize << sel.len(),
        "decoder cannot produce {count} outputs from {} select bits",
        sel.len()
    );
    let inv: Vec<Signal> = sel.iter().map(|&s| b.not(s)).collect();
    (0..count)
        .map(|i| {
            let literals: Vec<Signal> = sel
                .iter()
                .enumerate()
                .map(|(bit, &s)| if (i >> bit) & 1 == 1 { s } else { inv[bit] })
                .collect();
            and_tree(b, &literals)
        })
        .collect()
}

/// One-hot AND–OR result selection: for each bit position, OR together
/// `candidate[k][bit] & onehot[k]`. This is the classic ALU result-mux
/// structure.
///
/// # Panics
///
/// Panics if candidate buses differ in width, or the one-hot bus length
/// differs from the number of candidates.
pub fn onehot_select(b: &mut Builder, candidates: &[Vec<Signal>], onehot: &[Signal]) -> Vec<Signal> {
    assert_eq!(
        candidates.len(),
        onehot.len(),
        "one candidate bus per one-hot line"
    );
    assert!(!candidates.is_empty(), "need at least one candidate");
    let w = candidates[0].len();
    for c in candidates {
        assert_eq!(c.len(), w, "candidate bus width mismatch");
    }
    (0..w)
        .map(|bit| {
            let gated: Vec<Signal> = candidates
                .iter()
                .zip(onehot.iter())
                .map(|(c, &en)| b.and(c[bit], en))
                .collect();
            or_tree(b, &gated)
        })
        .collect()
}

/// Zero-detect over a bus: high iff every bit is 0.
pub fn is_zero(b: &mut Builder, bits: &[Signal]) -> Signal {
    let any = or_tree(b, bits);
    b.not(any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn eval_single(nl: &Netlist, pis: &[bool]) -> Vec<bool> {
        nl.eval(pis)
    }

    #[test]
    fn bitwise_ops_match() {
        let w = 8;
        for kind in [CellKind::And2, CellKind::Or2, CellKind::Xor2, CellKind::Nor2] {
            let mut b = Builder::new();
            let a = b.input_bus("a", w);
            let x = b.input_bus("x", w);
            let y = bitwise(&mut b, kind, &a, &x);
            b.output_bus("y", &y);
            let nl = b.finish();
            let (av, xv) = (0xA5u64, 0x3Cu64);
            let mut pis: Vec<bool> = (0..w).map(|i| (av >> i) & 1 == 1).collect();
            pis.extend((0..w).map(|i| (xv >> i) & 1 == 1));
            let out = eval_single(&nl, &pis);
            let expected = match kind {
                CellKind::And2 => av & xv,
                CellKind::Or2 => av | xv,
                CellKind::Xor2 => av ^ xv,
                CellKind::Nor2 => !(av | xv) & 0xFF,
                _ => unreachable!(),
            };
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i));
            assert_eq!(got, expected, "{kind}");
        }
    }

    #[test]
    fn decoder_is_onehot() {
        let mut b = Builder::new();
        let sel = b.input_bus("sel", 4);
        let out = decoder(&mut b, &sel, 13);
        b.output_bus("out", &out);
        let nl = b.finish();
        for v in 0..13usize {
            let pis: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let out = eval_single(&nl, &pis);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == v, "decoder({v}) output {i}");
            }
        }
    }

    #[test]
    fn or_and_trees() {
        let mut b = Builder::new();
        let a = b.input_bus("a", 5);
        let any = or_tree(&mut b, &a);
        let all = and_tree(&mut b, &a);
        let zero = is_zero(&mut b, &a);
        b.output("any", any);
        b.output("all", all);
        b.output("zero", zero);
        let nl = b.finish();
        for v in 0..32u32 {
            let pis: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            let out = eval_single(&nl, &pis);
            assert_eq!(out[0], v != 0);
            assert_eq!(out[1], v == 31);
            assert_eq!(out[2], v == 0);
        }
    }

    #[test]
    fn onehot_select_picks_candidate() {
        let mut b = Builder::new();
        let c0 = b.input_bus("c0", 4);
        let c1 = b.input_bus("c1", 4);
        let oh = b.input_bus("oh", 2);
        let y = onehot_select(&mut b, &[c0, c1], &oh);
        b.output_bus("y", &y);
        let nl = b.finish();
        // c0 = 0b1010, c1 = 0b0110, select c1.
        let mut pis = vec![false, true, false, true]; // c0
        pis.extend([false, true, true, false]); // c1
        pis.extend([false, true]); // one-hot selects candidate 1
        let out = eval_single(&nl, &pis);
        assert_eq!(out, vec![false, true, true, false]);
    }

    #[test]
    fn empty_tree_identities() {
        let mut b = Builder::new();
        let _unused = b.input("x");
        let or0 = or_tree(&mut b, &[]);
        let and1 = and_tree(&mut b, &[]);
        b.output("or0", or0);
        b.output("and1", and1);
        let nl = b.finish();
        let out = nl.eval(&[false]);
        assert!(!out[0]);
        assert!(out[1]);
    }
}
