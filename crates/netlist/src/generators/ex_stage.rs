//! The execute (EX) pipestage: the ALU plus the stage glue a synthesized
//! FabScalar-style EX stage carries (operand bypass muxes and result/flag
//! capture logic). This is the block the paper instruments — both chapters
//! focus their timing study on the EX pipestage.

use crate::generators::alu::{build_alu_body, AluFunc};
use crate::generators::logic;
use crate::netlist::{Builder, Netlist};

/// A generated EX pipestage.
///
/// Input ports: `op` (4), `a` (`width`), `b` (`width`), `fwd_a` (`width`),
/// `fwd_b` (`width`), `bypass_a` (1), `bypass_b` (1).
/// Output ports: `result` (`width`), `zero` (1), `sign` (1).
#[derive(Debug, Clone)]
pub struct ExStage {
    netlist: Netlist,
    width: usize,
}

impl ExStage {
    /// Generate a `width`-bit EX pipestage.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 2, "EX stage width must be at least 2");
        let mut b = Builder::new();
        let op = b.input_bus("op", 4);
        let a_reg = b.input_bus("a", width);
        let b_reg = b.input_bus("b", width);
        let fwd_a = b.input_bus("fwd_a", width);
        let fwd_b = b.input_bus("fwd_b", width);
        let byp_a = b.input("bypass_a");
        let byp_b = b.input("bypass_b");

        // Operand bypass muxes (forwarding network).
        let a_bus = b.mux_bus(&a_reg, &fwd_a, byp_a);
        let b_bus = b.mux_bus(&b_reg, &fwd_b, byp_b);

        // The ALU body proper, built against the bypassed operand buses.
        let result = build_alu_body(&mut b, &op, &a_bus, &b_bus);
        let zero = logic::is_zero(&mut b, &result);
        let sign = result[width - 1];
        b.output_bus("result", &result);
        b.output("zero", zero);
        b.output("sign", sign);

        ExStage {
            netlist: b.finish(),
            width,
        }
    }

    /// The underlying netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consume the wrapper, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encode a stimulus with bypasses disabled.
    pub fn encode(&self, func: AluFunc, a: u64, b: u64) -> Vec<bool> {
        let w = self.width;
        let mut pis = Vec::with_capacity(4 + 4 * w + 2);
        let code = func.select_code();
        pis.extend((0..4).map(|i| (code >> i) & 1 == 1));
        pis.extend((0..w).map(|i| (a >> i) & 1 == 1));
        pis.extend((0..w).map(|i| (b >> i) & 1 == 1));
        pis.extend(std::iter::repeat_n(false, 2 * w)); // fwd buses idle
        pis.push(false); // bypass_a
        pis.push(false); // bypass_b
        pis
    }

    /// Execute one operation (bypasses disabled) and decode the result bus.
    pub fn execute(&self, func: AluFunc, a: u64, b: u64) -> u64 {
        let out = self.netlist.eval(&self.encode(func, a, b));
        out[..self.width]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::alu::{AluFunc, ALL_ALU_FUNCS};

    #[test]
    fn ex_stage_matches_golden_model() {
        let ex = ExStage::new(8);
        for func in ALL_ALU_FUNCS {
            for (a, b) in [(0xA5u64, 0x3Cu64), (0xFF, 0x01), (0x00, 0x00), (0x81, 0x07)] {
                assert_eq!(
                    ex.execute(func, a, b),
                    func.golden(a, b, 8),
                    "{func} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn bypass_muxes_forward_operands() {
        let ex = ExStage::new(8);
        let w = 8usize;
        // a=0, b=0 registered; forwarded a=5, b=7; bypass both; ADD -> 12.
        let mut pis = Vec::new();
        pis.extend((0..4).map(|i| (AluFunc::Add.select_code() >> i) & 1 == 1));
        pis.extend(std::iter::repeat_n(false, 2 * w)); // a, b regs = 0
        pis.extend((0..w).map(|i| (5u64 >> i) & 1 == 1)); // fwd_a
        pis.extend((0..w).map(|i| (7u64 >> i) & 1 == 1)); // fwd_b
        pis.push(true); // bypass_a
        pis.push(true); // bypass_b
        let out = ex.netlist().eval(&pis);
        let result = out[..w]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i));
        assert_eq!(result, 12);
    }

    #[test]
    fn flags_are_exposed() {
        let ex = ExStage::new(8);
        let out = ex.netlist().eval(&ex.encode(AluFunc::Sub, 3, 3));
        assert!(out[8], "zero flag");
        assert!(!out[9], "sign flag");
        let out = ex.netlist().eval(&ex.encode(AluFunc::Sub, 3, 4));
        assert!(!out[8]);
        assert!(out[9], "negative result sets sign");
    }

    #[test]
    fn ex_stage_is_larger_than_bare_alu() {
        let ex = ExStage::new(8);
        let alu = crate::generators::alu::Alu::new(8);
        assert!(ex.netlist().logic_gate_count() > alu.netlist().logic_gate_count());
    }
}
