//! Logarithmic barrel shifter for the ALU's shift/rotate datapaths
//! (SLL/SRL/SRA/ROR and their variable-amount variants).

use crate::netlist::{Builder, Signal};

/// Shift/rotate operation performed by the barrel shifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Logical left shift, zero fill.
    LogicalLeft,
    /// Logical right shift, zero fill (LSR / SRL).
    LogicalRight,
    /// Arithmetic right shift, sign fill (ASR / SRA).
    ArithmeticRight,
    /// Rotate right.
    RotateRight,
}

/// Build a logarithmic barrel shifter.
///
/// `amount` is a `ceil(log2(width))`-bit bus selecting the shift distance
/// (LSB first). Each stage conditionally shifts by a power of two through a
/// rank of 2:1 muxes, giving `log2(width)` mux levels — the structure a
/// synthesis tool produces for variable-amount shifts.
///
/// # Panics
///
/// Panics if `value` is empty or `amount.len()` is not `ceil(log2(width))`.
pub fn barrel_shifter(
    b: &mut Builder,
    value: &[Signal],
    amount: &[Signal],
    kind: ShiftKind,
) -> Vec<Signal> {
    let w = value.len();
    assert!(w > 0, "shifter width must be nonzero");
    let stages = usize::BITS as usize - (w - 1).leading_zeros() as usize;
    let stages = stages.max(1);
    assert_eq!(
        amount.len(),
        stages,
        "shift amount must have ceil(log2({w})) = {stages} bits"
    );

    let zero = b.const0();
    let sign = value[w - 1];
    let mut cur: Vec<Signal> = value.to_vec();
    for (stage, &sel) in amount.iter().enumerate() {
        let dist = 1usize << stage;
        let shifted: Vec<Signal> = (0..w)
            .map(|i| match kind {
                ShiftKind::LogicalLeft => {
                    if i >= dist {
                        cur[i - dist]
                    } else {
                        zero
                    }
                }
                ShiftKind::LogicalRight => {
                    if i + dist < w {
                        cur[i + dist]
                    } else {
                        zero
                    }
                }
                ShiftKind::ArithmeticRight => {
                    if i + dist < w {
                        cur[i + dist]
                    } else {
                        sign
                    }
                }
                ShiftKind::RotateRight => cur[(i + dist) % w],
            })
            .collect();
        cur = cur
            .iter()
            .zip(shifted.iter())
            .map(|(&keep, &shift)| b.mux(keep, shift, sel))
            .collect();
    }
    cur
}

/// Number of shift-amount bits a barrel shifter of `width` needs.
pub fn amount_bits(width: usize) -> usize {
    assert!(width > 0, "width must be nonzero");
    (usize::BITS as usize - (width - 1).leading_zeros() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn build(w: usize, kind: ShiftKind) -> Netlist {
        let mut b = Builder::new();
        let v = b.input_bus("v", w);
        let amt = b.input_bus("amt", amount_bits(w));
        let out = barrel_shifter(&mut b, &v, &amt, kind);
        b.output_bus("out", &out);
        b.finish()
    }

    fn run(nl: &Netlist, w: usize, v: u64, amt: u64) -> u64 {
        let mut pis: Vec<bool> = (0..w).map(|i| (v >> i) & 1 == 1).collect();
        pis.extend((0..amount_bits(w)).map(|i| (amt >> i) & 1 == 1));
        nl.eval(&pis)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i))
    }

    #[test]
    fn logical_left_matches() {
        for w in [8usize, 16, 64] {
            let nl = build(w, ShiftKind::LogicalLeft);
            let mask = if w == 64 { u64::MAX } else { (1 << w) - 1 };
            for amt in 0..w as u64 {
                let v = 0xDEAD_BEEF_CAFE_F00D & mask;
                assert_eq!(run(&nl, w, v, amt), (v << amt) & mask, "w={w} amt={amt}");
            }
        }
    }

    #[test]
    fn logical_right_matches() {
        let w = 16;
        let nl = build(w, ShiftKind::LogicalRight);
        for amt in 0..16u64 {
            let v = 0xB00F;
            assert_eq!(run(&nl, w, v, amt), v >> amt, "amt={amt}");
        }
    }

    #[test]
    fn arithmetic_right_sign_extends() {
        let w = 8;
        let nl = build(w, ShiftKind::ArithmeticRight);
        for amt in 0..8u64 {
            let v = 0x90u64; // negative in 8-bit two's complement
            let expected = (((v as i8) >> amt) as u8) as u64;
            assert_eq!(run(&nl, w, v, amt), expected, "amt={amt}");
        }
        // Positive values shift in zeros.
        assert_eq!(run(&nl, w, 0x70, 4), 0x07);
    }

    #[test]
    fn rotate_right_matches() {
        let w = 8;
        let nl = build(w, ShiftKind::RotateRight);
        for amt in 0..8u32 {
            let v = 0xA3u8;
            assert_eq!(run(&nl, w, v as u64, amt as u64), v.rotate_right(amt) as u64);
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let nl = build(64, ShiftKind::LogicalRight);
        // 6 mux stages => depth 6.
        assert_eq!(nl.max_depth(), 6);
    }

    #[test]
    fn amount_bits_values() {
        assert_eq!(amount_bits(1), 1);
        assert_eq!(amount_bits(2), 1);
        assert_eq!(amount_bits(8), 3);
        assert_eq!(amount_bits(64), 6);
    }
}
