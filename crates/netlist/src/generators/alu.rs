//! The width-parametric ALU: the execute-stage datapath the whole study
//! scrutinizes (the paper synthesizes a 64-bit ALU / EX pipestage and runs
//! its statistical timing analysis against it).
//!
//! Structure: a 4-bit function select feeds a one-hot decoder; the adder
//! (shared by ADD / SUB / LOAD address generation), array multiplier,
//! bitwise logic arrays, a combined right shifter (logical / arithmetic /
//! rotate) and a left shifter all compute in parallel; a one-hot AND–OR
//! stage selects the result. This mirrors a synthesized ALU's path
//! diversity: MULT is deepest, BUFFER shallowest, exactly the relative
//! depths the choke-point analysis depends on.

use crate::cell::CellKind;
use crate::generators::{adder, logic, multiplier, shifter};
use crate::netlist::{Builder, Netlist, Signal};
use std::fmt;

/// Datapath function computed by the [`Alu`].
///
/// These are *datapath* selectors, not ISA opcodes; `ntc-isa` maps each
/// architectural opcode (ADDU, ADDIU, LUI, …) onto one of these plus an
/// operand routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluFunc {
    /// `a + b`.
    Add,
    /// `a - b` (two's complement).
    Sub,
    /// Low half of `a * b` (the MULT/MFLO datapath).
    Mult,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Address generation for loads: `a + b` through the adder plus the
    /// AGU buffering stage (a slightly longer path than plain ADD).
    Load,
    /// Arithmetic shift right by `b`'s low bits (ASR / SRA).
    ShiftRightArith,
    /// Logical shift right by `b`'s low bits (LSR / SRL).
    ShiftRightLogical,
    /// Rotate right by `b`'s low bits (ROR).
    RotateRight,
    /// Logical shift left by `b`'s low bits (SLL).
    ShiftLeft,
    /// Pass `a` through a buffer stage (the BUFFER op of the paper's ALU
    /// study; also models register-move style ops).
    Buffer,
}

/// All ALU functions, in select-code order.
pub const ALL_ALU_FUNCS: [AluFunc; 13] = [
    AluFunc::Add,
    AluFunc::Sub,
    AluFunc::Mult,
    AluFunc::Or,
    AluFunc::And,
    AluFunc::Xor,
    AluFunc::Nor,
    AluFunc::Load,
    AluFunc::ShiftRightArith,
    AluFunc::ShiftRightLogical,
    AluFunc::RotateRight,
    AluFunc::ShiftLeft,
    AluFunc::Buffer,
];

impl AluFunc {
    /// The 4-bit select code driven onto the ALU's `op` input port.
    #[inline]
    pub fn select_code(self) -> u8 {
        ALL_ALU_FUNCS
            .iter()
            .position(|&f| f == self)
            .expect("every AluFunc is in ALL_ALU_FUNCS") as u8
    }

    /// Inverse of [`select_code`](Self::select_code).
    pub fn from_select_code(code: u8) -> Option<Self> {
        ALL_ALU_FUNCS.get(code as usize).copied()
    }

    /// Golden-model (behavioural) semantics used to verify the netlist.
    ///
    /// Operands and result are `width`-bit values stored LSB-aligned in
    /// `u64`. Shift amounts use the low `ceil(log2(width))` bits of `b`.
    pub fn golden(self, a: u64, b: u64, width: usize) -> u64 {
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let sh_bits = shifter::amount_bits(width) as u32;
        let amt = (b & ((1 << sh_bits) - 1)) as u32;
        let v = match self {
            AluFunc::Add | AluFunc::Load => a.wrapping_add(b),
            AluFunc::Sub => a.wrapping_sub(b),
            AluFunc::Mult => a.wrapping_mul(b),
            AluFunc::Or => a | b,
            AluFunc::And => a & b,
            AluFunc::Xor => a ^ b,
            AluFunc::Nor => !(a | b),
            AluFunc::ShiftRightArith => {
                let sign = (a >> (width - 1)) & 1 == 1;
                let mut r = (a & mask) >> (amt as u64 % width as u64).min(63);
                if sign && amt > 0 {
                    let fill = amt.min(width as u32);
                    for i in 0..fill {
                        r |= 1u64 << (width as u32 - 1 - i).min(63);
                    }
                }
                r
            }
            AluFunc::ShiftRightLogical => {
                if amt as usize >= width {
                    0
                } else {
                    (a & mask) >> amt
                }
            }
            AluFunc::RotateRight => {
                let amt = amt as u64 % width as u64;
                if amt == 0 {
                    a
                } else {
                    ((a & mask) >> amt) | ((a & mask) << (width as u64 - amt))
                }
            }
            AluFunc::ShiftLeft => {
                if amt as usize >= width {
                    0
                } else {
                    a << amt
                }
            }
            AluFunc::Buffer => a,
        };
        v & mask
    }

    /// Display name matching the paper's figures (ADD, SUB, MULT, …).
    pub fn paper_name(self) -> &'static str {
        match self {
            AluFunc::Add => "ADD",
            AluFunc::Sub => "SUB",
            AluFunc::Mult => "MULT",
            AluFunc::Or => "OR",
            AluFunc::And => "AND",
            AluFunc::Xor => "XOR",
            AluFunc::Nor => "NOR",
            AluFunc::Load => "LOAD",
            AluFunc::ShiftRightArith => "ASR",
            AluFunc::ShiftRightLogical => "LSR",
            AluFunc::RotateRight => "ROR",
            AluFunc::ShiftLeft => "SLL",
            AluFunc::Buffer => "BUFFER",
        }
    }
}

impl fmt::Display for AluFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A generated ALU netlist plus its port metadata.
#[derive(Debug, Clone)]
pub struct Alu {
    netlist: Netlist,
    width: usize,
}

impl Alu {
    /// Generate a `width`-bit ALU (the paper uses 64; tests use 8–16 for
    /// speed).
    ///
    /// Input ports: `op` (4 bits), `a` (`width` bits), `b` (`width` bits).
    /// Output port: `result` (`width` bits) plus a `zero` flag.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 2, "ALU width must be at least 2");
        let mut b = Builder::new();
        let op = b.input_bus("op", 4);
        let a_bus = b.input_bus("a", width);
        let b_bus = b.input_bus("b", width);

        let result = build_alu_body(&mut b, &op, &a_bus, &b_bus);
        let zero = logic::is_zero(&mut b, &result);
        b.output_bus("result", &result);
        b.output("zero", zero);

        Alu {
            netlist: b.finish(),
            width,
        }
    }

    /// The underlying netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Consume the wrapper, returning the netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encode one operation as a primary-input vector (`op`, `a`, `b`).
    pub fn encode(&self, func: AluFunc, a: u64, b: u64) -> Vec<bool> {
        let mut pis = Vec::with_capacity(4 + 2 * self.width);
        let code = func.select_code();
        pis.extend((0..4).map(|i| (code >> i) & 1 == 1));
        pis.extend((0..self.width).map(|i| (a >> i) & 1 == 1));
        pis.extend((0..self.width).map(|i| (b >> i) & 1 == 1));
        pis
    }

    /// Run one operation through the netlist and decode the result bus.
    pub fn execute(&self, func: AluFunc, a: u64, b: u64) -> u64 {
        let out = self.netlist.eval(&self.encode(func, a, b));
        out[..self.width]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | ((bit as u64) << i))
    }
}

/// The full ALU datapath body, shared between [`Alu`] and the EX-stage
/// generator: one-hot function decode, shared adder (ADD/SUB/LOAD), array
/// multiplier, bitwise arrays, combined right shifter (LSR/ASR/ROR share
/// the mux array with per-mode fill), left shifter, pass-through buffers,
/// and the one-hot AND–OR result selection.
pub(crate) fn build_alu_body(
    b: &mut Builder,
    op: &[Signal],
    a_bus: &[Signal],
    b_bus: &[Signal],
) -> Vec<Signal> {
    let width = a_bus.len();
    let onehot = logic::decoder(b, op, ALL_ALU_FUNCS.len());
    let sel_sub = onehot[AluFunc::Sub.select_code() as usize];
    let sel_arith = onehot[AluFunc::ShiftRightArith.select_code() as usize];
    let sel_ror = onehot[AluFunc::RotateRight.select_code() as usize];

    // Shared adder: ADD / SUB / LOAD. SUB inverts b and injects carry-in,
    // the standard shared-adder trick.
    let b_eff: Vec<Signal> = b_bus.iter().map(|&bit| b.xor(bit, sel_sub)).collect();
    let add_out = adder::kogge_stone(b, a_bus, &b_eff, sel_sub);
    // LOAD: address-generation path = adder + AGU buffering.
    let load_out: Vec<Signal> = add_out
        .sum
        .iter()
        .map(|&s| {
            let b1 = b.buf(s);
            b.buf(b1)
        })
        .collect();

    let mult_out = multiplier::wallace_multiplier_low(b, a_bus, b_bus);

    let or_out = logic::bitwise(b, CellKind::Or2, a_bus, b_bus);
    let and_out = logic::bitwise(b, CellKind::And2, a_bus, b_bus);
    let xor_out = logic::bitwise(b, CellKind::Xor2, a_bus, b_bus);
    let nor_out = logic::bitwise(b, CellKind::Nor2, a_bus, b_bus);

    let amt_bits = shifter::amount_bits(width);
    let amount: Vec<Signal> = b_bus[..amt_bits].to_vec();
    let right_out = combined_right_shifter(b, a_bus, &amount, sel_arith, sel_ror);
    let left_out = shifter::barrel_shifter(b, a_bus, &amount, shifter::ShiftKind::LogicalLeft);

    let buffer_out: Vec<Signal> = a_bus.iter().map(|&s| b.buf(s)).collect();

    // Candidates in select-code order.
    let candidates: Vec<Vec<Signal>> = vec![
        add_out.sum.clone(), // Add
        add_out.sum,         // Sub (same adder output; b_eff/cin made it a-b)
        mult_out,            // Mult
        or_out,              // Or
        and_out,             // And
        xor_out,             // Xor
        nor_out,             // Nor
        load_out,            // Load
        right_out.clone(),   // ShiftRightArith
        right_out.clone(),   // ShiftRightLogical
        right_out,           // RotateRight
        left_out,            // ShiftLeft
        buffer_out,          // Buffer
    ];
    let selected = logic::onehot_select(b, &candidates, &onehot);
    // Result-bus drivers: the selected result crosses the bypass network
    // and the writeback wiring through a buffer chain every operation
    // shares (part of the common EX-stage depth a synthesized datapath
    // carries).
    selected
        .iter()
        .map(|&s| {
            let b1 = b.buf(s);
            let b2 = b.buf(b1);
            b.buf(b2)
        })
        .collect()
}

/// Right shifter shared by LSR / ASR / ROR: one mux array whose shifted-in
/// bits are selected per mode (`zero`, `sign`, or the rotated-around data).
fn combined_right_shifter(
    b: &mut Builder,
    value: &[Signal],
    amount: &[Signal],
    sel_arith: Signal,
    sel_ror: Signal,
) -> Vec<Signal> {
    let w = value.len();
    let sign = value[w - 1];
    // fill = sign if arithmetic, else 0 (rotate overrides per-bit below).
    let fill = b.and(sign, sel_arith);
    let mut cur: Vec<Signal> = value.to_vec();
    for (stage, &sel) in amount.iter().enumerate() {
        let dist = 1usize << stage;
        let shifted: Vec<Signal> = (0..w)
            .map(|i| {
                if i + dist < w {
                    cur[i + dist]
                } else {
                    // Out-of-range source: fill for shifts, wrapped for ROR.
                    let wrapped = cur[(i + dist) % w];
                    b.mux(fill, wrapped, sel_ror)
                }
            })
            .collect();
        cur = cur
            .iter()
            .zip(shifted.iter())
            .map(|(&keep, &shift)| b.mux(keep, shift, sel))
            .collect();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_codes_roundtrip() {
        for f in ALL_ALU_FUNCS {
            assert_eq!(AluFunc::from_select_code(f.select_code()), Some(f));
        }
        assert_eq!(AluFunc::from_select_code(13), None);
    }

    #[test]
    fn alu_matches_golden_model_8bit() {
        let alu = Alu::new(8);
        let cases = [
            (0x00u64, 0x00u64),
            (0xFF, 0x01),
            (0xA5, 0x3C),
            (0x80, 0x7F),
            (0x01, 0x08),
            (0x90, 0x03),
            (0x7B, 0xE6),
        ];
        for func in ALL_ALU_FUNCS {
            for (a, b) in cases {
                assert_eq!(
                    alu.execute(func, a, b),
                    func.golden(a, b, 8),
                    "{func} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn alu_matches_golden_model_16bit_spot() {
        let alu = Alu::new(16);
        for func in ALL_ALU_FUNCS {
            for (a, b) in [(0xDEADu64, 0xBEEFu64), (0x8000, 0x0001), (0x1234, 0x000F)] {
                assert_eq!(
                    alu.execute(func, a, b),
                    func.golden(a, b, 16),
                    "{func} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn zero_flag() {
        let alu = Alu::new(8);
        let pis = alu.encode(AluFunc::Sub, 42, 42);
        let out = alu.netlist().eval(&pis);
        assert!(out[8], "zero flag set for 42-42");
        let pis = alu.encode(AluFunc::Sub, 42, 41);
        let out = alu.netlist().eval(&pis);
        assert!(!out[8], "zero flag clear for 42-41");
    }

    #[test]
    fn mult_is_the_deepest_function() {
        // Depth diversity across functions is the property the choke-point
        // study depends on; check the ordering holds structurally.
        let alu = Alu::new(8);
        assert!(alu.netlist().max_depth() > 20);
    }

    #[test]
    fn golden_shift_semantics() {
        // ASR on a negative value sign-extends.
        assert_eq!(AluFunc::ShiftRightArith.golden(0x80, 1, 8), 0xC0);
        assert_eq!(AluFunc::ShiftRightArith.golden(0x80, 7, 8), 0xFF);
        // ROR wraps.
        assert_eq!(AluFunc::RotateRight.golden(0x01, 1, 8), 0x80);
        // SLL of >= width is 0 when amount bits allow expressing it... with
        // 3 amount bits on w=8 the max amount is 7.
        assert_eq!(AluFunc::ShiftLeft.golden(0x01, 7, 8), 0x80);
    }

    #[test]
    fn width_is_recorded() {
        let alu = Alu::new(8);
        assert_eq!(alu.width(), 8);
        assert_eq!(alu.netlist().input_ports().len(), 3);
    }
}
