//! # ntc-netlist
//!
//! Gate-level netlist kernel for the `ntc-choke` cross-layer simulator: the
//! substitute for an RTL synthesis flow (Synopsys Design Compiler + a
//! NanGate-style 15 nm FinFET cell library in the original paper).
//!
//! The crate provides:
//!
//! * a [standard-cell library](cell::CellKind) with per-cell nominal delay,
//!   area, switching energy and leakage;
//! * an arena [`Netlist`] whose gate order is a topological order by
//!   construction, plus the incremental [`Builder`];
//! * [structural generators](generators) for the datapath blocks the paper
//!   studies: parallel-prefix and ripple adders, an array multiplier,
//!   barrel shifters, bitwise logic - composed into the width-parametric
//!   [`Alu`](generators::alu::Alu) and [`ExStage`](generators::ex_stage::ExStage);
//! * the Razor-style [hold-fixing buffer-insertion pass](buffer_insertion)
//!   whose failure mode at NTC ("choke buffers") Chapter 4 studies;
//! * [gate-level synthesis](synth) of the DCS/Trident hardware blocks for
//!   the overhead tables.
//!
//! # Examples
//!
//! Build an 8-bit ALU and execute an operation through the gate network:
//!
//! ```
//! use ntc_netlist::generators::alu::{Alu, AluFunc};
//!
//! let alu = Alu::new(8);
//! assert_eq!(alu.execute(AluFunc::Add, 200, 100), (200u64 + 100) & 0xFF);
//! assert_eq!(alu.execute(AluFunc::Nor, 0xF0, 0x0F), 0x00);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer_insertion;
pub mod cell;
pub mod generators;
mod netlist;
pub mod synth;
pub mod verilog;

pub use cell::{CellKind, ALL_CELL_KINDS};
pub use netlist::{BuildNetlistError, Builder, Gate, Netlist, Port, Signal};
