//! Razor-style hold fixing: pad short paths with buffers so no capture
//! point can switch before the minimum-path-delay constraint — without
//! hurting the setup side.
//!
//! This is the classic slack-aware formulation: buffers are inserted on
//! individual gate-input *edges* whose earliest arrival violates the hold
//! requirement, and only up to the edge's setup slack, so padding lands on
//! the short source branches (e.g. a bypass unit's feed into the result
//! mux) rather than on shared trunks that also carry critical paths.
//!
//! The paper (Ch. 4) shows this classic technique backfires at NTC because
//! the inserted buffers are themselves subject to process variation and
//! can become *choke buffers*; this pass exists so that effect can be
//! studied (Fig. 4.2's buffered vs. bufferless comparison).

use crate::cell::CellKind;
use crate::netlist::{Builder, Netlist, Signal};

/// Report produced by [`insert_hold_buffers`].
#[derive(Debug, Clone, PartialEq)]
pub struct BufferReport {
    /// Number of buffer cells inserted.
    pub buffers_inserted: usize,
    /// Number of gate-input edges that received a chain.
    pub edges_padded: usize,
    /// The shortest output arrival (ps, nominal delays) before padding.
    pub min_delay_before_ps: f64,
    /// The shortest output arrival (ps, nominal delays) after padding.
    pub min_delay_after_ps: f64,
    /// The critical (setup) delay before padding.
    pub max_delay_before_ps: f64,
    /// The critical (setup) delay after padding — must not regress.
    pub max_delay_after_ps: f64,
}

/// Indices (into the new netlist's gate array) of inserted buffer gates.
#[derive(Debug, Clone, Default)]
pub struct InsertedBuffers(pub Vec<Signal>);

impl InsertedBuffers {
    /// Raw gate indices of the inserted buffers, in insertion order — the
    /// mutation targets an adaptive scheme hands to the incremental
    /// timing engine's `retime_gate` hook (`ntc-timing`) when it resizes
    /// a buffer mid-run: the delay of one of these gates changes and only
    /// its fanout cone is re-timed, no full re-analysis.
    pub fn gate_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().map(|s| s.index())
    }
}

/// Clone `nl`, inserting hold-fix buffer chains so every primary output's
/// earliest nominal arrival is at least `min_delay_ps`, while keeping all
/// latest arrivals within `setup_ps`.
///
/// Arrival analysis uses nominal (PV-free) cell delays, which is exactly
/// what a design-time hold-fixing flow sees — and why the fix is defeated
/// post-silicon when PV shrinks the buffer delays themselves.
///
/// Paths whose hold requirement cannot be fully met within the available
/// setup slack are padded as far as the slack allows (matching real flows,
/// which report the residual as a hold violation).
///
/// # Panics
///
/// Panics if `min_delay_ps` is negative or `setup_ps <= min_delay_ps`.
pub fn insert_hold_buffers(
    nl: &Netlist,
    min_delay_ps: f64,
    setup_ps: f64,
) -> (Netlist, InsertedBuffers, BufferReport) {
    assert!(min_delay_ps >= 0.0, "hold constraint must be non-negative");
    assert!(
        setup_ps > min_delay_ps,
        "setup target must exceed the hold target"
    );

    let n = nl.len();
    let (min_arr, max_arr) = nominal_arrivals(nl);

    // Backward pass 1 — setup requirement: latest permissible arrival.
    let mut latest = vec![f64::INFINITY; n];
    for &o in nl.outputs() {
        latest[o.index()] = latest[o.index()].min(setup_ps);
    }
    // Backward pass 2 — hold requirement: earliest permissible arrival.
    // Edges are padded locally where slack affords it; residual need
    // propagates upward.
    let mut need = vec![0.0f64; n];
    for &o in nl.outputs() {
        need[o.index()] = need[o.index()].max(min_delay_ps);
    }

    let buf_delay = CellKind::Buf.nominal_delay_ps();
    // Per-edge padding: (gate index, input pin) -> buffer count.
    let mut edge_pads: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();

    for i in (0..n).rev() {
        let gate = &nl.gates()[i];
        if gate.kind().is_pseudo() {
            continue;
        }
        let d = gate.kind().nominal_delay_ps();
        for (pin, &u) in gate.inputs().iter().enumerate() {
            let ui = u.index();
            let cand = need[i] - d;
            let mut padded_delay = 0.0;
            if cand > min_positive_eps() && min_arr[ui] + 1e-9 < cand {
                let deficit = cand - min_arr[ui];
                let setup_slack = (latest[i] - d - max_arr[ui]).max(0.0);
                let affordable = setup_slack.min(deficit);
                let bufs = (affordable / buf_delay).floor() as usize;
                if bufs > 0 {
                    *edge_pads.entry((i, pin)).or_insert(0) += bufs;
                    padded_delay = bufs as f64 * buf_delay;
                }
                let residual = cand - padded_delay;
                if residual > min_arr[ui] + 1e-9 {
                    need[ui] = need[ui].max(residual);
                }
            }
            // The pad consumes setup slack on this edge: upstream fixes
            // must respect the tightened latest-arrival requirement.
            latest[ui] = latest[ui].min(latest[i] - d - padded_delay);
        }
    }
    // Primary-output pads: if an output's min arrival still misses the
    // target (residual reached a PI), pad the output pin itself within the
    // setup slack there.
    let mut po_pads: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    {
        // Recompute effective min arrivals including edge pads.
        let eff_min = effective_min_arrivals(nl, &edge_pads, buf_delay);
        for &o in nl.outputs() {
            let oi = o.index();
            let deficit = min_delay_ps - eff_min[oi];
            if deficit > 1e-9 {
                let slack = (setup_ps - max_arr[oi]).max(0.0);
                let bufs = ((deficit.min(slack)) / buf_delay).ceil() as usize;
                let affordable = (slack / buf_delay).floor() as usize;
                let bufs = bufs.min(affordable);
                if bufs > 0 {
                    po_pads.insert(oi, bufs);
                }
            }
        }
    }

    // Rebuild the netlist with the chains in place.
    let mut b = Builder::new();
    let mut remap: Vec<Signal> = Vec::with_capacity(n);
    let pending_inputs: Vec<(String, usize)> = nl
        .input_ports()
        .iter()
        .map(|p| (p.name.clone(), p.bits.len()))
        .collect();
    let mut new_inputs: Vec<Signal> = Vec::new();
    for (name, width) in &pending_inputs {
        new_inputs.extend(b.input_bus(name, *width));
    }
    let mut new_input_iter = new_inputs.into_iter();
    let mut inserted = InsertedBuffers::default();

    for (idx, gate) in nl.gates().iter().enumerate() {
        let mapped = match gate.kind() {
            CellKind::Input => new_input_iter.next().expect("input count preserved"),
            CellKind::Const0 => b.const0(),
            CellKind::Const1 => b.const1(),
            kind => {
                let ins: Vec<Signal> = gate
                    .inputs()
                    .iter()
                    .enumerate()
                    .map(|(pin, s)| {
                        let mut sig = remap[s.index()];
                        if let Some(&count) = edge_pads.get(&(idx, pin)) {
                            for _ in 0..count {
                                sig = b.buf(sig);
                                inserted.0.push(sig);
                            }
                        }
                        sig
                    })
                    .collect();
                match kind.arity() {
                    1 => b.gate1(kind, ins[0]),
                    2 => b.gate2(kind, ins[0], ins[1]),
                    _ => b.gate3(kind, ins[0], ins[1], ins[2]),
                }
            }
        };
        remap.push(mapped);
    }
    for port in nl.output_ports() {
        let padded: Vec<Signal> = port
            .bits
            .iter()
            .map(|s| {
                let mut sig = remap[s.index()];
                if let Some(&count) = po_pads.get(&s.index()) {
                    for _ in 0..count {
                        sig = b.buf(sig);
                        inserted.0.push(sig);
                    }
                }
                sig
            })
            .collect();
        b.output_bus(&port.name, &padded);
    }

    let out = b.finish();
    let (min_after_arr, max_after_arr) = nominal_arrivals(&out);
    let fold_outputs = |arr: &[f64], init: f64, f: fn(f64, f64) -> f64, outs: &[Signal]| {
        outs.iter().map(|s| arr[s.index()]).fold(init, f)
    };
    let report = BufferReport {
        buffers_inserted: inserted.0.len(),
        edges_padded: edge_pads.len() + po_pads.len(),
        min_delay_before_ps: fold_outputs(&min_arr, f64::INFINITY, f64::min, nl.outputs()),
        min_delay_after_ps: fold_outputs(&min_after_arr, f64::INFINITY, f64::min, out.outputs()),
        max_delay_before_ps: fold_outputs(&max_arr, 0.0, f64::max, nl.outputs()),
        max_delay_after_ps: fold_outputs(&max_after_arr, 0.0, f64::max, out.outputs()),
    };
    (out, inserted, report)
}

#[inline]
fn min_positive_eps() -> f64 {
    1e-9
}

/// Forward min/max nominal arrival times for every signal.
pub fn nominal_arrivals(nl: &Netlist) -> (Vec<f64>, Vec<f64>) {
    let mut min_arr = vec![0.0f64; nl.len()];
    let mut max_arr = vec![0.0f64; nl.len()];
    for (i, gate) in nl.gates().iter().enumerate() {
        if gate.kind().is_pseudo() {
            continue;
        }
        let d = gate.kind().nominal_delay_ps();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for s in gate.inputs() {
            lo = lo.min(min_arr[s.index()]);
            hi = hi.max(max_arr[s.index()]);
        }
        min_arr[i] = lo + d;
        max_arr[i] = hi + d;
    }
    (min_arr, max_arr)
}

/// Minimum nominal arrival per signal with per-edge pad delays applied.
fn effective_min_arrivals(
    nl: &Netlist,
    edge_pads: &std::collections::HashMap<(usize, usize), usize>,
    buf_delay: f64,
) -> Vec<f64> {
    let mut arr = vec![0.0f64; nl.len()];
    for (i, gate) in nl.gates().iter().enumerate() {
        if gate.kind().is_pseudo() {
            continue;
        }
        let d = gate.kind().nominal_delay_ps();
        let mut lo = f64::INFINITY;
        for (pin, s) in gate.inputs().iter().enumerate() {
            let pad = edge_pads.get(&(i, pin)).copied().unwrap_or(0) as f64 * buf_delay;
            lo = lo.min(arr[s.index()] + pad);
        }
        arr[i] = lo + d;
    }
    arr
}

/// Backwards-compatible helper: earliest nominal arrival per signal.
pub fn nominal_min_arrivals(nl: &Netlist) -> Vec<f64> {
    nominal_arrivals(nl).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::alu::{Alu, ALL_ALU_FUNCS};

    fn alu8_bounds() -> (f64, f64) {
        let alu = Alu::new(8);
        let (min_arr, max_arr) = nominal_arrivals(alu.netlist());
        let min = alu
            .netlist()
            .outputs()
            .iter()
            .map(|s| min_arr[s.index()])
            .fold(f64::INFINITY, f64::min);
        let max = alu
            .netlist()
            .outputs()
            .iter()
            .map(|s| max_arr[s.index()])
            .fold(0.0, f64::max);
        (min, max)
    }

    #[test]
    fn padding_meets_constraint_without_hurting_setup() {
        let alu = Alu::new(8);
        let (min0, max0) = alu8_bounds();
        // A demanding hold target: 40% of the critical delay.
        let hold = max0 * 0.4;
        assert!(hold > min0, "test premise: hold target above intrinsic min");
        let (padded, bufs, report) = insert_hold_buffers(alu.netlist(), hold, max0 * 1.001);
        assert!(
            report.min_delay_after_ps >= hold - 1e-6,
            "after padding min delay {:.1} must meet {:.1}",
            report.min_delay_after_ps,
            hold
        );
        assert!(
            report.max_delay_after_ps <= max0 * 1.001 + 1e-6,
            "setup must not regress: {:.1} vs {:.1}",
            report.max_delay_after_ps,
            max0
        );
        assert!(!bufs.0.is_empty());
        assert_eq!(report.buffers_inserted, bufs.0.len());
        padded.validate().expect("padded netlist is well-formed");
    }

    #[test]
    fn padding_preserves_function() {
        let alu = Alu::new(8);
        let (_, max0) = alu8_bounds();
        let (padded, _, _) = insert_hold_buffers(alu.netlist(), max0 * 0.35, max0 * 1.001);
        for func in ALL_ALU_FUNCS {
            for (a, b) in [(0xA5u64, 0x3Cu64), (0xFF, 0x01), (0x12, 0x34)] {
                let pis = alu.encode(func, a, b);
                assert_eq!(
                    alu.netlist().eval(&pis),
                    padded.eval(&pis),
                    "{func} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn zero_constraint_is_a_noop() {
        let alu = Alu::new(8);
        let (_, max0) = alu8_bounds();
        let (_, bufs, report) = insert_hold_buffers(alu.netlist(), 0.0, max0 * 2.0);
        assert_eq!(bufs.0.len(), 0);
        assert_eq!(report.edges_padded, 0);
        assert!((report.max_delay_after_ps - report.max_delay_before_ps).abs() < 1e-9);
    }

    #[test]
    fn inserted_signals_are_buffers() {
        let alu = Alu::new(8);
        let (_, max0) = alu8_bounds();
        let (padded, bufs, _) = insert_hold_buffers(alu.netlist(), max0 * 0.35, max0 * 1.001);
        for s in &bufs.0 {
            assert_eq!(padded.gate(*s).kind(), CellKind::Buf);
        }
    }

    #[test]
    fn arrivals_monotone_nonnegative() {
        let alu = Alu::new(8);
        let (min_arr, max_arr) = nominal_arrivals(alu.netlist());
        for (lo, hi) in min_arr.iter().zip(max_arr.iter()) {
            assert!(*lo >= 0.0 && lo.is_finite());
            assert!(*hi >= *lo - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "setup target must exceed")]
    fn setup_below_hold_rejected() {
        let alu = Alu::new(8);
        let _ = insert_hold_buffers(alu.netlist(), 100.0, 50.0);
    }

    #[test]
    fn chains_dominate_padded_short_paths() {
        // The choke-buffer premise: after padding a short path to a large
        // hold target, buffers make up most of that path's delay.
        let alu = Alu::new(8);
        let (min0, max0) = alu8_bounds();
        let hold = max0 * 0.4;
        let (_, _, report) = insert_hold_buffers(alu.netlist(), hold, max0 * 1.001);
        let padding = report.min_delay_after_ps - min0;
        // The 8-bit test ALU is shallow (min/max depth ratio is mild);
        // even so the chains must carry a substantial share. Wider ALUs
        // give the chains an outright majority.
        assert!(
            padding / report.min_delay_after_ps > 0.3,
            "buffer share {:.2} of the padded min path",
            padding / report.min_delay_after_ps
        );
    }
}
