//! Property-based tests: every structural generator must agree with plain
//! machine arithmetic for arbitrary operands, and transformation passes
//! must preserve function.

use ntc_netlist::buffer_insertion::insert_hold_buffers;
use ntc_netlist::generators::alu::{Alu, AluFunc, ALL_ALU_FUNCS};
use ntc_netlist::generators::ex_stage::ExStage;
use ntc_netlist::generators::{adder, multiplier, shifter};
use ntc_netlist::Builder;
use proptest::prelude::*;

fn to_bits(v: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (v >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kogge_stone_adds(a in any::<u16>(), b in any::<u16>(), cin in any::<bool>()) {
        let w = 16;
        let mut builder = Builder::new();
        let abus = builder.input_bus("a", w);
        let bbus = builder.input_bus("b", w);
        let cinw = builder.input("cin");
        let out = adder::kogge_stone(&mut builder, &abus, &bbus, cinw);
        builder.output_bus("sum", &out.sum);
        builder.output("cout", out.cout);
        let nl = builder.finish();

        let mut pis = to_bits(a as u64, w);
        pis.extend(to_bits(b as u64, w));
        pis.push(cin);
        let res = nl.eval(&pis);
        let full = a as u32 + b as u32 + cin as u32;
        prop_assert_eq!(from_bits(&res[..w]), (full & 0xFFFF) as u64);
        prop_assert_eq!(res[w], full >> 16 == 1);
    }

    #[test]
    fn multiplier_multiplies(a in any::<u16>(), b in any::<u16>()) {
        let w = 16;
        let mut builder = Builder::new();
        let abus = builder.input_bus("a", w);
        let bbus = builder.input_bus("b", w);
        let p = multiplier::array_multiplier_low(&mut builder, &abus, &bbus);
        builder.output_bus("p", &p);
        let nl = builder.finish();

        let mut pis = to_bits(a as u64, w);
        pis.extend(to_bits(b as u64, w));
        let res = nl.eval(&pis);
        prop_assert_eq!(from_bits(&res), (a.wrapping_mul(b)) as u64);
    }

    #[test]
    fn barrel_shifts(v in any::<u16>(), amt in 0u64..16) {
        let w = 16;
        for (kind, expect) in [
            (shifter::ShiftKind::LogicalLeft, ((v as u64) << amt) & 0xFFFF),
            (shifter::ShiftKind::LogicalRight, (v as u64) >> amt),
            (shifter::ShiftKind::ArithmeticRight, (((v as i16) >> amt) as u16) as u64),
            (shifter::ShiftKind::RotateRight, v.rotate_right(amt as u32) as u64),
        ] {
            let mut builder = Builder::new();
            let vb = builder.input_bus("v", w);
            let ab = builder.input_bus("amt", shifter::amount_bits(w));
            let out = shifter::barrel_shifter(&mut builder, &vb, &ab, kind);
            builder.output_bus("out", &out);
            let nl = builder.finish();
            let mut pis = to_bits(v as u64, w);
            pis.extend(to_bits(amt, shifter::amount_bits(w)));
            prop_assert_eq!(from_bits(&nl.eval(&pis)), expect, "{:?} amt={}", kind, amt);
        }
    }

    #[test]
    fn alu_agrees_with_golden(op_idx in 0usize..13, a in any::<u8>(), b in any::<u8>()) {
        // Small ALU so each case is fast; the structure is width-uniform.
        let alu = Alu::new(8);
        let func = ALL_ALU_FUNCS[op_idx];
        prop_assert_eq!(alu.execute(func, a as u64, b as u64), func.golden(a as u64, b as u64, 8));
    }

    #[test]
    fn buffer_insertion_preserves_function(op_idx in 0usize..13, a in any::<u8>(), b in any::<u8>()) {
        let alu = Alu::new(8);
        let (padded, _, _) = insert_hold_buffers(alu.netlist(), 170.0, 2000.0);
        let func = ALL_ALU_FUNCS[op_idx];
        let pis = alu.encode(func, a as u64, b as u64);
        prop_assert_eq!(alu.netlist().eval(&pis), padded.eval(&pis));
    }

    #[test]
    fn ex_stage_agrees_with_golden(op_idx in 0usize..13, a in any::<u8>(), b in any::<u8>()) {
        let ex = ExStage::new(8);
        let func = ALL_ALU_FUNCS[op_idx];
        prop_assert_eq!(ex.execute(func, a as u64, b as u64), func.golden(a as u64, b as u64, 8));
    }
}

#[test]
fn golden_matches_wrapping_semantics_64() {
    // The golden model itself must match machine arithmetic at full width.
    for (a, b) in [
        (u64::MAX, 1u64),
        (0x8000_0000_0000_0000, 0x8000_0000_0000_0000),
        (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
    ] {
        assert_eq!(AluFunc::Add.golden(a, b, 64), a.wrapping_add(b));
        assert_eq!(AluFunc::Sub.golden(a, b, 64), a.wrapping_sub(b));
        assert_eq!(AluFunc::Mult.golden(a, b, 64), a.wrapping_mul(b));
        assert_eq!(AluFunc::Nor.golden(a, b, 64), !(a | b));
    }
}
