//! Randomized structural tests: every structural generator must agree with
//! plain machine arithmetic for arbitrary operands, and transformation
//! passes must preserve function.
//!
//! Formerly `proptest`-based; rewritten as seeded deterministic sweeps so
//! the workspace builds with zero registry dependencies. Every operand is
//! drawn from a fixed-seed SplitMix64 stream, so a failure reproduces
//! exactly on re-run. (`ntc-netlist` sits below `ntc-varmodel` in the
//! crate graph, so the generator is inlined here rather than imported.)

use ntc_netlist::buffer_insertion::insert_hold_buffers;
use ntc_netlist::generators::alu::{Alu, AluFunc, ALL_ALU_FUNCS};
use ntc_netlist::generators::ex_stage::ExStage;
use ntc_netlist::generators::{adder, multiplier, shifter};
use ntc_netlist::Builder;

/// Inline SplitMix64 (same algorithm as `ntc_varmodel::rng::SplitMix64`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn to_bits(v: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| (v >> i) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[test]
fn kogge_stone_adds() {
    let w = 16;
    let mut builder = Builder::new();
    let abus = builder.input_bus("a", w);
    let bbus = builder.input_bus("b", w);
    let cinw = builder.input("cin");
    let out = adder::kogge_stone(&mut builder, &abus, &bbus, cinw);
    builder.output_bus("sum", &out.sum);
    builder.output("cout", out.cout);
    let nl = builder.finish();

    let mut rng = Rng(0xADD5);
    for case in 0..64 {
        let a = rng.next_u64() as u16;
        let b = rng.next_u64() as u16;
        let cin = rng.next_u64() >> 63 == 1;
        let mut pis = to_bits(a as u64, w);
        pis.extend(to_bits(b as u64, w));
        pis.push(cin);
        let res = nl.eval(&pis);
        let full = a as u32 + b as u32 + cin as u32;
        assert_eq!(from_bits(&res[..w]), (full & 0xFFFF) as u64, "case {case}");
        assert_eq!(res[w], full >> 16 == 1, "case {case}");
    }
}

#[test]
fn multiplier_multiplies() {
    let w = 16;
    let mut builder = Builder::new();
    let abus = builder.input_bus("a", w);
    let bbus = builder.input_bus("b", w);
    let p = multiplier::array_multiplier_low(&mut builder, &abus, &bbus);
    builder.output_bus("p", &p);
    let nl = builder.finish();

    let mut rng = Rng(0x11A5);
    for case in 0..64 {
        let a = rng.next_u64() as u16;
        let b = rng.next_u64() as u16;
        let mut pis = to_bits(a as u64, w);
        pis.extend(to_bits(b as u64, w));
        let res = nl.eval(&pis);
        assert_eq!(from_bits(&res), (a.wrapping_mul(b)) as u64, "case {case}");
    }
}

#[test]
fn barrel_shifts() {
    let w = 16;
    let mut rng = Rng(0x5417);
    for case in 0..48 {
        let v = rng.next_u64() as u16;
        let amt = rng.next_u64() % 16;
        for (kind, expect) in [
            (shifter::ShiftKind::LogicalLeft, ((v as u64) << amt) & 0xFFFF),
            (shifter::ShiftKind::LogicalRight, (v as u64) >> amt),
            (
                shifter::ShiftKind::ArithmeticRight,
                (((v as i16) >> amt) as u16) as u64,
            ),
            (
                shifter::ShiftKind::RotateRight,
                v.rotate_right(amt as u32) as u64,
            ),
        ] {
            let mut builder = Builder::new();
            let vb = builder.input_bus("v", w);
            let ab = builder.input_bus("amt", shifter::amount_bits(w));
            let out = shifter::barrel_shifter(&mut builder, &vb, &ab, kind);
            builder.output_bus("out", &out);
            let nl = builder.finish();
            let mut pis = to_bits(v as u64, w);
            pis.extend(to_bits(amt, shifter::amount_bits(w)));
            assert_eq!(
                from_bits(&nl.eval(&pis)),
                expect,
                "case {case} {kind:?} amt={amt}"
            );
        }
    }
}

#[test]
fn alu_agrees_with_golden() {
    // Small ALU so each case is fast; the structure is width-uniform.
    let alu = Alu::new(8);
    let mut rng = Rng(0xA1);
    for case in 0..64 {
        let func = ALL_ALU_FUNCS[(rng.next_u64() % 13) as usize];
        let a = rng.next_u64() as u8;
        let b = rng.next_u64() as u8;
        assert_eq!(
            alu.execute(func, a as u64, b as u64),
            func.golden(a as u64, b as u64, 8),
            "case {case} {func:?} a={a} b={b}"
        );
    }
}

#[test]
fn buffer_insertion_preserves_function() {
    let alu = Alu::new(8);
    let (padded, _, _) = insert_hold_buffers(alu.netlist(), 170.0, 2000.0);
    let mut rng = Rng(0xB0F);
    for case in 0..64 {
        let func = ALL_ALU_FUNCS[(rng.next_u64() % 13) as usize];
        let a = rng.next_u64() as u8;
        let b = rng.next_u64() as u8;
        let pis = alu.encode(func, a as u64, b as u64);
        assert_eq!(
            alu.netlist().eval(&pis),
            padded.eval(&pis),
            "case {case} {func:?} a={a} b={b}"
        );
    }
}

#[test]
fn ex_stage_agrees_with_golden() {
    let ex = ExStage::new(8);
    let mut rng = Rng(0xE0);
    for case in 0..64 {
        let func = ALL_ALU_FUNCS[(rng.next_u64() % 13) as usize];
        let a = rng.next_u64() as u8;
        let b = rng.next_u64() as u8;
        assert_eq!(
            ex.execute(func, a as u64, b as u64),
            func.golden(a as u64, b as u64, 8),
            "case {case} {func:?} a={a} b={b}"
        );
    }
}

#[test]
fn golden_matches_wrapping_semantics_64() {
    // The golden model itself must match machine arithmetic at full width.
    for (a, b) in [
        (u64::MAX, 1u64),
        (0x8000_0000_0000_0000, 0x8000_0000_0000_0000),
        (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
    ] {
        assert_eq!(AluFunc::Add.golden(a, b, 64), a.wrapping_add(b));
        assert_eq!(AluFunc::Sub.golden(a, b, 64), a.wrapping_sub(b));
        assert_eq!(AluFunc::Mult.golden(a, b, 64), a.wrapping_mul(b));
        assert_eq!(AluFunc::Nor.golden(a, b, 64), !(a | b));
    }
}
