//! End-to-end CLI contract of the `repro` binary: the exit codes and the
//! manifest are what CI (and any downstream automation) gates on, so they
//! get black-box regression tests against the real executable.
//!
//! Each test runs its own `--out` directory under the system temp dir and
//! pins `NTC_JOBS=1` via the child environment, so tests stay independent
//! of each other and of the host machine.

use ntc_core::scenario::SchemeSpec;
use ntc_experiments::all_experiments;
use ntc_experiments::report::{parse_json, Json, MANIFEST_SCHEMA};
use std::path::PathBuf;
use std::process::{Command, Output};

/// Path to the compiled `repro` binary under test.
fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.env("NTC_JOBS", "1");
    cmd
}

/// Fresh per-test output directory (removed on entry, not on exit, so a
/// failing test leaves its evidence behind).
fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ntc-repro-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn repro binary")
}

#[test]
fn list_enumerates_both_registries_exactly() {
    // `--list` is the discovery surface ci.sh gates on: its output must be
    // exactly the experiment registry, then the scheme registry, then the
    // operating-point roster — nothing runnable may be unlisted, nothing
    // listed may be stale.
    let result = run(repro().arg("--list"));
    assert_eq!(result.status.code(), Some(0));
    let stdout = String::from_utf8(result.stdout).expect("utf8 stdout");
    let expected: Vec<String> = all_experiments()
        .into_iter()
        .map(|(id, _)| id.to_owned())
        .chain(
            SchemeSpec::roster()
                .iter()
                .map(|s| format!("scheme {} ({})", s.name(), s.display_name())),
        )
        .chain(
            ntc_varmodel::OperatingPoint::roster()
                .into_iter()
                .map(|p| format!("vdd {} ({})", p.name(), p.display_name())),
        )
        .collect();
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "--list must mirror all_experiments(), SchemeSpec::roster(), then the vdd roster"
    );
    // Every listed scheme name parses back through the registry.
    for line in stdout.lines().filter(|l| l.starts_with("scheme ")) {
        let name = line["scheme ".len()..]
            .split_whitespace()
            .next()
            .expect("scheme line has a name");
        SchemeSpec::parse(name)
            .unwrap_or_else(|e| panic!("listed scheme `{name}` must parse: {e}"));
    }
}

#[test]
fn misspelled_id_among_valid_ones_exits_2_and_runs_nothing() {
    let out = out_dir("typo");
    // fig3.4 is real; `fgi3.10` is the misspelling from the bug report.
    // The old harness silently dropped the typo and ran the rest.
    let result = run(repro().args(["--fast", "--out", out.to_str().unwrap(), "fig3.4", "fgi3.10"]));
    assert_eq!(result.status.code(), Some(2), "usage error exit code");
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("fgi3.10"), "names the bad id: {stderr}");
    assert!(stderr.contains("--list"), "suggests --list: {stderr}");
    assert!(
        !out.exists(),
        "no experiment may run when any requested id is unknown"
    );
}

#[test]
fn all_unknown_ids_still_exit_2() {
    let result = run(repro().args(["no.such.figure"]));
    assert_eq!(result.status.code(), Some(2));
}

#[test]
fn csv_write_failure_exits_nonzero() {
    // Point --out at a regular file: create_dir_all must fail, and the
    // failure must reach the exit code (the old harness printed a warning
    // and exited 0).
    let blocker = std::env::temp_dir().join(format!("ntc-repro-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("create blocker file");
    let result = run(repro().args(["--fast", "--out", blocker.to_str().unwrap(), "fig3.4"]));
    std::fs::remove_file(&blocker).ok();
    assert_eq!(result.status.code(), Some(1), "CSV failure must be fatal");
    let stderr = String::from_utf8_lossy(&result.stderr);
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(
        stdout.contains("FAILED") || stderr.contains("FAILED"),
        "failure is reported: stdout={stdout} stderr={stderr}"
    );
}

#[test]
fn json_run_writes_a_consistent_manifest() {
    let out = out_dir("json");
    let result = run(repro().args([
        "--fast",
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
        "fig3.4",
    ]));
    assert_eq!(result.status.code(), Some(0));

    // stdout is pure JSON lines in --format json mode.
    let stdout = String::from_utf8(result.stdout).expect("utf8 stdout");
    let tables: Vec<Json> = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_json(l).unwrap_or_else(|e| panic!("non-JSON stdout line {l:?}: {e}")))
        .collect();
    assert_eq!(tables.len(), 1, "one table document per experiment");
    assert_eq!(tables[0].get("id").unwrap().as_str(), Some("fig3.4"));
    let rows = tables[0].get("rows").unwrap().as_arr().unwrap().len();
    assert!(rows > 0);

    // The manifest exists, parses, and agrees with the table output and
    // the stderr status line.
    let body = std::fs::read_to_string(out.join("manifest.json")).expect("manifest written");
    let manifest = parse_json(&body).expect("manifest parses");
    assert_eq!(
        manifest.get("schema").unwrap().as_str(),
        Some(MANIFEST_SCHEMA)
    );
    assert_eq!(manifest.get("passed").unwrap().as_f64(), Some(1.0));
    assert_eq!(manifest.get("failed").unwrap().as_f64(), Some(0.0));
    let record = &manifest.get("records").unwrap().as_arr().unwrap()[0];
    assert_eq!(record.get("status").unwrap().as_str(), Some("pass"));
    assert_eq!(record.get("rows").unwrap().as_f64(), Some(rows as f64));
    assert_eq!(record.get("scale").unwrap().as_str(), Some("fast"));
    assert_eq!(record.get("jobs").unwrap().as_f64(), Some(1.0));
    let csv = record.get("csv").unwrap().as_str().expect("csv path");
    assert!(std::fs::metadata(csv).is_ok(), "recorded CSV exists: {csv}");

    // Oracle counters in the manifest match the human status line printed
    // to stderr (same RunRecord on both sides).
    let stderr = String::from_utf8_lossy(&result.stderr);
    let sims = record
        .get("oracle")
        .unwrap()
        .get("gate_sims")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        stderr.contains(&format!("oracle {sims} sims")),
        "stderr status line carries the recorded counter {sims}: {stderr}"
    );
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn text_run_exits_zero_and_summarizes() {
    let out = out_dir("text");
    let result = run(repro().args(["--fast", "--out", out.to_str().unwrap(), "fig3.4"]));
    assert_eq!(result.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("[fig3.4] ok"), "{stdout}");
    assert!(
        stdout.contains("# suite: 1 passed, 0 failed"),
        "final summary line present: {stdout}"
    );
    assert!(out.join("manifest.json").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn bad_flag_and_bad_format_exit_2() {
    assert_eq!(run(repro().arg("--bogus")).status.code(), Some(2));
    assert_eq!(
        run(repro().args(["--format", "xml"])).status.code(),
        Some(2)
    );
    assert_eq!(run(repro().args(["--jobs", "zero"])).status.code(), Some(2));
    assert_eq!(run(repro().arg("--cache-dir")).status.code(), Some(2));
}

#[test]
fn malformed_ntc_vdd_is_a_startup_usage_error_unless_vdd_overrides_it() {
    let out = out_dir("bad-env");
    // A garbage NTC_VDD must be rejected before any experiment runs:
    // exit code 2, a message naming the variable, no output directory.
    // (This used to panic with a backtrace mid-sweep.)
    let result = run(repro()
        .env("NTC_VDD", "0.62,bogus")
        .args(["--fast", "--out", out.to_str().unwrap(), "fig3.4"]));
    assert_eq!(result.status.code(), Some(2), "usage error, not a panic");
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("NTC_VDD"), "names the variable: {stderr}");
    assert!(!stderr.contains("panicked"), "no backtrace: {stderr}");
    assert!(!out.exists(), "nothing may run under a malformed roster");

    // An explicit --vdd replaces the environment roster entirely, so the
    // same garbage NTC_VDD is irrelevant and the run succeeds.
    let result = run(repro().env("NTC_VDD", "0.62,bogus").args([
        "--fast",
        "--vdd",
        "v0.45",
        "--out",
        out.to_str().unwrap(),
        "fig3.4",
    ]));
    assert_eq!(result.status.code(), Some(0), "--vdd overrides a bad NTC_VDD");
    std::fs::remove_dir_all(&out).ok();
}

/// The first record of an on-disk manifest, parsed.
fn first_record(out: &std::path::Path) -> Json {
    let body = std::fs::read_to_string(out.join("manifest.json")).expect("manifest written");
    parse_json(&body).expect("manifest parses").get("records").unwrap().as_arr().unwrap()[0]
        .clone()
}

#[test]
fn resume_skips_passing_experiments_and_completes_the_rest() {
    let out = out_dir("resume");
    // First invocation: fig3.4 passes, then the injected failure kills
    // tab3.overheads mid-suite — the crash the resume mode exists for.
    let result = run(repro()
        .env("NTC_REPRO_FAIL", "tab3.overheads")
        .args(["--fast", "--out", out.to_str().unwrap(), "fig3.4", "tab3.overheads"]));
    assert_eq!(result.status.code(), Some(1), "injected failure must fail the run");
    let body = std::fs::read_to_string(out.join("manifest.json")).expect("manifest written");
    let manifest = parse_json(&body).expect("manifest parses");
    let records = manifest.get("records").unwrap().as_arr().unwrap();
    assert_eq!(records[0].get("status").unwrap().as_str(), Some("pass"));
    assert_eq!(records[1].get("status").unwrap().as_str(), Some("fail"));
    assert!(
        records[1].get("error").unwrap().as_str().unwrap().contains("injected failure"),
        "failure names its cause"
    );
    let csv_path = records[0].get("csv").unwrap().as_str().expect("csv recorded").to_owned();
    let csv_before = std::fs::read(&csv_path).expect("passing CSV exists");

    // Second invocation resumes: the passing record is carried forward,
    // only the failed experiment runs, and the suite goes green.
    let result = run(repro().args([
        "--fast",
        "--resume",
        "--out",
        out.to_str().unwrap(),
        "fig3.4",
        "tab3.overheads",
    ]));
    assert_eq!(result.status.code(), Some(0), "resumed suite completes");
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("[fig3.4] ok (resumed)"), "{stdout}");
    assert!(stdout.contains("# suite: 2 passed, 0 failed"), "{stdout}");
    let body = std::fs::read_to_string(out.join("manifest.json")).expect("manifest rewritten");
    let manifest = parse_json(&body).expect("manifest parses");
    let records = manifest.get("records").unwrap().as_arr().unwrap();
    assert_eq!(records[0].get("resumed"), Some(&Json::Bool(true)));
    assert_eq!(records[0].get("status").unwrap().as_str(), Some("pass"));
    assert_eq!(records[1].get("resumed"), Some(&Json::Bool(false)));
    assert_eq!(records[1].get("status").unwrap().as_str(), Some("pass"));
    assert_eq!(
        std::fs::read(&csv_path).expect("CSV still exists"),
        csv_before,
        "the resumed experiment's CSV is untouched"
    );
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn resume_reruns_when_the_voltage_roster_changes() {
    let out = out_dir("resume-vdd");
    // Baseline manifest at the default single-point roster.
    let result = run(repro()
        .env_remove("NTC_VDD")
        .args(["--fast", "--out", out.to_str().unwrap(), "fig3.4"]));
    assert_eq!(result.status.code(), Some(0));
    assert_eq!(
        first_record(&out).get("requested_vdd").unwrap().as_arr().unwrap().len(),
        1,
        "default roster is one operating point"
    );

    // Resuming under a wider --vdd roster must NOT carry the old record
    // forward: its grids were computed at a different voltage axis, so
    // the experiment reruns and the manifest records the new roster.
    let result = run(repro().env_remove("NTC_VDD").args([
        "--fast",
        "--resume",
        "--vdd",
        "v0.45,v0.60",
        "--out",
        out.to_str().unwrap(),
        "fig3.4",
    ]));
    assert_eq!(result.status.code(), Some(0));
    let rec = first_record(&out);
    assert_eq!(
        rec.get("resumed"),
        Some(&Json::Bool(false)),
        "a stale voltage roster must force a rerun"
    );
    let roster: Vec<String> = rec
        .get("requested_vdd")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|p| p.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(roster, ["v0.45", "v0.60"], "manifest records the roster it ran");

    // Resuming again under the SAME roster does carry forward.
    let result = run(repro().env_remove("NTC_VDD").args([
        "--fast",
        "--resume",
        "--vdd",
        "v0.45,v0.60",
        "--out",
        out.to_str().unwrap(),
        "fig3.4",
    ]));
    assert_eq!(result.status.code(), Some(0));
    assert_eq!(
        first_record(&out).get("resumed"),
        Some(&Json::Bool(true)),
        "an unchanged roster resumes cleanly"
    );
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn resume_refuses_a_manifest_at_another_scale() {
    let out = out_dir("resume-scale");
    let result = run(repro().args(["--fast", "--out", out.to_str().unwrap(), "tab3.overheads"]));
    assert_eq!(result.status.code(), Some(0));
    // Resuming the fast manifest under --full must refuse, not silently
    // mix scales in one manifest.
    let result = run(repro().args([
        "--full",
        "--resume",
        "--out",
        out.to_str().unwrap(),
        "tab3.overheads",
    ]));
    assert_eq!(result.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("scale"), "{stderr}");
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn cache_dir_reruns_hit_disk_and_reproduce_csv_bytes_at_any_job_count() {
    let cache = out_dir("cache-store");
    let out_cold = out_dir("cache-cold");
    let out_warm = out_dir("cache-warm");
    // Cold run: fig3.8 is grid-shaped, so it populates the artifact cache.
    let result = run(repro().args([
        "--fast",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out_cold.to_str().unwrap(),
        "fig3.8",
    ]));
    assert_eq!(result.status.code(), Some(0));
    let cold = first_record(&out_cold);
    let cold_cache = cold.get("cache").unwrap();
    assert_eq!(cold_cache.get("disk_hits").unwrap().as_u64(), Some(0));
    assert!(cold_cache.get("disk_misses").unwrap().as_u64() >= Some(1));
    assert!(cold_cache.get("bytes_written").unwrap().as_u64() >= Some(1));
    let cold_csv =
        std::fs::read(cold.get("csv").unwrap().as_str().unwrap()).expect("cold CSV readable");
    let cold_busy = cold.get("sweep_busy_ns").unwrap().as_u64().unwrap();

    // Warm run, different --out, different thread count: every grid comes
    // off disk, the CSV bytes are identical, and the sweep engine had
    // strictly less to do.
    let result = run(repro().env("NTC_JOBS", "2").args([
        "--fast",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out_warm.to_str().unwrap(),
        "fig3.8",
    ]));
    assert_eq!(result.status.code(), Some(0));
    let warm = first_record(&out_warm);
    let warm_cache = warm.get("cache").unwrap();
    assert!(warm_cache.get("disk_hits").unwrap().as_u64() >= Some(1));
    assert_eq!(warm_cache.get("disk_misses").unwrap().as_u64(), Some(0));
    assert_eq!(warm_cache.get("corrupt_evictions").unwrap().as_u64(), Some(0));
    let warm_csv =
        std::fs::read(warm.get("csv").unwrap().as_str().unwrap()).expect("warm CSV readable");
    assert_eq!(warm_csv, cold_csv, "disk hits reproduce CSV bytes exactly");
    let warm_busy = warm.get("sweep_busy_ns").unwrap().as_u64().unwrap();
    assert!(
        warm_busy < cold_busy,
        "cached run must sweep less (warm {warm_busy} ns vs cold {cold_busy} ns)"
    );

    // A corrupted artifact degrades to recompute — the run still passes
    // and the eviction is visible in the manifest.
    let artifact = std::fs::read_dir(&cache)
        .expect("cache dir listable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "grid"))
        .expect("at least one artifact in the cache");
    let mut bytes = std::fs::read(&artifact).expect("artifact readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&artifact, &bytes).expect("corruption written");
    let out_evict = out_dir("cache-evict");
    let result = run(repro().args([
        "--fast",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out_evict.to_str().unwrap(),
        "fig3.8",
    ]));
    assert_eq!(result.status.code(), Some(0), "corruption must not fail the run");
    let evict = first_record(&out_evict);
    assert!(
        evict.get("cache").unwrap().get("corrupt_evictions").unwrap().as_u64() >= Some(1),
        "the quarantine is accounted"
    );
    let evict_csv =
        std::fs::read(evict.get("csv").unwrap().as_str().unwrap()).expect("CSV readable");
    assert_eq!(evict_csv, cold_csv, "recomputed grid reproduces the CSV");

    for dir in [&cache, &out_cold, &out_warm, &out_evict] {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn no_cache_forces_a_cold_run_even_with_a_cache_dir() {
    let cache = out_dir("nocache-store");
    let out1 = out_dir("nocache-1");
    let out2 = out_dir("nocache-2");
    let result = run(repro().args([
        "--fast",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out1.to_str().unwrap(),
        "fig3.8",
    ]));
    assert_eq!(result.status.code(), Some(0));
    // --no-cache wins: no lookups, no writes, and the cache dir gains
    // nothing.
    let artifacts = |dir: &std::path::Path| {
        std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
    };
    let before = artifacts(&cache);
    let result = run(repro().args([
        "--fast",
        "--no-cache",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out",
        out2.to_str().unwrap(),
        "fig3.8",
    ]));
    assert_eq!(result.status.code(), Some(0));
    let record = first_record(&out2);
    let stats = record.get("cache").unwrap();
    assert_eq!(stats.get("disk_hits").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("disk_misses").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("bytes_written").unwrap().as_u64(), Some(0));
    assert_eq!(artifacts(&cache), before, "--no-cache must not touch the cache dir");
    for dir in [&cache, &out1, &out2] {
        std::fs::remove_dir_all(dir).ok();
    }
}
