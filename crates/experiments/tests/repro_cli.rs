//! End-to-end CLI contract of the `repro` binary: the exit codes and the
//! manifest are what CI (and any downstream automation) gates on, so they
//! get black-box regression tests against the real executable.
//!
//! Each test runs its own `--out` directory under the system temp dir and
//! pins `NTC_JOBS=1` via the child environment, so tests stay independent
//! of each other and of the host machine.

use ntc_core::scenario::SchemeSpec;
use ntc_experiments::all_experiments;
use ntc_experiments::report::{parse_json, Json, MANIFEST_SCHEMA};
use std::path::PathBuf;
use std::process::{Command, Output};

/// Path to the compiled `repro` binary under test.
fn repro() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.env("NTC_JOBS", "1");
    cmd
}

/// Fresh per-test output directory (removed on entry, not on exit, so a
/// failing test leaves its evidence behind).
fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ntc-repro-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn repro binary")
}

#[test]
fn list_enumerates_both_registries_exactly() {
    // `--list` is the discovery surface ci.sh gates on: its output must be
    // exactly the experiment registry followed by the scheme registry —
    // nothing runnable may be unlisted, nothing listed may be stale.
    let result = run(repro().arg("--list"));
    assert_eq!(result.status.code(), Some(0));
    let stdout = String::from_utf8(result.stdout).expect("utf8 stdout");
    let expected: Vec<String> = all_experiments()
        .into_iter()
        .map(|(id, _)| id.to_owned())
        .chain(
            SchemeSpec::roster()
                .iter()
                .map(|s| format!("scheme {} ({})", s.name(), s.display_name())),
        )
        .collect();
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        expected.iter().map(String::as_str).collect::<Vec<_>>(),
        "--list must mirror all_experiments() then SchemeSpec::roster()"
    );
    // Every listed scheme name parses back through the registry.
    for line in stdout.lines().filter(|l| l.starts_with("scheme ")) {
        let name = line["scheme ".len()..]
            .split_whitespace()
            .next()
            .expect("scheme line has a name");
        SchemeSpec::parse(name)
            .unwrap_or_else(|e| panic!("listed scheme `{name}` must parse: {e}"));
    }
}

#[test]
fn misspelled_id_among_valid_ones_exits_2_and_runs_nothing() {
    let out = out_dir("typo");
    // fig3.4 is real; `fgi3.10` is the misspelling from the bug report.
    // The old harness silently dropped the typo and ran the rest.
    let result = run(repro().args(["--fast", "--out", out.to_str().unwrap(), "fig3.4", "fgi3.10"]));
    assert_eq!(result.status.code(), Some(2), "usage error exit code");
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(stderr.contains("fgi3.10"), "names the bad id: {stderr}");
    assert!(stderr.contains("--list"), "suggests --list: {stderr}");
    assert!(
        !out.exists(),
        "no experiment may run when any requested id is unknown"
    );
}

#[test]
fn all_unknown_ids_still_exit_2() {
    let result = run(repro().args(["no.such.figure"]));
    assert_eq!(result.status.code(), Some(2));
}

#[test]
fn csv_write_failure_exits_nonzero() {
    // Point --out at a regular file: create_dir_all must fail, and the
    // failure must reach the exit code (the old harness printed a warning
    // and exited 0).
    let blocker = std::env::temp_dir().join(format!("ntc-repro-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("create blocker file");
    let result = run(repro().args(["--fast", "--out", blocker.to_str().unwrap(), "fig3.4"]));
    std::fs::remove_file(&blocker).ok();
    assert_eq!(result.status.code(), Some(1), "CSV failure must be fatal");
    let stderr = String::from_utf8_lossy(&result.stderr);
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(
        stdout.contains("FAILED") || stderr.contains("FAILED"),
        "failure is reported: stdout={stdout} stderr={stderr}"
    );
}

#[test]
fn json_run_writes_a_consistent_manifest() {
    let out = out_dir("json");
    let result = run(repro().args([
        "--fast",
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
        "fig3.4",
    ]));
    assert_eq!(result.status.code(), Some(0));

    // stdout is pure JSON lines in --format json mode.
    let stdout = String::from_utf8(result.stdout).expect("utf8 stdout");
    let tables: Vec<Json> = stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_json(l).unwrap_or_else(|e| panic!("non-JSON stdout line {l:?}: {e}")))
        .collect();
    assert_eq!(tables.len(), 1, "one table document per experiment");
    assert_eq!(tables[0].get("id").unwrap().as_str(), Some("fig3.4"));
    let rows = tables[0].get("rows").unwrap().as_arr().unwrap().len();
    assert!(rows > 0);

    // The manifest exists, parses, and agrees with the table output and
    // the stderr status line.
    let body = std::fs::read_to_string(out.join("manifest.json")).expect("manifest written");
    let manifest = parse_json(&body).expect("manifest parses");
    assert_eq!(
        manifest.get("schema").unwrap().as_str(),
        Some(MANIFEST_SCHEMA)
    );
    assert_eq!(manifest.get("passed").unwrap().as_f64(), Some(1.0));
    assert_eq!(manifest.get("failed").unwrap().as_f64(), Some(0.0));
    let record = &manifest.get("records").unwrap().as_arr().unwrap()[0];
    assert_eq!(record.get("status").unwrap().as_str(), Some("pass"));
    assert_eq!(record.get("rows").unwrap().as_f64(), Some(rows as f64));
    assert_eq!(record.get("scale").unwrap().as_str(), Some("fast"));
    assert_eq!(record.get("jobs").unwrap().as_f64(), Some(1.0));
    let csv = record.get("csv").unwrap().as_str().expect("csv path");
    assert!(std::fs::metadata(csv).is_ok(), "recorded CSV exists: {csv}");

    // Oracle counters in the manifest match the human status line printed
    // to stderr (same RunRecord on both sides).
    let stderr = String::from_utf8_lossy(&result.stderr);
    let sims = record
        .get("oracle")
        .unwrap()
        .get("gate_sims")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        stderr.contains(&format!("oracle {sims} sims")),
        "stderr status line carries the recorded counter {sims}: {stderr}"
    );
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn text_run_exits_zero_and_summarizes() {
    let out = out_dir("text");
    let result = run(repro().args(["--fast", "--out", out.to_str().unwrap(), "fig3.4"]));
    assert_eq!(result.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(stdout.contains("[fig3.4] ok"), "{stdout}");
    assert!(
        stdout.contains("# suite: 1 passed, 0 failed"),
        "final summary line present: {stdout}"
    );
    assert!(out.join("manifest.json").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn bad_flag_and_bad_format_exit_2() {
    assert_eq!(run(repro().arg("--bogus")).status.code(), Some(2));
    assert_eq!(
        run(repro().args(["--format", "xml"])).status.code(),
        Some(2)
    );
    assert_eq!(run(repro().args(["--jobs", "zero"])).status.code(), Some(2));
}
