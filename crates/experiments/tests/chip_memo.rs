//! Regression pin for the chip memo: static timing analysis runs *once per
//! memoized chip blank*, never per oracle or per accessor call. Before the
//! hoist, every `static_critical_delay_ps()` / screen construction re-ran a
//! full STA pass; this test pins the budget so it cannot creep back.

use ntc_experiments::{build_oracle, CH3_REGIME};
use ntc_timing::sta::analysis_count;
use ntc_varmodel::Corner;

// Seeds no other test binary uses: the chip memo is process-wide, and a
// blank fabricated by another test in *this* binary would hide analyses.
const BARE_SEED: u64 = 990_001;
const BUFFERED_SEED: u64 = 990_002;

#[test]
fn static_analysis_runs_once_per_chip_blank() {
    // Bare blank, first chip of its topology: one nominal pass (hoisted
    // to the topology memo — it anchors the clocks) + one full seeding
    // pass of the retained incremental engine. Later chips of the same
    // topology re-time incrementally (pinned in `incr_retime.rs`).
    let before = analysis_count();
    let oracle = build_oracle(Corner::NTC, BARE_SEED, false, CH3_REGIME);
    assert_eq!(
        analysis_count() - before,
        2,
        "bare chip blank: topology anchor + engine seed, nothing more"
    );

    // The accessors read the memoized values — zero additional passes.
    let before = analysis_count();
    let nominal = oracle.nominal_critical_delay_ps();
    let static_crit = oracle.static_critical_delay_ps();
    assert!(static_crit > nominal * 0.5 && static_crit.is_finite());
    assert_eq!(analysis_count() - before, 0, "accessors must not re-run STA");

    // A second oracle for the same chip replays the blank wholesale.
    let before = analysis_count();
    let _again = build_oracle(Corner::NTC, BARE_SEED, false, CH3_REGIME);
    assert_eq!(analysis_count() - before, 0, "memoized blank rebuilt STA");

    // Buffered blank: bare-nominal anchor + buffered-nominal (both
    // topology-level) + the engine's full seeding pass.
    let before = analysis_count();
    let _buffered = build_oracle(Corner::NTC, BUFFERED_SEED, true, CH3_REGIME);
    assert_eq!(
        analysis_count() - before,
        3,
        "buffered chip blank: bare anchor + buffered nominal + engine seed"
    );
}
