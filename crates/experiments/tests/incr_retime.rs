//! Regression pin for incremental re-timing in the chip memo: an N-chip
//! sweep over one netlist topology runs exactly **1 full seeding pass and
//! N−1 incremental re-times** (plus the topology's one nominal anchor) —
//! the `analysis_count`-style budget that keeps per-chip full STA from
//! creeping back. Companion to `chip_memo.rs`, which pins the first
//! chip's budget; this file pins the chips *after* the first.
//!
//! Kept as a single test in its own binary: the counters are process-wide
//! and cumulative, so concurrent test functions would race the deltas.

use ntc_experiments::{build_oracle, CH3_REGIME};
use ntc_timing::sta::analysis_count;
use ntc_timing::{retime_count, take_sta_counters};
use ntc_varmodel::Corner;

// Seeds no other test binary uses (the chip memo is process-wide).
const SEED_BASE: u64 = 991_001;
const CHIPS: u64 = 5;

#[test]
fn n_chip_sweep_runs_one_full_and_n_minus_one_incremental_passes() {
    // Start from drained telemetry so the assertions below meter only
    // this sweep.
    let _ = take_sta_counters();
    let full_before = analysis_count();
    let incr_before = retime_count();

    let mut criticals = Vec::new();
    for seed in SEED_BASE..SEED_BASE + CHIPS {
        let oracle = build_oracle(Corner::NTC, seed, false, CH3_REGIME);
        criticals.push(oracle.static_critical_delay_ps());
    }

    // Full passes: the topology's nominal anchor + the engine's one
    // seeding pass for the first chip. Every later chip re-times.
    assert_eq!(
        analysis_count() - full_before,
        2,
        "N-chip sweep: topology anchor + one full engine seed only"
    );
    assert_eq!(
        retime_count() - incr_before,
        CHIPS - 1,
        "every chip after the first re-times incrementally"
    );

    // The same split lands in the drained telemetry that feeds
    // `OracleStats` and the repro manifest.
    let sta = take_sta_counters();
    assert_eq!(sta.sta_full, 2, "telemetry: full passes");
    assert_eq!(sta.sta_incremental, CHIPS - 1, "telemetry: incremental passes");
    assert!(
        sta.incr_gates_touched > 0,
        "chip→chip deltas must actually propagate"
    );

    // Sanity: the chips are genuinely different dies, not replays of one
    // signature — the deltas above were real work.
    criticals.sort_by(f64::total_cmp);
    criticals.dedup();
    assert!(criticals.len() > 1, "distinct seeds give distinct chips");

    // Memoized replay: re-requesting a chip re-times nothing.
    let full_before = analysis_count();
    let incr_before = retime_count();
    let _again = build_oracle(Corner::NTC, SEED_BASE + 1, false, CH3_REGIME);
    assert_eq!(analysis_count() - full_before, 0, "memoized blank re-analyzed");
    assert_eq!(retime_count() - incr_before, 0, "memoized blank re-timed");
}
