//! Trace record/replay conformance: the acceptance contract of the
//! binary-trace subsystem, end to end through the grid engine.
//!
//! * `Record` runs are bit-identical to plain `Generator` runs and
//!   leave the binary trace files behind;
//! * `Replay` of those files is bit-identical to the generator —
//!   the whole [`ntc_experiments::GridResult`], float bit patterns
//!   included;
//! * `Phases` (SimPoint-weighted replay) simulates at most 20% of the
//!   full trace's instructions and lands every per-scheme mean within a
//!   pinned tolerance of the full run.
//!
//! One `#[test]` body: the workload telemetry counters are
//! process-global, so the four runs must drain them sequentially (the
//! same pattern as the serve and parallel-determinism suites).

use ntc_core::scenario::SchemeSpec;
use ntc_experiments::{run_grid_uncached, GridSpec, Regime};
use ntc_varmodel::OperatingPoint;
use ntc_workload::{Benchmark, TraceSource};
use std::path::PathBuf;

const TRACE_SEED: u64 = 9;
const CYCLES: usize = 30_000;

/// Pinned conformance tolerances for the phase-sampled estimates, in
/// absolute units of each metric, tuned empirically on the grid below.
/// Period stretch is chip-determined and phase-insensitive (observed
/// delta ~0); accuracy carries an inherent cold-start bias — every
/// phase representative restarts its scheme's predictor tables cold,
/// so a few points of the full-trace accuracy are lost to per-segment
/// warmup (observed ~5.1 here, and the effect does not shrink with
/// longer intervals because warmup cost and segment error count grow
/// together). A broken sampler — wrong weights, wrong intervals,
/// collapsed clusters — lands far outside both bounds.
const STRETCH_TOL: f64 = 0.01;
const ACCURACY_TOL: f64 = 8.0;

/// Aggregate prediction accuracy over an accumulator's weighted error
/// *counts* — the SimPoint-sound estimator for a ratio metric. The
/// per-run mean (`mean_prediction_accuracy`) is not comparable across
/// segment lengths: a short phase with zero engaged errors reports the
/// degenerate 100% convention, which skews the mean for schemes (like
/// plain Razor) whose true accuracy is 0.
fn aggregate_accuracy(acc: &ntc_core::scenario::SimAccumulator) -> f64 {
    acc.result().prediction_accuracy()
}

fn spec(source: TraceSource) -> GridSpec {
    GridSpec {
        benchmarks: vec![Benchmark::Mcf],
        chips: 2,
        schemes: vec![SchemeSpec::RazorCh3, SchemeSpec::DcsIcslt { entries: 32 }],
        voltages: vec![OperatingPoint::NTC],
        regime: Regime::Ch3,
        chip_seed_base: 310,
        trace_seed: TRACE_SEED,
        cycles: CYCLES,
        source,
    }
}

fn test_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ntc-trace-sampling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

#[test]
fn record_replay_is_bit_identical_and_phases_stay_within_tolerance() {
    let dir = test_dir();

    // ---- Baseline: the statistical generator --------------------------
    let generator = run_grid_uncached(&spec(TraceSource::Generator));
    let baseline_stats = ntc_workload::take_stats();
    assert!(
        !baseline_stats.any(),
        "generator runs must not touch the record/replay counters: {baseline_stats:?}"
    );

    // ---- Record: same results, trace files written --------------------
    let recorded = run_grid_uncached(&spec(TraceSource::Record(dir.clone())));
    assert_eq!(
        recorded, generator,
        "recording must not perturb the simulated results"
    );
    let record_stats = ntc_workload::take_stats();
    assert_eq!(
        record_stats.traces_recorded, 1,
        "one (benchmark, seed, cycles) cell → one trace file"
    );
    let trace_file = TraceSource::trace_path(&dir, Benchmark::Mcf, TRACE_SEED, CYCLES);
    assert!(trace_file.is_file(), "{} missing", trace_file.display());

    // ---- Replay: bit-identical fold -----------------------------------
    let replayed = run_grid_uncached(&spec(TraceSource::Replay(dir.clone())));
    assert_eq!(
        replayed, generator,
        "whole-trace replay must be bit-identical to the generator"
    );
    let replay_stats = ntc_workload::take_stats();
    assert!(replay_stats.trace_replays >= 1, "{replay_stats:?}");
    assert!(
        replay_stats.replayed_instructions >= CYCLES as u64,
        "{replay_stats:?}"
    );

    // ---- Phases: bounded work, bounded error --------------------------
    let phased = run_grid_uncached(&spec(TraceSource::Phases(dir.clone())));
    let phase_stats = ntc_workload::take_stats();
    assert!(phase_stats.phase_replays >= 1, "{phase_stats:?}");
    assert!(
        phase_stats.phase_instructions * 5 <= replay_stats.replayed_instructions,
        "weighted phases must simulate ≤ 20% of the full trace: {} of {}",
        phase_stats.phase_instructions,
        replay_stats.replayed_instructions
    );
    assert!(
        TraceSource::phases_path(&dir, Benchmark::Mcf, TRACE_SEED, CYCLES).is_file(),
        "first phase replay persists the sampled phase set"
    );
    for ((bench, point, full_accs), (_, _, phase_accs)) in
        generator.rows().iter().zip(phased.rows())
    {
        for (scheme, (full, phase)) in spec(TraceSource::Generator)
            .schemes
            .iter()
            .zip(full_accs.iter().zip(phase_accs))
        {
            let d_stretch = (full.mean_period_stretch() - phase.mean_period_stretch()).abs();
            assert!(
                d_stretch <= STRETCH_TOL,
                "{bench}/{point:?}/{}: period-stretch estimate off by {d_stretch:.4} \
                 (full {:.4}, phases {:.4})",
                scheme.name(),
                full.mean_period_stretch(),
                phase.mean_period_stretch()
            );
            let d_acc = (aggregate_accuracy(full) - aggregate_accuracy(phase)).abs();
            assert!(
                d_acc <= ACCURACY_TOL,
                "{bench}/{point:?}/{}: accuracy estimate off by {d_acc:.3} \
                 (full {:.3}, phases {:.3})",
                scheme.name(),
                aggregate_accuracy(full),
                aggregate_accuracy(phase)
            );
        }
    }

    // A second phase run re-reads the persisted `.ntp` file and folds to
    // the exact same result (determinism across the sample/load split).
    let phased_again = run_grid_uncached(&spec(TraceSource::Phases(dir.clone())));
    assert_eq!(phased_again, phased, "loaded phases == freshly sampled");

    let _ = std::fs::remove_dir_all(&dir);
}
