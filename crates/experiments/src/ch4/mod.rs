//! Chapter-4 (Trident) experiment runners.

pub mod figures;

pub use figures::{
    fig_4_10, fig_4_11, fig_4_12, fig_4_2, fig_4_3, fig_4_4, fig_4_8, fig_4_9, overheads_4,
    STUDY_INSTRUCTIONS,
};
