//! Chapter-4 figure runners: the minimum-timing-violation motivation study
//! (4.2–4.4), the Trident evaluation (4.8–4.12) and the §4.5.7 overhead
//! table.

use crate::config::{build_oracle, normalize_to_first, Scale, CH4_REGIME};
use crate::runner::{sweep, sweep_over};
use crate::scenario::{expand, fold_cells, row_label, run_grid, GridResult, GridSpec, Regime};
use crate::table::ResultTable;
use ntc_core::overhead::{trident_overheads, PipelineBaseline};
use ntc_core::scenario::{SchemeSpec, SimAccumulator};
use ntc_core::sim::{profile_errors, SimResult};
use ntc_isa::{Instruction, Opcode};
use ntc_netlist::buffer_insertion::insert_hold_buffers;
use ntc_netlist::generators::alu::Alu;
use ntc_pipeline::EnergyModel;
use ntc_timing::{DynamicSim, ErrorClass};
use ntc_varmodel::rng::SplitMix64;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};
use ntc_workload::{Benchmark, TraceGenerator, ALL_BENCHMARKS};
use std::collections::HashMap;

/// The fifteen instructions of Fig. 4.2 / 4.3 / 4.4.
pub const STUDY_INSTRUCTIONS: [Opcode; 15] = [
    Opcode::Addiu,
    Opcode::Andi,
    Opcode::Lui,
    Opcode::Addu,
    Opcode::Or,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Xor,
    Opcode::Subu,
    Opcode::Mflo,
    Opcode::Sra,
    Opcode::And,
    Opcode::Sllv,
    Opcode::Srav,
    Opcode::Ori,
];

/// Fig. 4.2: min/max sensitized path-delay variation per instruction, for
/// buffered vs bufferless EX datapaths at STC and NTC, normalized to the
/// PV-free delays. Choke gates are limited to 2 % of the netlist, as in
/// the paper, by injecting the 2 % most-deviant gates of a fabricated
/// signature and resetting the rest to nominal.
///
/// Columns: `<variant>-min` / `<variant>-max` = the *extreme* normalized
/// min/max path delay observed (the paper's error bars).
pub fn fig_4_2(scale: Scale) -> ResultTable {
    let width = ntc_isa::ARCH_WIDTH;
    let alu = Alu::new(width);
    let mut t = ResultTable::new(
        "fig4.2",
        "Normalized sensitized path delay extremes (PV / PV-free)",
        [
            "NTC-bufferless-min",
            "NTC-bufferless-max",
            "NTC-buffered-min",
            "NTC-buffered-max",
            "STC-bufferless-min",
            "STC-bufferless-max",
            "STC-buffered-min",
            "STC-buffered-max",
        ],
    );

    // Build buffered variant against the CH4 hold constraint expressed in
    // the design-time (nominal STC) delay frame.
    let (hold_stc_frame, setup_stc_frame) = {
        let nominal = ChipSignature::nominal(alu.netlist(), Corner::NTC);
        let crit = ntc_timing::StaticTiming::analyze(alu.netlist(), &nominal)
            .critical_delay_ps(alu.netlist());
        let f = Corner::NTC.delay_factor();
        (
            crit * CH4_REGIME.hold_frac / f,
            crit * CH4_REGIME.period_frac / f,
        )
    };
    let (buffered, _, _) = insert_hold_buffers(alu.netlist(), hold_stc_frame, setup_stc_frame);

    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); STUDY_INSTRUCTIONS.len()];
    for (netlist, corner) in [
        (alu.netlist(), Corner::NTC),
        (&buffered, Corner::NTC),
        (alu.netlist(), Corner::STC),
        (&buffered, Corner::STC),
    ] {
        let params = if corner.name == "STC" {
            VariationParams::stc()
        } else {
            VariationParams::ntc()
        };
        let nominal = ChipSignature::nominal(netlist, corner);
        let mut rng = SplitMix64::seed_from_u64(0x42);
        // Operand sample shared across variants of a row.
        let samples: Vec<(u64, u64, u64, u64)> = (0..scale.circuit_samples())
            .map(|_| (rng.gen_u64(), rng.gen_u64(), rng.gen_u64(), rng.gen_u64()))
            .collect();

        // Encode each (op, sample) vector pair once; every chip in the
        // sweep replays the same pairs.
        let vectors: Vec<Vec<(Vec<bool>, Vec<bool>)>> = STUDY_INSTRUCTIONS
            .iter()
            .map(|&op| {
                samples
                    .iter()
                    .map(|&(a1, b1, a2, b2)| {
                        (
                            encode(netlist, width, &Instruction::new(op, a1, b1)),
                            encode(netlist, width, &Instruction::new(op, a2, b2)),
                        )
                    })
                    .collect()
            })
            .collect();

        // The PV-free reference delays are a pure function of the variant:
        // simulate them once per (op, sample) instead of once per chip.
        // Only min/max arrivals are consumed, so use the lean kernel path.
        let nom_delays: Vec<Vec<(Option<f64>, Option<f64>)>> = {
            let mut sim_nom = DynamicSim::new(netlist, &nominal);
            vectors
                .iter()
                .map(|per_op| {
                    per_op
                        .iter()
                        .map(|(init, sens)| {
                            let t = sim_nom.simulate_pair_minmax(init, sens);
                            (t.min_ps, t.max_ps)
                        })
                        .collect()
                })
                .collect()
        };

        // One sweep task per fabricated chip, its 2 %-choke signature and
        // simulator built once and reused across all fifteen instructions
        // (the old loop rebuilt them per instruction). Per-chip extremes
        // merge below with min/max — order-independent, so the table is
        // bit-identical at any thread count.
        let per_chip = sweep(scale.circuit_chips(), |chip| {
            let sig = two_percent_choke_signature(netlist, corner, params, 0x42 + chip as u64);
            let mut sim_pv = DynamicSim::new(netlist, &sig);
            vectors
                .iter()
                .enumerate()
                .map(|(i, per_op)| {
                    let mut min_ratio = f64::INFINITY;
                    let mut max_ratio: f64 = 0.0;
                    for (s, (init, sens)) in per_op.iter().enumerate() {
                        let t_pv = sim_pv.simulate_pair_minmax(init, sens);
                        let (nom_min, nom_max) = nom_delays[i][s];
                        if let (Some(n), Some(p)) = (nom_min, t_pv.min_ps) {
                            if n > 0.0 {
                                min_ratio = min_ratio.min(p / n);
                            }
                        }
                        if let (Some(n), Some(p)) = (nom_max, t_pv.max_ps) {
                            if n > 0.0 {
                                max_ratio = max_ratio.max(p / n);
                            }
                        }
                    }
                    (min_ratio, max_ratio)
                })
                .collect::<Vec<(f64, f64)>>()
        });

        for (i, _) in STUDY_INSTRUCTIONS.iter().enumerate() {
            let mut min_ratio = f64::INFINITY;
            let mut max_ratio: f64 = 0.0;
            for chip in &per_chip {
                min_ratio = min_ratio.min(chip[i].0);
                max_ratio = max_ratio.max(chip[i].1);
            }
            rows[i].push(if min_ratio.is_finite() { min_ratio } else { f64::NAN });
            rows[i].push(if max_ratio > 0.0 { max_ratio } else { f64::NAN });
        }
    }
    // Reorder: computed as [NTC-bufless, NTC-buf, STC-bufless, STC-buf]
    // pairs, matching the declared column order.
    for (i, &op) in STUDY_INSTRUCTIONS.iter().enumerate() {
        t.push_row(op.mnemonic(), rows[i].clone());
    }
    t
}

/// A signature whose choke gates are limited to 2 % of the netlist: keep
/// the 1 % most-slowed and the 1 % most-sped-up gates of a fabricated
/// chip, reset the rest to nominal. Both tails matter: slow chokes cause
/// the maximum violations, fast chokes (choke buffers) the minimum ones —
/// and at NTC the slowdown tail is far heavier than the speedup tail, so
/// ranking by a symmetric deviation would select only slow gates.
fn two_percent_choke_signature(
    nl: &ntc_netlist::Netlist,
    corner: Corner,
    params: VariationParams,
    seed: u64,
) -> ChipSignature {
    let fabricated = ChipSignature::fabricate(nl, corner, params, seed);
    let logic: Vec<usize> = nl
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.kind().is_pseudo())
        .map(|(i, _)| i)
        .collect();
    let mut by_mult = logic.clone();
    by_mult.sort_by(|&a, &b| fabricated.multiplier(b).total_cmp(&fabricated.multiplier(a)));
    // Clamp the tail so the two slices can never overlap: on a
    // degenerate netlist (one logic gate, or none at all) `ceil` still
    // yields 1, and overlapping tails would keep the same gate twice —
    // injecting its multiplier twice (squared). Unchanged for any
    // netlist with ≥ 2 logic gates.
    let tail = ((logic.len() as f64 * 0.01).ceil() as usize).min(logic.len() / 2);
    let kept: Vec<usize> = by_mult[..tail] // slowest 1 %
        .iter()
        .chain(by_mult[by_mult.len() - tail..].iter()) // fastest 1 %
        .copied()
        .collect();

    let mut sig = ChipSignature::nominal(nl, corner);
    for &i in &kept {
        let mult = fabricated.multiplier(i);
        sig.inject_choke(&[i], mult);
    }
    sig
}

fn encode(nl: &ntc_netlist::Netlist, width: usize, instr: &Instruction) -> Vec<bool> {
    let code = instr.opcode.alu_func().select_code();
    let mut pis = Vec::with_capacity(4 + 2 * width);
    pis.extend((0..4).map(|i| (code >> i) & 1 == 1));
    pis.extend((0..width).map(|i| (instr.a >> i) & 1 == 1));
    pis.extend((0..width).map(|i| (instr.b >> i) & 1 == 1));
    let _ = nl;
    pis
}

/// Fig. 4.3: distribution of max-violation / min-violation / error-free
/// occurrences per instruction, over a mixed trace on buffered NTC chips.
pub fn fig_4_3(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig4.3",
        "Occurrence distribution per instruction (%)",
        ["Max errors", "Min errors", "No error"],
    );
    let per_chip = sweep(scale.chips(), |chip| {
        let mut oracle = build_oracle(Corner::NTC, 0x43 + chip as u64, true, CH4_REGIME);
        let clock = CH4_REGIME.clock(oracle.nominal_critical_delay_ps());
        // A mixed trace covering all study instructions: union of two
        // diverse benchmarks.
        let mut trace = TraceGenerator::new(Benchmark::Vortex, 0x43).trace(scale.cycles() / 2);
        trace.extend(TraceGenerator::new(Benchmark::Gap, 0x43).trace(scale.cycles() / 2));
        profile_errors(&mut oracle, &trace, clock)
    });
    let mut agg: HashMap<Opcode, (u64, u64, u64)> = Default::default();
    for p in &per_chip {
        for (&op, &(maxe, mine)) in &p.per_opcode_minmax {
            let (e, f) = p.per_opcode.get(&op).copied().unwrap_or((0, 0));
            let entry = agg.entry(op).or_insert((0, 0, 0));
            entry.0 += maxe;
            entry.1 += mine;
            entry.2 += (e + f).saturating_sub(maxe + mine);
        }
    }
    for op in STUDY_INSTRUCTIONS {
        let (maxe, mine, clean) = agg.get(&op).copied().unwrap_or((0, 0, 0));
        let total = (maxe + mine + clean).max(1) as f64;
        t.push_row(
            op.mnemonic(),
            vec![
                100.0 * maxe as f64 / total,
                100.0 * mine as f64 / total,
                100.0 * clean as f64 / total,
            ],
        );
    }
    t
}

/// Fig. 4.4: max/min error distribution by operand size (Large/Small) per
/// instruction.
pub fn fig_4_4(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig4.4",
        "Error distribution by operand size (%)",
        ["Max-Large", "Max-Small", "Min-Large", "Min-Small"],
    );
    let per_chip = sweep(scale.chips(), |chip| {
        let mut oracle = build_oracle(Corner::NTC, 0x44 + chip as u64, true, CH4_REGIME);
        let clock = CH4_REGIME.clock(oracle.nominal_critical_delay_ps());
        let mut trace = TraceGenerator::new(Benchmark::Vortex, 0x44).trace(scale.cycles() / 2);
        trace.extend(TraceGenerator::new(Benchmark::Mcf, 0x44).trace(scale.cycles() / 2));
        profile_errors(&mut oracle, &trace, clock)
    });
    let mut agg: HashMap<Opcode, [u64; 4]> = Default::default();
    for p in &per_chip {
        for (&op, sizes) in &p.by_size {
            let entry = agg.entry(op).or_insert([0; 4]);
            for k in 0..4 {
                entry[k] += sizes[k];
            }
        }
    }
    let chart_ops = [
        Opcode::Addu,
        Opcode::Subu,
        Opcode::Mflo,
        Opcode::Andi,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Lui,
        Opcode::Sllv,
    ];
    for op in chart_ops {
        let sizes = agg.get(&op).copied().unwrap_or([0; 4]);
        let total = sizes.iter().sum::<u64>().max(1) as f64;
        t.push_row(
            op.mnemonic(),
            sizes.iter().map(|&s| 100.0 * s as f64 / total).collect(),
        );
    }
    t
}

/// Fig. 4.8: distribution of SE(Min) / SE(Max) / CE per benchmark, on the
/// buffered netlist with avoidance disabled (pure profiling).
pub fn fig_4_8(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig4.8",
        "Error-class distribution per benchmark (%)",
        ["SE(Min)", "SE(Max)", "CE"],
    );
    let grid = expand(&ALL_BENCHMARKS, scale.chips());
    let cells = sweep_over(&grid, |_, &(bench, chip)| {
        // Chip sample re-pinned for the in-tree SplitMix64 lottery:
        // this base draws dice exhibiting all three error classes on
        // every benchmark, as the paper's Fig. 4.8 requires.
        let mut oracle = build_oracle(Corner::NTC, 0x90 + chip as u64, true, CH4_REGIME);
        let clock = CH4_REGIME.clock(oracle.nominal_critical_delay_ps());
        let trace = TraceGenerator::new(bench, 11).trace(scale.cycles());
        let p = profile_errors(&mut oracle, &trace, clock);
        [
            p.class_count(ErrorClass::SingleMin),
            p.class_count(ErrorClass::SingleMax),
            p.class_count(ErrorClass::Consecutive),
        ]
    });
    let per_bench = fold_cells(
        grid.iter().map(|&(b, _)| b),
        cells,
        || [0u64; 3],
        |counts, cell| {
            for (slot, c) in counts.iter_mut().zip(cell) {
                *slot += c;
            }
        },
    );
    for (bench, counts) in per_bench {
        let total = counts.iter().sum::<u64>().max(1) as f64;
        t.push_row(
            bench.name(),
            counts.iter().map(|&c| 100.0 * c as f64 / total).collect(),
        );
    }
    t
}

/// Fig. 4.9: Trident prediction accuracy vs CET entry count.
pub fn fig_4_9(scale: Scale) -> ResultTable {
    let sizes = [32usize, 64, 128, 256, 512];
    let mut t = ResultTable::new(
        "fig4.9",
        "Trident prediction accuracy (%) vs CET entries",
        sizes.iter().map(|s| s.to_string()),
    );
    let grid = run_grid(&GridSpec {
        benchmarks: ALL_BENCHMARKS.to_vec(),
        chips: scale.chips(),
        schemes: sizes
            .iter()
            .map(|&cet_entries| SchemeSpec::Trident { cet_entries })
            .collect(),
        voltages: crate::config::voltages(),
        regime: Regime::Ch4,
        chip_seed_base: 0x49,
        trace_seed: 13,
        cycles: scale.cycles(),
        source: crate::config::workload_source(),
    });
    let multi = grid.voltages().len() > 1;
    for (bench, point, accs) in grid.rows() {
        t.push_row(
            row_label(*bench, *point, multi),
            accs.iter()
                .map(SimAccumulator::mean_prediction_accuracy)
                .collect(),
        );
    }
    t
}

/// The full Ch. 4 comparison grid (Razor, OCST, Trident) over every
/// benchmark and requested operating point, summed over chips. Razor and
/// OCST run on the buffered netlist (their double-sampling design
/// requires it); Trident runs bufferless against the TDC guard-interval
/// clock — the registry encodes both choices.
///
/// Figs. 4.10–4.12 chart different columns of the *same* grid, which the
/// scenario engine's spec-keyed cache sweeps once and shares.
fn ch4_compare(scale: Scale) -> std::sync::Arc<GridResult> {
    run_grid(&GridSpec {
        benchmarks: ALL_BENCHMARKS.to_vec(),
        chips: scale.chips(),
        schemes: vec![
            SchemeSpec::RazorCh4,
            SchemeSpec::Ocst,
            SchemeSpec::Trident { cet_entries: 128 },
        ],
        voltages: crate::config::voltages(),
        regime: Regime::Ch4,
        chip_seed_base: 400,
        trace_seed: 17,
        cycles: scale.cycles(),
        source: crate::config::workload_source(),
    })
}

/// Per-row scheme results of the Ch. 4 comparison grid, labelled with
/// [`row_label`] so single-voltage tables keep their legacy row names.
fn ch4_compare_rows(scale: Scale) -> Vec<(String, Vec<SimResult>)> {
    let grid = ch4_compare(scale);
    let multi = grid.voltages().len() > 1;
    grid.rows()
        .iter()
        .map(|(bench, point, accs)| {
            (
                row_label(*bench, *point, multi),
                accs.iter().map(SimAccumulator::result).collect(),
            )
        })
        .collect()
}

/// Fig. 4.10: penalty cycles of Razor / OCST / Trident, normalized to
/// Razor (lower is better).
pub fn fig_4_10(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig4.10",
        "Penalty cycles normalized to Razor (lower is better)",
        ["Razor", "OCST", "Trident"],
    );
    for (label, rs) in ch4_compare_rows(scale) {
        let p: Vec<f64> = rs.iter().map(|r| r.cost.penalty_cycles() as f64).collect();
        t.push_row(label, normalize_to_first(&p));
    }
    t
}

/// Fig. 4.11: performance of Razor / OCST / Trident normalized to Razor
/// (higher is better).
pub fn fig_4_11(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig4.11",
        "Performance normalized to Razor (higher is better)",
        ["Razor", "OCST", "Trident"],
    );
    for (label, rs) in ch4_compare_rows(scale) {
        let p: Vec<f64> = rs.iter().map(SimResult::performance).collect();
        t.push_row(label, normalize_to_first(&p));
    }
    t
}

/// Fig. 4.12: energy efficiency of Razor / OCST / Trident normalized to
/// Razor (higher is better).
pub fn fig_4_12(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig4.12",
        "Energy efficiency normalized to Razor (higher is better)",
        ["Razor", "OCST", "Trident"],
    );
    let model = EnergyModel::ntc_core();
    for (label, rs) in ch4_compare_rows(scale) {
        let p: Vec<f64> = rs.iter().map(|r| r.energy(model).efficiency).collect();
        t.push_row(label, normalize_to_first(&p));
    }
    t
}

/// §4.5.7: the Trident hardware-overhead table (relative to the EX stage
/// and to the whole pipeline).
pub fn overheads_4() -> ResultTable {
    let base = PipelineBaseline::synthesize();
    let r = trident_overheads(128, &base);
    let mut t = ResultTable::new(
        "tab4.overheads",
        "Trident hardware overheads (%)",
        ["area", "power", "wirelength"],
    );
    t.push_row(
        "vs EX stage",
        vec![r.area_pct_ex, r.power_pct_ex, r.wirelength_pct_ex],
    );
    t.push_row(
        "vs pipeline",
        vec![
            r.area_pct_pipeline,
            r.power_pct_pipeline,
            r.wirelength_pct_pipeline,
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::Builder;

    /// Regression: degenerate netlists (no logic gates, or a single one)
    /// used to make the 1 % tails of [`two_percent_choke_signature`]
    /// overlap — the lone gate was kept twice, so its multiplier was
    /// injected twice (squared). The clamped tail must fall back to the
    /// nominal signature instead of panicking or double-injecting.
    #[test]
    fn choke_signature_handles_degenerate_netlists() {
        // All-I/O netlist: one primary input wired straight to an output,
        // zero logic gates.
        let mut b = Builder::new();
        let a = b.input("a");
        b.output("y", a);
        let nl = b.finish();
        let sig = two_percent_choke_signature(&nl, Corner::NTC, VariationParams::ntc(), 7);
        let nominal = ChipSignature::nominal(&nl, Corner::NTC);
        for i in 0..nl.len() {
            assert_eq!(
                sig.delay_ps(i).to_bits(),
                nominal.delay_ps(i).to_bits(),
                "all-I/O netlist keeps no choke gates (net {i})"
            );
        }

        // Single logic gate: both 1 % tails would round up to the same
        // gate; the clamp keeps neither rather than keeping it twice.
        let mut b = Builder::new();
        let a = b.input("a");
        let g = b.not(a);
        b.output("y", g);
        let nl = b.finish();
        let sig = two_percent_choke_signature(&nl, Corner::NTC, VariationParams::ntc(), 7);
        let nominal = ChipSignature::nominal(&nl, Corner::NTC);
        for i in 0..nl.len() {
            assert_eq!(
                sig.delay_ps(i).to_bits(),
                nominal.delay_ps(i).to_bits(),
                "single-gate netlist keeps no choke gates (net {i})"
            );
        }
    }
}
