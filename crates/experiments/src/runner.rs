//! Deterministic work-stealing parallel sweep engine.
//!
//! Every experiment in the suite is a Monte-Carlo sweep over independent,
//! seeded units of work — fabricated chips, (benchmark × chip) cells,
//! supply-voltage points. This module runs such sweeps across threads with
//! a hard determinism contract:
//!
//! > **The output of [`sweep`] is bit-identical to the sequential loop,
//! > regardless of thread count.**
//!
//! The contract holds by construction: task `i` computes `f(i)` from its
//! index alone (all experiment randomness is seeded per index), workers
//! claim indices from a shared atomic counter (work stealing without
//! queues), and results are written back into slot `i` before the sweep
//! returns a plain index-ordered `Vec`. Scheduling order can never leak
//! into the result — only into the wall clock. Reductions that are
//! order-sensitive (floating-point sums, running averages) therefore stay
//! exactly as reproducible as the old `for` loops: they fold the returned
//! `Vec` in index order on the calling thread.
//!
//! Thread count resolution, in priority order: [`set_jobs`] (the `--jobs`
//! flag), the `NTC_JOBS` environment variable, then the machine's
//! available parallelism. One job means the sweep runs inline on the
//! calling thread with zero overhead. A malformed `NTC_JOBS` value is
//! ignored with a single warning rather than silently.
//!
//! The engine keeps global busy/wall counters so callers (the `repro`
//! binary) can report the effective speedup of each experiment; see
//! [`take_stats`]. The counters are recorded on **every** exit path,
//! including unwinding — a panicking sweep still accounts its wall and
//! busy time, so per-experiment telemetry stays honest even for failing
//! runs.
//!
//! Two failure disciplines are offered:
//!
//! * [`sweep`] — fail fast: a panic in any task propagates to the caller
//!   after stats are recorded. Experiments use this; a panicking chip
//!   means the table is untrustworthy and must not be emitted.
//! * [`sweep_catching`] — fault isolation: each index runs under
//!   [`std::panic::catch_unwind`], a panicking index yields
//!   `Err(IndexFailure)` in its slot while every other index completes
//!   bit-identically, and the failures are additionally pushed to a
//!   process-global registry ([`take_sweep_failures`]) so the `repro`
//!   manifest can report them per experiment.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Explicit thread-count override; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Cumulative worker-busy time across sweeps, nanoseconds.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
/// Cumulative sweep wall-clock time, nanoseconds.
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);
/// `NTC_JOBS`, read and parsed once per process (every sweep consults
/// [`jobs`], and the variable cannot change meaningfully mid-run). The
/// one-shot init also gives the malformed-value warning its warn-once
/// behaviour for free.
static ENV_JOBS: OnceLock<Option<usize>> = OnceLock::new();
/// Per-index panics caught by [`sweep_catching`] since the last
/// [`take_sweep_failures`] drain, in sweep-submission order.
static SWEEP_FAILURES: Mutex<Vec<IndexFailure>> = Mutex::new(Vec::new());

/// Force the number of worker threads for all subsequent sweeps
/// (`--jobs N`). Pass 0 to clear the override and fall back to `NTC_JOBS`
/// / the machine's parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The cached `NTC_JOBS` value: parsed on first call, then free.
fn env_jobs() -> Option<usize> {
    *ENV_JOBS.get_or_init(|| {
        let v = std::env::var("NTC_JOBS").ok()?;
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "warning: ignoring invalid NTC_JOBS={v:?} \
                     (expected a positive integer); using machine parallelism"
                );
                None
            }
        }
    })
}

/// The pure resolution rule behind [`jobs`]: explicit override (0 =
/// unset) beats the environment beats the machine's parallelism, floored
/// at one worker. Split out so the precedence is unit-testable without
/// mutating process globals.
fn resolve_jobs(explicit: usize, env: Option<usize>, machine: usize) -> usize {
    if explicit > 0 {
        explicit
    } else {
        env.unwrap_or(machine).max(1)
    }
}

/// The number of worker threads a sweep will use: the [`set_jobs`]
/// override, else `NTC_JOBS` (parsed once per process), else the
/// machine's available parallelism.
pub fn jobs() -> usize {
    resolve_jobs(
        JOBS_OVERRIDE.load(Ordering::SeqCst),
        env_jobs(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Busy/wall accounting for the sweeps run since the last [`take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total worker-busy time summed over all threads.
    pub busy: Duration,
    /// Total sweep wall-clock time.
    pub wall: Duration,
}

impl SweepStats {
    /// Effective speedup (busy / wall): ≈1 sequentially, →jobs when the
    /// sweep scales. `None` when no sweep ran.
    pub fn speedup(&self) -> Option<f64> {
        (self.wall > Duration::ZERO).then(|| self.busy.as_secs_f64() / self.wall.as_secs_f64())
    }
}

/// Drain and reset the global sweep counters. The `repro` binary calls
/// this per experiment to report each table's effective speedup.
pub fn take_stats() -> SweepStats {
    SweepStats {
        busy: Duration::from_nanos(BUSY_NANOS.swap(0, Ordering::SeqCst)),
        wall: Duration::from_nanos(WALL_NANOS.swap(0, Ordering::SeqCst)),
    }
}

/// A per-run attribution scope for the sweep busy/wall counters. While
/// installed on a thread (see [`set_sweep_scope`]), every accounting add
/// additionally lands in the scope — how a server attributes sweep time
/// to the job that ran it while concurrent jobs share the process-wide
/// counters. Both busy and wall time are recorded on the thread that
/// *calls* [`sweep`] (workers hand their busy time back to the join
/// loop), so installing the scope on the calling thread is sufficient.
#[derive(Debug, Default)]
pub struct SweepScope {
    busy_nanos: AtomicU64,
    wall_nanos: AtomicU64,
}

impl SweepScope {
    /// The time accumulated in this scope so far (non-draining).
    pub fn snapshot(&self) -> SweepStats {
        SweepStats {
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
        }
    }
}

thread_local! {
    static SWEEP_SCOPE: std::cell::RefCell<Option<std::sync::Arc<SweepScope>>> =
        const { std::cell::RefCell::new(None) };
}

/// Install (or, with `None`, clear) the calling thread's sweep
/// attribution scope, returning the previous one so callers can restore
/// it.
pub fn set_sweep_scope(
    scope: Option<std::sync::Arc<SweepScope>>,
) -> Option<std::sync::Arc<SweepScope>> {
    SWEEP_SCOPE.with(|s| s.replace(scope))
}

/// The calling thread's installed sweep scope, if any.
pub fn current_sweep_scope() -> Option<std::sync::Arc<SweepScope>> {
    SWEEP_SCOPE.with(|s| s.borrow().clone())
}

/// Add nanoseconds to a global counter, mirroring into the calling
/// thread's installed scope when one is present.
fn account(global: &AtomicU64, pick: fn(&SweepScope) -> &AtomicU64, nanos: u64) {
    global.fetch_add(nanos, Ordering::Relaxed);
    SWEEP_SCOPE.with(|s| {
        if let Some(scope) = s.borrow().as_ref() {
            pick(scope).fetch_add(nanos, Ordering::Relaxed);
        }
    });
}

/// Run `f(0), f(1), …, f(n-1)` across worker threads and return the
/// results in index order — bit-identical to the sequential loop for any
/// thread count (see the module docs for why).
///
/// A panic in any task propagates to the caller after the scope joins;
/// the busy/wall stats counters are recorded before the unwind resumes,
/// so [`take_stats`] stays accurate across failed sweeps. For per-index
/// fault isolation instead of fail-fast, see [`sweep_catching`].
pub fn sweep<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match sweep_impl(n, &f) {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Panic payload carried off a worker thread.
type Payload = Box<dyn std::any::Any + Send + 'static>;

/// The engine proper: returns `Err(first panic payload)` instead of
/// unwinding so both exits flow through the same stats accounting.
fn sweep_impl<T, F>(n: usize, f: &F) -> Result<Vec<T>, Payload>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let wall_start = Instant::now();
    let workers = jobs().min(n);
    let result = if workers <= 1 {
        // Inline fast path: identical semantics, zero thread overhead.
        let busy_start = Instant::now();
        let out = catch_unwind(AssertUnwindSafe(|| (0..n).map(f).collect::<Vec<T>>()));
        account(
            &BUSY_NANOS,
            |s| &s.busy_nanos,
            busy_start.elapsed().as_nanos() as u64,
        );
        out
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<Payload> = None;
        // Scoped thread-local state (the oracle attribution scope) does
        // not cross thread boundaries on its own; hand the caller's
        // scope to each worker so a server job's oracle counters include
        // the work its sweep fanned out.
        let oracle_scope = ntc_core::current_oracle_scope();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let oracle_scope = oracle_scope.clone();
                    s.spawn(move || {
                        ntc_core::set_oracle_scope(oracle_scope);
                        let busy_start = Instant::now();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        // Catch inside the worker so a panicking task still
                        // reports the thread's busy time (and its completed
                        // results) to the join loop below.
                        let panic = catch_unwind(AssertUnwindSafe(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }))
                        .err();
                        (local, busy_start.elapsed(), panic)
                    })
                })
                .collect();
            for h in handles {
                let (local, busy, panic) = h.join().expect("worker catches its own panics");
                account(&BUSY_NANOS, |s| &s.busy_nanos, busy.as_nanos() as u64);
                for (i, t) in local {
                    slots[i] = Some(t);
                }
                if let Some(p) = panic {
                    first_panic.get_or_insert(p);
                }
            }
        });
        match first_panic {
            Some(p) => Err(p),
            None => Ok(slots
                .into_iter()
                .map(|s| s.expect("every index claimed exactly once"))
                .collect()),
        }
    };
    account(
        &WALL_NANOS,
        |s| &s.wall_nanos,
        wall_start.elapsed().as_nanos() as u64,
    );
    result
}

/// One caught per-index panic from a [`sweep_catching`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexFailure {
    /// The sweep index whose task panicked.
    pub index: usize,
    /// The panic message (`&str`/`String` payloads; a placeholder
    /// otherwise).
    pub message: String,
}

impl std::fmt::Display for IndexFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "index {}: {}", self.index, self.message)
    }
}

/// Best-effort human-readable rendering of a panic payload.
fn panic_message(payload: &Payload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Fault-isolating variant of [`sweep`]: each index runs under
/// [`catch_unwind`], so one panicking task yields `Err(IndexFailure)` in
/// its own slot while **every other index completes and stays
/// bit-identical to a fully sequential run** — scheduling still cannot
/// leak into results, and neither can a neighbour's failure.
///
/// Caught failures are also appended (in index order) to a process-global
/// registry; drain it with [`take_sweep_failures`] to report them, as the
/// `repro` binary does per experiment in its `manifest.json`. The default
/// panic hook still prints each panic to stderr — isolation changes who
/// survives, not who gets logged.
pub fn sweep_catching<T, F>(n: usize, f: F) -> Vec<Result<T, IndexFailure>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let results = sweep(n, |i| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| IndexFailure {
            index: i,
            message: panic_message(&p),
        })
    });
    let failures: Vec<IndexFailure> = results
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect();
    if !failures.is_empty() {
        SWEEP_FAILURES
            .lock()
            .expect("sweep-failure registry poisoned")
            .extend(failures);
    }
    results
}

/// Drain the process-global registry of panics caught by
/// [`sweep_catching`] since the last drain, in sweep-submission order.
pub fn take_sweep_failures() -> Vec<IndexFailure> {
    std::mem::take(
        &mut *SWEEP_FAILURES
            .lock()
            .expect("sweep-failure registry poisoned"),
    )
}

/// Keyed sweep over an explicit work list — the (chip × benchmark ×
/// scheme) grid variant. `f` receives the index and the key; results come
/// back in key order.
pub fn sweep_over<K, T, F>(keys: &[K], f: F) -> Vec<T>
where
    K: Sync,
    T: Send,
    F: Fn(usize, &K) -> T + Sync,
{
    sweep(keys.len(), |i| f(i, &keys[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the global jobs override.
    static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        let _guard = JOBS_LOCK.lock().unwrap();
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 8] {
            set_jobs(jobs);
            assert_eq!(sweep(97, |i| i * i), expect, "jobs={jobs}");
        }
        set_jobs(0);
    }

    #[test]
    fn parallel_output_is_bit_identical_to_sequential() {
        let _guard = JOBS_LOCK.lock().unwrap();
        // Per-index seeded RNG streams — the shape every experiment uses.
        let run = || {
            sweep(24, |i| {
                let mut rng = ntc_varmodel::SplitMix64::seed_from_u64(100 + i as u64);
                (0..256).map(|_| rng.gen_f64()).sum::<f64>()
            })
        };
        set_jobs(1);
        let sequential = run();
        set_jobs(8);
        let parallel = run();
        set_jobs(0);
        assert!(
            sequential
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "bit-identical across thread counts"
        );
    }

    #[test]
    fn keyed_sweep_preserves_key_order() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(4);
        let keys = ["a", "bb", "ccc", "dddd", "eeeee"];
        let lens = sweep_over(&keys, |i, k| (i, k.len()));
        set_jobs(0);
        assert_eq!(lens, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u8> = sweep(0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(sweep(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn stats_accumulate_and_drain() {
        let _ = take_stats();
        let _ = sweep(4, |i| std::hint::black_box(i * 2));
        let stats = take_stats();
        assert!(stats.wall > Duration::ZERO);
        assert!(stats.busy > Duration::ZERO);
        let drained = take_stats();
        assert_eq!(drained.wall, Duration::ZERO);
    }

    #[test]
    fn jobs_resolution_priority() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn resolve_jobs_precedence_is_override_env_machine() {
        // Explicit --jobs wins over everything.
        assert_eq!(resolve_jobs(3, Some(5), 8), 3);
        assert_eq!(resolve_jobs(3, None, 8), 3);
        // The environment beats the machine…
        assert_eq!(resolve_jobs(0, Some(5), 8), 5);
        // …and the machine is the default…
        assert_eq!(resolve_jobs(0, None, 8), 8);
        // …floored at one worker even on a degenerate probe.
        assert_eq!(resolve_jobs(0, None, 0), 1);
    }

    #[test]
    fn stats_are_recorded_when_a_sweep_panics() {
        let _guard = JOBS_LOCK.lock().unwrap();
        for jobs in [1, 4] {
            set_jobs(jobs);
            let _ = take_stats();
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                sweep(16, |i| {
                    if i == 7 {
                        panic!("injected failure at {i}");
                    }
                    std::hint::black_box(i * 3)
                })
            }));
            assert!(unwound.is_err(), "jobs={jobs}: the panic must propagate");
            let stats = take_stats();
            assert!(
                stats.wall > Duration::ZERO,
                "jobs={jobs}: wall time recorded on the unwind path"
            );
            assert!(
                stats.busy > Duration::ZERO,
                "jobs={jobs}: busy time recorded on the unwind path"
            );
        }
        set_jobs(0);
    }

    #[test]
    fn sweep_catching_isolates_panics_and_stays_deterministic() {
        let _guard = JOBS_LOCK.lock().unwrap();
        let _ = take_sweep_failures();
        let run = || {
            sweep_catching(24, |i| {
                if i == 5 || i == 17 {
                    panic!("chip {i} exploded");
                }
                let mut rng = ntc_varmodel::SplitMix64::seed_from_u64(900 + i as u64);
                (0..64).map(|_| rng.gen_f64()).sum::<f64>()
            })
        };
        set_jobs(1);
        let sequential = run();
        let seq_failures = take_sweep_failures();
        set_jobs(8);
        let parallel = run();
        let par_failures = take_sweep_failures();
        set_jobs(0);

        assert_eq!(seq_failures, par_failures, "same failures at any thread count");
        assert_eq!(
            seq_failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![5, 17]
        );
        assert_eq!(seq_failures[0].message, "chip 5 exploded");
        for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "index {i} bit-identical")
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("index {i}: pass/fail status differs across thread counts"),
            }
        }
    }

    #[test]
    fn sweep_failure_registry_drains() {
        let _guard = JOBS_LOCK.lock().unwrap();
        let _ = take_sweep_failures();
        set_jobs(1);
        let out = sweep_catching(3, |i| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
        set_jobs(0);
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[2], Ok(2));
        let failures = take_sweep_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 1);
        assert!(take_sweep_failures().is_empty(), "drain resets the registry");
    }
}
