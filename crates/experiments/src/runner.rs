//! Deterministic work-stealing parallel sweep engine.
//!
//! Every experiment in the suite is a Monte-Carlo sweep over independent,
//! seeded units of work — fabricated chips, (benchmark × chip) cells,
//! supply-voltage points. This module runs such sweeps across threads with
//! a hard determinism contract:
//!
//! > **The output of [`sweep`] is bit-identical to the sequential loop,
//! > regardless of thread count.**
//!
//! The contract holds by construction: task `i` computes `f(i)` from its
//! index alone (all experiment randomness is seeded per index), workers
//! claim indices from a shared atomic counter (work stealing without
//! queues), and results are written back into slot `i` before the sweep
//! returns a plain index-ordered `Vec`. Scheduling order can never leak
//! into the result — only into the wall clock. Reductions that are
//! order-sensitive (floating-point sums, running averages) therefore stay
//! exactly as reproducible as the old `for` loops: they fold the returned
//! `Vec` in index order on the calling thread.
//!
//! Thread count resolution, in priority order: [`set_jobs`] (the `--jobs`
//! flag), the `NTC_JOBS` environment variable, then the machine's
//! available parallelism. One job means the sweep runs inline on the
//! calling thread with zero overhead.
//!
//! The engine keeps global busy/wall counters so callers (the `repro`
//! binary) can report the effective speedup of each experiment; see
//! [`take_stats`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Explicit thread-count override; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Cumulative worker-busy time across sweeps, nanoseconds.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
/// Cumulative sweep wall-clock time, nanoseconds.
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Force the number of worker threads for all subsequent sweeps
/// (`--jobs N`). Pass 0 to clear the override and fall back to `NTC_JOBS`
/// / the machine's parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads a sweep will use: the [`set_jobs`]
/// override, else `NTC_JOBS`, else the machine's available parallelism.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("NTC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Busy/wall accounting for the sweeps run since the last [`take_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Total worker-busy time summed over all threads.
    pub busy: Duration,
    /// Total sweep wall-clock time.
    pub wall: Duration,
}

impl SweepStats {
    /// Effective speedup (busy / wall): ≈1 sequentially, →jobs when the
    /// sweep scales. `None` when no sweep ran.
    pub fn speedup(&self) -> Option<f64> {
        (self.wall > Duration::ZERO).then(|| self.busy.as_secs_f64() / self.wall.as_secs_f64())
    }
}

/// Drain and reset the global sweep counters. The `repro` binary calls
/// this per experiment to report each table's effective speedup.
pub fn take_stats() -> SweepStats {
    SweepStats {
        busy: Duration::from_nanos(BUSY_NANOS.swap(0, Ordering::SeqCst)),
        wall: Duration::from_nanos(WALL_NANOS.swap(0, Ordering::SeqCst)),
    }
}

/// Run `f(0), f(1), …, f(n-1)` across worker threads and return the
/// results in index order — bit-identical to the sequential loop for any
/// thread count (see the module docs for why).
///
/// A panic in any task propagates to the caller after the scope joins.
pub fn sweep<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let wall_start = Instant::now();
    let workers = jobs().min(n);
    let out = if workers <= 1 {
        // Inline fast path: identical semantics, zero thread overhead.
        let busy_start = Instant::now();
        let out: Vec<T> = (0..n).map(&f).collect();
        BUSY_NANOS.fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    s.spawn(move || {
                        let busy_start = Instant::now();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        (local, busy_start.elapsed())
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((local, busy)) => {
                        BUSY_NANOS.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
                        for (i, t) in local {
                            slots[i] = Some(t);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index claimed exactly once"))
            .collect()
    };
    WALL_NANOS.fetch_add(wall_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// Keyed sweep over an explicit work list — the (chip × benchmark ×
/// scheme) grid variant. `f` receives the index and the key; results come
/// back in key order.
pub fn sweep_over<K, T, F>(keys: &[K], f: F) -> Vec<T>
where
    K: Sync,
    T: Send,
    F: Fn(usize, &K) -> T + Sync,
{
    sweep(keys.len(), |i| f(i, &keys[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the global jobs override.
    static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn results_are_in_index_order_for_any_thread_count() {
        let _guard = JOBS_LOCK.lock().unwrap();
        let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 8] {
            set_jobs(jobs);
            assert_eq!(sweep(97, |i| i * i), expect, "jobs={jobs}");
        }
        set_jobs(0);
    }

    #[test]
    fn parallel_output_is_bit_identical_to_sequential() {
        let _guard = JOBS_LOCK.lock().unwrap();
        // Per-index seeded RNG streams — the shape every experiment uses.
        let run = || {
            sweep(24, |i| {
                let mut rng = ntc_varmodel::SplitMix64::seed_from_u64(100 + i as u64);
                (0..256).map(|_| rng.gen_f64()).sum::<f64>()
            })
        };
        set_jobs(1);
        let sequential = run();
        set_jobs(8);
        let parallel = run();
        set_jobs(0);
        assert!(
            sequential
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "bit-identical across thread counts"
        );
    }

    #[test]
    fn keyed_sweep_preserves_key_order() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(4);
        let keys = ["a", "bb", "ccc", "dddd", "eeeee"];
        let lens = sweep_over(&keys, |i, k| (i, k.len()));
        set_jobs(0);
        assert_eq!(lens, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u8> = sweep(0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(sweep(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn stats_accumulate_and_drain() {
        let _ = take_stats();
        let _ = sweep(4, |i| std::hint::black_box(i * 2));
        let stats = take_stats();
        assert!(stats.wall > Duration::ZERO);
        assert!(stats.busy > Duration::ZERO);
        let drained = take_stats();
        assert_eq!(drained.wall, Duration::ZERO);
    }

    #[test]
    fn jobs_resolution_priority() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }
}
