//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * **tag granularity** — §3.3.2 claims the four-part opcode+OWM tag
//!   tracks error instances "at a finer granularity, and thereby, more
//!   precisely" than opcode-only or PC-style keys; quantify it;
//! * **replacement policy** — pseudo-LRU vs FIFO vs random in the CSLT;
//! * **detection window** — Trident's transparent-phase width (the hold
//!   constraint) vs the number of min-side errors that exist to be caught.

use crate::config::{build_oracle, Scale, CH3_REGIME, CH4_REGIME};
use crate::runner::{sweep, sweep_over};
use crate::scenario::{expand, fold_cells};
use crate::table::ResultTable;
use ntc_core::scheme::{CycleContext, CycleOutcome, ResilienceScheme};
use ntc_core::sim::{profile_errors, run_scheme};
use ntc_core::tables::AssociativeTable;
use ntc_isa::ErrorTag;
use ntc_pipeline::Pipeline;
use ntc_timing::{ClockSpec, ErrorClass};
use ntc_varmodel::Corner;
use ntc_workload::{Benchmark, TraceGenerator};

/// Reduced tag variants for the granularity ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ReducedTag {
    /// Errant opcode only (PC-proxy granularity).
    Opcode(u8),
    /// Errant opcode + OWM.
    OpcodeOwm(u8, bool),
    /// Errant + previous opcodes (no OWM).
    Pair(u8, u8),
    /// The full DCS tag.
    Full(ErrorTag),
}

fn reduce(tag: ErrorTag, mode: usize) -> ReducedTag {
    match mode {
        0 => ReducedTag::Opcode(tag.opcode),
        1 => ReducedTag::OpcodeOwm(tag.opcode, tag.owm),
        2 => ReducedTag::Pair(tag.opcode, tag.prev_opcode),
        _ => ReducedTag::Full(tag),
    }
}

/// A DCS-like scheme with a configurable tag reduction (for the
/// granularity ablation) and replacement policy (for the policy ablation).
#[derive(Debug)]
struct AblatedDcs {
    mode: usize,
    policy: Policy,
    plru: AssociativeTable<ReducedTag, ()>,
    fifo: Vec<ReducedTag>,
    capacity: usize,
    rng_state: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    PseudoLru,
    Fifo,
    Random,
}

impl AblatedDcs {
    fn new(mode: usize, policy: Policy, capacity: usize) -> Self {
        AblatedDcs {
            mode,
            policy,
            plru: AssociativeTable::new(capacity),
            fifo: Vec::new(),
            capacity,
            rng_state: 0x1234_5678_9ABC_DEF0,
        }
    }

    fn contains(&mut self, key: &ReducedTag) -> bool {
        match self.policy {
            Policy::PseudoLru => self.plru.lookup(key).is_some(),
            _ => self.fifo.contains(key),
        }
    }

    fn record(&mut self, key: ReducedTag) {
        match self.policy {
            Policy::PseudoLru => {
                let _ = self.plru.insert(key, ());
            }
            Policy::Fifo => {
                if !self.fifo.contains(&key) {
                    if self.fifo.len() >= self.capacity {
                        self.fifo.remove(0);
                    }
                    self.fifo.push(key);
                }
            }
            Policy::Random => {
                if !self.fifo.contains(&key) {
                    if self.fifo.len() >= self.capacity {
                        // xorshift victim selection.
                        self.rng_state ^= self.rng_state << 13;
                        self.rng_state ^= self.rng_state >> 7;
                        self.rng_state ^= self.rng_state << 17;
                        let victim = (self.rng_state % self.capacity as u64) as usize;
                        self.fifo.swap_remove(victim);
                    }
                    self.fifo.push(key);
                }
            }
        }
    }
}

impl ResilienceScheme for AblatedDcs {
    fn name(&self) -> &'static str {
        "DCS-ablated"
    }

    fn on_cycle(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        let key = reduce(ctx.tag, self.mode);
        let v = ctx.violation_at(&ctx.base_clock);
        if self.contains(&key) {
            return CycleOutcome::Avoided {
                stalls: 1,
                needed: v.max,
            };
        }
        if v.max {
            self.record(key);
            return CycleOutcome::Recovered {
                class: ErrorClass::SingleMax,
            };
        }
        CycleOutcome::Clean
    }
}

fn ablation_clock(oracle: &ntc_core::tag_delay::TagDelayOracle) -> ClockSpec {
    CH3_REGIME.clock(oracle.nominal_critical_delay_ps())
}

/// Tag-granularity ablation: prediction accuracy and false-positive rate
/// per tag variant (128-entry table, gzip + vortex averaged).
pub fn tag_granularity(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "abl.tags",
        "Tag granularity: accuracy (%) and false-positive stalls per 1k cycles",
        ["accuracy", "fp/1k"],
    );
    let names = ["opcode", "opcode+OWM", "opcode-pair", "full-4-part"];
    // Full (mode × benchmark × chip) grid in one sweep; the per-mode sums
    // below fold cells in the old nested-loop order, so the averages are
    // bit-identical at any thread count.
    let groups: Vec<(usize, Benchmark)> = (0..names.len())
        .flat_map(|mode| {
            [Benchmark::Gzip, Benchmark::Vortex]
                .into_iter()
                .map(move |bench| (mode, bench))
        })
        .collect();
    let grid = expand(&groups, scale.chips());
    let cells = sweep_over(&grid, |_, &((mode, bench), chip)| {
        let mut oracle = build_oracle(Corner::NTC, 900 + chip as u64, false, CH3_REGIME);
        let clock = ablation_clock(&oracle);
        let trace = TraceGenerator::new(bench, 3).trace(scale.cycles() / 2);
        let mut scheme = AblatedDcs::new(mode, Policy::PseudoLru, 128);
        let r = run_scheme(&mut scheme, &mut oracle, &trace, clock, Pipeline::core1());
        (
            r.prediction_accuracy(),
            1000.0 * r.false_positives as f64 / trace.len() as f64,
        )
    });
    let folded = fold_cells(
        grid.iter().map(|&((m, _), _)| m),
        cells,
        || (0.0f64, 0.0f64, 0.0f64),
        |(acc, fp, runs), (a, f)| {
            *acc += a;
            *fp += f;
            *runs += 1.0;
        },
    );
    for (mode, (acc, fp, runs)) in folded {
        t.push_row(names[mode], vec![acc / runs, fp / runs]);
    }
    t
}

/// Replacement-policy ablation: prediction accuracy of pseudo-LRU vs FIFO
/// vs random on a capacity-pressured (32-entry) table over vortex.
pub fn replacement_policy(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "abl.replacement",
        "CSLT replacement policy: prediction accuracy (%) at 32 entries",
        ["accuracy"],
    );
    let policies = [
        (Policy::PseudoLru, "pseudo-LRU"),
        (Policy::Fifo, "FIFO"),
        (Policy::Random, "random"),
    ];
    let grid = expand(&policies.map(|(p, _)| p), scale.chips());
    let cells = sweep_over(&grid, |_, &(policy, chip)| {
        let mut oracle = build_oracle(Corner::NTC, 950 + chip as u64, false, CH3_REGIME);
        let clock = ablation_clock(&oracle);
        let trace = TraceGenerator::new(Benchmark::Vortex, 5).trace(scale.cycles());
        let mut scheme = AblatedDcs::new(3, policy, 32);
        run_scheme(&mut scheme, &mut oracle, &trace, clock, Pipeline::core1()).prediction_accuracy()
    });
    let folded = fold_cells(
        grid.iter().map(|&(p, _)| p),
        cells,
        || (0.0f64, 0.0f64),
        |(acc, runs), a| {
            *acc += a;
            *runs += 1.0;
        },
    );
    for ((policy, (acc, runs)), (expected, name)) in folded.into_iter().zip(policies) {
        assert_eq!(policy, expected, "fold preserves the policy order");
        t.push_row(name, vec![acc / runs]);
    }
    t
}

/// Detection-window ablation: how the hold-window width changes the error
/// population Trident must handle (min errors appear as the window widens).
pub fn detection_window(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "abl.window",
        "Hold-window width vs error population (per 1k cycles)",
        ["SE(Min)/1k", "SE(Max)/1k", "CE/1k"],
    );
    let fracs = [0.08f64, 0.11, 0.14, 0.17, 0.20];
    let grid = expand(&fracs, scale.chips());
    let cells = sweep_over(&grid, |_, &(frac, chip)| {
        // The bufferless (Trident-context) netlist: the guard interval
        // trades detector safety margin against the min-error
        // population the scheme must then avoid.
        let mut oracle = build_oracle(Corner::NTC, 970 + chip as u64, false, CH4_REGIME);
        let nominal = oracle.nominal_critical_delay_ps();
        let clock = ClockSpec {
            period_ps: nominal * CH4_REGIME.period_frac,
            hold_ps: nominal * frac,
        };
        let trace = TraceGenerator::new(Benchmark::Gap, 9).trace(scale.cycles() / 2);
        let p = profile_errors(&mut oracle, &trace, clock);
        (
            [
                p.class_count(ErrorClass::SingleMin) as f64,
                p.class_count(ErrorClass::SingleMax) as f64,
                p.class_count(ErrorClass::Consecutive) as f64,
            ],
            p.cycles as f64,
        )
    });
    let folded = fold_cells(
        grid.iter().map(|&(f, _)| f),
        cells,
        || ([0.0f64; 3], 0.0f64),
        |(counts, cycles), (cell_counts, cell_cycles)| {
            for (slot, c) in counts.iter_mut().zip(cell_counts) {
                *slot += c;
            }
            *cycles += cell_cycles;
        },
    );
    for (frac, (counts, cycles)) in folded {
        t.push_row(
            format!("hold={:.1}%", frac * 100.0),
            counts.iter().map(|c| 1000.0 * c / cycles).collect(),
        );
    }
    t
}

/// Adder-architecture ablation: choke susceptibility of ripple,
/// carry-select and Kogge–Stone adders of the same width under the same
/// fabrication draws. Deep serial structures average variation out over
/// many gates; shallow parallel ones hand each gate more leverage — the
/// structural side of the choke-point story.
pub fn adder_architecture(scale: Scale) -> ResultTable {
    use ntc_netlist::generators::adder;
    use ntc_netlist::Builder;
    use ntc_timing::{DynamicSim, StaticTiming};
    use ntc_varmodel::{ChipSignature, VariationParams};
    use ntc_varmodel::rng::SplitMix64;

    let width = 32;
    let build = |kind: u8| {
        let mut b = Builder::new();
        let a = b.input_bus("a", width);
        let x = b.input_bus("x", width);
        let cin = b.input("cin");
        let out = match kind {
            0 => adder::ripple_carry(&mut b, &a, &x, cin),
            1 => adder::carry_select(&mut b, &a, &x, cin, 4),
            _ => adder::kogge_stone(&mut b, &a, &x, cin),
        };
        b.output_bus("sum", &out.sum);
        b.output("cout", out.cout);
        b.finish()
    };

    let mut t = ResultTable::new(
        "abl.adder",
        "Adder architecture vs choke susceptibility at NTC",
        ["depth", "gates", "crit spread", "worst overshoot %"],
    );
    let chips = scale.chips().max(3);
    for (name, kind) in [("ripple", 0u8), ("carry-select", 1), ("kogge-stone", 2)] {
        let nl = build(kind);
        let nominal = ChipSignature::nominal(&nl, Corner::NTC);
        let d_nom = StaticTiming::analyze(&nl, &nominal).critical_delay_ps(&nl);
        let mut rng = SplitMix64::seed_from_u64(77);
        let vectors: Vec<(u64, u64)> = (0..scale.circuit_samples())
            .map(|_| (rng.gen_u64() & 0xFFFF_FFFF, rng.gen_u64() & 0xFFFF_FFFF))
            .collect();
        // One sweep task per fabricated chip; per-chip worst cases merge
        // with max — order-independent, hence bit-identical at any thread
        // count.
        let per_chip = sweep(chips, |chip| {
            let sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), chip as u64);
            let chip_static = StaticTiming::analyze(&nl, &sig).critical_delay_ps(&nl) / d_nom;
            let mut chip_dyn: f64 = 0.0;
            let mut sim = DynamicSim::new(&nl, &sig);
            let encode = |a: u64, x: u64| {
                let mut pis: Vec<bool> = (0..width).map(|i| (a >> i) & 1 == 1).collect();
                pis.extend((0..width).map(|i| (x >> i) & 1 == 1));
                pis.push(false);
                pis
            };
            for &(a, x) in &vectors {
                let timing = sim.simulate_pair_minmax(&encode(0, 0), &encode(a, x));
                if let Some(d) = timing.max_ps {
                    chip_dyn = chip_dyn.max(100.0 * (d - d_nom) / d_nom);
                }
            }
            (chip_static, chip_dyn)
        });
        let mut worst_static: f64 = 0.0;
        let mut worst_dyn: f64 = 0.0;
        for (s, d) in per_chip {
            worst_static = worst_static.max(s);
            worst_dyn = worst_dyn.max(d);
        }
        t.push_row(
            name,
            vec![
                nl.max_depth() as f64,
                nl.logic_gate_count() as f64,
                worst_static,
                worst_dyn,
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_tags_collapse_information() {
        let tag = ErrorTag {
            opcode: 3,
            owm: true,
            prev_opcode: 7,
            prev_owm: false,
        };
        let other = ErrorTag {
            opcode: 3,
            owm: true,
            prev_opcode: 9,
            prev_owm: true,
        };
        assert_eq!(reduce(tag, 0), reduce(other, 0));
        assert_eq!(reduce(tag, 1), reduce(other, 1));
        assert_ne!(reduce(tag, 2), reduce(other, 2));
        assert_ne!(reduce(tag, 3), reduce(other, 3));
    }

    #[test]
    fn fifo_and_random_respect_capacity() {
        for policy in [Policy::Fifo, Policy::Random] {
            let mut s = AblatedDcs::new(3, policy, 4);
            for i in 0..10u8 {
                s.record(ReducedTag::Opcode(i));
            }
            assert!(s.fifo.len() <= 4);
        }
    }
}
