//! Per-run counter attribution.
//!
//! The process-wide instrumentation counters (sweep busy/wall time,
//! oracle invocation mix, grid-cache traffic) are drained by the `repro`
//! binary once per experiment — fine for a CLI that runs one experiment
//! at a time, useless for a server that runs several jobs concurrently
//! and wants to bill each one for exactly the work it caused.
//!
//! [`with_counter_scope`] closes that gap: it installs a fresh
//! attribution scope on the calling thread for the duration of a
//! closure and returns the closure's result together with the
//! [`ScopedCounters`] that accumulated inside. Scopes *mirror* the
//! global counters rather than replace them, so `repro`'s drain-based
//! reporting is unaffected, and the sweep engine forwards the oracle
//! scope into its worker threads so fanned-out work is still
//! attributed to the job that requested it.

use crate::cache::{set_cache_scope, CacheScope, CacheStats};
use crate::runner::{set_sweep_scope, SweepScope, SweepStats};
use ntc_core::{set_oracle_scope, OracleScope, OracleStats};
use std::sync::Arc;

/// Everything a single scoped run accumulated: sweep time, oracle
/// invocation mix (including the STA screen layer), and grid-cache
/// traffic.
#[derive(Debug, Clone)]
pub struct ScopedCounters {
    /// Busy/wall time spent inside [`crate::runner::sweep`] calls.
    pub sweep: SweepStats,
    /// Timing-oracle and STA-screen invocation counts.
    pub oracle: OracleStats,
    /// Grid-cache hits, misses, evictions, and bytes written.
    pub cache: CacheStats,
}

/// Restores the previously installed scopes when dropped, so nesting
/// and panics both unwind cleanly.
struct ScopeGuard {
    prev_sweep: Option<Arc<SweepScope>>,
    prev_oracle: Option<Arc<OracleScope>>,
    prev_cache: Option<Arc<CacheScope>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        set_sweep_scope(self.prev_sweep.take());
        set_oracle_scope(self.prev_oracle.take());
        set_cache_scope(self.prev_cache.take());
    }
}

/// Run `f` with fresh attribution scopes installed on this thread and
/// return its result alongside the counters the run accumulated.
///
/// The global counters still tick (and can still be drained) exactly as
/// without the scope; the returned snapshot is this run's share of
/// them. Previously installed scopes are restored on exit, including on
/// panic.
pub fn with_counter_scope<T>(f: impl FnOnce() -> T) -> (T, ScopedCounters) {
    let sweep = Arc::new(SweepScope::default());
    let oracle = Arc::new(OracleScope::default());
    let cache = Arc::new(CacheScope::default());
    let _guard = ScopeGuard {
        prev_sweep: set_sweep_scope(Some(sweep.clone())),
        prev_oracle: set_oracle_scope(Some(oracle.clone())),
        prev_cache: set_cache_scope(Some(cache.clone())),
    };
    let out = f();
    let counters = ScopedCounters {
        sweep: sweep.snapshot(),
        oracle: oracle.snapshot(),
        cache: cache.snapshot(),
    };
    (out, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::current_sweep_scope;

    #[test]
    fn scope_restores_previous_on_exit() {
        let outer = Arc::new(SweepScope::default());
        let prev = set_sweep_scope(Some(outer.clone()));
        let ((), counters) = with_counter_scope(|| {
            // Inside, the fresh scope is installed, not `outer`.
            assert!(!Arc::ptr_eq(&current_sweep_scope().unwrap(), &outer));
        });
        assert!(Arc::ptr_eq(&current_sweep_scope().unwrap(), &outer));
        assert_eq!(counters.sweep.busy.as_nanos(), 0);
        set_sweep_scope(prev);
    }

    #[test]
    fn sweep_time_lands_in_the_scope() {
        let ((), counters) = with_counter_scope(|| {
            let out = crate::runner::sweep(4, |i| i * 2);
            assert_eq!(out, vec![0, 2, 4, 6]);
        });
        // Wall time is measured with Instant, so even a trivial sweep
        // records a nonzero duration.
        assert!(counters.sweep.wall.as_nanos() > 0);
    }
}
