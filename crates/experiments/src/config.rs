//! Shared experiment configuration: clock selection, chip sampling and the
//! fast/full scale presets.
//!
//! Two clocking regimes mirror the two evaluation chapters:
//!
//! * **Ch. 3** runs a timing-speculative clock moderately below the
//!   nominal critical delay (errors on a few percent of cycles) and only
//!   the maximum-timing side matters;
//! * **Ch. 4** runs a more aggressive clock *and* a tight hold window, so
//!   choke-induced minimum violations (choke buffers) appear alongside the
//!   maximum violations.

use ntc_core::tag_delay::{OracleConfig, SharedDelayCache, TagDelayOracle};
use ntc_netlist::buffer_insertion::insert_hold_buffers;
use ntc_netlist::generators::alu::Alu;
use ntc_netlist::Netlist;
use ntc_timing::{ClockSpec, IncrementalTiming, ScreenBounds, StaticTiming};
use ntc_varmodel::{ChipSignature, Corner, OperatingPoint, VariationParams};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide opt-out of the conservative timing screen (the fast tier
/// of the two-tier oracle). Results are bit-identical either way; only
/// the number of exact gate-level simulations changes.
static SCREEN_DISABLED: AtomicBool = AtomicBool::new(false);

/// Disable (or re-enable) the timing screen for every oracle built after
/// this call — the `repro --no-screen` escape hatch. Mirrors
/// [`crate::cache::set_disabled`].
pub fn set_screen_disabled(disabled: bool) {
    SCREEN_DISABLED.store(disabled, Ordering::Relaxed);
}

/// True when the screen is off, via [`set_screen_disabled`] or the
/// `NTC_SCREEN=off` (or `0`) environment variable.
pub fn screen_disabled() -> bool {
    SCREEN_DISABLED.load(Ordering::Relaxed)
        || std::env::var("NTC_SCREEN").is_ok_and(|v| v == "off" || v == "0")
}

/// Process-wide opt-out of incremental STA re-timing: chip blanks fall
/// back to a from-scratch [`StaticTiming::analyze`] + full
/// [`ScreenBounds::build`] per chip. Results are bit-identical either
/// way (the CI `cmp` gate proves it per release); only the static-analysis
/// cost changes.
static INCR_DISABLED: AtomicBool = AtomicBool::new(false);

/// Disable (or re-enable) incremental re-timing for every chip built
/// after this call — the `repro --no-incr` escape hatch. Mirrors
/// [`set_screen_disabled`].
pub fn set_incr_disabled(disabled: bool) {
    INCR_DISABLED.store(disabled, Ordering::Relaxed);
}

/// True when incremental re-timing is off, via [`set_incr_disabled`] or
/// the `NTC_INCR=off` (or `0`) environment variable.
pub fn incr_disabled() -> bool {
    INCR_DISABLED.load(Ordering::Relaxed)
        || std::env::var("NTC_INCR").is_ok_and(|v| v == "off" || v == "0")
}

/// Process-wide voltage roster for the grid-backed experiments: which
/// operating points the benchmark grids sweep. Empty means "unset" —
/// [`voltages`] then consults `NTC_VDD` and finally defaults to the NTC
/// corner alone, which keeps every legacy single-corner golden
/// byte-identical.
static VOLTAGES: Mutex<Vec<OperatingPoint>> = Mutex::new(Vec::new());

/// Select the operating points grid-backed experiments sweep — the
/// `repro --vdd` escape hatch. An empty list restores the default
/// (NTC only / `NTC_VDD`).
pub fn set_voltages(points: Vec<OperatingPoint>) {
    *VOLTAGES.lock().expect("voltage roster poisoned") = points;
}

/// The `NTC_VDD` environment roster, validated through the same parser
/// as `--vdd`: `Ok(None)` when the variable is unset, `Ok(Some(points))`
/// for a valid list, and `Err` with the parse message otherwise. Entry
/// points (the `repro` binary, the serve daemon) call this at startup so
/// a bad roster is a clean usage error — exit code 2, no backtrace — not
/// a mid-run panic.
///
/// # Errors
///
/// The [`parse_voltages`] message for an invalid or empty list.
pub fn env_voltages() -> Result<Option<Vec<OperatingPoint>>, String> {
    match std::env::var("NTC_VDD") {
        Ok(list) => parse_voltages(&list).map(Some).map_err(|e| format!("NTC_VDD: {e}")),
        Err(_) => Ok(None),
    }
}

/// The voltage axis for grid-backed experiments: the list given to
/// [`set_voltages`], else a valid `NTC_VDD` environment variable (a
/// comma-separated list of roster names, bare voltages, or the
/// `ntc`/`stc` aliases), else the NTC corner alone.
///
/// An *invalid* `NTC_VDD` is ignored here with a warning on stderr — the
/// entry points validate it up front via [`env_voltages`] and exit with
/// a usage error, so deep inside an experiment the only sound move left
/// is the safe default, never a panic (this used to `panic!` and take
/// the whole run down with a backtrace mid-sweep).
pub fn voltages() -> Vec<OperatingPoint> {
    {
        let set = VOLTAGES.lock().expect("voltage roster poisoned");
        if !set.is_empty() {
            return set.clone();
        }
    }
    match env_voltages() {
        Ok(Some(points)) => points,
        Ok(None) => vec![OperatingPoint::NTC],
        Err(e) => {
            eprintln!("warning: {e}; sweeping the NTC corner only");
            vec![OperatingPoint::NTC]
        }
    }
}

/// Process-wide trace source for the grid-backed experiments — which
/// [`TraceSource`] the figure runners put in their [`GridSpec`]s. The
/// default is the statistical generator, keeping every legacy run
/// byte-identical; `repro --trace-dir` (with `--record` / `--phases`)
/// selects the record/replay paths.
///
/// [`GridSpec`]: crate::scenario::GridSpec
static WORKLOAD_SOURCE: Mutex<Option<ntc_workload::TraceSource>> = Mutex::new(None);

/// Select the trace source grid-backed experiments use. `None` restores
/// the generator default.
pub fn set_workload_source(source: Option<ntc_workload::TraceSource>) {
    *WORKLOAD_SOURCE.lock().expect("workload source poisoned") = source;
}

/// The trace source in force ([`set_workload_source`], else the
/// statistical generator).
pub fn workload_source() -> ntc_workload::TraceSource {
    WORKLOAD_SOURCE
        .lock()
        .expect("workload source poisoned")
        .clone()
        .unwrap_or(ntc_workload::TraceSource::Generator)
}

/// Parse a comma-separated voltage list (`"0.45,v0.60,stc"`) into roster
/// points, deduplicating while preserving first-mention order.
///
/// # Errors
///
/// Returns the offending entry's [`ntc_varmodel::ParsePointError`] text,
/// or a message for an entirely empty list.
pub fn parse_voltages(list: &str) -> Result<Vec<OperatingPoint>, String> {
    let mut out = Vec::new();
    for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let p = OperatingPoint::parse(item).map_err(|e| e.to_string())?;
        if !out.contains(&p) {
            out.push(p);
        }
    }
    if out.is_empty() {
        return Err("empty voltage list".to_owned());
    }
    Ok(out)
}

/// How much work an experiment run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// CI-friendly: short traces, few chips. Shapes hold, noise is higher.
    Fast,
    /// Paper-scale: million-cycle traces, more chips.
    Full,
}

impl Scale {
    /// Trace length per benchmark run.
    pub fn cycles(self) -> usize {
        match self {
            Scale::Fast => 60_000,
            Scale::Full => 1_000_000,
        }
    }

    /// Fabricated chips averaged per experiment.
    pub fn chips(self) -> usize {
        match self {
            Scale::Fast => 2,
            Scale::Full => 5,
        }
    }

    /// Monte-Carlo samples for the circuit-level studies (operand pairs
    /// per operation, chips per corner).
    pub fn circuit_samples(self) -> usize {
        match self {
            Scale::Fast => 10,
            Scale::Full => 40,
        }
    }

    /// Chips for the circuit-level studies.
    pub fn circuit_chips(self) -> usize {
        match self {
            Scale::Fast => 6,
            Scale::Full => 24,
        }
    }
}

/// Clock fractions for one evaluation regime.
///
/// Two minimum-path constraints coexist because the two detector families
/// differ physically:
///
/// * double-sampling detectors (Razor, OCST, DCS) capture a shadow sample
///   roughly half a period after the main edge, so data must not change
///   before that window closes — a *large* min-path constraint that forces
///   design-time buffer padding (`hold_frac`);
/// * Trident's transition detector only needs a small guard interval
///   around the capture edge (`tdc_hold_frac`) — which is exactly why it
///   can abandon buffer insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockRegime {
    /// Clock period as a fraction of the nominal critical delay.
    pub period_frac: f64,
    /// Double-sampling (Razor-family) min-path constraint, as a fraction
    /// of the nominal critical delay. Buffer insertion pads to this.
    pub hold_frac: f64,
    /// Transition-detector (Trident) guard interval, same units.
    pub tdc_hold_frac: f64,
}

/// The Chapter-3 regime: timing-speculative clock slightly above the
/// nominal critical delay (PV-slow sensitized paths overshoot it on a few
/// percent of cycles). The min side is out of scope in Ch. 3, so the hold
/// constraints sit below every intrinsic short path.
pub const CH3_REGIME: ClockRegime = ClockRegime {
    period_frac: 1.10,
    hold_frac: 0.10,
    tdc_hold_frac: 0.10,
};

/// The Chapter-4 regime: a more aggressive clock, the Razor-family
/// shadow-latch window at ~38 % of the period (long buffer chains on every
/// short path — the raw material of choke buffers), and Trident's small
/// TDC guard interval.
pub const CH4_REGIME: ClockRegime = ClockRegime {
    period_frac: 0.95,
    hold_frac: 0.22,
    tdc_hold_frac: 0.14,
};

impl ClockRegime {
    /// The Razor-family clock: period plus the double-sampling hold window.
    pub fn clock(&self, nominal_critical_ps: f64) -> ClockSpec {
        ClockSpec {
            period_ps: nominal_critical_ps * self.period_frac,
            hold_ps: nominal_critical_ps * self.hold_frac,
        }
    }

    /// The Trident clock: same period, the TDC guard interval as the hold.
    pub fn tdc_clock(&self, nominal_critical_ps: f64) -> ClockSpec {
        ClockSpec {
            period_ps: nominal_critical_ps * self.period_frac,
            hold_ps: nominal_critical_ps * self.tdc_hold_frac,
        }
    }
}

/// Everything that is a pure function of one fabricated chip: its padded
/// (or bare) netlist, its fabricated signature, the delay table its
/// oracles fill in, the static-timing summaries every consumer needs, and
/// the screen's slack tables. Memoized so experiments sharing a chip
/// neither re-fabricate it, repeat each other's Phase-A gate simulations,
/// nor re-run static analysis per call site.
struct ChipBlank {
    netlist: Netlist,
    signature: ChipSignature,
    delays: SharedDelayCache,
    /// Nominal (PV-free) critical delay of this netlist variant.
    nominal_critical_ps: f64,
    /// Post-silicon static critical delay of this fabricated chip.
    static_critical_ps: f64,
    /// Conservative toggle-to-output bound tables for the screen.
    screen: Arc<ScreenBounds>,
}

/// Memo key: everything [`build_oracle`] folds into the chip. `vdd` and
/// `hold_frac` enter as bit patterns so custom corners (the voltage
/// sweep) and regimes hash exactly; the hold fraction shapes the buffered
/// netlist variant. The final component is the selective-hardening
/// count (0 = the stock chip).
type ChipKey = (u64, &'static str, u64, bool, u64, u64);

/// Two-level memo: the outer mutex only guards the key→cell map, while
/// each chip builds inside its own `OnceLock` — so two workers asking for
/// the *same* chip serialize on its cell, but *different* chips fabricate
/// concurrently.
type ChipCell = Arc<OnceLock<Arc<ChipBlank>>>;

static CHIP_BLANKS: OnceLock<Mutex<HashMap<ChipKey, ChipCell>>> = OnceLock::new();

/// Everything that is a pure function of one netlist *topology* — the
/// per-chip memo key minus the fabrication seed and the supply. All
/// chips of a sweep share the topology, so the netlist variant, its
/// per-corner nominal critical delays, and (crucially) the retained
/// incremental re-timing engine are hoisted here: chip→chip *and*
/// operating-point→operating-point the engine delta-propagates arrivals
/// and screen bounds instead of re-analyzing from scratch.
struct TopoState {
    netlist: Netlist,
    /// Nominal (PV-free) critical delay of this netlist variant, per
    /// supply voltage (keyed by the corner's vdd bit pattern). Filled
    /// lazily as operating points first appear on the sweep axis.
    nominal: Mutex<HashMap<u64, f64>>,
    /// Retained arrival + screen state of the most recently re-timed
    /// chip of this topology. Chips of one topology serialize here;
    /// different topologies re-time concurrently.
    engine: Mutex<IncrementalTiming>,
}

/// Topology memo key: the netlist variant is corner-free (see
/// [`build_topology`]), so only the variant selector and the hold
/// fraction that shapes buffer insertion remain.
type TopoKey = (bool, u64);

type TopoCell = Arc<OnceLock<Arc<TopoState>>>;

static TOPOLOGIES: OnceLock<Mutex<HashMap<TopoKey, TopoCell>>> = OnceLock::new();

/// Build (once) the netlist variant shared by every chip of a topology.
///
/// The netlist is **corner-free**: design-time hold fixing sees the cell
/// library's nominal delays, so the padding targets live in the nominal
/// design frame regardless of the supply the die later runs at. They are
/// derived here from the NTC corner's timing and divided back by its
/// delay factor — the same ratio every corner would give mathematically,
/// pinned to one corner so the division is bit-for-bit reproducible and
/// the whole voltage axis shares a single netlist (and one re-timing
/// engine).
fn build_topology(buffered: bool, regime: ClockRegime) -> Netlist {
    let alu = Alu::new(ntc_isa::ARCH_WIDTH);
    if !buffered {
        return alu.into_netlist();
    }
    // Design-time hold fixing pads every short path up to the constraint
    // using nominal delays within the setup slack; the resulting buffer
    // chains dominate the padded paths, which is precisely what
    // post-silicon choke buffers exploit.
    let frame = Corner::NTC;
    let bare_nominal = ChipSignature::nominal(alu.netlist(), frame);
    let bare_critical_ps =
        StaticTiming::analyze(alu.netlist(), &bare_nominal).critical_delay_ps(alu.netlist());
    let hold_design_frame = bare_critical_ps * regime.hold_frac / frame.delay_factor();
    let setup_design_frame = bare_critical_ps * 0.72 / frame.delay_factor();
    let (padded, _, _) = insert_hold_buffers(alu.netlist(), hold_design_frame, setup_design_frame);
    padded
}

fn topo_state(buffered: bool, regime: ClockRegime) -> Arc<TopoState> {
    let key: TopoKey = (buffered, regime.hold_frac.to_bits());
    let cell = {
        let mut map = TOPOLOGIES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("topology memo poisoned");
        map.entry(key).or_default().clone()
    };
    cell.get_or_init(|| {
        Arc::new(TopoState {
            netlist: build_topology(buffered, regime),
            nominal: Mutex::new(HashMap::new()),
            engine: Mutex::new(IncrementalTiming::new()),
        })
    })
    .clone()
}

/// The nominal (PV-free) critical delay of a topology at one supply,
/// computed on first request per corner and memoized — the anchor every
/// clock of a study hangs off.
fn topo_nominal(topo: &TopoState, corner: Corner) -> f64 {
    let mut map = topo.nominal.lock().expect("nominal memo poisoned");
    *map.entry(corner.vdd.to_bits()).or_insert_with(|| {
        let nominal = ChipSignature::nominal(&topo.netlist, corner);
        StaticTiming::analyze(&topo.netlist, &nominal).critical_delay_ps(&topo.netlist)
    })
}

fn variation_params(corner: Corner) -> VariationParams {
    // Variation amplification is a near-threshold effect: points in the
    // upper part of the roster behave like the super-threshold corner
    // (same policy the voltage-sweep extension applies to its custom
    // corners).
    if corner.vdd > 0.7 {
        VariationParams::stc()
    } else {
        VariationParams::ntc()
    }
}

fn chip_blank(
    corner: Corner,
    seed: u64,
    buffered: bool,
    regime: ClockRegime,
    hardened: usize,
) -> Arc<ChipBlank> {
    let key: ChipKey = (
        corner.vdd.to_bits(),
        corner.name,
        seed,
        buffered,
        regime.hold_frac.to_bits(),
        hardened as u64,
    );
    let cell = {
        let mut map = CHIP_BLANKS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("chip memo poisoned");
        map.entry(key).or_default().clone()
    };
    cell.get_or_init(|| {
        let topo = topo_state(buffered, regime);
        let nominal_critical_ps = topo_nominal(&topo, corner);
        let mut signature =
            ChipSignature::fabricate(&topo.netlist, corner, variation_params(corner), seed);
        if hardened > 0 {
            // Selective hardening: the top-k slowest choke gates (by
            // delay multiplier, slowest first; stable on index for ties)
            // are de-rated to their nominal delay, modeling upsized or
            // body-biased cells at exactly those sites.
            let mut slow = signature.slow_choke_gates();
            slow.sort_by(|&a, &b| {
                signature
                    .multiplier(b)
                    .partial_cmp(&signature.multiplier(a))
                    .expect("finite multipliers")
            });
            slow.truncate(hardened);
            signature.inject_choke(&slow, 1.0);
        }
        // One static analysis per chip, hoisted here from the per-call
        // accessors — and for every chip of a topology after the first,
        // not even that: the retained engine re-times the delay delta,
        // chip→chip and operating-point→operating-point alike (the
        // voltage axis shares the topology, so a supply move is just
        // another delta), updating arrivals and screen tables in place.
        // Both paths
        // are bit-identical (the engine recomputes through the exact same
        // per-gate folds), so `--no-incr` only changes the cost.
        let (static_critical_ps, screen) = if incr_disabled() {
            let sta = StaticTiming::analyze(&topo.netlist, &signature);
            let static_critical_ps = sta.critical_delay_ps(&topo.netlist);
            let screen = Arc::new(ScreenBounds::build(&topo.netlist, &signature, &sta));
            (static_critical_ps, screen)
        } else {
            let mut engine = topo.engine.lock().expect("timing engine poisoned");
            engine.retime(&topo.netlist, &signature);
            let screen = match engine.screen_bounds() {
                Some(b) => Arc::new(b.clone()),
                // `retime` always seeds the tables; this arm is the
                // recoverable fallback should that invariant ever move.
                None => Arc::new(ScreenBounds::build(
                    &topo.netlist,
                    &signature,
                    engine.timing(),
                )),
            };
            (engine.timing().critical_delay_ps(&topo.netlist), screen)
        };
        Arc::new(ChipBlank {
            netlist: topo.netlist.clone(),
            signature,
            delays: SharedDelayCache::default(),
            nominal_critical_ps,
            static_critical_ps,
            screen,
        })
    })
    .clone()
}

/// Build a delay oracle for one chip of the study.
///
/// `buffered` selects the hold-fixed netlist variant (Razor-lineage
/// schemes) vs. the bare ALU (Trident). The hold constraint handed to the
/// design-time buffer inserter is the Ch. 4 regime's hold window expressed
/// in the cell library's nominal (STC) delay frame — design-time tools see
/// nominal delays, which is exactly why post-silicon choke buffers defeat
/// the fix.
///
/// Chips are memoized per `(corner, seed, buffered, hold_frac)`: repeat
/// calls clone the fabricated netlist/signature instead of re-running
/// buffer insertion and fabrication, and every oracle for the same chip
/// shares one [`SharedDelayCache`], so experiments reuse each other's
/// Phase-A gate simulations. Results are bit-identical either way — the
/// delay table is a pure function of the chip (see
/// [`ntc_core::tag_delay::SharedDelayCache`]).
/// Oracles also carry the chip's memoized critical delays (so the
/// accessors stop re-running static analysis) and — unless
/// [`set_screen_disabled`]`(true)` or `NTC_SCREEN=off` is in force — the
/// chip's conservative timing screen (armed per run at the run's own
/// clock by `run_scheme`/`profile_errors`).
pub fn build_oracle(corner: Corner, seed: u64, buffered: bool, regime: ClockRegime) -> TagDelayOracle {
    oracle_from_blank(chip_blank(corner, seed, buffered, regime, 0))
}

/// [`build_oracle`] for a selectively-hardened variant of the same chip:
/// fabrication is identical, then the `top_k` slowest choke gates are
/// de-rated to their nominal delay before static analysis — the
/// `harden-choke` ablation's what-if silicon. Hardened variants are
/// memoized alongside the stock blanks (distinct memo key), so they
/// share nothing with — and never perturb — the stock chip's delay
/// tables.
pub fn build_hardened_oracle(
    corner: Corner,
    seed: u64,
    buffered: bool,
    regime: ClockRegime,
    top_k: usize,
) -> TagDelayOracle {
    assert!(top_k > 0, "a hardened chip de-rates at least one gate");
    oracle_from_blank(chip_blank(corner, seed, buffered, regime, top_k))
}

fn oracle_from_blank(blank: Arc<ChipBlank>) -> TagDelayOracle {
    let oracle = TagDelayOracle::new(
        blank.netlist.clone(),
        blank.signature.clone(),
        OracleConfig::default(),
    )
    .with_shared_cache(blank.delays.clone())
    .with_critical_delays(blank.nominal_critical_ps, blank.static_critical_ps);
    if screen_disabled() {
        oracle
    } else {
        oracle.with_screen(blank.screen.clone())
    }
}

/// Normalize a series against its first element (the figures normalize
/// everything to Razor).
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    let base = values.first().copied().unwrap_or(1.0);
    values
        .iter()
        .map(|v| if base != 0.0 { v / base } else { f64::NAN })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_scale_nominal_delay() {
        let c = CH3_REGIME.clock(1000.0);
        assert!((c.period_ps - 1000.0 * CH3_REGIME.period_frac).abs() < 1e-9);
        assert!((c.hold_ps - 1000.0 * CH3_REGIME.hold_frac).abs() < 1e-9);
        // Ch. 4 clocks more aggressively and imposes the Razor window.
        const { assert!(CH4_REGIME.period_frac < CH3_REGIME.period_frac) };
        const { assert!(CH4_REGIME.hold_frac > CH3_REGIME.hold_frac) };
        // The TDC guard interval is far smaller than the Razor window.
        const { assert!(CH4_REGIME.tdc_hold_frac < CH4_REGIME.hold_frac) };
        let t = CH4_REGIME.tdc_clock(1000.0);
        assert!(t.hold_ps < CH4_REGIME.clock(1000.0).hold_ps);
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_to_first(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert!(normalize_to_first(&[0.0, 1.0])[1].is_nan());
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Fast.cycles() < Scale::Full.cycles());
        assert!(Scale::Fast.chips() <= Scale::Full.chips());
    }

    #[test]
    fn voltage_lists_parse_dedup_and_reject() {
        let pts = parse_voltages("0.45, v0.60, stc, ntc, 0.60").unwrap();
        assert_eq!(
            pts,
            vec![
                OperatingPoint::NTC,
                OperatingPoint::parse("v0.60").unwrap(),
                OperatingPoint::STC,
            ]
        );
        assert!(parse_voltages("0.62").unwrap_err().contains("v0.45"));
        assert!(parse_voltages(" , ").unwrap_err().contains("empty"));
    }

    #[test]
    fn voltage_axis_defaults_to_ntc_and_honors_overrides() {
        // Unset (and no NTC_VDD in the test environment): NTC only.
        if std::env::var("NTC_VDD").is_err() {
            assert_eq!(voltages(), vec![OperatingPoint::NTC]);
        }
        let sweep = vec![OperatingPoint::NTC, OperatingPoint::STC];
        set_voltages(sweep.clone());
        assert_eq!(voltages(), sweep);
        set_voltages(Vec::new());
    }

    #[test]
    fn nominal_critical_delay_shrinks_with_supply() {
        // The per-corner nominal memo must order the roster the way the
        // alpha-power law does: higher supply, faster logic.
        let topo = topo_state(false, CH3_REGIME);
        let ntc = topo_nominal(&topo, OperatingPoint::NTC.corner());
        let mid = topo_nominal(&topo, OperatingPoint::parse("v0.60").unwrap().corner());
        let stc = topo_nominal(&topo, OperatingPoint::STC.corner());
        assert!(ntc > mid && mid > stc, "{ntc} > {mid} > {stc}");
        // Memoized: the second read is the same f64 to the bit.
        assert_eq!(ntc.to_bits(), topo_nominal(&topo, Corner::NTC).to_bits());
    }

    #[test]
    fn buffered_oracle_has_more_gates() {
        let plain = build_oracle(Corner::NTC, 1, false, CH4_REGIME);
        let buffered = build_oracle(Corner::NTC, 1, true, CH4_REGIME);
        assert!(buffered.netlist().logic_gate_count() > plain.netlist().logic_gate_count());
    }

    #[test]
    fn hardened_chips_are_distinct_and_no_slower() {
        let stock = build_oracle(Corner::NTC, 7171, false, CH4_REGIME);
        let hard = build_hardened_oracle(Corner::NTC, 7171, false, CH4_REGIME, 8);
        // De-rating gates to nominal can only shrink static timing.
        assert!(hard.static_critical_delay_ps() <= stock.static_critical_delay_ps());
        // Distinct memo entries: the hardened blank must not have
        // replaced the stock chip's.
        let stock_again = build_oracle(Corner::NTC, 7171, false, CH4_REGIME);
        assert_eq!(
            stock_again.static_critical_delay_ps(),
            stock.static_critical_delay_ps()
        );
    }

    #[test]
    fn memoized_chips_share_their_delay_table() {
        use ntc_isa::{Instruction, Opcode};
        let prev = Instruction::new(Opcode::Addu, 0, 0);
        let cur = Instruction::new(Opcode::Addu, u64::MAX, 1);
        let mut first = build_oracle(Corner::NTC, 4242, false, CH3_REGIME);
        let d = first.delays(&prev, &cur);
        // A second oracle for the same chip answers from the shared table
        // without a single gate-level simulation of its own…
        let mut second = build_oracle(Corner::NTC, 4242, false, CH3_REGIME);
        assert_eq!(second.delays(&prev, &cur), d);
        assert_eq!(second.gate_sim_count(), 0, "warm via the shared cache");
        // …while a different chip gets its own blank and simulates.
        let mut other = build_oracle(Corner::NTC, 4243, false, CH3_REGIME);
        let _ = other.delays(&prev, &cur);
        assert_eq!(other.gate_sim_count(), 1);
    }
}
