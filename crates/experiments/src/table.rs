//! Result tables: the common output format of every experiment runner,
//! printable as an aligned text table and writable as CSV.

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// A named table of rows × numeric columns, mirroring one paper figure or
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Experiment identifier, e.g. `"fig3.10"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// Rows: label + one value per column (`NaN` renders as `-`).
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// Create an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ResultTable {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Look up a cell by row label and column name.
    pub fn cell(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, values) = self.rows.iter().find(|(l, _)| l == row)?;
        values.get(c).copied()
    }

    /// Mean of one column over all rows (ignoring NaN cells).
    pub fn column_mean(&self, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|(_, v)| v.get(c).copied())
            .filter(|v| v.is_finite())
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Write the table as CSV.
    ///
    /// Labels and headers are quoted per RFC 4180 when they contain a
    /// comma, double quote, or line break, so a benchmark label like
    /// `alu,dense` round-trips instead of corrupting the row. Plain
    /// fields are written verbatim — existing golden CSVs are unchanged.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "label")?;
        for c in &self.columns {
            write!(w, ",{}", csv_field(c))?;
        }
        writeln!(w)?;
        for (label, values) in &self.rows {
            write!(w, "{}", csv_field(label))?;
            for v in values {
                if v.is_finite() {
                    write!(w, ",{v}")?;
                } else {
                    write!(w, ",")?;
                }
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Save the table as `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (directory creation, file write).
    pub fn save_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id.replace('.', "_")));
        let f = std::fs::File::create(&path)?;
        self.write_csv(io::BufWriter::new(f))?;
        Ok(path)
    }
}

/// Escape one CSV field per RFC 4180: wrap in double quotes (doubling any
/// embedded quote) iff the text contains a comma, quote, or line break;
/// return it borrowed and verbatim otherwise.
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([5])
            .max()
            .unwrap_or(5);
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(9)).collect();
        write!(f, "{:label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for (v, w) in values.iter().zip(&col_w) {
                if v.is_finite() {
                    write!(f, "  {v:>w$.3}")?;
                } else {
                    write!(f, "  {:>w$}", "-")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("fig0.0", "Sample", ["a", "b"]);
        t.push_row("r1", vec![1.0, 2.0]);
        t.push_row("r2", vec![3.0, f64::NAN]);
        t
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell("r1", "b"), Some(2.0));
        assert_eq!(t.cell("r9", "b"), None);
        assert_eq!(t.cell("r1", "z"), None);
    }

    #[test]
    fn column_mean_skips_nan() {
        let t = sample();
        assert_eq!(t.column_mean("a"), Some(2.0));
        assert_eq!(t.column_mean("b"), Some(2.0));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).expect("write to vec");
        let s = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "label,a,b");
        assert_eq!(lines[1], "r1,1,2");
        assert_eq!(lines[2], "r2,3,");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }

    /// Split one RFC 4180 CSV record back into its fields — the consumer
    /// side of the quoting contract `write_csv` promises.
    fn parse_csv_record(line: &str) -> Vec<String> {
        let mut fields = vec![String::new()];
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            let cur = fields.last_mut().expect("at least one field");
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if cur.is_empty() => quoted = true,
                ',' if !quoted => fields.push(String::new()),
                c => cur.push(c),
            }
        }
        fields
    }

    #[test]
    fn special_labels_and_headers_are_quoted() {
        let mut t = ResultTable::new("fig0.1", "Quoting", ["plain", "a,b", "say \"hi\""]);
        t.push_row("alu,dense", vec![1.0, 2.0, 3.0]);
        t.push_row("multi\nline", vec![4.0, 5.0, 6.0]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).expect("write to vec");
        let s = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "label,plain,\"a,b\",\"say \"\"hi\"\"\"");
        assert_eq!(lines[1], "\"alu,dense\",1,2,3");
        // Round-trip: a conforming CSV reader recovers the original texts.
        assert_eq!(
            parse_csv_record(lines[0]),
            vec!["label", "plain", "a,b", "say \"hi\""]
        );
        assert_eq!(
            parse_csv_record(lines[1]),
            vec!["alu,dense", "1", "2", "3"]
        );
    }

    #[test]
    fn plain_labels_stay_verbatim() {
        // Golden-CSV compatibility: quoting must not touch ordinary fields.
        let mut buf = Vec::new();
        sample().write_csv(&mut buf).expect("write to vec");
        let s = String::from_utf8(buf).expect("utf8");
        assert!(!s.contains('"'), "no quotes introduced: {s}");
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", sample());
        assert!(s.contains("fig0.0"));
        assert!(s.contains("r1"));
    }
}
