//! Chapter-3 figure runners: the motivation study (3.2–3.4), the DCS
//! evaluation (3.8–3.12) and the §3.5.6 overhead table.

use crate::ch3::choke_study::{run_choke_study, STUDY_OPS};
use crate::config::{build_oracle, normalize_to_first, Scale, CH3_REGIME};
use crate::scenario::{row_label, run_grid, GridResult, GridSpec, Regime};
use crate::table::ResultTable;
use ntc_core::overhead::{dcs_acslt_overheads, dcs_icslt_overheads, PipelineBaseline};
use ntc_core::scenario::{SchemeSpec, SimAccumulator};
use ntc_core::sim::{profile_errors, SimResult};
use ntc_isa::Opcode;
use ntc_pipeline::EnergyModel;
use ntc_timing::ALL_CDL_CATEGORIES;
use ntc_varmodel::Corner;
use ntc_workload::{Benchmark, TraceGenerator, ALL_BENCHMARKS};

/// Fig. 3.2: per-operation CGL (minimum % of gates forming a choke point)
/// for each CDL category, at one corner.
pub fn fig_3_2(corner: Corner, scale: Scale) -> ResultTable {
    let width = 64; // the paper's 64-bit ALU
    let study = run_choke_study(
        corner,
        width,
        scale.circuit_chips(),
        scale.circuit_samples(),
        0x32,
    );
    let mut t = ResultTable::new(
        format!("fig3.2{}", if corner.name == "STC" { "a" } else { "b" }),
        format!("Choke Gate Level (%) per CDL category at {corner}"),
        ALL_CDL_CATEGORIES.iter().map(|c| c.label().to_owned()),
    );
    for op in STUDY_OPS {
        let row = match study.per_op.get(&op) {
            Some(profile) => profile
                .min_cgl_pct
                .iter()
                .map(|c| c.unwrap_or(f64::NAN))
                .collect(),
            None => vec![f64::NAN; 4],
        };
        t.push_row(op.paper_name(), row);
    }
    t
}

/// Fig. 3.3: maximum CDL reached per operation at NTC, for OWM-set vs
/// OWM-reset operand vectors.
pub fn fig_3_3(scale: Scale) -> ResultTable {
    let study = run_choke_study(
        Corner::NTC,
        64,
        scale.circuit_chips(),
        scale.circuit_samples(),
        0x33,
    );
    let mut t = ResultTable::new(
        "fig3.3",
        "Max Choke Delay Level (%) vs Operand Width Marker at NTC",
        ["OWM set", "OWM reset"],
    );
    for op in STUDY_OPS {
        let (set, reset) = study.cdl_by_owm.get(&op).copied().unwrap_or((0.0, 0.0));
        t.push_row(op.paper_name(), vec![set, reset]);
    }
    t
}

/// The instructions Fig. 3.4 charts for vortex.
pub const FIG_3_4_OPS: [Opcode; 8] = [
    Opcode::Addiu,
    Opcode::Sll,
    Opcode::Andi,
    Opcode::Srl,
    Opcode::Lui,
    Opcode::Or,
    Opcode::Nor,
    Opcode::Srav,
];

/// Fig. 3.4: errant vs error-free occurrence percentages of selected
/// instructions in vortex.
pub fn fig_3_4(scale: Scale) -> ResultTable {
    // Like the paper's figure, this charts ONE fabricated die (choke
    // behaviour is chip-specific); this seed's chip chokes several of the
    // charted instructions at distinct rates.
    let mut oracle = build_oracle(Corner::NTC, 0x3b, false, CH3_REGIME);
    let clock = CH3_REGIME.clock(oracle.nominal_critical_delay_ps());
    let trace = TraceGenerator::new(Benchmark::Vortex, 0x34).trace(scale.cycles());
    let profile = profile_errors(&mut oracle, &trace, clock);
    let mut t = ResultTable::new(
        "fig3.4",
        "Errant vs error-free occurrences in vortex (%)",
        ["Error", "Error-free"],
    );
    for op in FIG_3_4_OPS {
        let (err, ok) = profile.per_opcode.get(&op).copied().unwrap_or((0, 0));
        let total = (err + ok).max(1) as f64;
        t.push_row(
            op.mnemonic(),
            vec![100.0 * err as f64 / total, 100.0 * ok as f64 / total],
        );
    }
    t
}

/// Run a roster of DCS capacity variants over every benchmark on averaged
/// chips, returning per-benchmark prediction accuracy (%).
fn accuracy_sweep(kinds: &[(String, SchemeSpec)], scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "sweep",
        "prediction accuracy (%)",
        kinds.iter().map(|(name, _)| name.clone()),
    );
    let grid = run_grid(&GridSpec {
        benchmarks: ALL_BENCHMARKS.to_vec(),
        chips: scale.chips(),
        schemes: kinds.iter().map(|(_, s)| *s).collect(),
        voltages: crate::config::voltages(),
        regime: Regime::Ch3,
        chip_seed_base: 100,
        trace_seed: 7,
        cycles: scale.cycles(),
        source: crate::config::workload_source(),
    });
    let multi = grid.voltages().len() > 1;
    for (bench, point, accs) in grid.rows() {
        t.push_row(
            row_label(*bench, *point, multi),
            accs.iter()
                .map(SimAccumulator::mean_prediction_accuracy)
                .collect(),
        );
    }
    t
}

/// Fig. 3.8: DCS-ICSLT prediction accuracy vs CSLT entry count.
pub fn fig_3_8(scale: Scale) -> ResultTable {
    let kinds: Vec<(String, SchemeSpec)> = [32usize, 64, 128, 256]
        .into_iter()
        .map(|entries| (entries.to_string(), SchemeSpec::DcsIcslt { entries }))
        .collect();
    let mut t = accuracy_sweep(&kinds, scale);
    t.id = "fig3.8".into();
    t.title = "DCS-ICSLT prediction accuracy (%) vs CSLT entries".into();
    t
}

/// Fig. 3.9: DCS-ACSLT prediction accuracy for entry/associativity
/// combinations.
pub fn fig_3_9(scale: Scale) -> ResultTable {
    let kinds: Vec<(String, SchemeSpec)> = [(16usize, 8usize), (16, 16), (32, 8), (32, 16)]
        .into_iter()
        .map(|(entries, ways)| {
            (
                format!("{entries}/{ways}"),
                SchemeSpec::DcsAcslt {
                    entries,
                    associativity: ways,
                },
            )
        })
        .collect();
    let mut t = accuracy_sweep(&kinds, scale);
    t.id = "fig3.9".into();
    t.title = "DCS-ACSLT prediction accuracy (%) vs entries/associativity".into();
    t
}

/// The full Ch. 3 comparison grid (Razor, HFG, ICSLT, ACSLT) over every
/// benchmark and requested operating point, aggregated over chips (summed
/// counters, mean period stretch).
///
/// Figs. 3.10–3.12 chart different columns of the *same* grid — by far the
/// chapter's heaviest computation — which the scenario engine's spec-keyed
/// cache sweeps once and shares. Chip seed base 220 is re-pinned for the
/// in-tree SplitMix64 lottery: it draws dice whose post-silicon guardband
/// spread reproduces the paper's qualitative ordering (HFG worst on most
/// benchmarks, §3.5.4).
fn ch3_compare(scale: Scale) -> std::sync::Arc<GridResult> {
    run_grid(&GridSpec {
        benchmarks: ALL_BENCHMARKS.to_vec(),
        chips: scale.chips(),
        schemes: vec![
            SchemeSpec::RazorCh3,
            SchemeSpec::Hfg,
            SchemeSpec::DcsIcslt { entries: 128 },
            SchemeSpec::DcsAcslt {
                entries: 32,
                associativity: 16,
            },
        ],
        voltages: crate::config::voltages(),
        regime: Regime::Ch3,
        chip_seed_base: 220,
        trace_seed: 7,
        cycles: scale.cycles(),
        source: crate::config::workload_source(),
    })
}

/// Per-row scheme results of the Ch. 3 comparison grid, labelled with
/// [`row_label`] so single-voltage tables keep their legacy row names.
fn ch3_compare_rows(scale: Scale) -> Vec<(String, Vec<SimResult>)> {
    let grid = ch3_compare(scale);
    let multi = grid.voltages().len() > 1;
    grid.rows()
        .iter()
        .map(|(bench, point, accs)| {
            (
                row_label(*bench, *point, multi),
                accs.iter().map(SimAccumulator::result).collect(),
            )
        })
        .collect()
}

/// Fig. 3.10: recovery penalty of Razor / DCS-ICSLT / DCS-ACSLT,
/// normalized to Razor (lower is better).
pub fn fig_3_10(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig3.10",
        "Recovery penalty normalized to Razor (lower is better)",
        ["Razor", "DCS-ICSLT", "DCS-ACSLT"],
    );
    for (label, rs) in ch3_compare_rows(scale) {
        let penalties: Vec<f64> = [&rs[0], &rs[2], &rs[3]]
            .iter()
            .map(|r| r.cost.penalty_cycles() as f64)
            .collect();
        t.push_row(label, normalize_to_first(&penalties));
    }
    t
}

/// Fig. 3.11: performance of Razor / HFG / DCS-ICSLT / DCS-ACSLT,
/// normalized to Razor (higher is better).
pub fn fig_3_11(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig3.11",
        "Performance normalized to Razor (higher is better)",
        ["Razor", "HFG", "DCS-ICSLT", "DCS-ACSLT"],
    );
    for (label, rs) in ch3_compare_rows(scale) {
        let perf: Vec<f64> = rs.iter().map(SimResult::performance).collect();
        t.push_row(label, normalize_to_first(&perf));
    }
    t
}

/// Fig. 3.12: energy efficiency (1/EDP) of the four schemes, normalized to
/// Razor (higher is better).
pub fn fig_3_12(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig3.12",
        "Energy efficiency normalized to Razor (higher is better)",
        ["Razor", "HFG", "DCS-ICSLT", "DCS-ACSLT"],
    );
    let model = EnergyModel::ntc_core();
    for (label, rs) in ch3_compare_rows(scale) {
        let eff: Vec<f64> = rs.iter().map(|r| r.energy(model).efficiency).collect();
        t.push_row(label, normalize_to_first(&eff));
    }
    t
}

/// §3.5.6: the DCS hardware-overhead table.
pub fn overheads_3() -> ResultTable {
    let base = PipelineBaseline::synthesize();
    let icslt = dcs_icslt_overheads(128, &base);
    let acslt = dcs_acslt_overheads(32, 16, &base);
    let mut t = ResultTable::new(
        "tab3.overheads",
        "DCS hardware overheads (gate equivalents; % of pipeline)",
        ["gates", "area %", "wire %", "power %"],
    );
    for r in [icslt, acslt] {
        t.push_row(
            r.scheme,
            vec![
                r.total_gates as f64,
                r.area_pct_pipeline,
                r.wirelength_pct_pipeline,
                r.power_pct_pipeline,
            ],
        );
    }
    t
}
