//! Chapter-3 figure runners: the motivation study (3.2–3.4), the DCS
//! evaluation (3.8–3.12) and the §3.5.6 overhead table.

use crate::ch3::choke_study::{run_choke_study, STUDY_OPS};
use crate::config::{build_oracle, normalize_to_first, ClockRegime, Scale, CH3_REGIME};
use crate::runner::{sweep_over};
use crate::table::ResultTable;
use ntc_core::baselines::{Hfg, Razor};
use ntc_core::dcs::{CsltKind, Dcs};
use ntc_core::overhead::{dcs_acslt_overheads, dcs_icslt_overheads, PipelineBaseline};
use ntc_core::sim::{profile_errors, run_scheme, SimResult};
use ntc_isa::Opcode;
use ntc_pipeline::{EnergyModel, Pipeline};
use ntc_timing::ALL_CDL_CATEGORIES;
use ntc_varmodel::Corner;
use ntc_workload::{Benchmark, TraceGenerator, ALL_BENCHMARKS};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Fig. 3.2: per-operation CGL (minimum % of gates forming a choke point)
/// for each CDL category, at one corner.
pub fn fig_3_2(corner: Corner, scale: Scale) -> ResultTable {
    let width = 64; // the paper's 64-bit ALU
    let study = run_choke_study(
        corner,
        width,
        scale.circuit_chips(),
        scale.circuit_samples(),
        0x32,
    );
    let mut t = ResultTable::new(
        format!("fig3.2{}", if corner.name == "STC" { "a" } else { "b" }),
        format!("Choke Gate Level (%) per CDL category at {corner}"),
        ALL_CDL_CATEGORIES.iter().map(|c| c.label().to_owned()),
    );
    for op in STUDY_OPS {
        let row = match study.per_op.get(&op) {
            Some(profile) => profile
                .min_cgl_pct
                .iter()
                .map(|c| c.unwrap_or(f64::NAN))
                .collect(),
            None => vec![f64::NAN; 4],
        };
        t.push_row(op.paper_name(), row);
    }
    t
}

/// Fig. 3.3: maximum CDL reached per operation at NTC, for OWM-set vs
/// OWM-reset operand vectors.
pub fn fig_3_3(scale: Scale) -> ResultTable {
    let study = run_choke_study(
        Corner::NTC,
        64,
        scale.circuit_chips(),
        scale.circuit_samples(),
        0x33,
    );
    let mut t = ResultTable::new(
        "fig3.3",
        "Max Choke Delay Level (%) vs Operand Width Marker at NTC",
        ["OWM set", "OWM reset"],
    );
    for op in STUDY_OPS {
        let (set, reset) = study.cdl_by_owm.get(&op).copied().unwrap_or((0.0, 0.0));
        t.push_row(op.paper_name(), vec![set, reset]);
    }
    t
}

/// The instructions Fig. 3.4 charts for vortex.
pub const FIG_3_4_OPS: [Opcode; 8] = [
    Opcode::Addiu,
    Opcode::Sll,
    Opcode::Andi,
    Opcode::Srl,
    Opcode::Lui,
    Opcode::Or,
    Opcode::Nor,
    Opcode::Srav,
];

/// Fig. 3.4: errant vs error-free occurrence percentages of selected
/// instructions in vortex.
pub fn fig_3_4(scale: Scale) -> ResultTable {
    // Like the paper's figure, this charts ONE fabricated die (choke
    // behaviour is chip-specific); this seed's chip chokes several of the
    // charted instructions at distinct rates.
    let mut oracle = build_oracle(Corner::NTC, 0x3b, false, CH3_REGIME);
    let clock = CH3_REGIME.clock(oracle.nominal_critical_delay_ps());
    let trace = TraceGenerator::new(Benchmark::Vortex, 0x34).trace(scale.cycles());
    let profile = profile_errors(&mut oracle, &trace, clock);
    let mut t = ResultTable::new(
        "fig3.4",
        "Errant vs error-free occurrences in vortex (%)",
        ["Error", "Error-free"],
    );
    for op in FIG_3_4_OPS {
        let (err, ok) = profile.per_opcode.get(&op).copied().unwrap_or((0, 0));
        let total = (err + ok).max(1) as f64;
        t.push_row(
            op.mnemonic(),
            vec![100.0 * err as f64 / total, 100.0 * ok as f64 / total],
        );
    }
    t
}

/// Run one DCS variant over every benchmark on averaged chips, returning
/// per-benchmark prediction accuracy (%).
fn accuracy_sweep(kinds: &[(String, CsltKind)], scale: Scale, regime: ClockRegime) -> ResultTable {
    let mut t = ResultTable::new(
        "sweep",
        "prediction accuracy (%)",
        kinds.iter().map(|(name, _)| name.clone()),
    );
    // One sweep task per (benchmark × chip) cell; the accuracy sums below
    // fold the returned grid in the exact order of the old nested loops
    // (chips ascending within each benchmark), so the floating-point
    // averages are bit-identical at any thread count.
    let grid: Vec<(Benchmark, usize)> = ALL_BENCHMARKS
        .iter()
        .flat_map(|&b| (0..scale.chips()).map(move |c| (b, c)))
        .collect();
    let cells = sweep_over(&grid, |_, &(bench, chip)| {
        let mut oracle = build_oracle(Corner::NTC, 100 + chip as u64, false, regime);
        let clock = regime.clock(oracle.nominal_critical_delay_ps());
        let trace = TraceGenerator::new(bench, 7).trace(scale.cycles());
        kinds
            .iter()
            .map(|(_, kind)| {
                let mut dcs = Dcs::new(*kind);
                run_scheme(&mut dcs, &mut oracle, &trace, clock, Pipeline::core1())
                    .prediction_accuracy()
            })
            .collect::<Vec<f64>>()
    });
    let mut rows: HashMap<Benchmark, Vec<f64>> = HashMap::new();
    for ((bench, _), accs) in grid.iter().zip(cells) {
        let row = rows.entry(*bench).or_insert_with(|| vec![0.0; kinds.len()]);
        for (slot, a) in row.iter_mut().zip(accs) {
            *slot += a;
        }
    }
    for bench in ALL_BENCHMARKS {
        let mut row = rows.remove(&bench).expect("every benchmark swept");
        for v in &mut row {
            *v /= scale.chips() as f64;
        }
        t.push_row(bench.name(), row);
    }
    t
}

/// Fig. 3.8: DCS-ICSLT prediction accuracy vs CSLT entry count.
pub fn fig_3_8(scale: Scale) -> ResultTable {
    let kinds: Vec<(String, CsltKind)> = [32usize, 64, 128, 256]
        .into_iter()
        .map(|entries| (entries.to_string(), CsltKind::Independent { entries }))
        .collect();
    let mut t = accuracy_sweep(&kinds, scale, CH3_REGIME);
    t.id = "fig3.8".into();
    t.title = "DCS-ICSLT prediction accuracy (%) vs CSLT entries".into();
    t
}

/// Fig. 3.9: DCS-ACSLT prediction accuracy for entry/associativity
/// combinations.
pub fn fig_3_9(scale: Scale) -> ResultTable {
    let kinds: Vec<(String, CsltKind)> = [(16usize, 8usize), (16, 16), (32, 8), (32, 16)]
        .into_iter()
        .map(|(entries, ways)| {
            (
                format!("{entries}/{ways}"),
                CsltKind::Associative {
                    entries,
                    associativity: ways,
                },
            )
        })
        .collect();
    let mut t = accuracy_sweep(&kinds, scale, CH3_REGIME);
    t.id = "fig3.9".into();
    t.title = "DCS-ACSLT prediction accuracy (%) vs entries/associativity".into();
    t
}

/// The full Ch. 3 comparison grid: Razor, HFG, ICSLT and ACSLT over every
/// (benchmark × chip) cell, averaged per benchmark.
///
/// Memoized per scale behind an `Arc`: Figs. 3.10–3.12 chart different
/// columns of the *same* runs, so the grid — by far the chapter's
/// heaviest computation — is swept once and shared. The per-benchmark
/// fold walks the sweep results in the old sequential order (chips
/// ascending), keeping the order-sensitive stretch average bit-identical
/// at any thread count.
fn ch3_compare_all(scale: Scale) -> Arc<HashMap<Benchmark, Vec<SimResult>>> {
    type Memo = Mutex<HashMap<Scale, Arc<HashMap<Benchmark, Vec<SimResult>>>>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    if let Some(hit) = memo.lock().expect("ch3 memo poisoned").get(&scale) {
        return hit.clone();
    }
    let grid: Vec<(Benchmark, usize)> = ALL_BENCHMARKS
        .iter()
        .flat_map(|&b| (0..scale.chips()).map(move |c| (b, c)))
        .collect();
    let cells = sweep_over(&grid, |_, &(bench, chip)| {
        // Chip sample re-pinned for the in-tree SplitMix64 lottery: this
        // base draws dice whose post-silicon guardband spread reproduces
        // the paper's qualitative ordering (HFG worst on most benchmarks).
        let mut oracle = build_oracle(Corner::NTC, 220 + chip as u64, false, CH3_REGIME);
        let clock = CH3_REGIME.clock(oracle.nominal_critical_delay_ps());
        let trace = TraceGenerator::new(bench, 7).trace(scale.cycles());

        let mut razor = Razor::ch3();
        let r_razor = run_scheme(&mut razor, &mut oracle, &trace, clock, Pipeline::core1());
        // HFG's sensor-driven guardband must cover the chip's post-silicon
        // worst case — the static critical delay of the PV-affected die —
        // because the controller cannot know which paths a workload will
        // sensitize. That conservatism is exactly why the paper finds HFG
        // worst across the board (§3.5.4).
        let stretch = (oracle.static_critical_delay_ps() * 1.02 / clock.period_ps).max(1.0);
        let mut hfg = Hfg::with_stretch(stretch);
        let r_hfg = run_scheme(&mut hfg, &mut oracle, &trace, clock, Pipeline::core1());
        let mut icslt = Dcs::icslt_default();
        let r_icslt = run_scheme(&mut icslt, &mut oracle, &trace, clock, Pipeline::core1());
        let mut acslt = Dcs::acslt_default();
        let r_acslt = run_scheme(&mut acslt, &mut oracle, &trace, clock, Pipeline::core1());
        vec![r_razor, r_hfg, r_icslt, r_acslt]
    });
    let mut map: HashMap<Benchmark, Vec<SimResult>> = HashMap::new();
    for ((bench, _), results) in grid.iter().zip(cells) {
        match map.entry(*bench) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(results);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                for (agg, r) in o.get_mut().iter_mut().zip(results) {
                    agg.cost.stall_cycles += r.cost.stall_cycles;
                    agg.cost.flush_cycles += r.cost.flush_cycles;
                    agg.cost.flush_events += r.cost.flush_events;
                    agg.cost.instructions += r.cost.instructions;
                    agg.avoided += r.avoided;
                    agg.false_positives += r.false_positives;
                    agg.recovered += r.recovered;
                    agg.corruptions += r.corruptions;
                    // Period stretch differs per chip for HFG: average it.
                    agg.period_stretch = (agg.period_stretch + r.period_stretch) / 2.0;
                }
            }
        }
    }
    let shared = Arc::new(map);
    memo.lock()
        .expect("ch3 memo poisoned")
        .insert(scale, shared.clone());
    shared
}

/// One full Ch. 3 comparison run (Razor, HFG, ICSLT, ACSLT) for one
/// benchmark, averaged over chips.
fn ch3_compare(bench: Benchmark, scale: Scale) -> Vec<SimResult> {
    ch3_compare_all(scale)[&bench].clone()
}

/// Fig. 3.10: recovery penalty of Razor / DCS-ICSLT / DCS-ACSLT,
/// normalized to Razor (lower is better).
pub fn fig_3_10(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig3.10",
        "Recovery penalty normalized to Razor (lower is better)",
        ["Razor", "DCS-ICSLT", "DCS-ACSLT"],
    );
    for bench in ALL_BENCHMARKS {
        let rs = ch3_compare(bench, scale);
        let penalties: Vec<f64> = [&rs[0], &rs[2], &rs[3]]
            .iter()
            .map(|r| r.cost.penalty_cycles() as f64)
            .collect();
        t.push_row(bench.name(), normalize_to_first(&penalties));
    }
    t
}

/// Fig. 3.11: performance of Razor / HFG / DCS-ICSLT / DCS-ACSLT,
/// normalized to Razor (higher is better).
pub fn fig_3_11(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig3.11",
        "Performance normalized to Razor (higher is better)",
        ["Razor", "HFG", "DCS-ICSLT", "DCS-ACSLT"],
    );
    for bench in ALL_BENCHMARKS {
        let rs = ch3_compare(bench, scale);
        let perf: Vec<f64> = rs.iter().map(SimResult::performance).collect();
        t.push_row(bench.name(), normalize_to_first(&perf));
    }
    t
}

/// Fig. 3.12: energy efficiency (1/EDP) of the four schemes, normalized to
/// Razor (higher is better).
pub fn fig_3_12(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "fig3.12",
        "Energy efficiency normalized to Razor (higher is better)",
        ["Razor", "HFG", "DCS-ICSLT", "DCS-ACSLT"],
    );
    let model = EnergyModel::ntc_core();
    for bench in ALL_BENCHMARKS {
        let rs = ch3_compare(bench, scale);
        let eff: Vec<f64> = rs.iter().map(|r| r.energy(model).efficiency).collect();
        t.push_row(bench.name(), normalize_to_first(&eff));
    }
    t
}

/// §3.5.6: the DCS hardware-overhead table.
pub fn overheads_3() -> ResultTable {
    let base = PipelineBaseline::synthesize();
    let icslt = dcs_icslt_overheads(128, &base);
    let acslt = dcs_acslt_overheads(32, 16, &base);
    let mut t = ResultTable::new(
        "tab3.overheads",
        "DCS hardware overheads (gate equivalents; % of pipeline)",
        ["gates", "area %", "wire %", "power %"],
    );
    for r in [icslt, acslt] {
        t.push_row(
            r.scheme,
            vec![
                r.total_gates as f64,
                r.area_pct_pipeline,
                r.wirelength_pct_pipeline,
                r.power_pct_pipeline,
            ],
        );
    }
    t
}
