//! Shared circuit-level choke study for Figs. 3.2 / 3.3: Monte-Carlo
//! sampling of sensitized-path delays per ALU operation on a population of
//! fabricated 64-bit ALUs, with CDL/CGL extraction.

use ntc_netlist::generators::alu::{Alu, AluFunc};
use ntc_timing::{identify_choke_event, CdlCglProfile, DynamicSim, StaticTiming};
use ntc_varmodel::{ChipSignature, Corner, VariationParams};
use ntc_varmodel::rng::SplitMix64;
use std::collections::HashMap;

/// The eleven ALU operations of the paper's Fig. 3.2 study.
pub const STUDY_OPS: [AluFunc; 11] = [
    AluFunc::Add,
    AluFunc::Sub,
    AluFunc::Mult,
    AluFunc::Or,
    AluFunc::And,
    AluFunc::Xor,
    AluFunc::Load,
    AluFunc::ShiftRightArith,
    AluFunc::ShiftRightLogical,
    AluFunc::RotateRight,
    AluFunc::Buffer,
];

/// Result of the per-operation choke study at one corner.
#[derive(Debug, Clone)]
pub struct ChokeStudy {
    /// Per operation: the CDL/CGL profile over all chips and vectors.
    pub per_op: HashMap<AluFunc, CdlCglProfile>,
    /// Per operation: max CDL observed for OWM-set vs OWM-reset vectors.
    pub cdl_by_owm: HashMap<AluFunc, (f64, f64)>,
    /// The ALU width used.
    pub width: usize,
}

/// Draw an operand with a requested significant width profile.
fn draw_operand(rng: &mut SplitMix64, width: usize, wide: bool) -> u64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let raw: u64 = rng.gen_u64() & mask;
    if wide {
        // Dense: OR two draws so roughly 3/4 of bits are set.
        (raw | (rng.gen_u64() & mask)) | 1
    } else {
        // Sparse: AND two draws (~1/4 of bits), confined to the low half.
        (raw & rng.gen_u64()) & (mask >> (width / 2))
    }
}

/// Whether a (a, b) pair would set the OWM at the given width.
fn owm_of(a: u64, b: u64, width: usize) -> bool {
    let half = (width / 2) as u32;
    a.count_ones() >= half || b.count_ones() >= half
}

/// Run the study at one corner.
///
/// For every operation: establish the operation's nominal critical delay
/// on a PV-free chip (max sensitized delay over the vector sample), then
/// for each fabricated chip and vector pair record any overshoot as a
/// choke event with its CDL category and minimal choke-gate set.
pub fn run_choke_study(
    corner: Corner,
    width: usize,
    chips: usize,
    vectors_per_op: usize,
    seed: u64,
) -> ChokeStudy {
    let alu = Alu::new(width);
    let nl = alu.netlist();
    let params = if corner.name == "STC" {
        VariationParams::stc()
    } else {
        VariationParams::ntc()
    };
    let nominal = ChipSignature::nominal(nl, corner);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed);

    // Pre-draw the vector sample per op (shared between nominal + chips so
    // nominal critical delays and PV delays are comparable).
    let mut vectors: HashMap<AluFunc, Vec<(u64, u64, u64, u64)>> = HashMap::new();
    for &op in &STUDY_OPS {
        let v: Vec<(u64, u64, u64, u64)> = (0..vectors_per_op)
            .map(|k| {
                let wide = k % 2 == 0;
                (
                    draw_operand(&mut rng, width, !wide),
                    draw_operand(&mut rng, width, !wide),
                    draw_operand(&mut rng, width, wide),
                    draw_operand(&mut rng, width, wide),
                )
            })
            .collect();
        vectors.insert(op, v);
    }

    // Nominal per-op critical delays, and the circuit's nominal critical
    // delay (the CDL reference: the paper expresses CDL as a percentage of
    // the nominal critical path delay of the circuit).
    let mut nominal_crit: HashMap<AluFunc, f64> = HashMap::new();
    {
        let mut sim = DynamicSim::new(nl, &nominal);
        for &op in &STUDY_OPS {
            let mut worst: f64 = 0.0;
            for &(a1, b1, a2, b2) in &vectors[&op] {
                let t = sim.simulate_pair_minmax(&alu.encode(op, a1, b1), &alu.encode(op, a2, b2));
                if let Some(d) = t.max_ps {
                    worst = worst.max(d);
                }
            }
            nominal_crit.insert(op, worst);
        }
    }

    // One sweep task per fabricated chip; each returns its local profiles,
    // merged below in chip order. Every fold (min CGL, max CDL, event
    // counts) is order-independent, so the merged result is bit-identical
    // to the old sequential loop at any thread count.
    let per_chip = crate::runner::sweep(chips, |chip_idx| {
        let sig = ChipSignature::fabricate(nl, corner, params, seed.wrapping_add(chip_idx as u64));
        // Sanity anchor: the static critical delay bounds every dynamic
        // observation (checked in debug builds).
        debug_assert!(StaticTiming::analyze(nl, &sig).critical_delay_ps(nl) > 0.0);
        let mut sim = DynamicSim::new(nl, &sig);
        let mut per_op: HashMap<AluFunc, CdlCglProfile> = HashMap::new();
        let mut cdl_by_owm: HashMap<AluFunc, (f64, f64)> = HashMap::new();
        for &op in &STUDY_OPS {
            let d_nom = nominal_crit[&op];
            if d_nom <= 0.0 {
                continue;
            }
            for &(a1, b1, a2, b2) in &vectors[&op] {
                // The lean path fills the same waveforms, so
                // `sensitized_gates` below still sees this cycle's activity.
                let t = sim.simulate_pair_minmax(&alu.encode(op, a1, b1), &alu.encode(op, a2, b2));
                let Some(d_pv) = t.max_ps else { continue };
                let sensitized = sim.sensitized_gates();
                // A choke path exists when the operation's sensitized delay
                // overshoots the operation's own nominal critical delay —
                // the normalization under which the paper's STC ceiling
                // ("CDL cannot exceed ~12% even when every gate on the
                // path is PV-affected") holds. At NTC our high-CDL band is
                // open-ended: a single extreme choke gate can multiply a
                // short path far beyond the paper's 30% axis.
                if let Some(ev) = identify_choke_event(nl, &sig, &sensitized, d_pv, d_nom) {
                    per_op.entry(op).or_default().record(&ev);
                    let slot = cdl_by_owm.entry(op).or_insert((0.0, 0.0));
                    if owm_of(a2, b2, width) {
                        slot.0 = slot.0.max(ev.cdl_pct);
                    } else {
                        slot.1 = slot.1.max(ev.cdl_pct);
                    }
                }
            }
        }
        (per_op, cdl_by_owm)
    });

    let mut per_op: HashMap<AluFunc, CdlCglProfile> = HashMap::new();
    let mut cdl_by_owm: HashMap<AluFunc, (f64, f64)> = HashMap::new();
    for (chip_per_op, chip_owm) in per_chip {
        for (op, profile) in chip_per_op {
            per_op.entry(op).or_default().merge(&profile);
        }
        for (op, (set_max, reset_max)) in chip_owm {
            let slot = cdl_by_owm.entry(op).or_insert((0.0, 0.0));
            slot.0 = slot.0.max(set_max);
            slot.1 = slot.1.max(reset_max);
        }
    }

    ChokeStudy {
        per_op,
        cdl_by_owm,
        width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_profiles_differ() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let wide: u32 = (0..50)
            .map(|_| draw_operand(&mut rng, 32, true).count_ones())
            .sum();
        let narrow: u32 = (0..50)
            .map(|_| draw_operand(&mut rng, 32, false).count_ones())
            .sum();
        assert!(wide > 2 * narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn small_study_produces_events_at_ntc() {
        let study = run_choke_study(Corner::NTC, 16, 4, 6, 42);
        let total: usize = study.per_op.values().map(|p| p.events).sum();
        assert!(total > 0, "NTC chips must exhibit choke events");
    }

    #[test]
    fn owm_detection() {
        assert!(owm_of(0xFFFF_FFFF, 0, 32));
        assert!(!owm_of(0xFF, 0xF0, 32));
    }
}
