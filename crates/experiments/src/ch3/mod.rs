//! Chapter-3 (DATE 2017 / Dynamic Choke Sensing) experiment runners.

pub mod choke_study;
pub mod figures;

pub use figures::{
    fig_3_10, fig_3_11, fig_3_12, fig_3_2, fig_3_3, fig_3_4, fig_3_8, fig_3_9, overheads_3,
    FIG_3_4_OPS,
};
