//! Structured run telemetry for the reproduction harness.
//!
//! Every `repro` invocation records, per experiment, a [`RunRecord`] —
//! what ran, at which scale and thread count, how long the sweeps were
//! busy, how effective the delay-oracle caches were, how many table rows
//! came out, where the CSV landed, and whether anything failed — and
//! folds the records into a [`Manifest`] written as `manifest.json` next
//! to the CSVs. A "green" run is thereby auditable after the fact: the
//! manifest either accounts for every requested experiment with
//! `"status": "pass"`, or it names the failure (experiment panic, caught
//! per-index sweep panic, CSV write error) that made the exit code
//! nonzero.
//!
//! The JSON encoder **and** the matching validator/parser are hand-rolled
//! here: the build stays offline and dependency-free, and the harness can
//! re-read its own manifest (`tests/figure_shapes.rs` golden-shape check,
//! `ci.sh` smoke step) without trusting external tooling to be present.

use crate::cache::CacheStats;
use crate::runner::{IndexFailure, SweepStats};
use crate::table::ResultTable;
use ntc_core::tag_delay::OracleStats;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Manifest format identifier; bump on breaking shape changes.
/// (`/2` added the per-record `cache` counters and `resumed` marker;
/// `/3` added the oracle screen counters; `/4` the incremental-STA
/// counters `sta_full` / `sta_incremental` / `incr_gates_touched`;
/// `/5` the per-operating-point `voltages` cell counters; `/6` the
/// requested voltage roster, the workload trace `source`, and the
/// `workload` record/replay counters.)
pub const MANIFEST_SCHEMA: &str = "ntc-repro-manifest/6";

/// Telemetry of one experiment run inside a `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Experiment id, e.g. `"fig3.4"`.
    pub id: String,
    /// Table title, empty when the experiment died before producing one.
    pub title: String,
    /// Scale label (`"fast"` / `"full"`).
    pub scale: String,
    /// Worker threads the sweep engine was configured with.
    pub jobs: usize,
    /// End-to-end wall time of this experiment, seconds.
    pub wall_s: f64,
    /// Sweep-engine busy/wall counters drained after this experiment.
    pub sweep: SweepStats,
    /// Delay-oracle cache counters drained after this experiment.
    pub oracle: OracleStats,
    /// Grid disk-cache counters drained after this experiment.
    pub cache: CacheStats,
    /// Grid cells *computed* per operating point during this experiment
    /// (`(point name, count)`, roster order, zero counts omitted) —
    /// memo and disk hits do not count, mirroring the oracle/cache
    /// counter semantics. Empty for non-grid experiments.
    pub voltages: Vec<(String, u64)>,
    /// Operating-point names the run was *asked* to sweep, roster
    /// order. Unlike [`RunRecord::voltages`] this is the request, not
    /// the computed counts — `--resume` compares it against the current
    /// roster and recomputes on mismatch rather than carrying forward
    /// results for the wrong voltage set.
    pub requested_vdd: Vec<String>,
    /// Workload trace source the run used (`"generator"`,
    /// `"replay:<dir>"`, `"phases:<dir>"`, …) — `--resume` recomputes
    /// when it differs, same as the voltage roster.
    pub source: String,
    /// Trace record/replay counters drained after this experiment.
    pub workload: ntc_workload::WorkloadStats,
    /// Per-index panics caught by `runner::sweep_catching` during this
    /// experiment (empty for strict sweeps, which fail the whole record).
    pub sweep_failures: Vec<IndexFailure>,
    /// Rows in the produced table (0 when the run failed).
    pub rows: usize,
    /// Where the CSV landed, when it was written.
    pub csv: Option<PathBuf>,
    /// Whether `--resume` carried this record forward from a previous
    /// suite's manifest instead of re-running the experiment.
    pub resumed: bool,
    /// Fatal error: experiment panic or CSV write failure.
    pub error: Option<String>,
}

impl RunRecord {
    /// A record passes iff nothing failed: no fatal error and no caught
    /// per-index sweep failures.
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.sweep_failures.is_empty()
    }

    /// Encode this record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        push_key_str(&mut s, "id", &self.id);
        s.push(',');
        push_key_str(&mut s, "title", &self.title);
        s.push(',');
        push_key_str(&mut s, "scale", &self.scale);
        s.push(',');
        let _ = write!(s, "\"jobs\":{}", self.jobs);
        s.push(',');
        let _ = write!(s, "\"wall_s\":{}", json_f64(self.wall_s));
        s.push(',');
        let _ = write!(s, "\"sweep_busy_ns\":{}", self.sweep.busy.as_nanos());
        s.push(',');
        let _ = write!(s, "\"sweep_wall_ns\":{}", self.sweep.wall.as_nanos());
        s.push(',');
        s.push_str("\"oracle\":{");
        for (i, (name, value)) in self.oracle.fields().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{value}");
        }
        s.push('}');
        s.push(',');
        s.push_str("\"cache\":{");
        for (i, (name, value)) in self.cache.fields().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{value}");
        }
        s.push('}');
        s.push(',');
        s.push_str("\"voltages\":{");
        for (i, (name, count)) in self.voltages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{count}");
        }
        s.push('}');
        s.push(',');
        s.push_str("\"requested_vdd\":[");
        for (i, name) in self.requested_vdd.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, name);
        }
        s.push(']');
        s.push(',');
        push_key_str(&mut s, "source", &self.source);
        s.push(',');
        s.push_str("\"workload\":{");
        for (i, (name, value)) in self.workload.fields().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{value}");
        }
        s.push('}');
        s.push(',');
        s.push_str("\"sweep_failures\":[");
        for (i, f) in self.sweep_failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"index\":{},", f.index);
            push_key_str(&mut s, "message", &f.message);
            s.push('}');
        }
        s.push(']');
        s.push(',');
        let _ = write!(s, "\"rows\":{}", self.rows);
        s.push(',');
        match &self.csv {
            Some(p) => push_key_str(&mut s, "csv", &p.display().to_string()),
            None => s.push_str("\"csv\":null"),
        }
        s.push(',');
        push_key_str(
            &mut s,
            "status",
            if self.passed() { "pass" } else { "fail" },
        );
        s.push(',');
        let _ = write!(s, "\"resumed\":{}", self.resumed);
        s.push(',');
        match &self.error {
            Some(e) => push_key_str(&mut s, "error", e),
            None => s.push_str("\"error\":null"),
        }
        s.push('}');
        s
    }

    /// Decode a record from a parsed manifest object — the read half of
    /// [`RunRecord::to_json`], used by `repro --resume` to carry passing
    /// records of a previous run forward.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped member, and rejects a record
    /// whose stored `status` contradicts its own failure fields (a
    /// tampered or hand-edited manifest must not resume as a pass).
    pub fn from_json(v: &Json) -> Result<RunRecord, String> {
        fn str_of(v: &Json, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("record member {key:?} missing or not a string"))
        }
        fn u64_of(v: &Json, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record member {key:?} missing or not an exact integer"))
        }
        let oracle_obj = v
            .get("oracle")
            .ok_or_else(|| "record member \"oracle\" missing".to_owned())?;
        let oracle = OracleStats {
            gate_sims: u64_of(oracle_obj, "gate_sims")?,
            local_hits: u64_of(oracle_obj, "local_hits")?,
            shared_hits: u64_of(oracle_obj, "shared_hits")?,
            screen_hits: u64_of(oracle_obj, "screen_hits")?,
            screen_misses: u64_of(oracle_obj, "screen_misses")?,
            screen_fallbacks: u64_of(oracle_obj, "screen_fallbacks")?,
            sta_full: u64_of(oracle_obj, "sta_full")?,
            sta_incremental: u64_of(oracle_obj, "sta_incremental")?,
            incr_gates_touched: u64_of(oracle_obj, "incr_gates_touched")?,
        };
        let cache_obj = v
            .get("cache")
            .ok_or_else(|| "record member \"cache\" missing".to_owned())?;
        let cache = CacheStats {
            disk_hits: u64_of(cache_obj, "disk_hits")?,
            disk_misses: u64_of(cache_obj, "disk_misses")?,
            corrupt_evictions: u64_of(cache_obj, "corrupt_evictions")?,
            bytes_written: u64_of(cache_obj, "bytes_written")?,
        };
        let voltages = match v.get("voltages") {
            Some(obj @ Json::Obj(members)) => members
                .iter()
                .map(|(name, _)| {
                    Ok::<(String, u64), String>((name.clone(), u64_of(obj, name)?))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("record member \"voltages\" missing or not an object".to_owned()),
        };
        let requested_vdd = v
            .get("requested_vdd")
            .and_then(Json::as_arr)
            .ok_or_else(|| "record member \"requested_vdd\" missing or not an array".to_owned())?
            .iter()
            .map(|name| {
                name.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "requested_vdd entry not a string".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let workload_obj = v
            .get("workload")
            .ok_or_else(|| "record member \"workload\" missing".to_owned())?;
        let workload = ntc_workload::WorkloadStats {
            traces_recorded: u64_of(workload_obj, "traces_recorded")?,
            trace_replays: u64_of(workload_obj, "trace_replays")?,
            phase_replays: u64_of(workload_obj, "phase_replays")?,
            replayed_instructions: u64_of(workload_obj, "replayed_instructions")?,
            phase_instructions: u64_of(workload_obj, "phase_instructions")?,
        };
        let mut sweep_failures = Vec::new();
        for f in v
            .get("sweep_failures")
            .and_then(Json::as_arr)
            .ok_or_else(|| "record member \"sweep_failures\" missing or not an array".to_owned())?
        {
            sweep_failures.push(IndexFailure {
                index: usize::try_from(u64_of(f, "index")?)
                    .map_err(|_| "sweep-failure index out of range".to_owned())?,
                message: str_of(f, "message")?,
            });
        }
        let csv = match v.get("csv") {
            Some(Json::Null) => None,
            Some(Json::Str(p)) => Some(PathBuf::from(p)),
            _ => return Err("record member \"csv\" missing or not a string/null".to_owned()),
        };
        let error = match v.get("error") {
            Some(Json::Null) => None,
            Some(Json::Str(e)) => Some(e.clone()),
            _ => return Err("record member \"error\" missing or not a string/null".to_owned()),
        };
        let resumed = match v.get("resumed") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("record member \"resumed\" missing or not a bool".to_owned()),
        };
        let record = RunRecord {
            id: str_of(v, "id")?,
            title: str_of(v, "title")?,
            scale: str_of(v, "scale")?,
            jobs: usize::try_from(u64_of(v, "jobs")?)
                .map_err(|_| "record member \"jobs\" out of range".to_owned())?,
            wall_s: v
                .get("wall_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| "record member \"wall_s\" missing or not a number".to_owned())?,
            sweep: SweepStats {
                busy: Duration::from_nanos(u64_of(v, "sweep_busy_ns")?),
                wall: Duration::from_nanos(u64_of(v, "sweep_wall_ns")?),
            },
            oracle,
            cache,
            voltages,
            requested_vdd,
            source: str_of(v, "source")?,
            workload,
            sweep_failures,
            rows: usize::try_from(u64_of(v, "rows")?)
                .map_err(|_| "record member \"rows\" out of range".to_owned())?,
            csv,
            resumed,
            error,
        };
        let status = str_of(v, "status")?;
        let expected = if record.passed() { "pass" } else { "fail" };
        if status != expected {
            return Err(format!(
                "record {:?} says status {status:?} but its failure fields imply {expected:?}",
                record.id
            ));
        }
        Ok(record)
    }
}

/// The whole-suite run summary `repro` writes as `manifest.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scale label the suite ran at.
    pub scale: String,
    /// Worker-thread count the suite ran with.
    pub jobs: usize,
    /// One record per executed experiment, in execution order.
    pub records: Vec<RunRecord>,
}

impl Manifest {
    /// Assemble a manifest from per-experiment records.
    pub fn new(scale: impl Into<String>, jobs: usize, records: Vec<RunRecord>) -> Self {
        Manifest {
            scale: scale.into(),
            jobs,
            records,
        }
    }

    /// Number of passing records.
    pub fn passed(&self) -> usize {
        self.records.iter().filter(|r| r.passed()).count()
    }

    /// Number of failing records.
    pub fn failed(&self) -> usize {
        self.records.len() - self.passed()
    }

    /// Total wall time over all records, seconds.
    pub fn wall_s(&self) -> f64 {
        self.records.iter().map(|r| r.wall_s).sum()
    }

    /// The one-line suite summary `repro` prints last — same numbers the
    /// manifest carries, so stdout and `manifest.json` can be checked
    /// against each other.
    pub fn summary_line(&self) -> String {
        format!(
            "# suite: {} passed, {} failed of {} experiment(s) in {:.1}s ({} scale, {} job(s))",
            self.passed(),
            self.failed(),
            self.records.len(),
            self.wall_s(),
            self.scale,
            self.jobs
        )
    }

    /// Encode the manifest as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  ");
        push_key_str(&mut s, "schema", MANIFEST_SCHEMA);
        s.push_str(",\n  ");
        push_key_str(&mut s, "scale", &self.scale);
        s.push_str(",\n  ");
        let _ = write!(s, "\"jobs\":{}", self.jobs);
        s.push_str(",\n  ");
        let _ = write!(s, "\"passed\":{}", self.passed());
        s.push_str(",\n  ");
        let _ = write!(s, "\"failed\":{}", self.failed());
        s.push_str(",\n  ");
        let _ = write!(s, "\"wall_s\":{}", json_f64(self.wall_s()));
        s.push_str(",\n  \"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            s.push_str(&r.to_json());
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Write the manifest as `<dir>/manifest.json`, validating that the
    /// emitted bytes parse back before they are persisted — the file that
    /// certifies a run must never itself be malformed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an encoder bug surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let json = self.to_json();
        parse_json(&json).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest encoder produced invalid JSON: {e}"),
            )
        })?;
        std::fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, json)?;
        Ok(path)
    }

    /// Parse a manifest document back into a [`Manifest`] — the read half
    /// of [`Manifest::to_json`], used by `repro --resume`.
    ///
    /// # Errors
    ///
    /// Rejects documents with the wrong `schema` tag (older manifests
    /// must not silently resume under new semantics) and any record
    /// [`RunRecord::from_json`] rejects.
    pub fn from_json_str(src: &str) -> Result<Manifest, String> {
        let doc = parse_json(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "manifest member \"schema\" missing or not a string".to_owned())?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest schema {schema:?} is not the supported {MANIFEST_SCHEMA:?}"
            ));
        }
        let scale = doc
            .get("scale")
            .and_then(Json::as_str)
            .ok_or_else(|| "manifest member \"scale\" missing or not a string".to_owned())?
            .to_owned();
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_u64)
            .and_then(|j| usize::try_from(j).ok())
            .ok_or_else(|| "manifest member \"jobs\" missing or not an exact integer".to_owned())?;
        let records = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| "manifest member \"records\" missing or not an array".to_owned())?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest {
            scale,
            jobs,
            records,
        })
    }
}

/// Encode a [`ResultTable`] as one JSON object (`--format json` output):
/// id, title, column names, and rows as `{"label", "values"}` pairs with
/// non-finite cells as `null`.
pub fn table_to_json(t: &ResultTable) -> String {
    let mut s = String::new();
    s.push('{');
    push_key_str(&mut s, "id", &t.id);
    s.push(',');
    push_key_str(&mut s, "title", &t.title);
    s.push(',');
    s.push_str("\"columns\":[");
    for (i, c) in t.columns.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_json_str(&mut s, c);
    }
    s.push_str("],\"rows\":[");
    for (i, (label, values)) in t.rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        push_key_str(&mut s, "label", label);
        s.push_str(",\"values\":[");
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&json_f64(*v));
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

/// Render an `f64` as a JSON number (`null` for NaN/±∞, which JSON cannot
/// represent). Rust's `Display` for finite `f64` is shortest-round-trip
/// decimal without exponents — always a valid JSON number.
///
/// Public: the serve protocol emits its receipts with the same encoder
/// the manifests use, so the two stay byte-compatible.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Append `"key":"escaped value"`.
pub fn push_key_str(out: &mut String, key: &str, value: &str) {
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, value);
}

/// Append a JSON string literal with RFC 8259 escaping.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value — the minimal document model the harness needs to
/// validate and inspect its own manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number literal (no fraction or exponent), kept exact.
    /// The manifest's u64 counters — sweep nanoseconds, oracle hit
    /// counts, rows — round-trip through this variant losslessly even
    /// above 2^53, where an `f64` would silently drop low bits.
    Int(i128),
    /// Any other JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (duplicate keys kept as written).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one. Lossy above 2^53 for integer
    /// literals — counters that must stay exact go through [`Json::as_u64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: only integer literals that
    /// fit in a `u64` qualify — a fractional or out-of-range number is
    /// `None`, never a rounded result.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object keys in source order, if the value is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Json::Obj(members) => Some(members.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a byte offset + message for the first syntax error.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Recursive-descent JSON reader over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Integer literals parse exactly: u64 counters above 2^53 must
        // not be rounded through an f64. Anything with a fraction or
        // exponent — or an integer too wide even for i128 — stays f64.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<i128>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    /// Read the four hex digits of a `\u` escape body at `pos`, advancing
    /// past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .filter(|h| h.bytes().all(|b| b.is_ascii_hexdigit()))
            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(hex, 16).expect("4 hex digits");
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let escape_at = self.pos - 1;
                            self.pos += 1;
                            let code = self.hex4()?;
                            match code {
                                // High surrogate: RFC 8259 §7 requires a
                                // paired `\uDC00`–`\uDFFF` escape next;
                                // the two combine into one supplementary
                                // scalar (how 😀 is escaped).
                                0xD800..=0xDBFF => {
                                    if !(self.peek() == Some(b'\\')
                                        && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                    {
                                        return Err(format!(
                                            "lone high surrogate \\u{code:04x} at byte {escape_at}"
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!(
                                            "high surrogate \\u{code:04x} at byte {escape_at} \
                                             followed by \\u{low:04x}, not a low surrogate"
                                        ));
                                    }
                                    let scalar =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(scalar).expect("paired surrogates decode"),
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!(
                                        "lone low surrogate \\u{code:04x} at byte {escape_at}"
                                    ));
                                }
                                _ => out.push(char::from_u32(code).expect("BMP non-surrogate")),
                            }
                            // hex4 leaves pos just past the last digit;
                            // step back one so the shared advance below
                            // (which assumes a one-byte escape body) lands
                            // exactly there.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the source is a &str, so
                    // char boundaries are sound).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, error: Option<&str>) -> RunRecord {
        RunRecord {
            id: id.to_owned(),
            title: format!("Title of {id}"),
            scale: "fast".to_owned(),
            jobs: 2,
            wall_s: 1.25,
            sweep: SweepStats {
                busy: Duration::from_nanos(300),
                wall: Duration::from_nanos(200),
            },
            oracle: OracleStats {
                gate_sims: 7,
                local_hits: 40,
                shared_hits: 3,
                screen_hits: 25,
                screen_misses: 4,
                screen_fallbacks: 2,
                sta_full: 3,
                sta_incremental: 5,
                incr_gates_touched: 1234,
            },
            cache: CacheStats {
                disk_hits: 1,
                disk_misses: 2,
                corrupt_evictions: 0,
                bytes_written: 4096,
            },
            voltages: vec![("v0.45".to_owned(), 30), ("v0.60".to_owned(), 30)],
            requested_vdd: vec!["v0.45".to_owned(), "v0.60".to_owned()],
            source: "generator".to_owned(),
            workload: ntc_workload::WorkloadStats {
                traces_recorded: 2,
                trace_replays: 4,
                phase_replays: 0,
                replayed_instructions: 120_000,
                phase_instructions: 0,
            },
            sweep_failures: Vec::new(),
            rows: 6,
            csv: Some(PathBuf::from("target/repro/x.csv")),
            resumed: false,
            error: error.map(str::to_owned),
        }
    }

    #[test]
    fn record_json_roundtrips_through_own_parser() {
        let r = record("fig3.4", None);
        let parsed = parse_json(&r.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("id").unwrap().as_str(), Some("fig3.4"));
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("pass"));
        assert_eq!(parsed.get("rows").unwrap().as_f64(), Some(6.0));
        assert_eq!(parsed.get("sweep_busy_ns").unwrap().as_f64(), Some(300.0));
        assert_eq!(
            parsed.get("oracle").unwrap().get("local_hits").unwrap().as_f64(),
            Some(40.0)
        );
        let volts = parsed.get("voltages").unwrap();
        assert_eq!(volts.keys(), Some(vec!["v0.45", "v0.60"]));
        assert_eq!(volts.get("v0.60").unwrap().as_u64(), Some(30));
        let roster = parsed.get("requested_vdd").unwrap().as_arr().unwrap();
        assert_eq!(roster[0].as_str(), Some("v0.45"));
        assert_eq!(roster[1].as_str(), Some("v0.60"));
        assert_eq!(parsed.get("source").unwrap().as_str(), Some("generator"));
        let wl = parsed.get("workload").unwrap();
        assert_eq!(wl.get("trace_replays").unwrap().as_u64(), Some(4));
        assert_eq!(
            wl.get("replayed_instructions").unwrap().as_u64(),
            Some(120_000)
        );
        assert_eq!(parsed.get("error"), Some(&Json::Null));
    }

    #[test]
    fn failures_flip_status_and_counts() {
        let mut fail = record("fig4.2", Some("disk full"));
        fail.csv = None;
        let mut isolated = record("fig3.9", None);
        isolated.sweep_failures.push(IndexFailure {
            index: 3,
            message: "chip 3 exploded".to_owned(),
        });
        let m = Manifest::new("fast", 2, vec![record("fig3.4", None), fail, isolated]);
        assert_eq!(m.passed(), 1);
        assert_eq!(m.failed(), 2);
        let parsed = parse_json(&m.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("failed").unwrap().as_f64(), Some(2.0));
        let records = parsed.get("records").unwrap().as_arr().unwrap();
        assert_eq!(records[1].get("status").unwrap().as_str(), Some("fail"));
        assert_eq!(records[1].get("error").unwrap().as_str(), Some("disk full"));
        assert_eq!(records[2].get("status").unwrap().as_str(), Some("fail"));
        let sf = records[2].get("sweep_failures").unwrap().as_arr().unwrap();
        assert_eq!(sf[0].get("index").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn summary_line_matches_manifest_numbers() {
        let m = Manifest::new("fast", 4, vec![record("a", None), record("b", Some("x"))]);
        let line = m.summary_line();
        assert!(line.contains("1 passed"), "{line}");
        assert!(line.contains("1 failed"), "{line}");
        assert!(line.contains("2 experiment(s)"), "{line}");
        assert!(line.contains("4 job(s)"), "{line}");
    }

    #[test]
    fn string_escaping_roundtrips() {
        let nasty = "he said \"hi\",\n\tback\\slash \u{1} é";
        let mut s = String::new();
        push_json_str(&mut s, nasty);
        let parsed = parse_json(&s).expect("valid JSON string literal");
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // 😀 is U+1F600, escaped as the pair 😀. The old parser
        // collapsed each half to U+FFFD; a non-BMP label must round-trip.
        let parsed = parse_json(r#""😀""#).expect("paired surrogates are valid");
        assert_eq!(parsed.as_str(), Some("😀"));
        // Mixed-case hex and surrounding text survive too.
        let parsed = parse_json(r#""a😀bé""#).expect("valid");
        assert_eq!(parsed.as_str(), Some("a😀bé"));
    }

    #[test]
    fn lone_surrogates_are_rejected_with_a_byte_offset() {
        // Byte 1 is where each string's first escape starts.
        for doc in [
            r#""\ud83d""#,       // lone high at end of string
            r#""\ud83dx""#,      // lone high before a plain char
            r#""\ud83d\n""#,     // lone high before a non-\u escape
            r#""\ude00""#,       // lone low
            r#""\ud83d\ud83d""#, // high followed by another high
        ] {
            let err = parse_json(doc).expect_err(doc);
            assert!(err.contains("surrogate"), "{doc}: {err}");
            assert!(err.contains("byte 1"), "{doc} must name the offset: {err}");
        }
    }

    #[test]
    fn integer_literals_parse_exactly_above_2_pow_53() {
        // 2^53 + 1 is the first u64 an f64 cannot represent.
        let big = (1u64 << 53) + 1;
        let parsed = parse_json(&big.to_string()).expect("valid integer");
        assert_eq!(parsed.as_u64(), Some(big), "no f64 rounding");
        assert_eq!(parsed, Json::Int(big as i128));
        assert_eq!(parse_json("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        // as_u64 is exact-or-nothing: fractions and negatives don't coerce.
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-3").unwrap().as_u64(), None);
        assert_eq!(parse_json("1e3").unwrap().as_u64(), None);
        // as_f64 still works on integer literals for chart-value readers.
        assert_eq!(parse_json("42").unwrap().as_f64(), Some(42.0));
    }

    #[test]
    fn huge_counters_round_trip_through_the_manifest() {
        let mut r = record("fig3.4", None);
        r.oracle.local_hits = (1u64 << 53) + 1;
        r.sweep.busy = Duration::from_nanos(u64::MAX);
        let m = Manifest::new("fast", 2, vec![r.clone()]);
        let back = Manifest::from_json_str(&m.to_json()).expect("manifest re-reads");
        assert_eq!(back.records[0], r, "exact counters, no f64 laundering");
        assert_eq!(back, m);
    }

    #[test]
    fn from_json_rejects_status_contradicting_failure_fields() {
        let r = record("fig3.4", None);
        let doctored = r.to_json().replace("\"status\":\"pass\"", "\"status\":\"fail\"");
        let parsed = parse_json(&doctored).expect("still valid JSON");
        let err = RunRecord::from_json(&parsed).expect_err("contradiction must be rejected");
        assert!(err.contains("status"), "{err}");
    }

    #[test]
    fn from_json_str_rejects_foreign_schemas() {
        let m = Manifest::new("fast", 1, vec![record("fig3.4", None)]);
        let old = m.to_json().replace(MANIFEST_SCHEMA, "ntc-repro-manifest/1");
        let err = Manifest::from_json_str(&old).expect_err("old schema must not resume");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn table_json_maps_nan_to_null() {
        let mut t = ResultTable::new("fig0.0", "Json", ["a,b", "c"]);
        t.push_row("row \"1\"", vec![1.5, f64::NAN]);
        let parsed = parse_json(&table_to_json(&t)).expect("valid JSON");
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("label").unwrap().as_str(), Some("row \"1\""));
        let values = rows[0].get("values").unwrap().as_arr().unwrap();
        assert_eq!(values[0].as_f64(), Some(1.5));
        assert_eq!(values[1], Json::Null);
        let cols = parsed.get("columns").unwrap().as_arr().unwrap();
        assert_eq!(cols[0].as_str(), Some("a,b"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "1.2.3",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn save_writes_a_parseable_manifest_file() {
        let dir = std::env::temp_dir().join(format!("ntc-report-test-{}", std::process::id()));
        let m = Manifest::new("fast", 1, vec![record("fig3.4", None)]);
        let path = m.save(&dir).expect("manifest written");
        assert_eq!(path.file_name().unwrap(), "manifest.json");
        let body = std::fs::read_to_string(&path).expect("readable");
        let parsed = parse_json(&body).expect("valid JSON on disk");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some(MANIFEST_SCHEMA)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
