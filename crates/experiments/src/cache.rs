//! Persistent, content-addressed on-disk cache for [`GridResult`]s.
//!
//! The scenario engine memoizes grids in-process (see
//! [`crate::scenario::run_grid`]), but every `repro` invocation used to
//! re-pay the full sweep cost from scratch. This module makes the
//! expensive part — the folded accumulators of a (benchmarks × chips ×
//! schemes × voltages) grid — survive the process:
//!
//! * **Content-addressed keys.** [`cache_key`] hashes a *canonical byte
//!   encoding* of the [`GridSpec`] (not Rust's `Hash`, whose output is
//!   explicitly unstable across compiler versions) together with the
//!   cache schema tag ([`GRID_CACHE_SCHEMA`]) and the crate version.
//!   Either bump changes every key, so stale artifacts self-invalidate by
//!   simply never being addressed again. Two independent FNV-1a lanes,
//!   each finished with the SplitMix64 avalanche, yield a 128-bit key.
//! * **Atomic, checksummed artifacts.** [`store`] writes to a
//!   process-unique temp file and `rename`s it into place, so a crashed
//!   or concurrent writer can never leave a half-written artifact under
//!   the final name. Every artifact carries its full key preimage (hash
//!   collisions load as misses, not as wrong data) and a trailing FNV-1a
//!   checksum over the body.
//! * **Corruption is a miss, never a panic.** [`load`] verifies the
//!   checksum and every structural invariant; anything that fails is
//!   quarantined (renamed to `<artifact>.corrupt`) and reported as a miss
//!   so the grid is recomputed and rewritten. A flipped byte or truncated
//!   file costs one recompute, not the run.
//! * **Telemetry.** Disk hits/misses, corrupt evictions, and bytes
//!   written are counted process-globally and drained per experiment by
//!   the `repro` binary into its `manifest.json` ([`take_stats`]),
//!   mirroring the sweep and oracle counters.
//!
//! The bit-identity contract of the scenario engine extends through the
//! cache: an artifact stores the exact bit patterns of every counter and
//! float sum, so a disk hit produces byte-identical CSVs to a cold run at
//! any `--jobs` count (pinned by `tests/grid_cache.rs`).

use crate::scenario::{GridResult, GridSpec};
use ntc_core::scenario::{SchemeSpec, SimAccumulator, SimAccumulatorParts};
use ntc_pipeline::RunCost;
use ntc_varmodel::OperatingPoint;
use ntc_workload::{Benchmark, ALL_BENCHMARKS};
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cache format identifier, folded into every [`cache_key`]; bump on any
/// breaking change to the artifact encoding or to the meaning of a spec
/// field, and every existing artifact silently stops being addressed —
/// old files are ignored (never touched, never quarantined), because the
/// new schema simply hashes to different artifact names. (`/2` added the
/// operating-point axis: the spec's voltage list and a per-row point
/// name; `/3` added the trace source to the spec's canonical bytes.)
pub const GRID_CACHE_SCHEMA: &str = "ntc-grid-cache/3";

/// Leading magic of every artifact file.
const MAGIC: &[u8; 8] = b"NTCGRID1";

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// SplitMix64 golden-ratio increment, reused to derive the second key
/// lane's seed from the first's.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

/// FNV-1a over `bytes` from an explicit seed (the second key lane uses a
/// perturbed basis so the two lanes are independent).
fn fnv1a64_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Standard FNV-1a 64-bit hash — also the artifact trailing checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(bytes, FNV_OFFSET)
}

/// SplitMix64 finalizer: avalanche the FNV output so nearby specs (the
/// common case — seed bases differing by one) spread over the key space.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The full key preimage of a spec: schema tag, crate version, then the
/// spec's canonical bytes. This exact byte string is hashed into the
/// artifact file name *and* embedded in the artifact, so a key collision
/// is detected on load instead of returning another spec's grid.
pub fn key_preimage(spec: &GridSpec) -> Vec<u8> {
    let mut out = Vec::new();
    push_str(&mut out, GRID_CACHE_SCHEMA);
    push_str(&mut out, env!("CARGO_PKG_VERSION"));
    out.extend_from_slice(&spec.canonical_bytes());
    out
}

/// The content-addressed key of a spec: 32 lowercase hex digits (two
/// independent FNV-1a lanes through the SplitMix64 finalizer).
pub fn cache_key(spec: &GridSpec) -> String {
    let pre = key_preimage(spec);
    let lane1 = mix64(fnv1a64_seeded(&pre, FNV_OFFSET));
    let lane2 = mix64(fnv1a64_seeded(&pre, FNV_OFFSET ^ GAMMA));
    format!("{lane1:016x}{lane2:016x}")
}

/// Where a spec's artifact lives inside a cache directory.
pub fn artifact_path(dir: &Path, spec: &GridSpec) -> PathBuf {
    dir.join(format!("{}.grid", cache_key(spec)))
}

// ---------------------------------------------------------------------
// Global configuration + telemetry
// ---------------------------------------------------------------------

/// Disk-cache directory; `None` = disk tier off (in-memory memo only).
static DISK_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// `--no-cache`: bypass both cache tiers and always recompute.
static DISABLED: AtomicBool = AtomicBool::new(false);

static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_MISSES: AtomicU64 = AtomicU64::new(0);
static CORRUPT_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Point the disk tier at `dir` (created lazily on first store), or turn
/// it off with `None`. The `repro` binary wires `--cache-dir` here.
pub fn set_disk_dir(dir: Option<PathBuf>) {
    *DISK_DIR.lock().expect("cache config poisoned") = dir;
}

/// The configured disk-cache directory, if any.
pub fn disk_dir() -> Option<PathBuf> {
    DISK_DIR.lock().expect("cache config poisoned").clone()
}

/// Disable (`true`) or re-enable (`false`) caching entirely — both the
/// in-memory memo and the disk tier. The `repro` binary wires
/// `--no-cache` here; every [`crate::scenario::run_grid`] call then
/// recomputes from scratch.
pub fn set_disabled(v: bool) {
    DISABLED.store(v, Ordering::SeqCst);
}

/// Whether caching is disabled (`--no-cache`).
pub fn disabled() -> bool {
    DISABLED.load(Ordering::SeqCst)
}

/// Disk-cache counters for the grids run since the last [`take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifacts loaded and verified from disk.
    pub disk_hits: u64,
    /// Disk lookups that found no (valid) artifact.
    pub disk_misses: u64,
    /// Corrupt/truncated artifacts quarantined (each also counts as one
    /// miss — the grid is recomputed).
    pub corrupt_evictions: u64,
    /// Artifact bytes written to disk.
    pub bytes_written: u64,
}

impl CacheStats {
    /// The counters as stable `(field name, value)` pairs, in declaration
    /// order — the single source of truth for serializers.
    pub fn fields(&self) -> [(&'static str, u64); 4] {
        [
            ("disk_hits", self.disk_hits),
            ("disk_misses", self.disk_misses),
            ("corrupt_evictions", self.corrupt_evictions),
            ("bytes_written", self.bytes_written),
        ]
    }

    /// Total disk-tier lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.disk_hits + self.disk_misses
    }
}

impl std::ops::AddAssign for CacheStats {
    /// Counter-wise accumulation, e.g. folding per-experiment drains into
    /// a suite total.
    fn add_assign(&mut self, rhs: CacheStats) {
        self.disk_hits += rhs.disk_hits;
        self.disk_misses += rhs.disk_misses;
        self.corrupt_evictions += rhs.corrupt_evictions;
        self.bytes_written += rhs.bytes_written;
    }
}

/// Drain and reset the global disk-cache counters. The `repro` binary
/// calls this per experiment so each manifest record accounts only for
/// its own cache traffic.
pub fn take_stats() -> CacheStats {
    CacheStats {
        disk_hits: DISK_HITS.swap(0, Ordering::SeqCst),
        disk_misses: DISK_MISSES.swap(0, Ordering::SeqCst),
        corrupt_evictions: CORRUPT_EVICTIONS.swap(0, Ordering::SeqCst),
        bytes_written: BYTES_WRITTEN.swap(0, Ordering::SeqCst),
    }
}

/// A per-run attribution scope for the disk-cache counters. While
/// installed on a thread (see [`set_cache_scope`]), every increment
/// additionally lands in the scope — how a server attributes cache
/// traffic to the job that caused it without draining the process-wide
/// counters other callers rely on. Cache lookups and stores happen on
/// the thread that calls `run_grid`, so installing the scope there
/// covers all of a run's traffic.
#[derive(Debug, Default)]
pub struct CacheScope {
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    corrupt_evictions: AtomicU64,
    bytes_written: AtomicU64,
}

impl CacheScope {
    /// The counters accumulated in this scope so far (non-draining).
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static CACHE_SCOPE: std::cell::RefCell<Option<std::sync::Arc<CacheScope>>> =
        const { std::cell::RefCell::new(None) };
}

/// Install (or, with `None`, clear) the calling thread's cache
/// attribution scope, returning the previous one so callers can restore
/// it.
pub fn set_cache_scope(
    scope: Option<std::sync::Arc<CacheScope>>,
) -> Option<std::sync::Arc<CacheScope>> {
    CACHE_SCOPE.with(|s| s.replace(scope))
}

/// The calling thread's installed cache scope, if any.
pub fn current_cache_scope() -> Option<std::sync::Arc<CacheScope>> {
    CACHE_SCOPE.with(|s| s.borrow().clone())
}

/// Bump a global cache counter, mirroring the increment into the
/// thread's installed scope when one is present.
fn bump(global: &AtomicU64, pick: fn(&CacheScope) -> &AtomicU64, n: u64) {
    global.fetch_add(n, Ordering::Relaxed);
    CACHE_SCOPE.with(|s| {
        if let Some(scope) = s.borrow().as_ref() {
            pick(scope).fetch_add(n, Ordering::Relaxed);
        }
    });
}

// ---------------------------------------------------------------------
// Bounded in-memory memo
// ---------------------------------------------------------------------

/// A tiny bounded least-recently-used map over a linear entry list —
/// exactly right for the handful of grids a suite touches, and trivially
/// auditable. Replaces the unbounded `HashMap` memo that held every
/// `Arc<GridResult>` for the life of the process.
#[derive(Debug)]
pub struct MemoLru<K, V> {
    cap: usize,
    /// Entries ordered least→most recently used.
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V: Clone> MemoLru<K, V> {
    /// An empty LRU holding at most `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "an LRU needs room for at least one entry");
        MemoLru {
            cap,
            entries: Vec::new(),
        }
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        let value = entry.1.clone();
        self.entries.push(entry);
        Some(value)
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry
    /// when the cap is exceeded.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(idx) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(idx);
        }
        self.entries.push((key, value));
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
    }

    /// Whether `key` is cached, without touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the LRU is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------
// Artifact encoding
// ---------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Encode a grid result as one self-verifying artifact: magic, key
/// preimage echo, schemes, per-(benchmark, operating point) row
/// accumulators (floats as raw bit patterns), and a trailing FNV-1a
/// checksum over everything before it.
pub fn encode(spec: &GridSpec, result: &GridResult) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let pre = key_preimage(spec);
    push_u64(&mut out, pre.len() as u64);
    out.extend_from_slice(&pre);
    push_u64(&mut out, result.schemes().len() as u64);
    for s in result.schemes() {
        push_str(&mut out, &s.name());
    }
    push_u64(&mut out, result.rows().len() as u64);
    for (bench, point, accs) in result.rows() {
        push_str(&mut out, bench.name());
        push_str(&mut out, point.name());
        push_u64(&mut out, accs.len() as u64);
        for acc in accs {
            let p = acc.to_parts();
            match p.scheme {
                Some(name) => {
                    out.push(1);
                    push_str(&mut out, name);
                }
                None => out.push(0),
            }
            push_u64(&mut out, p.runs);
            push_u64(&mut out, p.cost.instructions);
            push_u64(&mut out, p.cost.stall_cycles);
            push_u64(&mut out, p.cost.flush_cycles);
            push_u64(&mut out, p.cost.flush_events);
            push_u64(&mut out, p.avoided);
            push_u64(&mut out, p.false_positives);
            push_u64(&mut out, p.recovered);
            push_u64(&mut out, p.corruptions);
            push_u64(&mut out, p.recovered_by_class.len() as u64);
            for c in p.recovered_by_class {
                push_u64(&mut out, c);
            }
            push_u64(&mut out, p.stretch_sum.to_bits());
            push_u64(&mut out, p.accuracy_sum.to_bits());
            push_u64(&mut out, p.power_overhead.to_bits());
        }
    }
    let sum = fnv1a64(&out);
    push_u64(&mut out, sum);
    out
}

/// What [`decode`] concluded about an artifact's bytes.
#[derive(Debug)]
enum Decoded {
    /// Checksum and structure verified; the spec matches.
    Hit(Box<GridResult>),
    /// A *valid* artifact for a different spec (128-bit key collision):
    /// a miss, not corruption — the file is left alone.
    OtherSpec,
    /// Bad checksum, truncation, or a structural violation.
    Corrupt(&'static str),
}

/// Little-endian reader over an artifact body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn str(&mut self) -> Option<&'a str> {
        let len = usize::try_from(self.u64()?).ok()?;
        std::str::from_utf8(self.take(len)?).ok()
    }
}

/// Intern a scheme display name: `SimResult::scheme` is `&'static str`,
/// so decoded names are leaked exactly once per distinct string (a
/// handful of short names per process, by construction of the roster).
fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(Default::default)
        .lock()
        .expect("intern table poisoned");
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Resolve a stored benchmark name against the workload registry.
fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    ALL_BENCHMARKS.into_iter().find(|b| b.name() == name)
}

fn decode(bytes: &[u8], spec: &GridSpec) -> Decoded {
    // Trailer first: everything else is only meaningful under a valid
    // checksum.
    if bytes.len() < MAGIC.len() + 8 {
        return Decoded::Corrupt("short file");
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 trailer bytes"));
    if fnv1a64(body) != stored {
        return Decoded::Corrupt("checksum mismatch");
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    match r.take(MAGIC.len()) {
        Some(m) if m == MAGIC => {}
        _ => return Decoded::Corrupt("bad magic"),
    }
    let pre = match r.u64().and_then(|n| r.take(usize::try_from(n).ok()?)) {
        Some(p) => p,
        None => return Decoded::Corrupt("truncated key preimage"),
    };
    if pre != key_preimage(spec) {
        return Decoded::OtherSpec;
    }
    macro_rules! want {
        ($e:expr, $what:literal) => {
            match $e {
                Some(v) => v,
                None => return Decoded::Corrupt($what),
            }
        };
    }
    let n_schemes = want!(r.u64(), "scheme count");
    let mut schemes = Vec::new();
    for _ in 0..n_schemes {
        let name = want!(r.str(), "scheme name");
        let parsed = want!(SchemeSpec::parse(name).ok(), "unregistered scheme name");
        schemes.push(parsed);
    }
    if schemes != spec.schemes {
        return Decoded::Corrupt("scheme roster does not match the spec");
    }
    let groups = spec.row_groups();
    let n_rows = want!(r.u64(), "row count");
    if n_rows != groups.len() as u64 {
        return Decoded::Corrupt("row count does not match the spec");
    }
    let mut rows = Vec::new();
    for (expected_bench, expected_point) in groups {
        let name = want!(r.str(), "benchmark name");
        let bench = want!(benchmark_by_name(name), "unknown benchmark name");
        if bench != expected_bench {
            return Decoded::Corrupt("row order does not match the spec");
        }
        let point_name = want!(r.str(), "operating-point name");
        let point = want!(
            OperatingPoint::parse(point_name).ok(),
            "unknown operating point"
        );
        if point != expected_point {
            return Decoded::Corrupt("row order does not match the spec");
        }
        let n_accs = want!(r.u64(), "accumulator count");
        if n_accs != schemes.len() as u64 {
            return Decoded::Corrupt("one accumulator per scheme");
        }
        let mut accs = Vec::new();
        for _ in 0..n_accs {
            let scheme = match want!(r.u8(), "scheme-name tag") {
                0 => None,
                1 => Some(intern(want!(r.str(), "scheme display name"))),
                _ => return Decoded::Corrupt("bad scheme-name tag"),
            };
            let runs = want!(r.u64(), "runs");
            let cost = RunCost {
                instructions: want!(r.u64(), "instructions"),
                stall_cycles: want!(r.u64(), "stall_cycles"),
                flush_cycles: want!(r.u64(), "flush_cycles"),
                flush_events: want!(r.u64(), "flush_events"),
            };
            let avoided = want!(r.u64(), "avoided");
            let false_positives = want!(r.u64(), "false_positives");
            let recovered = want!(r.u64(), "recovered");
            let corruptions = want!(r.u64(), "corruptions");
            let mut parts = SimAccumulatorParts {
                scheme,
                runs,
                cost,
                avoided,
                false_positives,
                recovered,
                corruptions,
                recovered_by_class: Default::default(),
                stretch_sum: 0.0,
                accuracy_sum: 0.0,
                power_overhead: 0.0,
            };
            let n_classes = want!(r.u64(), "class count");
            if n_classes != parts.recovered_by_class.len() as u64 {
                return Decoded::Corrupt("error-class count drifted");
            }
            for slot in parts.recovered_by_class.iter_mut() {
                *slot = want!(r.u64(), "class counter");
            }
            parts.stretch_sum = f64::from_bits(want!(r.u64(), "stretch_sum"));
            parts.accuracy_sum = f64::from_bits(want!(r.u64(), "accuracy_sum"));
            parts.power_overhead = f64::from_bits(want!(r.u64(), "power_overhead"));
            accs.push(SimAccumulator::from_parts(parts));
        }
        rows.push((bench, point, accs));
    }
    if r.pos != body.len() {
        return Decoded::Corrupt("trailing bytes after the last accumulator");
    }
    Decoded::Hit(Box::new(GridResult::from_parts(schemes, rows)))
}

// ---------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------

/// Move a failed artifact out of the addressable namespace so the next
/// lookup recomputes instead of re-tripping on it. Best-effort: a
/// quarantine failure falls back to deletion, and neither may panic.
fn quarantine(path: &Path) {
    let mut to = path.as_os_str().to_owned();
    to.push(".corrupt");
    if std::fs::rename(path, PathBuf::from(&to)).is_err() {
        std::fs::remove_file(path).ok();
    }
}

/// Look `spec` up in the disk cache at `dir`. Returns the decoded grid on
/// a verified hit; counts a miss (and quarantines the artifact when it
/// was present but corrupt) otherwise. Never panics on file contents.
pub fn load(dir: &Path, spec: &GridSpec) -> Option<GridResult> {
    let path = artifact_path(dir, spec);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(_) => {
            bump(&DISK_MISSES, |s| &s.disk_misses, 1);
            return None;
        }
    };
    match decode(&bytes, spec) {
        Decoded::Hit(grid) => {
            bump(&DISK_HITS, |s| &s.disk_hits, 1);
            Some(*grid)
        }
        Decoded::OtherSpec => {
            bump(&DISK_MISSES, |s| &s.disk_misses, 1);
            None
        }
        Decoded::Corrupt(why) => {
            eprintln!(
                "warning: quarantining corrupt grid-cache artifact {} ({why}); recomputing",
                path.display()
            );
            quarantine(&path);
            bump(&CORRUPT_EVICTIONS, |s| &s.corrupt_evictions, 1);
            bump(&DISK_MISSES, |s| &s.disk_misses, 1);
            None
        }
    }
}

/// Persist `result` for `spec` under `dir`, atomically: the artifact is
/// written to a process-unique temp file and renamed into place, so
/// readers only ever observe complete artifacts.
///
/// # Errors
///
/// Propagates I/O errors (directory creation, write, rename); the temp
/// file is cleaned up on failure.
pub fn store(dir: &Path, spec: &GridSpec, result: &GridResult) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let bytes = encode(spec, result);
    let path = artifact_path(dir, spec);
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        cache_key(spec),
        std::process::id()
    ));
    let written = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
    if written.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    written?;
    bump(&BYTES_WRITTEN, |s| &s.bytes_written, bytes.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Regime;

    fn spec(trace_seed: u64) -> GridSpec {
        GridSpec {
            benchmarks: vec![Benchmark::Gzip, Benchmark::Mcf],
            chips: 2,
            schemes: vec![SchemeSpec::RazorCh3, SchemeSpec::DcsIcslt { entries: 32 }],
            voltages: vec![OperatingPoint::NTC],
            regime: Regime::Ch3,
            chip_seed_base: 220,
            trace_seed,
            cycles: 4_000,
            source: ntc_workload::TraceSource::Generator,
        }
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = cache_key(&spec(7));
        assert_eq!(a.len(), 32, "128-bit hex key");
        assert_eq!(a, cache_key(&spec(7)), "same spec, same key");
        assert_ne!(a, cache_key(&spec(8)), "any field change moves the key");
        let mut other = spec(7);
        other.chips = 3;
        assert_ne!(a, cache_key(&other));
        // The voltage axis is part of the key too.
        let mut volts = spec(7);
        volts.voltages = vec![OperatingPoint::NTC, OperatingPoint::STC];
        assert_ne!(a, cache_key(&volts));
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn memo_lru_caps_and_tracks_recency() {
        let mut lru: MemoLru<u32, u32> = MemoLru::new(2);
        assert!(lru.is_empty());
        lru.insert(1, 10);
        lru.insert(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(lru.get(&1), Some(10));
        lru.insert(3, 30);
        assert_eq!(lru.len(), 2);
        assert!(lru.contains(&1) && lru.contains(&3));
        assert!(!lru.contains(&2), "least recently used entry evicted");
        assert_eq!(lru.get(&2), None);
        // Re-inserting an existing key refreshes, not grows.
        lru.insert(1, 11);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(11));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn memo_lru_rejects_zero_cap() {
        let _ = MemoLru::<u32, u32>::new(0);
    }

    #[test]
    fn decode_flags_corruption_without_panicking() {
        // A structurally empty but checksummed artifact body must decode
        // as corrupt (truncated preimage), not panic.
        let mut bytes = MAGIC.to_vec();
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes, &spec(7)), Decoded::Corrupt(_)));
        // Garbage of every length up to a full header must never panic.
        for len in 0..64 {
            let garbage = vec![0xA5u8; len];
            assert!(!matches!(decode(&garbage, &spec(7)), Decoded::Hit(_)));
        }
    }

    #[test]
    fn interning_returns_one_pointer_per_content() {
        // Two calls with equal content from distinct allocations must
        // yield the same leaked pointer.
        let heap_copy = String::from("DCS-ICSLT (32)");
        let a = intern("DCS-ICSLT (32)");
        let b = intern(heap_copy.as_str());
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "DCS-ICSLT (32)");
    }
}
