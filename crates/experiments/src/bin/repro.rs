//! `repro` — regenerate every figure and table of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--full] [--jobs N] [--out DIR] [--format text|json]
//!       [--cache-dir DIR] [--no-cache] [--no-screen] [--no-incr]
//!       [--vdd LIST] [--trace-dir DIR [--record | --phases]]
//!       [--resume] [ID ...]
//! ```
//!
//! With no IDs, the whole suite runs. `--full` switches to paper-scale
//! parameters (million-cycle traces); the default fast scale keeps the run
//! laptop-friendly. `--jobs N` (or the `NTC_JOBS` environment variable)
//! pins the sweep-engine thread count — results are bit-identical at any
//! value, only the wall clock changes. `--vdd LIST` (or the `NTC_VDD`
//! environment variable) widens the supply-voltage axis of every
//! grid-shaped experiment to the given comma-separated operating points
//! (`0.45`, `v0.60`, `ntc`, `stc`, …); the default is the single NTC
//! point, which keeps every legacy table byte-identical. Tables print to
//! stdout (aligned text by default, one JSON object per line with
//! `--format json`) and CSVs land in `--out` (default `target/repro`).
//! `--list` enumerates all three registries — every experiment id, then
//! every registered scheme as `scheme <name> (<display name>)`, then the
//! operating-point roster as `vdd <name> (<display name>)` — and exits.
//!
//! Two mechanisms make reruns cheap:
//!
//! * `--cache-dir DIR` points the grid engine at a persistent
//!   content-addressed artifact cache: every `run_grid` result is stored
//!   under a key derived from its spec, and later invocations — any
//!   process, any `--jobs` count — reload it bit-identically instead of
//!   re-sweeping. Corrupt or stale artifacts are quarantined and
//!   recomputed, never trusted. `--no-cache` disables all caching (even
//!   the in-process memo) for a guaranteed cold run.
//! * `--resume` re-reads `<out>/manifest.json` from a previous invocation
//!   at the same scale and skips every experiment whose record passed and
//!   whose CSV is still on disk, carrying the old record forward marked
//!   `"resumed": true`. Failed or missing experiments run again — a
//!   crashed suite finishes from where it stopped.
//!
//! `--trace-dir DIR` switches every grid cell's instruction stream from
//! the statistical generator to recorded binary traces in `DIR`:
//! replayed whole by default (byte-identical results to the generator
//! when the traces were recorded from the same seeds), with `--record`
//! generating *and* writing each cell's trace file (results identical to
//! a plain generator run), or `--phases` replaying SimPoint-sampled
//! weighted phases instead of whole traces (an order of magnitude fewer
//! simulated instructions, results within a pinned tolerance).
//! `--record` and `--phases` require `--trace-dir` and are mutually
//! exclusive.
//!
//! `--no-screen` (or `NTC_SCREEN=off` in the environment) disables the
//! conservative timing screen in front of the exact dynamic kernel.
//! Results are bit-identical with the screen on or off — the screen only
//! skips cycles it can prove safe — so the flag exists for A/B timing
//! comparisons and as a belt-and-braces escape hatch; CI runs the fast
//! suite both ways and compares every CSV byte-for-byte.
//!
//! `--no-incr` (or `NTC_INCR=off`) likewise disables incremental STA
//! re-timing: every chip of a sweep falls back to a from-scratch
//! `StaticTiming::analyze` and full screen-table build instead of
//! delta-propagating from the previous chip of the same topology.
//! Results are bit-identical either way (the incremental engine
//! recomputes through the exact same per-gate folds), and CI proves it
//! with the same byte-for-byte CSV comparison.
//!
//! Every run also writes `<out>/manifest.json`: one structured
//! [`RunRecord`] per experiment (scale, jobs, wall time, sweep busy/wall
//! counters, oracle cache counters, grid disk-cache counters, row count,
//! CSV path, pass/fail) plus suite totals — the machine-readable receipt
//! that a "green" run actually produced what it claims. In `--format
//! json` mode the per-experiment status lines move to stderr so stdout
//! stays pure JSON lines.
//!
//! Exit codes:
//!
//! * `0` — every requested experiment ran, every CSV and the manifest
//!   were written;
//! * `1` — at least one experiment failed (panic, caught sweep-index
//!   panic, CSV or manifest write error), or `--resume` found a manifest
//!   it cannot trust; the diagnostics name it;
//! * `2` — usage error: bad flag, or **any** requested ID matching no
//!   experiment (a misspelled ID must never silently shrink the suite).

use ntc_core::scenario::SchemeSpec;
use ntc_core::tag_delay::take_oracle_stats;
use ntc_experiments::report::{table_to_json, Manifest, RunRecord};
use ntc_experiments::{all_experiments, cache, runner, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// stdout table format.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut scale = Scale::Fast;
    let mut out = PathBuf::from("target/repro");
    let mut format = Format::Text;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut resume = false;
    let mut vdd_flag = false;
    let mut trace_dir: Option<PathBuf> = None;
    let mut record = false;
    let mut phases = false;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--fast" => scale = Scale::Fast,
            "--cache-dir" => match args.next() {
                Some(dir) => cache_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--cache-dir requires a directory");
                    return 2;
                }
            },
            "--no-cache" => no_cache = true,
            "--no-screen" => ntc_experiments::config::set_screen_disabled(true),
            "--no-incr" => ntc_experiments::config::set_incr_disabled(true),
            "--trace-dir" => match args.next() {
                Some(dir) => trace_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--trace-dir requires a directory");
                    return 2;
                }
            },
            "--record" => record = true,
            "--phases" => phases = true,
            "--vdd" => match args.next().as_deref().map(ntc_experiments::parse_voltages) {
                Some(Ok(points)) => {
                    vdd_flag = true;
                    ntc_experiments::set_voltages(points);
                }
                Some(Err(e)) => {
                    eprintln!("--vdd: {e}");
                    return 2;
                }
                None => {
                    eprintln!("--vdd requires a comma-separated operating-point list");
                    return 2;
                }
            },
            "--resume" => resume = true,
            "--jobs" | "-j" => {
                match args
                    .next()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n > 0)
                {
                    Some(n) => runner::set_jobs(n),
                    None => {
                        eprintln!("--jobs requires a positive integer");
                        return 2;
                    }
                }
            }
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return 2;
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format requires `text` or `json` (got {other:?})");
                    return 2;
                }
            },
            "--list" => {
                // All three registries, so nothing can be runnable yet
                // unlisted: experiment ids first, then the scheme roster,
                // then the operating-point roster (ci.sh diffs this
                // output against the registries).
                for (id, _) in all_experiments() {
                    println!("{id}");
                }
                for spec in SchemeSpec::roster() {
                    println!("scheme {} ({})", spec.name(), spec.display_name());
                }
                for point in ntc_varmodel::OperatingPoint::roster() {
                    println!("vdd {} ({})", point.name(), point.display_name());
                }
                return 0;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--full] [--jobs N] [--out DIR] [--format text|json] \
                     [--cache-dir DIR] [--no-cache] [--no-screen] [--no-incr] [--vdd LIST] \
                     [--trace-dir DIR [--record | --phases]] [--resume] [--list] [ID ...]\n\
                     --cache-dir DIR  persistent grid-result cache shared across runs\n\
                     --no-cache       bypass all grid caching (cold run)\n\
                     --no-screen      disable the conservative timing screen (also NTC_SCREEN=off);\n\
                     \u{20}                results are bit-identical, only exact-kernel work changes\n\
                     --no-incr        disable incremental STA re-timing (also NTC_INCR=off);\n\
                     \u{20}                results are bit-identical, only static-analysis work changes\n\
                     --vdd LIST       sweep grids over these operating points (also NTC_VDD);\n\
                     \u{20}                comma-separated, e.g. `0.45,0.60,stc`; default ntc only\n\
                     --trace-dir DIR  replay recorded binary traces from DIR instead of the\n\
                     \u{20}                statistical generator (see also `ntc-workload record`)\n\
                     --record         with --trace-dir: generate and record each cell's trace\n\
                     --phases         with --trace-dir: replay SimPoint-weighted phases instead\n\
                     \u{20}                of whole traces (faster, tolerance-bounded results)\n\
                     --resume         skip experiments already passing in <out>/manifest.json;\n\
                     \u{20}                reruns records whose vdd roster or trace source changed\n\
                     exit codes: 0 all good; 1 experiment/CSV/manifest failure; \
                     2 usage error or unknown ID"
                );
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`; see --help");
                return 2;
            }
            id => selected.push(id.to_owned()),
        }
    }

    // Trace flags compose into one source; the modifier flags are
    // meaningless without a directory and contradictory together.
    if record && phases {
        eprintln!("--record and --phases are mutually exclusive");
        return 2;
    }
    let source = match (&trace_dir, record, phases) {
        (None, false, false) => ntc_workload::TraceSource::Generator,
        (None, true, _) => {
            eprintln!("--record requires --trace-dir");
            return 2;
        }
        (None, false, true) => {
            eprintln!("--phases requires --trace-dir");
            return 2;
        }
        (Some(dir), true, false) => ntc_workload::TraceSource::Record(dir.clone()),
        (Some(dir), false, true) => ntc_workload::TraceSource::Phases(dir.clone()),
        (Some(dir), false, false) => ntc_workload::TraceSource::Replay(dir.clone()),
        (Some(_), true, true) => unreachable!("rejected above"),
    };
    ntc_experiments::set_workload_source(Some(source.clone()));
    let source_label = source.to_string();

    // A malformed NTC_VDD is a usage error the moment the process
    // starts, not a mid-suite surprise — unless `--vdd` was given, which
    // overrides the environment entirely (so a stale env var cannot veto
    // an explicit request).
    if !vdd_flag {
        if let Err(e) = ntc_experiments::config::env_voltages() {
            eprintln!("error: {e}");
            eprintln!("fix the list or unset NTC_VDD; see `repro --list` for the roster");
            return 2;
        }
    }

    let suite = all_experiments();
    // Strict selection: every requested ID must name a real experiment. A
    // single typo fails the whole invocation up front — silently running a
    // subset is exactly the kind of "green but meaningless" outcome the
    // manifest exists to prevent.
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|sel| !suite.iter().any(|(id, _)| *id == sel.as_str()))
        .collect();
    if !unknown.is_empty() {
        for u in unknown {
            eprintln!("error: no experiment matches `{u}`");
        }
        eprintln!("run `repro --list` for the available ids");
        return 2;
    }
    let to_run: Vec<_> = suite
        .iter()
        .filter(|(id, _)| selected.is_empty() || selected.iter().any(|s| s == id))
        .collect();

    // --no-cache wins over --cache-dir: a cold run must stay cold.
    if no_cache {
        cache::set_disabled(true);
    } else if let Some(dir) = &cache_dir {
        cache::set_disk_dir(Some(dir.clone()));
    }

    let scale_label = match scale {
        Scale::Fast => "fast",
        Scale::Full => "full",
    };
    let jobs = runner::jobs();

    // --resume: records of the previous manifest worth carrying forward.
    // A present-but-untrustworthy manifest (unparseable, wrong schema, or
    // a different scale) is an error, not a silent full rerun — resuming
    // is a claim about previous results, so the previous results must be
    // readable and comparable. A missing manifest just means there is
    // nothing to skip.
    let mut carried: Vec<RunRecord> = Vec::new();
    if resume {
        let manifest_path = out.join("manifest.json");
        match std::fs::read_to_string(&manifest_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "error: --resume could not read {}: {e}",
                    manifest_path.display()
                );
                return 1;
            }
            Ok(body) => match Manifest::from_json_str(&body) {
                Err(e) => {
                    eprintln!(
                        "error: --resume cannot trust {}: {e}",
                        manifest_path.display()
                    );
                    return 1;
                }
                Ok(prev) if prev.scale != scale_label => {
                    eprintln!(
                        "error: --resume found a {} manifest in {} but this run is {scale_label} \
                         scale; results would not be comparable",
                        prev.scale,
                        manifest_path.display()
                    );
                    return 1;
                }
                Ok(prev) => carried = prev.records,
            },
        }
    }
    let requested_vdd: Vec<String> = ntc_experiments::voltages()
        .iter()
        .map(|p| p.name().to_owned())
        .collect();
    let carry_forward = |id: &str| -> Option<RunRecord> {
        let prev = carried.iter().find(|r| r.id == id)?;
        // Only a passing record whose CSV still exists is trustworthy
        // enough to skip the work.
        if !prev.passed() || !prev.csv.as_deref().is_some_and(|p| p.is_file()) {
            return None;
        }
        // A record computed over a different voltage roster or from a
        // different trace source answers a different question — rerun it
        // rather than resuming stale numbers under the current flags.
        if prev.requested_vdd != requested_vdd || prev.source != source_label {
            return None;
        }
        let mut r = prev.clone();
        r.resumed = true;
        Some(r)
    };
    let status_line = |line: &str| match format {
        // In JSON mode stdout carries only JSON documents; human-facing
        // status goes to stderr.
        Format::Text => println!("{line}"),
        Format::Json => eprintln!("{line}"),
    };
    status_line(&format!(
        "# ntc-choke reproduction suite — {} experiment(s), {scale_label} scale, {jobs} job(s)\n",
        to_run.len()
    ));

    // Deterministic failure injection for the resume black-box tests:
    // the named experiment panics instead of running, standing in for a
    // mid-suite crash without a bespoke fault build.
    let injected_failure = std::env::var("NTC_REPRO_FAIL").ok();

    let mut records: Vec<RunRecord> = Vec::new();
    for (id, run_experiment) in to_run {
        if let Some(prev) = carry_forward(id) {
            status_line(&describe(&prev));
            records.push(prev);
            continue;
        }
        // Drain any leftover counters so this experiment's record only
        // accounts for its own work.
        let _ = runner::take_stats();
        let _ = take_oracle_stats();
        let _ = cache::take_stats();
        let _ = ntc_experiments::take_voltage_cells();
        let _ = ntc_workload::take_stats();
        let _ = runner::take_sweep_failures();
        let start = Instant::now();
        // Experiment-level fault isolation: a panicking experiment (e.g. a
        // chip failing inside a strict `sweep`) becomes a failed record and
        // a nonzero exit, not a dead suite.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if injected_failure.as_deref() == Some(*id) {
                panic!("injected failure via NTC_REPRO_FAIL");
            }
            run_experiment(scale)
        }));
        let mut record = RunRecord {
            id: (*id).to_owned(),
            title: String::new(),
            scale: scale_label.to_owned(),
            jobs,
            wall_s: start.elapsed().as_secs_f64(),
            sweep: runner::take_stats(),
            oracle: take_oracle_stats(),
            cache: cache::take_stats(),
            voltages: ntc_experiments::take_voltage_cells()
                .into_iter()
                .map(|(point, cells)| (point.name().to_owned(), cells))
                .collect(),
            requested_vdd: requested_vdd.clone(),
            source: source_label.clone(),
            workload: ntc_workload::take_stats(),
            sweep_failures: runner::take_sweep_failures(),
            rows: 0,
            csv: None,
            resumed: false,
            error: None,
        };
        match outcome {
            Ok(table) => {
                record.title = table.title.clone();
                record.rows = table.rows.len();
                match format {
                    Format::Text => println!("{table}"),
                    Format::Json => println!("{}", table_to_json(&table)),
                }
                match table.save_csv(&out) {
                    Ok(path) => record.csv = Some(path),
                    Err(e) => record.error = Some(format!("failed to write CSV: {e}")),
                }
            }
            Err(payload) => {
                let message: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s
                } else {
                    "non-string panic payload"
                };
                record.error = Some(format!("experiment panicked: {message}"));
            }
        }
        status_line(&describe(&record));
        records.push(record);
    }

    let manifest = Manifest::new(scale_label, jobs, records);
    let summary = manifest.summary_line();
    match manifest.save(&out) {
        Ok(path) => status_line(&format!("{summary} → {}", path.display())),
        Err(e) => {
            eprintln!("{summary}");
            eprintln!("error: failed to write manifest: {e}");
            return 1;
        }
    }
    if manifest.failed() > 0 {
        1
    } else {
        0
    }
}

/// One human-readable status line per experiment, built from the same
/// `RunRecord` the manifest serializes — the printed wall/busy/oracle
/// numbers *are* the recorded ones.
fn describe(r: &RunRecord) -> String {
    let mut line = format!(
        "[{}] {}{} {:.1}s",
        r.id,
        if r.passed() { "ok" } else { "FAILED" },
        if r.resumed { " (resumed)" } else { "" },
        r.wall_s
    );
    if let Some(speedup) = r.sweep.speedup() {
        line.push_str(&format!(
            ", sweep busy {:.3}s / wall {:.3}s ({speedup:.2}x)",
            r.sweep.busy.as_secs_f64(),
            r.sweep.wall.as_secs_f64()
        ));
    }
    // Oracle cache effectiveness: Phase-A gate-level simulations vs
    // per-oracle and shared-cache hits. A regression here (more sims,
    // fewer hits) shows up even when results stay bit-identical.
    if r.oracle.queries() > 0 {
        line.push_str(&format!(
            ", oracle {} sims / {} local hits / {} shared hits",
            r.oracle.gate_sims, r.oracle.local_hits, r.oracle.shared_hits
        ));
        // Screen tier (two-tier oracle): cycles answered by the
        // conservative bound vs inconclusive screens that fell through to
        // the exact kernel vs queries that bypassed the screen outright.
        if r.oracle.screen_hits + r.oracle.screen_misses + r.oracle.screen_fallbacks > 0 {
            line.push_str(&format!(
                ", screen {} hits / {} misses / {} fallbacks",
                r.oracle.screen_hits, r.oracle.screen_misses, r.oracle.screen_fallbacks
            ));
        }
    }
    // Static-timing cost: full analyses vs incremental re-timing passes
    // (and how much of the netlist the deltas actually touched). The
    // headline win of the retained engine is visible right here — chips
    // after the first re-time incrementally instead of fully.
    if r.oracle.sta_full + r.oracle.sta_incremental > 0 {
        line.push_str(&format!(
            ", sta {} full / {} incremental ({} gates touched)",
            r.oracle.sta_full, r.oracle.sta_incremental, r.oracle.incr_gates_touched
        ));
    }
    // Grid disk-cache traffic: a warm rerun shows hits where the cold run
    // showed misses + bytes written; corrupt evictions flag artifacts
    // that had to be quarantined and recomputed.
    if r.cache.lookups() > 0 {
        line.push_str(&format!(
            ", grid cache {} disk hit(s) / {} miss(es)",
            r.cache.disk_hits, r.cache.disk_misses
        ));
        if r.cache.corrupt_evictions > 0 {
            line.push_str(&format!(
                " ({} corrupt artifact(s) evicted)",
                r.cache.corrupt_evictions
            ));
        }
        if r.cache.bytes_written > 0 {
            line.push_str(&format!(", {} B written", r.cache.bytes_written));
        }
    }
    // Voltage-axis traffic: which operating points this experiment's
    // grids actually computed cells at (memo/disk hits excluded). Only
    // worth a line once the axis is wider than the NTC default.
    if r.voltages.len() > 1 {
        let per_point: Vec<String> = r
            .voltages
            .iter()
            .map(|(name, cells)| format!("{name}={cells}"))
            .collect();
        line.push_str(&format!(", cells per vdd {}", per_point.join(" ")));
    }
    // Trace record/replay traffic: only present when a --trace-dir mode
    // was active (the generator path leaves all five counters zero).
    if r.workload.any() {
        line.push_str(&format!(
            ", trace {} recorded / {} replayed / {} phase-replayed",
            r.workload.traces_recorded, r.workload.trace_replays, r.workload.phase_replays
        ));
        if r.workload.phase_instructions > 0 {
            line.push_str(&format!(
                " ({} phase instr simulated)",
                r.workload.phase_instructions
            ));
        }
    }
    if !r.sweep_failures.is_empty() {
        line.push_str(&format!(
            ", {} sweep index(es) panicked",
            r.sweep_failures.len()
        ));
    }
    match (&r.csv, &r.error) {
        (Some(path), None) => line.push_str(&format!(" → {}\n", path.display())),
        (_, Some(e)) => line.push_str(&format!(": {e}\n")),
        (None, None) => line.push('\n'),
    }
    line
}
