//! `repro` — regenerate every figure and table of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--full] [--out DIR] [ID ...]
//! ```
//!
//! With no IDs, the whole suite runs. `--full` switches to paper-scale
//! parameters (million-cycle traces); the default fast scale keeps the run
//! laptop-friendly. Tables print to stdout and CSVs land in `--out`
//! (default `target/repro`).

use ntc_experiments::{all_experiments, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut scale = Scale::Fast;
    let mut out = PathBuf::from("target/repro");
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--fast" => scale = Scale::Fast,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }));
            }
            "--list" => {
                for (id, _) in all_experiments() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: repro [--full] [--out DIR] [--list] [ID ...]");
                return;
            }
            id => selected.push(id.to_owned()),
        }
    }

    let suite = all_experiments();
    let to_run: Vec<_> = suite
        .iter()
        .filter(|(id, _)| selected.is_empty() || selected.iter().any(|s| s == id))
        .collect();
    if to_run.is_empty() {
        eprintln!("no experiment matches {selected:?}; try --list");
        std::process::exit(2);
    }

    println!(
        "# ntc-choke reproduction suite — {} experiment(s), {:?} scale\n",
        to_run.len(),
        scale
    );
    for (id, runner) in to_run {
        let start = Instant::now();
        let table = runner(scale);
        let elapsed = start.elapsed();
        println!("{table}");
        match table.save_csv(&out) {
            Ok(path) => println!("[{id}] {:.1}s → {}\n", elapsed.as_secs_f64(), path.display()),
            Err(e) => eprintln!("[{id}] failed to write CSV: {e}"),
        }
    }
}
