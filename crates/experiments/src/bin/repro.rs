//! `repro` — regenerate every figure and table of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--full] [--jobs N] [--out DIR] [ID ...]
//! ```
//!
//! With no IDs, the whole suite runs. `--full` switches to paper-scale
//! parameters (million-cycle traces); the default fast scale keeps the run
//! laptop-friendly. `--jobs N` (or the `NTC_JOBS` environment variable)
//! pins the sweep-engine thread count — results are bit-identical at any
//! value, only the wall clock changes. Tables print to stdout and CSVs
//! land in `--out` (default `target/repro`).

use ntc_core::tag_delay::take_oracle_stats;
use ntc_experiments::{all_experiments, runner, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut scale = Scale::Fast;
    let mut out = PathBuf::from("target/repro");
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--fast" => scale = Scale::Fast,
            "--jobs" | "-j" => {
                let n = args
                    .next()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs requires a positive integer");
                        std::process::exit(2);
                    });
                runner::set_jobs(n);
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }));
            }
            "--list" => {
                for (id, _) in all_experiments() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: repro [--full] [--jobs N] [--out DIR] [--list] [ID ...]");
                return;
            }
            id => selected.push(id.to_owned()),
        }
    }

    let suite = all_experiments();
    let to_run: Vec<_> = suite
        .iter()
        .filter(|(id, _)| selected.is_empty() || selected.iter().any(|s| s == id))
        .collect();
    if to_run.is_empty() {
        eprintln!("no experiment matches {selected:?}; try --list");
        std::process::exit(2);
    }

    println!(
        "# ntc-choke reproduction suite — {} experiment(s), {:?} scale, {} job(s)\n",
        to_run.len(),
        scale,
        runner::jobs()
    );
    for (id, run) in to_run {
        let _ = runner::take_stats(); // drain any leftover sweep counters
        let _ = take_oracle_stats(); // ...and leftover oracle counters
        let start = Instant::now();
        let table = run(scale);
        let elapsed = start.elapsed();
        let speedup = runner::take_stats()
            .speedup()
            .map(|s| format!(", sweep speedup {s:.2}x"))
            .unwrap_or_default();
        // Oracle cache effectiveness: Phase-A gate-level simulations vs
        // per-oracle and shared-cache hits. A regression here (more sims,
        // fewer hits) shows up even when results stay bit-identical.
        let oracle = take_oracle_stats();
        let cache = if oracle.queries() > 0 {
            format!(
                ", oracle {} sims / {} local hits / {} shared hits",
                oracle.gate_sims, oracle.local_hits, oracle.shared_hits
            )
        } else {
            String::new()
        };
        println!("{table}");
        match table.save_csv(&out) {
            Ok(path) => println!(
                "[{id}] {:.1}s{speedup}{cache} → {}\n",
                elapsed.as_secs_f64(),
                path.display()
            ),
            Err(e) => eprintln!("[{id}] failed to write CSV: {e}"),
        }
    }
}
