//! `repro` — regenerate every figure and table of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--full] [--jobs N] [--out DIR] [--format text|json] [ID ...]
//! ```
//!
//! With no IDs, the whole suite runs. `--full` switches to paper-scale
//! parameters (million-cycle traces); the default fast scale keeps the run
//! laptop-friendly. `--jobs N` (or the `NTC_JOBS` environment variable)
//! pins the sweep-engine thread count — results are bit-identical at any
//! value, only the wall clock changes. Tables print to stdout (aligned
//! text by default, one JSON object per line with `--format json`) and
//! CSVs land in `--out` (default `target/repro`). `--list` enumerates
//! both registries — every experiment id, then every registered scheme as
//! `scheme <name> (<display name>)` — and exits.
//!
//! Every run also writes `<out>/manifest.json`: one structured
//! [`RunRecord`] per experiment (scale, jobs, wall time, sweep busy/wall
//! counters, oracle cache counters, row count, CSV path, pass/fail) plus
//! suite totals — the machine-readable receipt that a "green" run actually
//! produced what it claims. In `--format json` mode the per-experiment
//! status lines move to stderr so stdout stays pure JSON lines.
//!
//! Exit codes:
//!
//! * `0` — every requested experiment ran, every CSV and the manifest
//!   were written;
//! * `1` — at least one experiment failed (panic, caught sweep-index
//!   panic, CSV or manifest write error); the manifest names it;
//! * `2` — usage error: bad flag, or **any** requested ID matching no
//!   experiment (a misspelled ID must never silently shrink the suite).

use ntc_core::scenario::SchemeSpec;
use ntc_core::tag_delay::take_oracle_stats;
use ntc_experiments::report::{table_to_json, Manifest, RunRecord};
use ntc_experiments::{all_experiments, runner, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// stdout table format.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut scale = Scale::Fast;
    let mut out = PathBuf::from("target/repro");
    let mut format = Format::Text;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--fast" => scale = Scale::Fast,
            "--jobs" | "-j" => {
                match args
                    .next()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .filter(|&n| n > 0)
                {
                    Some(n) => runner::set_jobs(n),
                    None => {
                        eprintln!("--jobs requires a positive integer");
                        return 2;
                    }
                }
            }
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return 2;
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format requires `text` or `json` (got {other:?})");
                    return 2;
                }
            },
            "--list" => {
                // Both registries, so nothing can be runnable yet
                // unlisted: experiment ids first, then the scheme roster
                // (ci.sh diffs this output against the registries).
                for (id, _) in all_experiments() {
                    println!("{id}");
                }
                for spec in SchemeSpec::roster() {
                    println!("scheme {} ({})", spec.name(), spec.display_name());
                }
                return 0;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--full] [--jobs N] [--out DIR] [--format text|json] \
                     [--list] [ID ...]\n\
                     exit codes: 0 all good; 1 experiment/CSV/manifest failure; \
                     2 usage error or unknown ID"
                );
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`; see --help");
                return 2;
            }
            id => selected.push(id.to_owned()),
        }
    }

    let suite = all_experiments();
    // Strict selection: every requested ID must name a real experiment. A
    // single typo fails the whole invocation up front — silently running a
    // subset is exactly the kind of "green but meaningless" outcome the
    // manifest exists to prevent.
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|sel| !suite.iter().any(|(id, _)| *id == sel.as_str()))
        .collect();
    if !unknown.is_empty() {
        for u in unknown {
            eprintln!("error: no experiment matches `{u}`");
        }
        eprintln!("run `repro --list` for the available ids");
        return 2;
    }
    let to_run: Vec<_> = suite
        .iter()
        .filter(|(id, _)| selected.is_empty() || selected.iter().any(|s| s == id))
        .collect();

    let scale_label = match scale {
        Scale::Fast => "fast",
        Scale::Full => "full",
    };
    let jobs = runner::jobs();
    let status_line = |line: &str| match format {
        // In JSON mode stdout carries only JSON documents; human-facing
        // status goes to stderr.
        Format::Text => println!("{line}"),
        Format::Json => eprintln!("{line}"),
    };
    status_line(&format!(
        "# ntc-choke reproduction suite — {} experiment(s), {scale_label} scale, {jobs} job(s)\n",
        to_run.len()
    ));

    let mut records: Vec<RunRecord> = Vec::new();
    for (id, run_experiment) in to_run {
        // Drain any leftover counters so this experiment's record only
        // accounts for its own work.
        let _ = runner::take_stats();
        let _ = take_oracle_stats();
        let _ = runner::take_sweep_failures();
        let start = Instant::now();
        // Experiment-level fault isolation: a panicking experiment (e.g. a
        // chip failing inside a strict `sweep`) becomes a failed record and
        // a nonzero exit, not a dead suite.
        let outcome = catch_unwind(AssertUnwindSafe(|| run_experiment(scale)));
        let mut record = RunRecord {
            id: (*id).to_owned(),
            title: String::new(),
            scale: scale_label.to_owned(),
            jobs,
            wall_s: start.elapsed().as_secs_f64(),
            sweep: runner::take_stats(),
            oracle: take_oracle_stats(),
            sweep_failures: runner::take_sweep_failures(),
            rows: 0,
            csv: None,
            error: None,
        };
        match outcome {
            Ok(table) => {
                record.title = table.title.clone();
                record.rows = table.rows.len();
                match format {
                    Format::Text => println!("{table}"),
                    Format::Json => println!("{}", table_to_json(&table)),
                }
                match table.save_csv(&out) {
                    Ok(path) => record.csv = Some(path),
                    Err(e) => record.error = Some(format!("failed to write CSV: {e}")),
                }
            }
            Err(payload) => {
                let message: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s
                } else {
                    "non-string panic payload"
                };
                record.error = Some(format!("experiment panicked: {message}"));
            }
        }
        status_line(&describe(&record));
        records.push(record);
    }

    let manifest = Manifest::new(scale_label, jobs, records);
    let summary = manifest.summary_line();
    match manifest.save(&out) {
        Ok(path) => status_line(&format!("{summary} → {}", path.display())),
        Err(e) => {
            eprintln!("{summary}");
            eprintln!("error: failed to write manifest: {e}");
            return 1;
        }
    }
    if manifest.failed() > 0 {
        1
    } else {
        0
    }
}

/// One human-readable status line per experiment, built from the same
/// `RunRecord` the manifest serializes — the printed wall/busy/oracle
/// numbers *are* the recorded ones.
fn describe(r: &RunRecord) -> String {
    let mut line = format!(
        "[{}] {} {:.1}s",
        r.id,
        if r.passed() { "ok" } else { "FAILED" },
        r.wall_s
    );
    if let Some(speedup) = r.sweep.speedup() {
        line.push_str(&format!(
            ", sweep busy {:.3}s / wall {:.3}s ({speedup:.2}x)",
            r.sweep.busy.as_secs_f64(),
            r.sweep.wall.as_secs_f64()
        ));
    }
    // Oracle cache effectiveness: Phase-A gate-level simulations vs
    // per-oracle and shared-cache hits. A regression here (more sims,
    // fewer hits) shows up even when results stay bit-identical.
    if r.oracle.queries() > 0 {
        line.push_str(&format!(
            ", oracle {} sims / {} local hits / {} shared hits",
            r.oracle.gate_sims, r.oracle.local_hits, r.oracle.shared_hits
        ));
    }
    if !r.sweep_failures.is_empty() {
        line.push_str(&format!(
            ", {} sweep index(es) panicked",
            r.sweep_failures.len()
        ));
    }
    match (&r.csv, &r.error) {
        (Some(path), None) => line.push_str(&format!(" → {}\n", path.display())),
        (_, Some(e)) => line.push_str(&format!(": {e}\n")),
        (None, None) => line.push('\n'),
    }
    line
}
