//! Extension studies beyond the paper's figures — the "future work"
//! directions the dissertation gestures at, built on the same stack:
//!
//! * **voltage sweep** — the canonical NTC motivation curve: energy per
//!   operation and performance across supply voltages, showing why 0.45 V
//!   is the sweet spot the paper operates at (and how error rates explode
//!   as Vdd falls);
//! * **aging adaptation** — §3.3 claims DCS adapts to violations that
//!   *magnify over the chip's lifetime*; quantify it by aging a learned
//!   chip and comparing a warm DCS against a cold restart;
//! * **stall sufficiency** — the paper assumes every errant instruction
//!   completes within two cycles (§3.3.1); measure how often a choke
//!   delay actually exceeds that budget.

use crate::config::{build_oracle, Scale, CH3_REGIME};
use crate::runner::{sweep, sweep_over};
use crate::scenario::{expand, fold_cells};
use crate::table::ResultTable;
use ntc_core::baselines::Razor;
use ntc_core::dcs::Dcs;
use ntc_core::sim::run_scheme;
use ntc_core::tag_delay::{OracleConfig, TagDelayOracle};
use ntc_netlist::generators::alu::Alu;
use ntc_pipeline::Pipeline;
use ntc_timing::{ClockSpec, StaticTiming};
use ntc_varmodel::{at_condition, ChipSignature, Corner, OperatingCondition, VariationParams};
use ntc_workload::{Benchmark, TraceGenerator};

/// Voltage sweep: per supply point, the nominal delay factor, energy per
/// operation (∝ Vdd²), a razor-style error rate on a fabricated chip, and
/// the resulting energy-delay product — the NTC sweet-spot curve.
pub fn voltage_sweep(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "ext.vdd",
        "Supply-voltage sweep: delay, energy/op, error rate, relative EDP",
        ["delay factor", "energy/op", "error %", "rel EDP"],
    );
    let alu = Alu::new(ntc_isa::ARCH_WIDTH);
    let trace = TraceGenerator::new(Benchmark::Gzip, 5).trace(scale.cycles() / 10);
    // One sweep task per supply point; `sweep_over` returns rows in key
    // order, so the table reads top-to-bottom from STC to deep NTC exactly
    // as the sequential loop built it.
    let vdds = [0.80f64, 0.65, 0.55, 0.45, 0.42];
    let rows = sweep_over(&vdds, |_, &vdd| {
        let corner = Corner::custom(vdd);
        let params = if vdd > 0.7 {
            VariationParams::stc()
        } else {
            VariationParams::ntc()
        };
        let nominal = ChipSignature::nominal(alu.netlist(), corner);
        let crit = StaticTiming::analyze(alu.netlist(), &nominal).critical_delay_ps(alu.netlist());
        let sig = ChipSignature::fabricate(alu.netlist(), corner, params, 5);
        let mut oracle =
            TagDelayOracle::new(alu.netlist().clone(), sig, OracleConfig::default());
        let clock = ClockSpec {
            period_ps: crit * 1.10,
            hold_ps: crit * 0.10,
        };
        let r = run_scheme(&mut Razor::ch3(), &mut oracle, &trace, clock, Pipeline::core1());
        let error_pct = 100.0 * r.errors_total() as f64 / (trace.len() - 1) as f64;
        let delay_factor = corner.delay_factor();
        let energy_per_op = corner.energy_factor();
        // EDP per op at this voltage, with the error-recovery cycles in:
        // energy/op × delay/op × cycle inflation².
        let inflation = r.cost.total_cycles() as f64 / r.cost.instructions as f64;
        let edp = energy_per_op * delay_factor * inflation * inflation;
        vec![delay_factor, energy_per_op, error_pct, edp]
    });
    for (&vdd, row) in vdds.iter().zip(rows) {
        t.push_row(format!("{vdd:.2} V"), row);
    }
    t
}

/// Aging adaptation: fabricate a chip, let DCS learn it fresh, then age
/// the silicon and compare a *warm* DCS (table carried over) against a
/// *cold* one — the lifetime-adaptivity §3.3 claims.
pub fn aging_adaptation(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "ext.aging",
        "DCS across chip lifetime: errors and penalty per phase",
        ["errors", "recovered", "penalty"],
    );
    let alu = Alu::new(ntc_isa::ARCH_WIDTH);
    let fresh_sig =
        ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);
    let nominal = ChipSignature::nominal(alu.netlist(), Corner::NTC);
    let crit = StaticTiming::analyze(alu.netlist(), &nominal).critical_delay_ps(alu.netlist());
    let clock = ClockSpec {
        period_ps: crit * 1.10,
        hold_ps: crit * 0.10,
    };
    let cycles = scale.cycles() / 4;
    let trace = TraceGenerator::new(Benchmark::Parser, 9).trace(cycles);
    let pipe = Pipeline::core1();

    // Phase 1: fresh silicon, cold DCS.
    let mut dcs = Dcs::icslt_default();
    let mut oracle = TagDelayOracle::new(alu.netlist().clone(), fresh_sig.clone(), OracleConfig::default());
    let fresh = run_scheme(&mut dcs, &mut oracle, &trace, clock, pipe);
    t.push_row(
        "fresh, cold DCS",
        vec![
            fresh.errors_total() as f64,
            fresh.recovered as f64,
            fresh.cost.penalty_cycles() as f64,
        ],
    );

    // Phase 2: three-year-old silicon; the SAME DCS instance continues
    // (its CSLT already knows the fresh-chip choke tags; aging magnifies
    // them and adds a few new ones it must learn incrementally).
    let aged_sig = at_condition(
        alu.netlist(),
        &fresh_sig,
        OperatingCondition {
            age_hours: 3.0 * 8760.0,
            ..OperatingCondition::nominal()
        },
    );
    let mut aged_oracle =
        TagDelayOracle::new(alu.netlist().clone(), aged_sig.clone(), OracleConfig::default());
    let warm = run_scheme(&mut dcs, &mut aged_oracle, &trace, clock, pipe);
    t.push_row(
        "aged, warm DCS",
        vec![
            warm.errors_total() as f64,
            warm.recovered as f64,
            warm.cost.penalty_cycles() as f64,
        ],
    );

    // Phase 3: the same aged silicon with a cold DCS, for contrast.
    let mut cold = Dcs::icslt_default();
    let mut aged_oracle2 =
        TagDelayOracle::new(alu.netlist().clone(), aged_sig, OracleConfig::default());
    let cold_r = run_scheme(&mut cold, &mut aged_oracle2, &trace, clock, pipe);
    t.push_row(
        "aged, cold DCS",
        vec![
            cold_r.errors_total() as f64,
            cold_r.recovered as f64,
            cold_r.cost.penalty_cycles() as f64,
        ],
    );
    t
}

/// Stall sufficiency: the fraction of errant cycles whose sensitized delay
/// exceeds one and two clock periods — the validity check on the paper's
/// "an instruction finishes in maximum two cycles" assumption (§3.3.1).
pub fn stall_sufficiency(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "ext.stall2",
        "Errant-cycle delay vs the two-cycle stall budget (% of errant cycles)",
        ["<= 2T", "> 2T"],
    );
    let benches = [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Vortex];
    let grid = expand(&benches, scale.chips());
    let cells = sweep_over(&grid, |_, &(bench, chip)| {
        let mut oracle = build_oracle(Corner::NTC, 600 + chip as u64, false, CH3_REGIME);
        let clock = CH3_REGIME.clock(oracle.nominal_critical_delay_ps());
        let trace = TraceGenerator::new(bench, 5).trace(scale.cycles() / 4);
        let mut within = 0u64;
        let mut beyond = 0u64;
        for pair in trace.windows(2) {
            if let Some(d) = oracle.delays(&pair[0], &pair[1]).max_ps {
                if d > clock.period_ps {
                    if d <= 2.0 * clock.period_ps {
                        within += 1;
                    } else {
                        beyond += 1;
                    }
                }
            }
        }
        (within, beyond)
    });
    let folded = fold_cells(
        grid.iter().map(|&(b, _)| b),
        cells,
        || (0u64, 0u64),
        |(within, beyond), (w, y)| {
            *within += w;
            *beyond += y;
        },
    );
    for (bench, (within, beyond)) in folded {
        let total = (within + beyond).max(1) as f64;
        t.push_row(
            bench.name(),
            vec![100.0 * within as f64 / total, 100.0 * beyond as f64 / total],
        );
    }
    t
}

/// Die binning: fabricate a batch of dice, clock each aggressively, and
/// bin by delivered throughput (relative to an error-free die at the same
/// clock) under Razor vs under DCS. The manycore-NTC yield argument in one
/// table: choke-heavy dice that miss the bin under replay-storm Razor are
/// recovered by DCS's stall-based avoidance.
pub fn die_binning(scale: Scale) -> ResultTable {
    let mut t = ResultTable::new(
        "ext.binning",
        "Die binning at an aggressive clock: % of dice per throughput bin",
        [">= 90%", "70-90%", "< 70%"],
    );
    let dice = (scale.chips() * 6).max(8);
    let trace = TraceGenerator::new(Benchmark::Gap, 3).trace(scale.cycles() / 6);
    let pipe = Pipeline::core1();

    let per_die = sweep(dice, |die| {
        let mut oracle = build_oracle(Corner::NTC, 700 + die as u64, false, CH3_REGIME);
        let clock = CH3_REGIME.clock(oracle.nominal_critical_delay_ps());
        let razor = run_scheme(&mut Razor::ch3(), &mut oracle, &trace, clock, pipe);
        let dcs = run_scheme(&mut Dcs::icslt_default(), &mut oracle, &trace, clock, pipe);
        [razor, dcs].map(|r| {
            let throughput = r.cost.instructions as f64 / r.cost.total_cycles() as f64;
            if throughput >= 0.90 {
                0usize
            } else if throughput >= 0.70 {
                1
            } else {
                2
            }
        })
    });
    let mut bins = [[0usize; 3]; 2]; // [razor, dcs] x [high, mid, low]
    for die_bins in per_die {
        for (row, bin) in die_bins.into_iter().enumerate() {
            bins[row][bin] += 1;
        }
    }
    for (name, row) in [("Razor", bins[0]), ("DCS-ICSLT", bins[1])] {
        t.push_row(
            name,
            row.iter()
                .map(|&c| 100.0 * c as f64 / dice as f64)
                .collect(),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_dcs_never_bins_worse() {
        let t = die_binning(Scale::Fast);
        let top = |row: &str| t.cell(row, ">= 90%").expect("cell");
        assert!(
            top("DCS-ICSLT") >= top("Razor"),
            "DCS recovers dice into the top bin: DCS {} vs Razor {}",
            top("DCS-ICSLT"),
            top("Razor")
        );
    }

    #[test]
    fn voltage_sweep_shapes() {
        let t = voltage_sweep(Scale::Fast);
        // Delay rises monotonically as Vdd falls; energy/op falls.
        let delays: Vec<f64> = t.rows.iter().map(|(_, v)| v[0]).collect();
        let energies: Vec<f64> = t.rows.iter().map(|(_, v)| v[1]).collect();
        for w in delays.windows(2) {
            assert!(w[1] > w[0], "delay grows as Vdd drops: {delays:?}");
        }
        for w in energies.windows(2) {
            assert!(w[1] < w[0], "energy/op shrinks as Vdd drops: {energies:?}");
        }
    }

    #[test]
    fn warm_dcs_recovers_less_than_cold_on_aged_silicon() {
        let t = aging_adaptation(Scale::Fast);
        let warm = t.cell("aged, warm DCS", "recovered").expect("row");
        let cold = t.cell("aged, cold DCS", "recovered").expect("row");
        assert!(
            warm <= cold,
            "a warm table re-learns less: warm {warm} vs cold {cold}"
        );
    }
}
