//! # ntc-experiments
//!
//! The reproduction harness: one runner per figure/table of the paper's
//! evaluation. Each runner returns a [`ResultTable`] mirroring the rows
//! and series the original figure plots; the `repro` binary prints every
//! table and writes CSVs to `target/repro/`.
//!
//! Experiments come in two scales ([`Scale::Fast`] for CI, [`Scale::Full`]
//! for paper-scale runs), and are grouped by chapter:
//!
//! * [`ch3`] — the DATE 2017 DCS study (Figs. 3.2–3.4, 3.8–3.12, §3.5.6);
//! * [`ch4`] — the Trident study (Figs. 4.2–4.4, 4.8–4.12, §4.5.7);
//! * [`ablation`] — ablations over the design choices DESIGN.md calls out.
//!
//! Grid-shaped runners (a scheme roster compared over benchmarks × chips
//! × operating points) are expressed as [`scenario::GridSpec`]s and
//! executed by [`scenario::run_grid`], which drives the registered
//! [`ntc_core::scenario::SchemeSpec`]s through the parallel sweep engine
//! and folds per (benchmark, voltage) row with one shared accumulator.
//! The supply-voltage axis defaults to NTC and is widened globally with
//! [`config::set_voltages`] (the `repro --vdd` flag / `NTC_VDD` env var).
//!
//! # Examples
//!
//! ```no_run
//! use ntc_experiments::{ch3, Scale};
//!
//! let table = ch3::fig_3_10(Scale::Fast);
//! println!("{table}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod attrib;
pub mod cache;
pub mod ch3;
pub mod ch4;
pub mod config;
pub mod extensions;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod table;

pub use attrib::{with_counter_scope, ScopedCounters};
pub use cache::{CacheScope, CacheStats, MemoLru};
pub use config::{
    build_hardened_oracle, build_oracle, normalize_to_first, parse_voltages, set_voltages,
    set_workload_source, voltages, workload_source, ClockRegime, Scale, CH3_REGIME, CH4_REGIME,
};
pub use report::{Manifest, RunRecord};
pub use runner::{
    set_jobs, sweep, sweep_catching, sweep_over, take_stats, take_sweep_failures, IndexFailure,
    SweepScope, SweepStats,
};
pub use scenario::{
    row_label, run_grid, run_grid_traced, run_grid_uncached, screen_run_order, take_voltage_cells,
    GridResult, GridSpec, GridTier, Regime,
};
pub use table::ResultTable;

/// One named experiment: its figure/table id and scale-parametric runner.
pub type Experiment = (&'static str, fn(Scale) -> ResultTable);

/// Every experiment in the suite: `(id, runner)` pairs, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig3.2a", |s| ch3::fig_3_2(ntc_varmodel::Corner::STC, s)),
        ("fig3.2b", |s| ch3::fig_3_2(ntc_varmodel::Corner::NTC, s)),
        ("fig3.3", ch3::fig_3_3),
        ("fig3.4", ch3::fig_3_4),
        ("fig3.8", ch3::fig_3_8),
        ("fig3.9", ch3::fig_3_9),
        ("fig3.10", ch3::fig_3_10),
        ("fig3.11", ch3::fig_3_11),
        ("fig3.12", ch3::fig_3_12),
        ("tab3.overheads", |_| ch3::overheads_3()),
        ("fig4.2", ch4::fig_4_2),
        ("fig4.3", ch4::fig_4_3),
        ("fig4.4", ch4::fig_4_4),
        ("fig4.8", ch4::fig_4_8),
        ("fig4.9", ch4::fig_4_9),
        ("fig4.10", ch4::fig_4_10),
        ("fig4.11", ch4::fig_4_11),
        ("fig4.12", ch4::fig_4_12),
        ("tab4.overheads", |_| ch4::overheads_4()),
        ("ext.vdd", extensions::voltage_sweep),
        ("ext.aging", extensions::aging_adaptation),
        ("ext.stall2", extensions::stall_sufficiency),
        ("ext.binning", extensions::die_binning),
        ("abl.tags", ablation::tag_granularity),
        ("abl.replacement", ablation::replacement_policy),
        ("abl.window", ablation::detection_window),
        ("abl.adder", ablation::adder_architecture),
    ]
}
