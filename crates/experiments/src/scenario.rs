//! The grid driver of the scenario engine: expand (benchmarks × chips ×
//! schemes × operating points) into cells, run them through the
//! deterministic parallel sweep, and fold per (benchmark, operating
//! point) with [`SimAccumulator`].
//!
//! A [`GridSpec`] is the complete, hashable description of one comparison
//! experiment — which benchmarks, how many chips, which registered schemes
//! ([`SchemeSpec`]), which supply voltages ([`OperatingPoint`]), which
//! clocking [`Regime`], and the seed policy. All figure runners that
//! compare schemes over a (benchmark × chip) grid go through [`run_grid`],
//! which replaces the per-chapter memo caches with one cache keyed by the
//! spec itself: two figures charting different columns of the same grid
//! share one sweep automatically.
//!
//! # Canonical seed policy
//!
//! * chip `c` of a grid is fabricated with seed `chip_seed_base + c` — the
//!   same dice across every benchmark, scheme, *and voltage* of the grid
//!   (the voltage axis re-runs the same silicon at a different supply);
//! * every benchmark trace is generated with the grid's single
//!   `trace_seed` — schemes within a grid see identical instruction
//!   streams.
//!
//! # Fold semantics
//!
//! Cells run in parallel but fold in grid index order (chips ascending
//! within each (benchmark, voltage) group, voltages within each
//! benchmark), so every per-row aggregate — including the floating-point
//! accuracy and stretch sums — is bit-identical to the sequential fold at
//! any `--jobs` count (pinned by the determinism test in
//! `tests/scenario_grid.rs`).

use crate::cache::{self, MemoLru};
use crate::config::{build_hardened_oracle, build_oracle, ClockRegime, CH3_REGIME, CH4_REGIME};
use crate::runner::sweep_over;
use ntc_core::scenario::{ChipContext, SchemeSpec, SimAccumulator};
use ntc_core::sim::{run_scheme, SimResult};
use ntc_core::tag_delay::TagDelayOracle;
use ntc_pipeline::Pipeline;
use ntc_varmodel::OperatingPoint;
use ntc_workload::{Benchmark, TraceSource};
use std::sync::{Arc, Mutex, OnceLock};

/// The two evaluation regimes of the study, as grid-spec data (the
/// hashable face of [`CH3_REGIME`] / [`CH4_REGIME`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// The Chapter-3 regime: timing-speculative clock, max side only.
    Ch3,
    /// The Chapter-4 regime: aggressive clock plus the Razor hold window.
    Ch4,
}

impl Regime {
    /// The regime's clock fractions.
    pub fn params(self) -> ClockRegime {
        match self {
            Regime::Ch3 => CH3_REGIME,
            Regime::Ch4 => CH4_REGIME,
        }
    }

    /// Stable short name, part of the spec's canonical byte encoding.
    pub fn name(self) -> &'static str {
        match self {
            Regime::Ch3 => "ch3",
            Regime::Ch4 => "ch4",
        }
    }

    /// Inverse of [`name`](Self::name) — how wire formats (the serve
    /// protocol) name a regime.
    pub fn parse(s: &str) -> Option<Regime> {
        match s {
            "ch3" => Some(Regime::Ch3),
            "ch4" => Some(Regime::Ch4),
            _ => None,
        }
    }
}

/// Complete description of one (benchmarks × chips × schemes × voltages)
/// comparison grid. Hashable: the spec itself keys the global grid cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GridSpec {
    /// Benchmarks to run, in output row order.
    pub benchmarks: Vec<Benchmark>,
    /// Fabricated chips averaged per (benchmark, voltage) row.
    pub chips: usize,
    /// Registered schemes to compare, in output column order.
    pub schemes: Vec<SchemeSpec>,
    /// Operating points swept per benchmark — the voltage axis. Legacy
    /// single-corner grids pass `vec![OperatingPoint::NTC]`.
    pub voltages: Vec<OperatingPoint>,
    /// Which evaluation regime clocks the grid.
    pub regime: Regime,
    /// Chip `c` is fabricated with seed `chip_seed_base + c`.
    pub chip_seed_base: u64,
    /// Seed of every benchmark's trace generator.
    pub trace_seed: u64,
    /// Trace length per cell, instructions.
    pub cycles: usize,
    /// Where each cell's instruction stream comes from: the statistical
    /// generator (the legacy path), record-while-generating, whole-trace
    /// replay, or weighted SimPoint phases.
    pub source: TraceSource,
}

impl GridSpec {
    /// A stable canonical byte encoding of the spec: every field as
    /// length-prefixed registry names or little-endian integers. This —
    /// not Rust's `Hash`, whose output is free to change between compiler
    /// releases — is what the on-disk cache key hashes, so artifacts stay
    /// addressable across toolchains. The voltage axis is appended after
    /// the legacy fields; the cache schema tag was bumped alongside it,
    /// so pre-axis artifacts self-invalidate as plain misses.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        fn push_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn push_str(out: &mut Vec<u8>, s: &str) {
            push_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        push_u64(&mut out, self.benchmarks.len() as u64);
        for b in &self.benchmarks {
            push_str(&mut out, b.name());
        }
        push_u64(&mut out, self.chips as u64);
        push_u64(&mut out, self.schemes.len() as u64);
        for s in &self.schemes {
            push_str(&mut out, &s.name());
        }
        push_str(&mut out, self.regime.name());
        push_u64(&mut out, self.chip_seed_base);
        push_u64(&mut out, self.trace_seed);
        push_u64(&mut out, self.cycles as u64);
        push_u64(&mut out, self.voltages.len() as u64);
        for v in &self.voltages {
            push_str(&mut out, v.name());
        }
        // The trace source, appended after the voltage axis (schema /3).
        // `Record` deliberately encodes exactly like `Generator` (the
        // canonical tag aliases them): a recording run simulates the
        // generated stream, so the two must share cache identity. Replay
        // and phase sources append their directory too — note the key
        // covers the *path*, not the files' contents, so replacing trace
        // files in place under the same directory requires `--no-cache`
        // (or a fresh directory) to avoid stale artifact hits.
        push_str(&mut out, self.source.canon_tag());
        match &self.source {
            TraceSource::Generator | TraceSource::Record(_) => {}
            TraceSource::Replay(dir) | TraceSource::Phases(dir) => {
                push_str(&mut out, &dir.display().to_string());
            }
        }
        out
    }

    /// The (benchmark × operating point) row groups of this grid,
    /// bench-major (every voltage of one benchmark before the next
    /// benchmark) — the canonical row order of the folded result.
    pub fn row_groups(&self) -> Vec<(Benchmark, OperatingPoint)> {
        self.benchmarks
            .iter()
            .flat_map(|&b| self.voltages.iter().map(move |&v| (b, v)))
            .collect()
    }

    /// Whether this grid sweeps more than one operating point — the
    /// condition under which row labels carry a voltage suffix (see
    /// [`row_label`]). Single-voltage grids keep their legacy labels, so
    /// existing CSV goldens stay byte-identical.
    pub fn multi_voltage(&self) -> bool {
        self.voltages.len() > 1
    }
}

/// Canonical label of one (benchmark, operating point) grid row: the bare
/// benchmark name on single-voltage grids, `bench @ vX.XX` once the
/// voltage axis is real. Both the batch CSV writers and the serve
/// daemon's table encoder go through here, which is what keeps their
/// bytes identical.
pub fn row_label(bench: Benchmark, point: OperatingPoint, multi_voltage: bool) -> String {
    if multi_voltage {
        format!("{} @ {}", bench.name(), point.name())
    } else {
        bench.name().to_owned()
    }
}

/// The folded output of [`run_grid`]: per (benchmark, operating point)
/// row, one [`SimAccumulator`] per scheme (in the spec's scheme order).
#[derive(Debug, PartialEq)]
pub struct GridResult {
    schemes: Vec<SchemeSpec>,
    rows: Vec<(Benchmark, OperatingPoint, Vec<SimAccumulator>)>,
}

impl GridResult {
    /// Reassemble a grid from its stored pieces — the decode half of the
    /// disk cache. Crate-internal: the only producers of a `GridResult`
    /// are [`run_grid_uncached`] and a verified cache artifact.
    pub(crate) fn from_parts(
        schemes: Vec<SchemeSpec>,
        rows: Vec<(Benchmark, OperatingPoint, Vec<SimAccumulator>)>,
    ) -> GridResult {
        GridResult { schemes, rows }
    }

    /// The grid's schemes, in column order.
    pub fn schemes(&self) -> &[SchemeSpec] {
        &self.schemes
    }

    /// Accumulator rows in canonical order: the spec's benchmark order,
    /// voltages ascending-as-specified within each benchmark.
    pub fn rows(&self) -> &[(Benchmark, OperatingPoint, Vec<SimAccumulator>)] {
        &self.rows
    }

    /// The distinct operating points of the grid, in first-occurrence
    /// row order.
    pub fn voltages(&self) -> Vec<OperatingPoint> {
        let mut out = Vec::new();
        for &(_, v, _) in &self.rows {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// One benchmark's accumulators, in scheme order — the legacy
    /// single-voltage accessor the per-chapter figures chart through.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark was not part of the grid, or if the grid
    /// swept more than one operating point (use [`GridResult::cell`]).
    pub fn benchmark(&self, bench: Benchmark) -> &[SimAccumulator] {
        let mut matches = self.rows.iter().filter(|(b, _, _)| *b == bench);
        let first = matches
            .next()
            .unwrap_or_else(|| panic!("benchmark {} not in this grid", bench.name()));
        assert!(
            matches.next().is_none(),
            "benchmark {} spans multiple operating points; address a (benchmark, voltage) cell",
            bench.name()
        );
        &first.2
    }

    /// One (benchmark, operating point) row's accumulators, in scheme
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the row was not part of the grid.
    pub fn cell(&self, bench: Benchmark, point: OperatingPoint) -> &[SimAccumulator] {
        self.rows
            .iter()
            .find(|(b, v, _)| *b == bench && *v == point)
            .map(|(_, _, accs)| accs.as_slice())
            .unwrap_or_else(|| {
                panic!("row ({}, {}) not in this grid", bench.name(), point.name())
            })
    }
}

/// Expand per-group work into a (group × chip) grid, chips ascending
/// within each group — the canonical cell order every grid fold assumes.
pub fn expand<G: Copy>(groups: &[G], chips: usize) -> Vec<(G, usize)> {
    groups
        .iter()
        .flat_map(|&g| (0..chips).map(move |c| (g, c)))
        .collect()
}

/// Fold sweep cells per key, visiting cells in index order (the order
/// [`sweep_over`] returns, i.e. the sequential order) so floating-point
/// folds are bit-identical at any thread count. Output keys appear in
/// first-occurrence order.
///
/// # Panics
///
/// Panics if `keys` yields fewer items than `cells`.
pub fn fold_cells<K, T, A>(
    keys: impl IntoIterator<Item = K>,
    cells: Vec<T>,
    mut init: impl FnMut() -> A,
    mut fold: impl FnMut(&mut A, T),
) -> Vec<(K, A)>
where
    K: PartialEq + Copy,
{
    let mut out: Vec<(K, A)> = Vec::new();
    let mut keys = keys.into_iter();
    for cell in cells {
        let key = keys.next().expect("a key per cell");
        let idx = match out.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                out.push((key, init()));
                out.len() - 1
            }
        };
        fold(&mut out[idx].1, cell);
    }
    out
}

/// The order a cell *executes* its schemes in: guardbanded (stretched-
/// clock) schemes first, everything else in spec order after them.
///
/// Results are independent of the execution order — every scheme replays
/// the same trace, so each `(tag, bucket)` of the cell's oracle is defined
/// by the same first pair no matter which scheme touches it first, and the
/// exact delay of a pair is a pure function of the chip. What the order
/// *does* change is who performs the first resolution of each bucket:
/// running HFG first lets the conservative timing screen answer its whole
/// run from slack bounds (its guardband clock sits past the chip's static
/// critical delay, the ceiling of every cone bound), and the tight-clock
/// schemes afterwards promote only the buckets they actually revisit.
pub fn screen_run_order(schemes: &[SchemeSpec]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..schemes.len()).collect();
    order.sort_by_key(|&i| !matches!(schemes[i], SchemeSpec::Hfg));
    order
}

/// One (benchmark, operating point, chip) cell: build the chip's
/// oracle(s) at the cell's supply, derive the regime clocks from the
/// *bare* die's nominal critical delay at that supply (the canonical
/// clock policy — buffer padding must not slow the target clock), and run
/// every scheme of the spec over the cell's weighted trace segments (one
/// whole trace for generator/record/replay sources; the SimPoint
/// representatives for phase sources). Within each segment schemes
/// execute in [`screen_run_order`]; the returned results are
/// `[scheme][segment]` pairs of `(result, fold weight)` in spec order
/// regardless.
///
/// Oracles persist across the segments of a cell — a cached `(tag,
/// bucket)` delay is a pure function of the chip, so phase replays reuse
/// Phase-A work exactly like one longer trace would. Schemes are rebuilt
/// fresh per segment (each representative stands for an interval run on
/// its own, per the SimPoint model).
fn run_cell(
    spec: &GridSpec,
    bench: Benchmark,
    point: OperatingPoint,
    chip: usize,
    need_buffered: bool,
) -> Vec<Vec<(SimResult, u64)>> {
    let regime = spec.regime.params();
    let seed = spec.chip_seed_base + chip as u64;
    let corner = point.corner();
    let mut bare = build_oracle(corner, seed, false, regime);
    let mut buffered = need_buffered.then(|| build_oracle(corner, seed, true, regime));
    let nominal = bare.nominal_critical_delay_ps();
    let clock = regime.clock(nominal);
    let tdc_clock = regime.tdc_clock(nominal);
    // Hoisted out of the scheme loop: the static critical delay is a
    // chip property (memoized with the blank), not a per-scheme one.
    let bare_static = bare.static_critical_delay_ps();
    let buffered_static = buffered.as_ref().map(|o| o.static_critical_delay_ps());
    // Selectively-hardened chip variants (the `harden-choke` ablation),
    // built on first use per distinct top-k of the spec.
    let mut hardened: Vec<(usize, TagDelayOracle)> = Vec::new();
    let segments = spec
        .source
        .segments(bench, spec.trace_seed, spec.cycles)
        .unwrap_or_else(|e| {
            panic!(
                "trace source {} cannot resolve cell ({}, seed {}, {} cycles): {e}",
                spec.source,
                bench.name(),
                spec.trace_seed,
                spec.cycles
            )
        });
    let mut results: Vec<Vec<(SimResult, u64)>> = vec![Vec::new(); spec.schemes.len()];
    for segment in &segments {
        for i in screen_run_order(&spec.schemes) {
            let s = &spec.schemes[i];
            let (oracle, static_critical) = if let Some(top_k) = s.hardened_top_k() {
                let idx = match hardened.iter().position(|(k, _)| *k == top_k) {
                    Some(idx) => idx,
                    None => {
                        hardened.push((
                            top_k,
                            build_hardened_oracle(
                                corner,
                                seed,
                                s.wants_buffered_netlist(),
                                regime,
                                top_k,
                            ),
                        ));
                        hardened.len() - 1
                    }
                };
                let o = &mut hardened[idx].1;
                let static_critical = o.static_critical_delay_ps();
                (o, static_critical)
            } else if s.wants_buffered_netlist() {
                (
                    buffered.as_mut().expect("buffered oracle built on demand"),
                    buffered_static.expect("buffered oracle built on demand"),
                )
            } else {
                (&mut bare, bare_static)
            };
            let scheme_clock = if s.uses_tdc_clock() { tdc_clock } else { clock };
            let ctx = ChipContext {
                static_critical_delay_ps: static_critical,
                clock: scheme_clock,
                trace_len: segment.trace.len(),
                point,
            };
            let mut scheme = s.build(&ctx);
            results[i].push((
                run_scheme(
                    scheme.as_mut(),
                    oracle,
                    &segment.trace,
                    scheme_clock,
                    Pipeline::core1(),
                ),
                segment.weight,
            ));
        }
    }
    results
}

/// Per-voltage cell counters: how many grid cells were *computed* (not
/// answered from a cache tier) at each roster point since the last
/// [`take_voltage_cells`] drain. The repro harness folds the drained
/// counts into each experiment's manifest record.
static VOLTAGE_CELLS: Mutex<[u64; OperatingPoint::COUNT]> =
    Mutex::new([0; OperatingPoint::COUNT]);

/// Drain the per-voltage computed-cell counters: the nonzero roster
/// points (ascending) with their counts, resetting all counters to zero.
pub fn take_voltage_cells() -> Vec<(OperatingPoint, u64)> {
    let mut counts = VOLTAGE_CELLS.lock().expect("voltage counters poisoned");
    let drained: Vec<(OperatingPoint, u64)> = OperatingPoint::roster()
        .into_iter()
        .zip(counts.iter().copied())
        .filter(|&(_, n)| n > 0)
        .collect();
    *counts = [0; OperatingPoint::COUNT];
    drained
}

/// Run a grid without consulting or filling the cache: cells through
/// [`sweep_over`], fold per (benchmark, operating point) row in index
/// order. This is the function the thread-count determinism test
/// exercises.
pub fn run_grid_uncached(spec: &GridSpec) -> GridResult {
    let need_buffered = spec.schemes.iter().any(SchemeSpec::wants_buffered_netlist);
    let groups = spec.row_groups();
    let grid = expand(&groups, spec.chips);
    let cells = sweep_over(&grid, |_, &((bench, point), chip)| {
        run_cell(spec, bench, point, chip, need_buffered)
    });
    {
        let mut counts = VOLTAGE_CELLS.lock().expect("voltage counters poisoned");
        for &((_, point), _) in &grid {
            counts[OperatingPoint::roster()
                .iter()
                .position(|p| *p == point)
                .expect("roster point")] += 1;
        }
    }
    let rows = fold_cells(
        grid.iter().map(|&(g, _)| g),
        cells,
        || vec![SimAccumulator::default(); spec.schemes.len()],
        |accs, results| {
            for (acc, segments) in accs.iter_mut().zip(&results) {
                for (r, w) in segments {
                    // Weight-1 segments go through the plain fold so
                    // whole-trace grids stay bit-identical to every
                    // pre-trace release (`push_weighted(r, 1)` multiplies
                    // the f64 sums by 1.0, which is not that guarantee).
                    if *w == 1 {
                        acc.push(r);
                    } else {
                        acc.push_weighted(r, *w);
                    }
                }
            }
        },
    );
    GridResult {
        schemes: spec.schemes.clone(),
        rows: rows
            .into_iter()
            .map(|((b, v), accs)| (b, v, accs))
            .collect(),
    }
}

/// Capacity of the in-memory grid memo. A suite touches a handful of
/// distinct grids (the ch3 and ch4 comparison grids plus the
/// accuracy-sweep variants), so a small bound keeps every live grid warm
/// while the memo can no longer grow without limit across a long run.
pub const GRID_MEMO_CAP: usize = 8;

/// Which tier answered a [`run_grid_traced`] call — the provenance a
/// serving layer reports back to its client in the per-request receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridTier {
    /// In-memory LRU hit (same process already folded this grid).
    Memo,
    /// On-disk artifact hit (a previous process folded it).
    Disk,
    /// Cold: the cells were swept and folded by this call.
    Computed,
    /// Caching disabled ([`cache::set_disabled`]): computed, nothing
    /// consulted or written.
    Uncached,
}

impl GridTier {
    /// Stable wire name (receipt JSON).
    pub fn name(self) -> &'static str {
        match self {
            GridTier::Memo => "memo",
            GridTier::Disk => "disk",
            GridTier::Computed => "computed",
            GridTier::Uncached => "uncached",
        }
    }
}

/// Run a grid through the cache tiers: bounded in-memory LRU first (same
/// process — figures charting different columns of one grid share one
/// sweep and one `Arc`), then the on-disk artifact cache when a
/// `--cache-dir` is configured (previous processes), then
/// [`run_grid_uncached`]. Fresh results are written through to both
/// tiers; `--no-cache` ([`cache::set_disabled`]) bypasses everything.
///
/// Disk artifacts store exact bit patterns, so a hit from either tier is
/// bit-identical to a cold run at any `--jobs` count.
pub fn run_grid(spec: &GridSpec) -> Arc<GridResult> {
    run_grid_traced(spec).0
}

/// [`run_grid`], also reporting which tier answered. The batch drivers
/// ignore the tier; the serve daemon threads it into request receipts.
pub fn run_grid_traced(spec: &GridSpec) -> (Arc<GridResult>, GridTier) {
    type Memo = Mutex<MemoLru<GridSpec, Arc<GridResult>>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    if cache::disabled() {
        return (Arc::new(run_grid_uncached(spec)), GridTier::Uncached);
    }
    let memo = MEMO.get_or_init(|| Mutex::new(MemoLru::new(GRID_MEMO_CAP)));
    if let Some(hit) = memo.lock().expect("grid memo poisoned").get(spec) {
        return (hit, GridTier::Memo);
    }
    let disk = cache::disk_dir();
    if let Some(dir) = &disk {
        if let Some(loaded) = cache::load(dir, spec) {
            let result = Arc::new(loaded);
            memo.lock()
                .expect("grid memo poisoned")
                .insert(spec.clone(), result.clone());
            return (result, GridTier::Disk);
        }
    }
    let result = Arc::new(run_grid_uncached(spec));
    if let Some(dir) = &disk {
        if let Err(e) = cache::store(dir, spec, &result) {
            eprintln!(
                "warning: could not persist grid-cache artifact under {}: {e}",
                dir.display()
            );
        }
    }
    memo.lock()
        .expect("grid memo poisoned")
        .insert(spec.clone(), result.clone());
    (result, GridTier::Computed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screen_run_order_puts_guardbanded_schemes_first_and_is_otherwise_stable() {
        let spec = vec![
            SchemeSpec::RazorCh3,
            SchemeSpec::DcsIcslt { entries: 128 },
            SchemeSpec::Hfg,
            SchemeSpec::Trident { cet_entries: 128 },
            SchemeSpec::Hfg,
            SchemeSpec::Ocst,
        ];
        assert_eq!(screen_run_order(&spec), vec![2, 4, 0, 1, 3, 5]);
        assert_eq!(screen_run_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn expand_orders_chips_within_groups() {
        let grid = expand(&['a', 'b'], 3);
        assert_eq!(
            grid,
            vec![('a', 0), ('a', 1), ('a', 2), ('b', 0), ('b', 1), ('b', 2)]
        );
    }

    #[test]
    fn fold_cells_folds_in_index_order_and_keys_in_first_occurrence_order() {
        let keys = ["b", "b", "a", "a"];
        let cells = vec![1u64, 2, 10, 20];
        let folded = fold_cells(keys, cells, Vec::new, |acc, c| acc.push(c));
        assert_eq!(folded, vec![("b", vec![1, 2]), ("a", vec![10, 20])]);
    }

    #[test]
    fn cached_and_uncached_grids_agree() {
        let spec = GridSpec {
            benchmarks: vec![Benchmark::Mcf],
            chips: 1,
            schemes: vec![SchemeSpec::RazorCh3, SchemeSpec::DcsIcslt { entries: 32 }],
            voltages: vec![OperatingPoint::NTC],
            regime: Regime::Ch3,
            chip_seed_base: 220,
            trace_seed: 7,
            cycles: 2_000,
            source: TraceSource::Generator,
        };
        let cached = run_grid(&spec);
        let fresh = run_grid_uncached(&spec);
        assert_eq!(cached.schemes(), fresh.schemes());
        for ((b1, v1, a1), (b2, v2, a2)) in cached.rows().iter().zip(fresh.rows()) {
            assert_eq!(b1, b2);
            assert_eq!(v1, v2);
            assert_eq!(a1, a2);
        }
        // A second cached call returns the same Arc.
        assert!(Arc::ptr_eq(&cached, &run_grid(&spec)));
    }

    #[test]
    fn row_groups_are_bench_major_and_canonical_bytes_see_the_axis() {
        let mid = OperatingPoint::parse("v0.60").unwrap();
        let spec = GridSpec {
            benchmarks: vec![Benchmark::Mcf, Benchmark::Gzip],
            chips: 2,
            schemes: vec![SchemeSpec::RazorCh3],
            voltages: vec![OperatingPoint::NTC, mid],
            regime: Regime::Ch3,
            chip_seed_base: 1,
            trace_seed: 2,
            cycles: 100,
            source: TraceSource::Generator,
        };
        assert_eq!(
            spec.row_groups(),
            vec![
                (Benchmark::Mcf, OperatingPoint::NTC),
                (Benchmark::Mcf, mid),
                (Benchmark::Gzip, OperatingPoint::NTC),
                (Benchmark::Gzip, mid),
            ]
        );
        assert!(spec.multi_voltage());
        // The voltage list is part of the cache identity.
        let mut other = spec.clone();
        other.voltages = vec![OperatingPoint::NTC];
        assert!(!other.multi_voltage());
        assert_ne!(spec.canonical_bytes(), other.canonical_bytes());
    }

    #[test]
    fn row_labels_suffix_only_multi_voltage_grids() {
        let mid = OperatingPoint::parse("v0.60").unwrap();
        assert_eq!(row_label(Benchmark::Mcf, OperatingPoint::NTC, false), "mcf");
        assert_eq!(row_label(Benchmark::Mcf, mid, true), "mcf @ v0.60");
    }
}
