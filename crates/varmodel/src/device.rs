//! Device-layer delay model: the HSPICE + predictive-technology-model
//! substitute.
//!
//! A gate's propagation delay is modelled with the alpha-power law,
//! `t_pd ∝ Vdd / (Vdd − Vth)^α`, which captures the property everything in
//! this study rests on: near threshold, `Vdd − Vth` is small, so the *same*
//! threshold-voltage variation produces enormously larger delay variation
//! than at super-threshold. The paper reports ~10× nominal slowdown and up
//! to ~20× PV-induced delay spread at NTC; this model reproduces both.

use std::fmt;

/// Velocity-saturation exponent for a 16 nm-class FinFET.
pub const ALPHA: f64 = 1.5;

/// Nominal threshold voltage (volts) of the 16 nm-class device.
pub const VTH_NOMINAL: f64 = 0.38;

/// Lowest supply voltage (volts) at which the delay-multiplier paths are
/// defined. Both [`Corner::variation_multiplier`] and the PVTA layer clamp
/// the effective threshold voltage into `[0.05 V, vdd − 8 mV]`; at
/// `vdd ≤ 0.058 V` that window inverts (its ceiling drops below its
/// floor) and the alpha-power law has no safe evaluation point, so such
/// corners are rejected at construction instead.
pub const MIN_VDD: f64 = 0.058;

/// An operating corner: a supply voltage with helper constructors for the
/// two corners the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Human-readable corner name ("STC" / "NTC" for the stock corners).
    pub name: &'static str,
}

impl Corner {
    /// Super-threshold corner: 0.8 V (the paper's STC setting).
    pub const STC: Corner = Corner {
        vdd: 0.8,
        name: "STC",
    };

    /// Near-threshold corner: 0.45 V (the paper's NTC setting).
    pub const NTC: Corner = Corner {
        vdd: 0.45,
        name: "NTC",
    };

    /// A custom supply voltage.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd` exceeds the nominal threshold voltage (which
    /// itself sits far above the [`MIN_VDD`] floor where the Vth clamp
    /// window of the delay-multiplier paths would invert).
    pub fn custom(vdd: f64) -> Corner {
        assert!(
            vdd > MIN_VDD,
            "supply voltage {vdd} V inverts the Vth clamp window (floor {MIN_VDD} V)"
        );
        assert!(
            vdd > VTH_NOMINAL + 0.02,
            "supply voltage {vdd} V must stay above Vth = {VTH_NOMINAL} V"
        );
        Corner { vdd, name: "custom" }
    }

    /// Re-check the [`MIN_VDD`] floor on the delay paths: `Corner`'s
    /// fields are public, so struct-literal corners bypass
    /// [`Corner::custom`]'s validation. Failing loudly here replaces the
    /// silent alpha-power-law inversion (or bare `clamp` panic) the raw
    /// formula would produce.
    fn assert_operable(&self) {
        assert!(
            self.vdd > MIN_VDD,
            "corner {} at {} V is below the {MIN_VDD} V floor: the Vth clamp \
             window [0.05, vdd - 0.008] is inverted",
            self.name,
            self.vdd
        );
    }

    /// Alpha-power-law delay factor relative to the STC corner: how much a
    /// gate slows down at this supply voltage with the nominal Vth.
    pub fn delay_factor(&self) -> f64 {
        delay_scale(self.vdd, VTH_NOMINAL) / delay_scale(Corner::STC.vdd, VTH_NOMINAL)
    }

    /// Delay multiplier (relative to this corner's nominal) for a device
    /// whose threshold voltage deviates by `dvth` volts.
    ///
    /// Positive `dvth` (higher threshold) slows the gate; negative speeds
    /// it up. Near threshold the sensitivity is dramatically larger: this
    /// single formula is the source of the STC/NTC asymmetry in every
    /// figure.
    pub fn variation_multiplier(&self, dvth: f64) -> f64 {
        self.assert_operable();
        let vth = (VTH_NOMINAL + dvth).clamp(0.05, self.vdd - 0.008);
        delay_scale(self.vdd, vth) / delay_scale(self.vdd, VTH_NOMINAL)
    }

    /// Dynamic-energy scale relative to STC (`∝ Vdd²`).
    pub fn energy_factor(&self) -> f64 {
        (self.vdd / Corner::STC.vdd).powi(2)
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.2} V)", self.name, self.vdd)
    }
}

/// Raw alpha-power-law delay scale `Vdd / (Vdd − Vth)^α`.
#[inline]
pub fn delay_scale(vdd: f64, vth: f64) -> f64 {
    vdd / (vdd - vth).powf(ALPHA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntc_is_roughly_ten_times_slower() {
        let f = Corner::NTC.delay_factor();
        assert!(
            (5.0..20.0).contains(&f),
            "NTC slowdown {f:.1}x should be order-10x"
        );
        assert!((Corner::STC.delay_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variation_sensitivity_amplified_at_ntc() {
        // The same +30 mV Vth shift must hurt far more at NTC.
        let dvth = 0.03;
        let stc = Corner::STC.variation_multiplier(dvth);
        let ntc = Corner::NTC.variation_multiplier(dvth);
        assert!(stc > 1.0 && ntc > 1.0);
        assert!(
            (ntc - 1.0) > 4.0 * (stc - 1.0),
            "NTC multiplier {ntc:.3} vs STC {stc:.3}"
        );
    }

    #[test]
    fn negative_dvth_speeds_up() {
        assert!(Corner::NTC.variation_multiplier(-0.03) < 1.0);
        assert!(Corner::STC.variation_multiplier(-0.03) < 1.0);
    }

    #[test]
    fn extreme_dvth_is_clamped_not_nan() {
        let m = Corner::NTC.variation_multiplier(0.5);
        assert!(m.is_finite() && m > 1.0);
        let m = Corner::NTC.variation_multiplier(-0.5);
        assert!(m.is_finite() && m > 0.0);
    }

    #[test]
    fn twenty_x_spread_is_reachable_at_ntc() {
        // A strongly slow device (e.g. +3 sigma systematic + random) can
        // reach the ~20x delay deviation the paper cites.
        let m = Corner::NTC.variation_multiplier(0.09);
        assert!(m > 3.0, "+90 mV at NTC gives {m:.1}x");
        let stress = Corner::NTC.variation_multiplier(0.13);
        assert!(stress > 6.0);
    }

    #[test]
    fn energy_factor_quadratic() {
        assert!((Corner::NTC.energy_factor() - (0.45f64 / 0.8).powi(2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must stay above")]
    fn custom_corner_validates_vdd() {
        let _ = Corner::custom(0.2);
    }

    #[test]
    #[should_panic(expected = "inverts the Vth clamp window")]
    fn custom_corner_rejects_clamp_inverting_vdd() {
        // At vdd <= 0.058 V the clamp ceiling (vdd - 8 mV) drops below
        // the 0.05 V floor — the alpha-power law would silently invert
        // (or the clamp panic with an unhelpful message); construction
        // must reject it outright.
        let _ = Corner::custom(0.05);
    }

    #[test]
    #[should_panic(expected = "below the 0.058 V floor")]
    fn struct_literal_corner_below_floor_fails_loudly() {
        // Public fields let a literal bypass `custom`; the delay path
        // still refuses to evaluate an inverted clamp window.
        let rogue = Corner { vdd: 0.05, name: "rogue" };
        let _ = rogue.variation_multiplier(0.01);
    }
}
