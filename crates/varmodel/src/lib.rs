//! # ntc-varmodel
//!
//! The device and process-variation layer of the `ntc-choke` cross-layer
//! simulator: the substitute for HSPICE + predictive technology models
//! (device delays) and the VARIUS / VARIUS-NTV microarchitectural variation
//! models the paper builds on.
//!
//! * [`device`] — alpha-power-law FinFET delay model with the paper's two
//!   operating corners ([`Corner::STC`] = 0.8 V, [`Corner::NTC`] = 0.45 V).
//! * [`point`] — the canonical [`OperatingPoint`] roster (`v0.45` …
//!   `v0.80` at a fixed step): supply voltage as a named, parseable sweep
//!   axis between (and including) the two stock corners.
//! * [`variation`] — systematic (spatially correlated) + random threshold
//!   voltage variation, plus a lognormal geometric term for the secondary
//!   FinFET parameters.
//! * [`signature`] — per-chip post-silicon delay assignments, choke-gate
//!   identification, controlled choke injection, and the chip lottery.
//!
//! # Examples
//!
//! Fabricate an NTC chip and inspect its delay spread:
//!
//! ```
//! use ntc_netlist::generators::alu::Alu;
//! use ntc_varmodel::{ChipSignature, Corner, VariationParams};
//!
//! let alu = Alu::new(8);
//! let chip = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 1);
//! let stats = chip.multiplier_stats(alu.netlist());
//! assert!(stats.max > stats.min);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod point;
pub mod pvta;
pub mod rng;
pub mod signature;
pub mod variation;

pub use device::{Corner, ALPHA, MIN_VDD, VTH_NOMINAL};
pub use point::{OperatingPoint, ParsePointError, VDD_STEP};
pub use pvta::{at_condition, OperatingCondition};
pub use rng::SplitMix64;
pub use signature::{chip_lottery, ChipSignature, MultiplierStats};
pub use variation::{GateVariation, SystematicField, VariationParams, VariationSampler};
