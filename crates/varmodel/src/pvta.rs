//! Temperature and aging: the remaining letters of PVTA.
//!
//! The paper's baselines motivate them — HFG guardbands against process,
//! voltage, temperature *and aging*, and §3.3 notes that "newer timing
//! violations may arise or existing violations may magnify due to aging,
//! yet an existing choke point will continue to cause timing violations
//! for the entire lifetime of the chip". This module provides the
//! operating-condition model those statements need:
//!
//! * **Temperature** shifts the threshold voltage down (≈ −1 mV/K) and
//!   degrades carrier mobility; near threshold the Vth effect wins, so NTC
//!   circuits exhibit *inverted temperature dependence* — they get
//!   *faster* when hot. The model reproduces that inversion.
//! * **Aging** (BTI-style) drifts Vth upward with the log of stress time,
//!   slowing every gate — slightly, but enough to promote borderline
//!   paths into new choke paths over a chip's lifetime.

use crate::device::{delay_scale, Corner, MIN_VDD, VTH_NOMINAL};
use crate::signature::ChipSignature;
use ntc_netlist::Netlist;

/// Reference junction temperature, kelvin.
pub const T_REF_K: f64 = 300.0;

/// Threshold-voltage temperature coefficient, volts per kelvin.
pub const VTH_TEMP_COEFF: f64 = -1.0e-3;

/// Mobility temperature exponent: mobility ∝ (T/T_ref)^(−1.5).
pub const MOBILITY_EXPONENT: f64 = 1.5;

/// An operating condition beyond the supply corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingCondition {
    /// Junction temperature, kelvin.
    pub temperature_k: f64,
    /// Accumulated stress time, hours (0 = fresh silicon).
    pub age_hours: f64,
}

impl OperatingCondition {
    /// Fresh silicon at the reference temperature.
    pub fn nominal() -> Self {
        OperatingCondition {
            temperature_k: T_REF_K,
            age_hours: 0.0,
        }
    }

    /// A hot condition (e.g. 360 K under load).
    pub fn hot() -> Self {
        OperatingCondition {
            temperature_k: 360.0,
            age_hours: 0.0,
        }
    }

    /// The BTI-style threshold drift after the accumulated stress, volts.
    ///
    /// Classic log-time dependence: ~15 mV after three years of continuous
    /// stress, scaled from a per-decade coefficient.
    pub fn aging_dvth(&self) -> f64 {
        if self.age_hours <= 0.0 {
            return 0.0;
        }
        // 6 mV per decade of hours, anchored at 1 hour.
        6.0e-3 * (1.0 + self.age_hours).log10()
    }

    /// Delay multiplier this condition applies on top of a gate's
    /// process-variation multiplier, at the given corner.
    ///
    /// Combines the mobility slowdown (hotter → slower) with the
    /// Vth-driven speedup (hotter → lower Vth → faster) and the aging
    /// drift (older → higher Vth → slower). Near threshold the Vth term
    /// dominates, inverting the usual temperature dependence.
    pub fn delay_multiplier(&self, corner: Corner) -> f64 {
        // Struct-literal corners bypass `Corner::custom`'s validation;
        // below MIN_VDD the clamp window on the next line inverts and the
        // alpha-power law has no safe evaluation point — refuse loudly.
        assert!(
            corner.vdd > MIN_VDD,
            "corner {} at {} V is below the {MIN_VDD} V floor: the Vth clamp \
             window [0.05, vdd - 0.008] is inverted",
            corner.name,
            corner.vdd
        );
        let dvth = VTH_TEMP_COEFF * (self.temperature_k - T_REF_K) + self.aging_dvth();
        let vth = (VTH_NOMINAL + dvth).clamp(0.05, corner.vdd - 0.008);
        let vth_term = delay_scale(corner.vdd, vth) / delay_scale(corner.vdd, VTH_NOMINAL);
        let mobility_term = (self.temperature_k / T_REF_K).powf(MOBILITY_EXPONENT);
        vth_term * mobility_term
    }
}

impl Default for OperatingCondition {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Re-derive a chip signature under a new operating condition: every
/// gate's post-silicon delay is scaled by the condition's multiplier
/// (process variation is per-gate; temperature and aging act globally in
/// this first-order model).
///
/// # Panics
///
/// Panics if the signature does not match the netlist.
pub fn at_condition(
    nl: &Netlist,
    sig: &ChipSignature,
    condition: OperatingCondition,
) -> ChipSignature {
    assert_eq!(sig.delays_ps().len(), nl.len(), "signature/netlist mismatch");
    let m = condition.delay_multiplier(sig.corner());
    let mut out = sig.clone();
    let indices: Vec<usize> = nl
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.kind().is_pseudo())
        .map(|(i, _)| i)
        .collect();
    for i in indices {
        let scaled = sig.multiplier(i) * m;
        out.inject_choke(&[i], scaled);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::VariationParams;
    use ntc_netlist::generators::alu::Alu;

    #[test]
    fn nominal_condition_is_identity() {
        let c = OperatingCondition::nominal();
        assert!((c.delay_multiplier(Corner::NTC) - 1.0).abs() < 1e-12);
        assert_eq!(c.aging_dvth(), 0.0);
    }

    #[test]
    #[should_panic(expected = "below the 0.058 V floor")]
    fn sub_floor_corner_is_rejected_not_inverted() {
        // A struct-literal corner at 50 mV used to reach the raw clamp,
        // whose window [0.05, vdd - 0.008] is inverted there.
        let rogue = Corner { vdd: 0.05, name: "rogue" };
        let _ = OperatingCondition::nominal().delay_multiplier(rogue);
    }

    #[test]
    fn ntc_shows_inverted_temperature_dependence() {
        // Hotter chips run FASTER near threshold (Vth drop dominates),
        // and SLOWER at super-threshold (mobility dominates).
        let hot = OperatingCondition::hot();
        assert!(
            hot.delay_multiplier(Corner::NTC) < 1.0,
            "NTC inversion: {:.3}",
            hot.delay_multiplier(Corner::NTC)
        );
        assert!(
            hot.delay_multiplier(Corner::STC) > 1.0,
            "STC normal dependence: {:.3}",
            hot.delay_multiplier(Corner::STC)
        );
    }

    #[test]
    fn aging_slows_monotonically() {
        let fresh = OperatingCondition::nominal();
        let year = OperatingCondition {
            age_hours: 8760.0,
            ..fresh
        };
        let three_years = OperatingCondition {
            age_hours: 3.0 * 8760.0,
            ..fresh
        };
        let m1 = year.delay_multiplier(Corner::NTC);
        let m3 = three_years.delay_multiplier(Corner::NTC);
        assert!(m1 > 1.0);
        assert!(m3 > m1, "aging is monotone: {m1:.3} vs {m3:.3}");
        // Drift magnitude is tens of millivolts, not volts.
        assert!(three_years.aging_dvth() > 0.01 && three_years.aging_dvth() < 0.05);
    }

    #[test]
    fn condition_rescales_whole_signature() {
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 3);
        let aged_cond = OperatingCondition {
            age_hours: 10_000.0,
            ..OperatingCondition::nominal()
        };
        let aged = at_condition(alu.netlist(), &sig, aged_cond);
        let m = aged_cond.delay_multiplier(Corner::NTC);
        for (i, g) in alu.netlist().gates().iter().enumerate() {
            if g.kind().is_pseudo() {
                continue;
            }
            assert!(
                (aged.delay_ps(i) - sig.delay_ps(i) * m).abs() < 1e-6,
                "gate {i} rescaled"
            );
        }
    }

    #[test]
    fn existing_choke_points_persist_with_age() {
        // Section 3.3: aging magnifies violations but existing choke
        // points remain choke points.
        let alu = Alu::new(8);
        let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 9);
        let chokes_fresh = sig.slow_choke_gates();
        let aged = at_condition(
            alu.netlist(),
            &sig,
            OperatingCondition {
                age_hours: 20_000.0,
                ..OperatingCondition::nominal()
            },
        );
        let chokes_aged = aged.slow_choke_gates();
        for g in &chokes_fresh {
            assert!(chokes_aged.contains(g), "choke gate {g} persists");
        }
        assert!(chokes_aged.len() >= chokes_fresh.len(), "aging adds, never removes");
    }
}
