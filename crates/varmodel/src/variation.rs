//! Process-variation model in the VARIUS / VARIUS-NTV style.
//!
//! Threshold-voltage variation is split into a **systematic** component —
//! a spatially correlated Gaussian random field sampled on a chip grid and
//! bilinearly interpolated at each gate's placement — and a **random**
//! (white) per-gate component. Secondary FinFET parameters the paper varies
//! (fin thickness ±10 %, channel length ±12 %, oxide thickness 20 %) are
//! folded into an additional lognormal drive-strength term, matching how
//! they act on delay through the same current equation.

use crate::device::Corner;
use crate::rng::SplitMix64;

/// Parameters of the process-variation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationParams {
    /// Standard deviation of the systematic Vth component, volts.
    pub sigma_vth_systematic: f64,
    /// Standard deviation of the random (per-gate) Vth component, volts.
    pub sigma_vth_random: f64,
    /// Side length of the correlation grid (cells per chip edge); the
    /// systematic field is constant-correlated within roughly one cell.
    pub grid: usize,
    /// Standard deviation (in log-space) of the secondary geometric
    /// variation term (fin/channel/oxide), applied as a lognormal delay
    /// multiplier.
    pub sigma_geom_ln: f64,
}

impl VariationParams {
    /// The paper's STC variation setting (VARIUS-style, mature process).
    pub fn stc() -> Self {
        VariationParams {
            sigma_vth_systematic: 0.015,
            sigma_vth_random: 0.015,
            grid: 8,
            sigma_geom_ln: 0.03,
        }
    }

    /// The paper's NTC variation setting (VARIUS-NTV-style): the *same*
    /// underlying Vth spread — the amplification to ~20× delay variation
    /// comes from the alpha-power law at low Vdd, not from larger ΔVth.
    pub fn ntc() -> Self {
        VariationParams {
            sigma_vth_systematic: 0.018,
            sigma_vth_random: 0.018,
            grid: 8,
            sigma_geom_ln: 0.04,
        }
    }

    /// Variation disabled (PV-free reference chip).
    pub fn none() -> Self {
        VariationParams {
            sigma_vth_systematic: 0.0,
            sigma_vth_random: 0.0,
            grid: 1,
            sigma_geom_ln: 0.0,
        }
    }
}

/// A sampled systematic-variation field over the chip.
#[derive(Debug, Clone)]
pub struct SystematicField {
    grid: usize,
    values: Vec<f64>,
}

impl SystematicField {
    /// Sample a new field on a `grid × grid` lattice with per-cell standard
    /// deviation `sigma`, smoothed once so neighbouring cells correlate
    /// (the spherical-correlation structure of VARIUS, discretized).
    pub fn sample(rng: &mut SplitMix64, grid: usize, sigma: f64) -> Self {
        assert!(grid >= 1);
        let n = grid * grid;
        let raw: Vec<f64> = (0..n).map(|_| gaussian(rng) * sigma).collect();
        // One smoothing pass: average each cell with its neighbours, then
        // re-normalize the variance (smoothing shrinks it).
        let mut smooth = vec![0.0f64; n];
        for y in 0..grid {
            for x in 0..grid {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for (dx, dy) in [(0i64, 0i64), (1, 0), (-1, 0), (0, 1), (0, -1)] {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < grid && (ny as usize) < grid {
                        acc += raw[ny as usize * grid + nx as usize];
                        cnt += 1.0;
                    }
                }
                smooth[y * grid + x] = acc / cnt;
            }
        }
        // Restore target sigma (empirical factor for the 5-point average).
        let scale = if sigma > 0.0 { 5.0f64.sqrt() / 1.6 } else { 0.0 };
        for v in &mut smooth {
            *v *= scale.max(1.0);
        }
        SystematicField {
            grid,
            values: smooth,
        }
    }

    /// Value of the field at normalized chip coordinates `(x, y) ∈ [0,1)²`,
    /// bilinearly interpolated.
    pub fn at(&self, x: f64, y: f64) -> f64 {
        if self.grid == 1 {
            return self.values[0];
        }
        let fx = (x.clamp(0.0, 0.999_999) * (self.grid - 1) as f64).max(0.0);
        let fy = (y.clamp(0.0, 0.999_999) * (self.grid - 1) as f64).max(0.0);
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let x1 = (x0 + 1).min(self.grid - 1);
        let y1 = (y0 + 1).min(self.grid - 1);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let g = |xx: usize, yy: usize| self.values[yy * self.grid + xx];
        let top = g(x0, y0) * (1.0 - tx) + g(x1, y0) * tx;
        let bot = g(x0, y1) * (1.0 - tx) + g(x1, y1) * tx;
        top * (1.0 - ty) + bot * ty
    }
}

/// Per-gate variation draw: the threshold-voltage deviation and the
/// geometric (drive-strength) multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateVariation {
    /// Threshold-voltage deviation, volts.
    pub dvth: f64,
    /// Lognormal geometric delay multiplier (≈1.0).
    pub geom_mult: f64,
}

impl GateVariation {
    /// Combined delay multiplier at an operating corner.
    pub fn delay_multiplier(&self, corner: Corner) -> f64 {
        corner.variation_multiplier(self.dvth) * self.geom_mult
    }
}

/// Sampler producing per-gate variation draws for one fabricated chip.
#[derive(Debug)]
pub struct VariationSampler {
    params: VariationParams,
    field: SystematicField,
    rng: SplitMix64,
}

impl VariationSampler {
    /// Create a sampler for one chip instance; `seed` selects the chip in
    /// the fabrication lottery.
    pub fn new(params: VariationParams, seed: u64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let field = SystematicField::sample(&mut rng, params.grid, params.sigma_vth_systematic);
        VariationSampler { params, field, rng }
    }

    /// Draw the variation of the gate placed at normalized coordinates
    /// `(x, y)`.
    pub fn draw(&mut self, x: f64, y: f64) -> GateVariation {
        let systematic = self.field.at(x, y);
        let random = gaussian(&mut self.rng) * self.params.sigma_vth_random;
        let geom = (gaussian(&mut self.rng) * self.params.sigma_geom_ln).exp();
        GateVariation {
            dvth: systematic + random,
            geom_mult: geom,
        }
    }

    /// The model parameters this sampler was built with.
    pub fn params(&self) -> &VariationParams {
        &self.params
    }
}

/// Standard normal draw (Box–Muller, in-tree [`SplitMix64`] stream).
pub(crate) fn gaussian(rng: &mut SplitMix64) -> f64 {
    rng.normal()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let mut s1 = VariationSampler::new(VariationParams::ntc(), 7);
        let mut s2 = VariationSampler::new(VariationParams::ntc(), 7);
        for i in 0..32 {
            let x = (i as f64) / 32.0;
            assert_eq!(s1.draw(x, x), s2.draw(x, x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = VariationSampler::new(VariationParams::ntc(), 1);
        let mut s2 = VariationSampler::new(VariationParams::ntc(), 2);
        let a = s1.draw(0.5, 0.5);
        let b = s2.draw(0.5, 0.5);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_variation_gives_unity_multiplier() {
        let mut s = VariationSampler::new(VariationParams::none(), 3);
        for _ in 0..16 {
            let v = s.draw(0.3, 0.7);
            assert_eq!(v.dvth, 0.0);
            assert!((v.geom_mult - 1.0).abs() < 1e-12);
            assert!((v.delay_multiplier(Corner::NTC) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn field_is_spatially_correlated() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let f = SystematicField::sample(&mut rng, 16, 0.02);
        // Nearby points differ less than far points, averaged over samples.
        let mut near = 0.0;
        let mut far = 0.0;
        let n = 50;
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64 * 0.9;
            near += (f.at(x, 0.5) - f.at(x + 0.02, 0.5)).abs();
            far += (f.at(x, 0.1) - f.at((x + 0.45) % 0.95, 0.9)).abs();
        }
        assert!(near < far, "near diff {near:.4} should be < far diff {far:.4}");
    }

    #[test]
    fn sampled_dvth_statistics_are_sane() {
        let params = VariationParams::ntc();
        let mut s = VariationSampler::new(params, 99);
        let n = 4000;
        let draws: Vec<f64> = (0..n)
            .map(|i| {
                let x = (i % 64) as f64 / 64.0;
                let y = (i / 64) as f64 / 64.0;
                s.draw(x, y).dvth
            })
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        let sigma_total =
            (params.sigma_vth_systematic.powi(2) + params.sigma_vth_random.powi(2)).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() - sigma_total).abs() < 0.5 * sigma_total,
            "std {:.4} vs expected {:.4}",
            var.sqrt(),
            sigma_total
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.06);
    }
}
