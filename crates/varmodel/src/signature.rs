//! Per-chip delay signatures: what one fabricated die looks like.
//!
//! A [`ChipSignature`] assigns every gate of a netlist its post-silicon
//! propagation delay at a given corner. Choke points — the small set of
//! PV-affected gates whose deviation dominates the paths they sit on — are
//! identified here, and a "chip lottery" helper samples many die from the
//! same design, since the paper stresses that the choke-point distribution
//! varies chip-to-chip within one design.

use crate::device::Corner;
use crate::variation::{VariationParams, VariationSampler};
use ntc_netlist::Netlist;

/// Threshold on a gate's delay multiplier beyond which it is considered a
/// (potential) choke gate: the paper characterizes choke points as gates
/// whose PV deviation dominates an entire path.
pub const CHOKE_SLOW_MULTIPLIER: f64 = 2.0;

/// Threshold below which a gate counts as a *fast* choke gate (the Ch. 4
/// delay-reduction side: choke buffers / minimum-timing violators).
pub const CHOKE_FAST_MULTIPLIER: f64 = 0.6;

/// The post-silicon delay signature of one fabricated chip at one corner.
#[derive(Debug, Clone)]
pub struct ChipSignature {
    corner: Corner,
    seed: u64,
    /// Per-gate absolute propagation delay in picoseconds (index =
    /// `Signal::index()` of the gate's output).
    delays_ps: Vec<f64>,
    /// Per-gate delay multiplier relative to the corner nominal.
    multipliers: Vec<f64>,
    /// Nominal (PV-free) per-gate delay at this corner.
    nominal_ps: Vec<f64>,
}

impl ChipSignature {
    /// Fabricate one chip: sample PV for every gate of `nl` at `corner`.
    ///
    /// Gates are placed on a row-major virtual floorplan so the systematic
    /// field correlates physically adjacent logic, like a placed design.
    pub fn fabricate(nl: &Netlist, corner: Corner, params: VariationParams, seed: u64) -> Self {
        let mut sampler = VariationSampler::new(params, seed);
        let n = nl.len();
        let side = (n as f64).sqrt().ceil().max(1.0);
        let corner_factor = corner.delay_factor();
        let mut delays = Vec::with_capacity(n);
        let mut mults = Vec::with_capacity(n);
        let mut nominal = Vec::with_capacity(n);
        for (i, gate) in nl.gates().iter().enumerate() {
            let base = gate.kind().nominal_delay_ps() * corner_factor;
            nominal.push(base);
            if gate.kind().is_pseudo() {
                delays.push(0.0);
                mults.push(1.0);
                continue;
            }
            let x = (i as f64 % side) / side;
            let y = (i as f64 / side) / side;
            let var = sampler.draw(x, y);
            let m = var.delay_multiplier(corner);
            mults.push(m);
            delays.push(base * m);
        }
        ChipSignature {
            corner,
            seed,
            delays_ps: delays,
            multipliers: mults,
            nominal_ps: nominal,
        }
    }

    /// A PV-free reference signature (every multiplier exactly 1.0).
    pub fn nominal(nl: &Netlist, corner: Corner) -> Self {
        Self::fabricate(nl, corner, VariationParams::none(), 0)
    }

    /// The operating corner this signature was fabricated at.
    #[inline]
    pub fn corner(&self) -> Corner {
        self.corner
    }

    /// The fabrication-lottery seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Post-silicon delay of the gate driving signal index `idx`, ps.
    #[inline]
    pub fn delay_ps(&self, idx: usize) -> f64 {
        self.delays_ps[idx]
    }

    /// All post-silicon gate delays, indexed by signal index.
    #[inline]
    pub fn delays_ps(&self) -> &[f64] {
        &self.delays_ps
    }

    /// Delay multiplier of gate `idx` relative to the corner nominal.
    #[inline]
    pub fn multiplier(&self, idx: usize) -> f64 {
        self.multipliers[idx]
    }

    /// Nominal (PV-free) delay of gate `idx` at this corner, ps.
    #[inline]
    pub fn nominal_ps(&self, idx: usize) -> f64 {
        self.nominal_ps[idx]
    }

    /// Indices of *slow* choke gates (multiplier ≥ [`CHOKE_SLOW_MULTIPLIER`]).
    pub fn slow_choke_gates(&self) -> Vec<usize> {
        self.multipliers
            .iter()
            .enumerate()
            .filter(|(_, &m)| m >= CHOKE_SLOW_MULTIPLIER)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of *fast* choke gates (multiplier ≤ [`CHOKE_FAST_MULTIPLIER`]).
    pub fn fast_choke_gates(&self) -> Vec<usize> {
        self.multipliers
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0.0 && m <= CHOKE_FAST_MULTIPLIER)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fraction of logic gates that are slow choke gates, in percent — the
    /// raw material of the CGL (Choke Gate Level) metric.
    pub fn slow_choke_fraction_pct(&self, nl: &Netlist) -> f64 {
        100.0 * self.slow_choke_gates().len() as f64 / nl.logic_gate_count().max(1) as f64
    }

    /// Overwrite the delays of selected gates with `multiplier × nominal`.
    ///
    /// This is the *controlled choke-injection* mode used by Fig. 4.2,
    /// where the paper limits choke gates to 2 % of the netlist to show
    /// even a limited presence has visible impact.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn inject_choke(&mut self, gates: &[usize], multiplier: f64) {
        for &g in gates {
            self.multipliers[g] = multiplier;
            self.delays_ps[g] = self.nominal_ps[g] * multiplier;
        }
    }

    /// Summary statistics of the multiplier distribution over logic gates.
    pub fn multiplier_stats(&self, nl: &Netlist) -> MultiplierStats {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (i, gate) in nl.gates().iter().enumerate() {
            if gate.kind().is_pseudo() {
                continue;
            }
            let m = self.multipliers[i];
            min = min.min(m);
            max = max.max(m);
            sum += m;
            n += 1;
        }
        MultiplierStats {
            min,
            max,
            mean: if n > 0 { sum / n as f64 } else { 1.0 },
        }
    }
}

/// Min / max / mean of the per-gate delay multipliers on one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplierStats {
    /// Smallest multiplier (fastest gate relative to nominal).
    pub min: f64,
    /// Largest multiplier (slowest gate relative to nominal).
    pub max: f64,
    /// Mean multiplier.
    pub mean: f64,
}

/// Fabricate `count` chips of the same design (the chip lottery).
pub fn chip_lottery(
    nl: &Netlist,
    corner: Corner,
    params: VariationParams,
    base_seed: u64,
    count: usize,
) -> Vec<ChipSignature> {
    (0..count)
        .map(|i| ChipSignature::fabricate(nl, corner, params, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_netlist::generators::alu::Alu;

    fn small_alu() -> Netlist {
        Alu::new(8).into_netlist()
    }

    #[test]
    fn nominal_signature_is_unity() {
        let nl = small_alu();
        let sig = ChipSignature::nominal(&nl, Corner::NTC);
        for (i, g) in nl.gates().iter().enumerate() {
            assert!((sig.multiplier(i) - 1.0).abs() < 1e-9);
            if !g.kind().is_pseudo() {
                assert!(sig.delay_ps(i) > 0.0);
            }
        }
        assert!(sig.slow_choke_gates().is_empty());
        assert!(sig.fast_choke_gates().is_empty());
    }

    #[test]
    fn ntc_delays_scaled_up() {
        let nl = small_alu();
        let stc = ChipSignature::nominal(&nl, Corner::STC);
        let ntc = ChipSignature::nominal(&nl, Corner::NTC);
        let i = nl
            .gates()
            .iter()
            .position(|g| !g.kind().is_pseudo())
            .expect("alu has logic gates");
        let ratio = ntc.delay_ps(i) / stc.delay_ps(i);
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ntc_chips_have_more_choke_gates_than_stc() {
        let nl = small_alu();
        let mut stc_chokes = 0usize;
        let mut ntc_chokes = 0usize;
        for seed in 0..10 {
            stc_chokes += ChipSignature::fabricate(&nl, Corner::STC, VariationParams::stc(), seed)
                .slow_choke_gates()
                .len();
            ntc_chokes += ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), seed)
                .slow_choke_gates()
                .len();
        }
        assert!(
            ntc_chokes > 4 * stc_chokes.max(1),
            "NTC chokes {ntc_chokes} vs STC {stc_chokes}"
        );
    }

    #[test]
    fn fabrication_is_deterministic() {
        let nl = small_alu();
        let a = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 42);
        let b = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 42);
        assert_eq!(a.delays_ps(), b.delays_ps());
    }

    #[test]
    fn lottery_chips_differ() {
        let nl = small_alu();
        let chips = chip_lottery(&nl, Corner::NTC, VariationParams::ntc(), 0, 3);
        assert_eq!(chips.len(), 3);
        assert_ne!(chips[0].delays_ps(), chips[1].delays_ps());
        assert_ne!(chips[1].delays_ps(), chips[2].delays_ps());
    }

    #[test]
    fn choke_injection_sets_exact_delays() {
        let nl = small_alu();
        let mut sig = ChipSignature::nominal(&nl, Corner::NTC);
        let target = nl
            .gates()
            .iter()
            .position(|g| !g.kind().is_pseudo())
            .expect("logic gate");
        sig.inject_choke(&[target], 5.0);
        assert!((sig.multiplier(target) - 5.0).abs() < 1e-12);
        assert!((sig.delay_ps(target) - 5.0 * sig.nominal_ps(target)).abs() < 1e-9);
        assert_eq!(sig.slow_choke_gates(), vec![target]);
    }

    #[test]
    fn multiplier_stats_bracket_unity_at_ntc() {
        let nl = small_alu();
        let sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 7);
        let stats = sig.multiplier_stats(&nl);
        assert!(stats.min < 1.0, "some gates speed up: {stats:?}");
        assert!(stats.max > 1.5, "some gates slow down a lot: {stats:?}");
        assert!(stats.mean > 0.5 && stats.mean < 3.0);
    }

    #[test]
    fn both_delay_directions_exist_at_ntc() {
        // Chapter 4's premise: PV can both raise and lower path delays.
        let nl = small_alu();
        let sig = ChipSignature::fabricate(&nl, Corner::NTC, VariationParams::ntc(), 3);
        assert!(!sig.fast_choke_gates().is_empty() || sig.multiplier_stats(&nl).min < 0.8);
    }
}
