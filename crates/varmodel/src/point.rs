//! The canonical operating-point roster: supply voltage as a first-class
//! sweep axis.
//!
//! The paper pins every evaluation at two corners (STC = 0.8 V, NTC =
//! 0.45 V); the roster promotes the whole range between them into named,
//! parseable operating points at a fixed step, mirroring the scheme
//! registry's name/roster/parse discipline so grids, caches, CLIs, and
//! the serve protocol can all address a voltage by one stable string.

use crate::device::Corner;
use std::fmt;

/// Voltage step between adjacent roster points, volts.
pub const VDD_STEP: f64 = 0.05;

/// The roster table: stable name, display name, supply voltage. Ascending
/// voltage order — index 0 is the NTC corner, the last entry the STC
/// corner. Names are wire/CLI/cache-stable; never rename an entry.
const TABLE: [(&str, &str, f64); 8] = [
    ("v0.45", "0.45 V", 0.45),
    ("v0.50", "0.50 V", 0.50),
    ("v0.55", "0.55 V", 0.55),
    ("v0.60", "0.60 V", 0.60),
    ("v0.65", "0.65 V", 0.65),
    ("v0.70", "0.70 V", 0.70),
    ("v0.75", "0.75 V", 0.75),
    ("v0.80", "0.80 V", 0.80),
];

/// One named supply-voltage operating point from the canonical roster.
///
/// A point is an index into the fixed roster, so it is `Copy`/`Eq`/`Ord`
/// (ascending voltage) and cheap to put in cache keys. Conversions:
/// [`OperatingPoint::corner`] yields the device-layer [`Corner`] (the two
/// endpoints map to the stock `NTC`/`STC` corners so chip memoization and
/// display strings are shared with the corner-pinned paths), and
/// [`OperatingPoint::parse`] accepts the stable name (`"v0.60"`), the bare
/// voltage (`"0.60"`), or the `ntc`/`stc` aliases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatingPoint(u8);

impl OperatingPoint {
    /// Number of points in the roster.
    pub const COUNT: usize = TABLE.len();

    /// The near-threshold endpoint (0.45 V — the paper's NTC corner).
    pub const NTC: OperatingPoint = OperatingPoint(0);

    /// The super-threshold endpoint (0.80 V — the paper's STC corner).
    pub const STC: OperatingPoint = OperatingPoint((TABLE.len() - 1) as u8);

    /// Every roster point, ascending in voltage.
    pub fn roster() -> [OperatingPoint; Self::COUNT] {
        let mut out = [OperatingPoint(0); Self::COUNT];
        let mut i = 0;
        while i < Self::COUNT {
            out[i] = OperatingPoint(i as u8);
            i += 1;
        }
        out
    }

    /// Supply voltage of this point, volts.
    pub fn vdd(self) -> f64 {
        TABLE[self.0 as usize].2
    }

    /// Stable registry name (`"v0.45"` … `"v0.80"`): the string grids,
    /// caches, `--vdd`, and the serve protocol address this point by.
    pub fn name(self) -> &'static str {
        TABLE[self.0 as usize].0
    }

    /// Human-readable display name (`"0.45 V"`).
    pub fn display_name(self) -> &'static str {
        TABLE[self.0 as usize].1
    }

    /// The device-layer corner of this point. The endpoints return the
    /// stock [`Corner::NTC`] / [`Corner::STC`] values (same vdd, same
    /// name), so chips fabricated through the voltage axis share their
    /// memoized blanks with the legacy corner-pinned paths.
    pub fn corner(self) -> Corner {
        if self == Self::NTC {
            Corner::NTC
        } else if self == Self::STC {
            Corner::STC
        } else {
            Corner {
                vdd: self.vdd(),
                name: self.name(),
            }
        }
    }

    /// The roster point matching a corner's supply voltage, if any.
    pub fn from_corner(corner: Corner) -> Option<OperatingPoint> {
        Self::roster()
            .into_iter()
            .find(|p| (p.vdd() - corner.vdd).abs() < 1e-9)
    }

    /// The next roster point down in voltage (toward NTC), if any.
    pub fn step_down(self) -> Option<OperatingPoint> {
        self.0.checked_sub(1).map(OperatingPoint)
    }

    /// The next roster point up in voltage (toward STC), if any.
    pub fn step_up(self) -> Option<OperatingPoint> {
        let up = self.0 + 1;
        (usize::from(up) < Self::COUNT).then_some(OperatingPoint(up))
    }

    /// Parse a point from its stable name (`"v0.60"`), a bare voltage
    /// (`"0.60"`), or the corner aliases (`"ntc"` / `"stc"`, any case).
    ///
    /// # Errors
    ///
    /// Returns a [`ParsePointError`] (whose `Display` lists the roster)
    /// when the input names no registered point.
    pub fn parse(input: &str) -> Result<OperatingPoint, ParsePointError> {
        let trimmed = input.trim();
        if trimmed.eq_ignore_ascii_case("ntc") {
            return Ok(Self::NTC);
        }
        if trimmed.eq_ignore_ascii_case("stc") {
            return Ok(Self::STC);
        }
        let bare = trimmed.strip_prefix('v').unwrap_or(trimmed);
        for p in Self::roster() {
            if p.name() == trimmed || &p.name()[1..] == bare {
                return Ok(p);
            }
        }
        Err(ParsePointError {
            input: input.to_owned(),
        })
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`OperatingPoint::parse`] for unregistered inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePointError {
    /// The offending input string.
    pub input: String,
}

impl fmt::Display for ParsePointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown operating point {:?}; registered points:",
            self.input
        )?;
        for p in OperatingPoint::roster() {
            write!(f, " {}", p.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParsePointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_ascending_at_fixed_step() {
        let roster = OperatingPoint::roster();
        assert_eq!(roster.len(), OperatingPoint::COUNT);
        for pair in roster.windows(2) {
            assert!(
                (pair[1].vdd() - pair[0].vdd() - VDD_STEP).abs() < 1e-12,
                "fixed step between {} and {}",
                pair[0],
                pair[1]
            );
        }
        assert_eq!(roster[0], OperatingPoint::NTC);
        assert_eq!(roster[roster.len() - 1], OperatingPoint::STC);
    }

    #[test]
    fn names_round_trip_and_are_unique() {
        let roster = OperatingPoint::roster();
        for p in roster {
            assert_eq!(OperatingPoint::parse(p.name()), Ok(p));
            // Bare-voltage spelling parses to the same point.
            assert_eq!(OperatingPoint::parse(&p.name()[1..]), Ok(p));
        }
        let mut names: Vec<&str> = roster.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), roster.len(), "names unique");
        let mut displays: Vec<&str> = roster.iter().map(|p| p.display_name()).collect();
        displays.sort_unstable();
        displays.dedup();
        assert_eq!(displays.len(), roster.len(), "display names unique");
    }

    #[test]
    fn corner_endpoints_are_the_stock_corners() {
        assert_eq!(OperatingPoint::NTC.corner(), Corner::NTC);
        assert_eq!(OperatingPoint::STC.corner(), Corner::STC);
        let mid = OperatingPoint::parse("v0.60").unwrap();
        assert_eq!(mid.corner().name, "v0.60");
        assert!((mid.corner().vdd - 0.60).abs() < 1e-12);
        assert_eq!(OperatingPoint::from_corner(Corner::NTC), Some(OperatingPoint::NTC));
        assert_eq!(OperatingPoint::from_corner(Corner::custom(0.61)), None);
    }

    #[test]
    fn aliases_and_errors() {
        assert_eq!(OperatingPoint::parse("NTC"), Ok(OperatingPoint::NTC));
        assert_eq!(OperatingPoint::parse("stc"), Ok(OperatingPoint::STC));
        let err = OperatingPoint::parse("v0.62").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("v0.62") && msg.contains("v0.45") && msg.contains("v0.80"));
    }

    #[test]
    fn stepping_walks_the_roster() {
        assert_eq!(OperatingPoint::NTC.step_down(), None);
        assert_eq!(OperatingPoint::STC.step_up(), None);
        let mut p = OperatingPoint::STC;
        let mut steps = 0;
        while let Some(down) = p.step_down() {
            assert!(down.vdd() < p.vdd());
            p = down;
            steps += 1;
        }
        assert_eq!(steps, OperatingPoint::COUNT - 1);
        assert_eq!(p, OperatingPoint::NTC);
    }
}
