//! Minimal in-tree pseudo-random number generation: a [`SplitMix64`]
//! stream with a Box–Muller standard-normal sampler.
//!
//! The whole reproduction is Monte-Carlo over *seeded* draws — chips in
//! the fabrication lottery, operand vectors, trace phases — and the
//! determinism contract of the sweep engine (see `ntc-experiments`) rests
//! on every draw being a pure function of its seed. A tiny generator we
//! own entirely is therefore preferable to an external crate: the build
//! stays hermetic (no registry access required) and the bit-stream can
//! never shift underneath the golden fixtures because a dependency was
//! upgraded.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is the standard choice
//! for this job: one `u64` of state, an invertible avalanche mix, full
//! 2⁶⁴ period, and statistically sound output even from consecutive
//! integer seeds — exactly how the experiment harness seeds chips
//! (`base + chip_idx`).

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use ntc_varmodel::rng::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(7);
/// let mut b = SplitMix64::seed_from_u64(7);
/// assert_eq!(a.gen_u64(), b.gen_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment of the SplitMix64 stream.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Named after the `rand`
    /// constructor it replaces so call sites read identically.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` over the full range.
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        // Use a high bit: the low bit of a mixed output is fine too, but
        // high bits are conventionally the best-avalanched.
        self.next_u64() >> 63 == 1
    }

    /// Uniform index in `0..n` (Lemire's widening-multiply reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a nonempty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        lo + self.gen_index(hi - lo + 1)
    }

    /// Standard-normal draw via Box–Muller (cosine branch only, matching
    /// the sampler this module replaced: one normal per two uniforms).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.gen_f64();
            let u2 = self.gen_f64();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference output of SplitMix64 seeded with 1234567 (published
        // test vector of the Vigna implementation).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_is_in_unit_interval_and_uniformish() {
        let mut r = SplitMix64::seed_from_u64(9);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_index_covers_range_without_overflow() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let i = r.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
        assert_eq!(r.gen_range_inclusive(5, 5), 5);
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = SplitMix64::seed_from_u64(17);
        let trues = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4_600..5_400).contains(&trues), "trues {trues}");
    }
}
