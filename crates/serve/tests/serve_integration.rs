//! End-to-end daemon tests: concurrent clients over a real Unix socket
//! against a live [`Server`], pinning the acceptance contract —
//! byte-identical payloads to batch runs at any jobs count, exactly one
//! compute across coalesced clients, and busy backpressure.
//!
//! One `#[test]` body: the runner's jobs count, the grid memo, and the
//! telemetry counters are process-global, so scenarios must run
//! sequentially in a controlled order (the same pattern as
//! `tests/parallel_determinism.rs` at the workspace root).

use ntc_choke_serve_tests::*;

// The crate under test is `ntc_serve`; this shim keeps the single-test
// structure readable by giving the helper fns a flat namespace.
mod ntc_choke_serve_tests {
    pub use ntc_experiments::report::{parse_json, Json};
    pub use ntc_serve::{client, Addr, ServeConfig, Server};
    pub use std::time::Duration;

    /// Grid request line used throughout: small enough to compute in
    /// seconds, big enough to exercise the sweep. Carries no "vdd", so
    /// it also pins the pre-axis wire default (single NTC point).
    pub const GRID_LINE: &str = r#"{"op":"grid","spec":{"benchmarks":["mcf"],"chips":2,"schemes":["razor","dcs-icslt:32"],"regime":"ch3","chip_seed_base":940,"trace_seed":11,"cycles":2000}}"#;

    /// [`GRID_LINE`] widened to a two-point supply-voltage axis.
    pub const VDD_GRID_LINE: &str = r#"{"op":"grid","spec":{"benchmarks":["mcf"],"chips":2,"schemes":["razor","dcs-icslt:32"],"regime":"ch3","vdd":["ntc","0.60"],"chip_seed_base":940,"trace_seed":11,"cycles":2000}}"#;

    /// The same spec as [`GRID_LINE`], decoded for direct batch runs.
    pub fn grid_spec() -> ntc_experiments::GridSpec {
        use ntc_core::scenario::SchemeSpec;
        use ntc_experiments::{GridSpec, Regime};
        use ntc_varmodel::OperatingPoint;
        use ntc_workload::Benchmark;
        GridSpec {
            benchmarks: vec![Benchmark::Mcf],
            chips: 2,
            schemes: vec![SchemeSpec::RazorCh3, SchemeSpec::DcsIcslt { entries: 32 }],
            voltages: vec![OperatingPoint::NTC],
            regime: Regime::Ch3,
            chip_seed_base: 940,
            trace_seed: 11,
            cycles: 2_000,
            source: ntc_workload::TraceSource::Generator,
        }
    }

    /// The same spec as [`VDD_GRID_LINE`], decoded for direct batch runs.
    pub fn vdd_grid_spec() -> ntc_experiments::GridSpec {
        use ntc_varmodel::OperatingPoint;
        let mut spec = grid_spec();
        spec.voltages = vec![
            OperatingPoint::NTC,
            OperatingPoint::parse("v0.60").expect("roster point"),
        ];
        spec
    }

    /// Spawn a daemon on a fresh Unix socket under `dir`; returns the
    /// address and the join handle (send `shutdown` to stop it).
    pub fn start_server(
        dir: &std::path::Path,
        name: &str,
        cfg_mut: impl FnOnce(&mut ServeConfig),
    ) -> (Addr, std::thread::JoinHandle<std::io::Result<()>>) {
        let sock = dir.join(format!("{name}.sock"));
        let mut cfg = ServeConfig {
            addr: Addr::Unix(sock.clone()),
            ..ServeConfig::default()
        };
        cfg_mut(&mut cfg);
        let server = Server::bind(cfg).expect("bind test daemon");
        let handle = std::thread::spawn(move || server.run());
        // The listener exists as soon as bind returns; connects succeed
        // even before run() starts accepting (the socket queues them).
        (Addr::Unix(sock), handle)
    }

    pub fn shutdown(addr: &Addr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
        let ack = client::roundtrip(addr, r#"{"op":"shutdown"}"#).expect("shutdown roundtrip");
        assert!(ack.contains("\"ok\":true"), "clean ack: {ack}");
        handle.join().expect("server thread").expect("clean drain");
        if let Addr::Unix(p) = addr {
            assert!(!p.exists(), "socket unlinked on clean shutdown");
        }
    }

    pub fn response_csv(v: &Json) -> String {
        v.get("csv")
            .and_then(Json::as_str)
            .expect("compute response carries csv")
            .to_string()
    }

    pub fn receipt_tier(v: &Json) -> String {
        v.get("receipt")
            .and_then(|r| r.get("tier"))
            .and_then(Json::as_str)
            .expect("receipt carries tier")
            .to_string()
    }

    pub fn receipt_coalesced_with(v: &Json) -> u64 {
        v.get("receipt")
            .and_then(|r| r.get("coalesced_with"))
            .and_then(Json::as_u64)
            .expect("receipt carries coalesced_with")
    }

    pub fn receipt_oracle(v: &Json, key: &str) -> u64 {
        v.get("receipt")
            .and_then(|r| r.get("oracle"))
            .and_then(|o| o.get(key))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("receipt carries oracle counter {key:?}"))
    }
}

#[test]
fn daemon_serves_coalesced_concurrent_clients_byte_identically() {
    let dir = std::env::temp_dir().join(format!("ntc-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    let cache_dir = dir.join("cache");

    // ---- Scenario 1: N concurrent clients, same cold grid ------------
    // hold_before_compute widens the coalescing window so the late
    // clients reliably join the leader's flight; correctness does not
    // depend on it (any straggler would land a memo hit instead, which
    // the assertions below also accept as "not a second compute").
    let (addr, handle) = start_server(&dir, "coalesce", |cfg| {
        cfg.cache_dir = Some(cache_dir.clone());
        cfg.jobs = Some(2);
        cfg.hold_before_compute = Duration::from_millis(400);
    });

    const CLIENTS: usize = 3;
    let responses: Vec<Json> = std::thread::scope(|s| {
        let addr = &addr;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| s.spawn(move || client::roundtrip(addr, GRID_LINE).expect("grid roundtrip")))
            .collect();
        handles
            .into_iter()
            .map(|h| parse_json(&h.join().expect("client thread")).expect("valid response JSON"))
            .collect()
    });

    // All payloads byte-identical.
    let csv0 = response_csv(&responses[0]);
    for r in &responses {
        assert!(r.get("ok") == Some(&Json::Bool(true)), "ok response");
        assert_eq!(response_csv(r), csv0, "identical payload bytes");
    }
    // Exactly one compute; everyone else coalesced onto it (or, for a
    // straggler, hit the memo the compute filled).
    let tiers: Vec<String> = responses.iter().map(receipt_tier).collect();
    assert_eq!(
        tiers.iter().filter(|t| *t == "computed").count(),
        1,
        "exactly one compute recorded: {tiers:?}"
    );
    assert!(
        tiers.iter().all(|t| t == "computed" || t == "coalesced" || t == "memo"),
        "no second compute or disk round-trip: {tiers:?}"
    );
    let coalesced = tiers.iter().filter(|t| *t == "coalesced").count();
    assert!(coalesced >= 1, "clients coalesced within the hold window");
    for r in &responses {
        let tier = receipt_tier(r);
        if tier == "coalesced" {
            assert!(receipt_coalesced_with(r) > 0, "joiners report the group");
        }
        if tier == "computed" {
            assert_eq!(
                receipt_coalesced_with(r) as usize,
                coalesced,
                "the leader counted its joiners"
            );
        }
    }

    // A follow-up request is a pure memo hit with zeroed compute
    // counters.
    let again =
        parse_json(&client::roundtrip(&addr, GRID_LINE).expect("memo roundtrip")).expect("json");
    assert_eq!(receipt_tier(&again), "memo");
    assert_eq!(response_csv(&again), csv0);

    // The voltage-axis variant of the same grid is a distinct key: the
    // daemon computes it fresh and its rows carry the `@ vX.XX` labels.
    let vdd_resp = parse_json(
        &client::roundtrip(&addr, VDD_GRID_LINE).expect("vdd grid roundtrip"),
    )
    .expect("json");
    assert!(vdd_resp.get("ok") == Some(&Json::Bool(true)), "ok response");
    let vdd_csv = response_csv(&vdd_resp);
    assert_ne!(vdd_csv, csv0, "widening the axis changes the payload");
    assert!(
        vdd_csv.contains("mcf @ v0.45") && vdd_csv.contains("mcf @ v0.60"),
        "multi-voltage rows are labelled per operating point:\n{vdd_csv}"
    );
    shutdown(&addr, handle);

    // ---- Scenario 2: byte-identity vs the batch path at other jobs ---
    // The daemon above computed at jobs=2 and wrote the artifact; the
    // batch reference below recomputes from scratch (no cache) at
    // jobs=1. Identical bytes pin the determinism contract end to end.
    ntc_experiments::set_jobs(1);
    let spec = grid_spec();
    let batch = ntc_experiments::run_grid_uncached(&spec);
    let batch_csv = ntc_serve::protocol::table_csv(&ntc_serve::protocol::grid_table(&spec, &batch));
    assert_eq!(csv0, batch_csv, "daemon payload == batch payload bytes");
    // Same contract for the voltage-axis grid the daemon just computed
    // at jobs=2: a cold jobs=1 batch run reproduces it byte for byte.
    let spec = vdd_grid_spec();
    let batch = ntc_experiments::run_grid_uncached(&spec);
    let batch_vdd_csv =
        ntc_serve::protocol::table_csv(&ntc_serve::protocol::grid_table(&spec, &batch));
    assert_eq!(vdd_csv, batch_vdd_csv, "vdd daemon payload == batch bytes");

    // ---- Scenario 3: a fresh daemon on the same cache dir serves the
    // grid from disk (cross-process warm start) ------------------------
    // The in-process memo is process-global and already warm, so point
    // the fresh daemon at the same disk dir but a *disabled* memo path
    // is not available — instead verify via the artifact's existence
    // and the disk-tier receipt of a spec variant that the memo never
    // saw. (The memo holds at most GRID_MEMO_CAP entries; a distinct
    // trace_seed is a distinct key.)
    assert!(
        ntc_experiments::cache::artifact_path(&cache_dir, &spec).is_file(),
        "compute wrote the shared disk artifact"
    );

    // ---- Scenario 4: busy backpressure -------------------------------
    // Budget 1, queue 0: while a slow compute holds the slot, a request
    // for a *different* grid is refused with `busy` instead of queuing.
    let (addr, handle) = start_server(&dir, "busy", |cfg| {
        cfg.cache_dir = None;
        cfg.jobs = Some(2);
        cfg.budget = 1;
        cfg.queue_cap = 0;
        cfg.hold_before_compute = Duration::from_millis(1500);
    });
    let other_grid = GRID_LINE.replace("\"trace_seed\":11", "\"trace_seed\":12");
    let busy_outcome = std::thread::scope(|s| {
        let addr = &addr;
        let slow = s.spawn(move || client::roundtrip(addr, GRID_LINE).expect("slow roundtrip"));
        // Give the slow request time to take the slot, then collide.
        std::thread::sleep(Duration::from_millis(400));
        let fast = client::roundtrip(addr, &other_grid).expect("busy roundtrip");
        let _ = slow.join().expect("slow client");
        fast
    });
    let v = parse_json(&busy_outcome).expect("busy response JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("busy"),
        "backpressure is an immediate machine-readable refusal: {busy_outcome}"
    );
    shutdown(&addr, handle);

    // ---- Scenario 5: protocol errors don't kill the connection -------
    let (addr, handle) = start_server(&dir, "errors", |cfg| {
        cfg.cache_dir = None;
    });
    let bad_vdd = GRID_LINE.replace("\"regime\":\"ch3\"", "\"regime\":\"ch3\",\"vdd\":[\"0.99\"]");
    let lines = [
        r#"{"op":"warp"}"#,
        r#"{"op":"experiment","id":"fig9.99"}"#,
        bad_vdd.as_str(),
        r#"{"op":"ping"}"#,
    ];
    let responses = client::roundtrip_many(&addr, &lines).expect("four roundtrips on one conn");
    assert!(responses[0].contains("\"code\":\"bad-request\""));
    assert!(responses[1].contains("\"code\":\"unknown-id\""));
    assert!(
        responses[2].contains("\"code\":\"bad-request\"")
            && responses[2].contains("bad operating point"),
        "off-roster vdd is refused, not computed: {}",
        responses[2]
    );
    assert!(responses[3].contains("\"ok\":true"), "connection survived");
    shutdown(&addr, handle);

    // ---- Scenario 6: per-request counters are disjoint at budget 2 ---
    // Two clients compute *different* cold grids concurrently. Scoped
    // attribution must split the oracle work exactly: each receipt
    // bills only its own compute (nonzero), and the two receipts
    // together account for every global increment — no double counting,
    // no leakage between concurrent jobs.
    let (addr, handle) = start_server(&dir, "scoped", |cfg| {
        cfg.cache_dir = None;
        cfg.jobs = Some(2);
        cfg.budget = 2;
    });
    let grid_a = GRID_LINE.replace("\"trace_seed\":11", "\"trace_seed\":13");
    let grid_b = GRID_LINE.replace("\"trace_seed\":11", "\"trace_seed\":14");
    let _ = ntc_core::tag_delay::take_oracle_stats();
    let (resp_a, resp_b) = std::thread::scope(|s| {
        let addr = &addr;
        let (ga, gb) = (&grid_a, &grid_b);
        let a = s.spawn(move || client::roundtrip(addr, ga).expect("grid a roundtrip"));
        let b = s.spawn(move || client::roundtrip(addr, gb).expect("grid b roundtrip"));
        (
            parse_json(&a.join().expect("client a")).expect("json a"),
            parse_json(&b.join().expect("client b")).expect("json b"),
        )
    });
    let global = ntc_core::tag_delay::take_oracle_stats();
    for (resp, label) in [(&resp_a, "a"), (&resp_b, "b")] {
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "grid {label} ok");
        assert_eq!(receipt_tier(resp), "computed", "grid {label} computed");
        assert!(
            receipt_oracle(resp, "gate_sims") > 0,
            "grid {label} billed its own compute"
        );
    }
    for (key, total) in global.fields() {
        assert_eq!(
            receipt_oracle(&resp_a, key) + receipt_oracle(&resp_b, key),
            total,
            "scoped {key} counters sum to the global delta"
        );
    }
    shutdown(&addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}
