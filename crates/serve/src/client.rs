//! Minimal scripted client: connect, send request lines, collect
//! response lines. What the `ntc-serve request` subcommand, the CI
//! gate's concurrent clients, and the integration tests all drive.

use crate::server::Addr;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// Send one request line and return the one response line (without the
/// trailing newline).
///
/// # Errors
///
/// Propagates connect/write/read failures; an empty response (server
/// closed without answering) maps to `UnexpectedEof`.
pub fn roundtrip(addr: &Addr, request_line: &str) -> std::io::Result<String> {
    let responses = roundtrip_many(addr, std::slice::from_ref(&request_line))?;
    responses
        .into_iter()
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no response"))
}

/// Send several request lines over one connection and return the
/// response line for each, in order.
///
/// # Errors
///
/// Propagates connect/write/read failures; a short response set
/// (server closed early) maps to `UnexpectedEof`.
pub fn roundtrip_many<S: AsRef<str>>(addr: &Addr, requests: &[S]) -> std::io::Result<Vec<String>> {
    let (mut writer, reader): (Box<dyn Write>, Box<dyn std::io::Read>) = match addr {
        Addr::Unix(path) => {
            let s = UnixStream::connect(path)?;
            (Box::new(s.try_clone()?), Box::new(s))
        }
        Addr::Tcp(a) => {
            let s = TcpStream::connect(a.as_str())?;
            (Box::new(s.try_clone()?), Box::new(s))
        }
    };
    let mut reader = BufReader::new(reader);
    let mut out = Vec::with_capacity(requests.len());
    for req in requests {
        writer.write_all(req.as_ref().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        out.push(line);
    }
    Ok(out)
}
