//! The serve wire protocol: JSON lines (one request object per line in,
//! one response object per line out) plus the schema-versioned receipt
//! every successful response carries.
//!
//! # Framing
//!
//! Newline-delimited JSON in both directions. A request is a single
//! JSON object on one line; the response to it is a single JSON object
//! on one line (string values are RFC 8259-escaped, so embedded CSV
//! newlines never break the framing). A connection may carry any number
//! of request/response pairs sequentially.
//!
//! # Requests
//!
//! ```json
//! {"op":"ping"}
//! {"op":"list"}
//! {"op":"experiment","id":"fig3.8","scale":"fast"}
//! {"op":"grid","spec":{"benchmarks":["mcf"],"chips":1,
//!   "schemes":["razor","dcs-icslt:32"],"regime":"ch3",
//!   "vdd":["ntc","v0.60"],
//!   "chip_seed_base":220,"trace_seed":7,"cycles":2000}}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! A grid spec may also carry `"trace_dir":"<server-local dir>"` to
//! replay recorded binary traces instead of the statistical generator,
//! plus `"phases":true` to replay SimPoint-weighted phases of those
//! traces; both are optional and absent means the generator.
//!
//! # Responses
//!
//! Success: `{"ok":true,"op":...,...}`; compute responses add `"csv"`
//! (the payload bytes, identical to what batch `repro` writes) and
//! `"receipt"` (see [`Receipt`]). Failure:
//! `{"ok":false,"error":{"code":...,"message":...}}` with one of the
//! [`ErrorCode`]s.

use ntc_core::scenario::SchemeSpec;
use ntc_core::tag_delay::OracleStats;
use ntc_experiments::cache::CacheStats;
use ntc_experiments::report::{parse_json, push_key_str, push_json_str, Json};
use ntc_experiments::runner::SweepStats;
use ntc_experiments::scenario::{row_label, GridResult, GridSpec, Regime};
use ntc_experiments::table::ResultTable;
use ntc_experiments::Scale;
use ntc_varmodel::OperatingPoint;
use ntc_workload::ALL_BENCHMARKS;

/// Schema tag of the per-request receipt, bumped on any
/// field/semantics change (mirrors the manifest's
/// `ntc-repro-manifest/N` convention).
pub const RECEIPT_SCHEMA: &str = "ntc-serve-receipt/1";

/// Machine-readable failure classes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unparseable or malformed request line.
    BadRequest,
    /// `experiment` with an id the suite does not contain.
    UnknownId,
    /// Admission queue full — retry later (the backpressure signal).
    Busy,
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
    /// The compute failed server-side (a panic was contained).
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownId => "unknown-id",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enumerate servable experiment ids, benchmarks, and schemes.
    List,
    /// Run one figure/table of the suite at a scale.
    Experiment {
        /// Experiment id, e.g. `"fig3.8"`.
        id: String,
        /// `fast` or `full`.
        scale: Scale,
    },
    /// Run (or fetch) one comparison grid.
    Grid {
        /// The complete grid description — also the cache key.
        spec: GridSpec,
    },
    /// Server counters since startup.
    Stats,
    /// Drain and exit cleanly.
    Shutdown,
}

/// Parse one request line.
///
/// # Errors
///
/// Returns a human-readable message (the server wraps it in a
/// [`ErrorCode::BadRequest`] response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field \"op\"")?;
    match op {
        "ping" => Ok(Request::Ping),
        "list" => Ok(Request::List),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "experiment" => {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or("experiment: missing string field \"id\"")?
                .to_string();
            let scale = match v.get("scale").and_then(Json::as_str) {
                Some("fast") | None => Scale::Fast,
                Some("full") => Scale::Full,
                Some(other) => return Err(format!("unknown scale {other:?}")),
            };
            Ok(Request::Experiment { id, scale })
        }
        "grid" => {
            let spec = v.get("spec").ok_or("grid: missing object field \"spec\"")?;
            Ok(Request::Grid {
                spec: spec_from_json(spec)?,
            })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Decode a [`GridSpec`] from its wire object.
fn spec_from_json(v: &Json) -> Result<GridSpec, String> {
    fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("spec: missing integer field {key:?}"))
    }
    let benchmarks = v
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("spec: missing array field \"benchmarks\"")?
        .iter()
        .map(|b| {
            let name = b.as_str().ok_or("spec: benchmark names must be strings")?;
            ALL_BENCHMARKS
                .iter()
                .copied()
                .find(|bench| bench.name() == name)
                .ok_or_else(|| format!("unknown benchmark {name:?}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let schemes = v
        .get("schemes")
        .and_then(Json::as_arr)
        .ok_or("spec: missing array field \"schemes\"")?
        .iter()
        .map(|s| {
            let name = s.as_str().ok_or("spec: scheme names must be strings")?;
            SchemeSpec::parse(name).map_err(|e| format!("bad scheme {name:?}: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let regime = v
        .get("regime")
        .and_then(Json::as_str)
        .ok_or("spec: missing string field \"regime\"")?;
    let regime = Regime::parse(regime).ok_or_else(|| format!("unknown regime {regime:?}"))?;
    // The trace source is optional on the wire: an absent "trace_dir"
    // keeps the statistical generator (every pre-trace client is
    // byte-compatible); present, the server replays recorded traces
    // from that server-local directory — whole by default, SimPoint
    // phases with `"phases":true`. Recording is deliberately not
    // servable: clients must not make the daemon write trace files.
    let phases = match v.get("phases") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("spec: \"phases\" must be a boolean".into()),
    };
    let source = match v.get("trace_dir") {
        None => {
            if phases {
                return Err("spec: \"phases\" requires \"trace_dir\"".into());
            }
            ntc_workload::TraceSource::Generator
        }
        Some(Json::Str(dir)) if phases => {
            ntc_workload::TraceSource::Phases(std::path::PathBuf::from(dir))
        }
        Some(Json::Str(dir)) => ntc_workload::TraceSource::Replay(std::path::PathBuf::from(dir)),
        Some(_) => return Err("spec: \"trace_dir\" must be a string".into()),
    };
    // The voltage axis is optional on the wire: an absent "vdd" pins the
    // grid to the single NTC point, which keeps every pre-axis client
    // byte-compatible.
    let voltages = match v.get("vdd") {
        None => vec![OperatingPoint::NTC],
        Some(list) => list
            .as_arr()
            .ok_or("spec: \"vdd\" must be an array of operating-point names")?
            .iter()
            .map(|p| {
                let name = p.as_str().ok_or("spec: operating points must be strings")?;
                OperatingPoint::parse(name).map_err(|e| format!("bad operating point: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if benchmarks.is_empty() || schemes.is_empty() || voltages.is_empty() {
        return Err("spec: benchmarks, schemes and vdd must be non-empty".into());
    }
    Ok(GridSpec {
        benchmarks,
        chips: u64_field(v, "chips")? as usize,
        schemes,
        voltages,
        regime,
        chip_seed_base: u64_field(v, "chip_seed_base")?,
        trace_seed: u64_field(v, "trace_seed")?,
        cycles: u64_field(v, "cycles")? as usize,
        source,
    })
}

/// Telemetry drained around one compute, attributed to the request in
/// its receipt. Exact when the server's compute budget is 1 (the
/// default — requests drain the process-global counters sequentially,
/// the same pattern batch `repro` uses per experiment); at larger
/// budgets concurrent computes share the counters and the split is
/// approximate.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobCounters {
    /// Sweep busy/wall time of the compute.
    pub sweep: SweepStats,
    /// Delay-oracle counters (gate sims, cache tiers, screen, STA).
    pub oracle: OracleStats,
    /// Disk-cache counters.
    pub cache: CacheStats,
}

/// The per-request receipt: schema-versioned provenance mirroring
/// `RunRecord`'s telemetry, but scoped to one request.
#[derive(Debug, Clone)]
pub struct Receipt {
    /// Which tier answered: `memo` / `disk` / `computed` / `uncached`,
    /// or `coalesced` when this request shared another request's
    /// in-flight compute.
    pub tier: String,
    /// How many *other* requests shared the same compute (0 when the
    /// request flew alone).
    pub coalesced_with: u64,
    /// Time spent queued behind the admission gate, microseconds.
    pub queue_wait_us: u64,
    /// Compute telemetry (zeroed for pure cache hits).
    pub counters: JobCounters,
}

impl Receipt {
    /// Render as a JSON object (one line, schema-tagged).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_key_str(&mut out, "schema", RECEIPT_SCHEMA);
        out.push(',');
        push_key_str(&mut out, "tier", &self.tier);
        out.push_str(&format!(",\"coalesced_with\":{}", self.coalesced_with));
        out.push_str(&format!(",\"queue_wait_us\":{}", self.queue_wait_us));
        out.push_str(&format!(
            ",\"sweep_busy_us\":{}",
            self.counters.sweep.busy.as_micros()
        ));
        out.push_str(&format!(
            ",\"sweep_wall_us\":{}",
            self.counters.sweep.wall.as_micros()
        ));
        out.push_str(",\"oracle\":{");
        for (i, (k, v)) in self.counters.oracle.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"cache\":{");
        for (i, (k, v)) in self.counters.cache.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("}}");
        out
    }
}

/// Render a success response carrying a CSV payload and its receipt.
pub fn render_ok_csv(op: &str, id: &str, csv: &str, receipt: &Receipt) -> String {
    let mut out = String::from("{\"ok\":true,");
    push_key_str(&mut out, "op", op);
    out.push(',');
    push_key_str(&mut out, "id", id);
    out.push(',');
    push_key_str(&mut out, "csv", csv);
    out.push_str(",\"receipt\":");
    out.push_str(&receipt.to_json());
    out.push('}');
    out
}

/// Render a plain success response (`ping`, `shutdown`).
pub fn render_ok(op: &str) -> String {
    let mut out = String::from("{\"ok\":true,");
    push_key_str(&mut out, "op", op);
    out.push('}');
    out
}

/// Render the `list` response: servable experiment ids and the
/// benchmark/scheme/operating-point registries a grid spec may
/// reference.
pub fn render_list(
    experiments: &[&str],
    benchmarks: &[&str],
    schemes: &[String],
    vdd: &[&str],
) -> String {
    fn push_str_arr<S: AsRef<str>>(out: &mut String, key: &str, items: &[S]) {
        out.push('"');
        out.push_str(key);
        out.push_str("\":[");
        for (i, s) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, s.as_ref());
        }
        out.push(']');
    }
    let mut out = String::from("{\"ok\":true,");
    push_key_str(&mut out, "op", "list");
    out.push(',');
    push_str_arr(&mut out, "experiments", experiments);
    out.push(',');
    push_str_arr(&mut out, "benchmarks", benchmarks);
    out.push(',');
    push_str_arr(&mut out, "schemes", schemes);
    out.push(',');
    push_str_arr(&mut out, "vdd", vdd);
    out.push('}');
    out
}

/// Render the `stats` response from `(name, value)` counter pairs.
pub fn render_stats(counters: &[(&str, u64)]) -> String {
    let mut out = String::from("{\"ok\":true,");
    push_key_str(&mut out, "op", "stats");
    for (k, v) in counters {
        out.push_str(&format!(",\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Render an error response.
pub fn render_error(code: ErrorCode, message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":{");
    push_key_str(&mut out, "code", code.name());
    out.push(',');
    push_key_str(&mut out, "message", message);
    out.push_str("}}");
    out
}

/// The canonical table of a grid result: one row per (benchmark,
/// operating point, scheme) in spec order, the accumulator's aggregate
/// columns. Row labels go through the same [`row_label`] helper the
/// batch CSV writers use — bare benchmark names on single-voltage
/// grids, `bench @ vX.XX` once the axis is real. This — rendered
/// through the same `ResultTable::write_csv` the batch binaries use —
/// is the byte-exact payload of a `grid` response, whichever tier or
/// process produced the result.
pub fn grid_table(spec: &GridSpec, result: &GridResult) -> ResultTable {
    let mut t = ResultTable::new(
        "grid",
        "grid result",
        [
            "runs",
            "accuracy",
            "period_stretch",
            "corruptions",
            "recovered",
            "avoided",
            "false_positives",
            "power_overhead",
        ],
    );
    let multi = spec.multi_voltage();
    for (bench, point, accs) in result.rows() {
        for (scheme, acc) in spec.schemes.iter().zip(accs) {
            let r = acc.result();
            t.push_row(
                format!("{}/{}", row_label(*bench, *point, multi), scheme.name()),
                vec![
                    acc.runs() as f64,
                    acc.mean_prediction_accuracy(),
                    acc.mean_period_stretch(),
                    r.corruptions as f64,
                    r.recovered as f64,
                    r.avoided as f64,
                    r.false_positives as f64,
                    r.power_overhead,
                ],
            );
        }
    }
    t
}

/// Render a table to its CSV bytes — the exact bytes
/// `ResultTable::save_csv` would put on disk.
///
/// # Panics
///
/// Never: writes to an in-memory buffer cannot fail.
pub fn table_csv(t: &ResultTable) -> String {
    let mut buf = Vec::new();
    t.write_csv(&mut buf).expect("Vec<u8> writes are infallible");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workload::Benchmark;

    #[test]
    fn request_lines_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"list"}"#), Ok(Request::List));
        assert_eq!(
            parse_request(r#"{"op":"experiment","id":"fig3.8","scale":"fast"}"#),
            Ok(Request::Experiment {
                id: "fig3.8".into(),
                scale: Scale::Fast,
            })
        );
        let g = parse_request(
            r#"{"op":"grid","spec":{"benchmarks":["mcf"],"chips":2,
                "schemes":["razor","dcs-icslt:32"],"regime":"ch3",
                "chip_seed_base":220,"trace_seed":7,"cycles":2000}}"#,
        )
        .expect("grid request parses");
        match g {
            Request::Grid { spec } => {
                assert_eq!(spec.benchmarks, vec![Benchmark::Mcf]);
                assert_eq!(spec.chips, 2);
                assert_eq!(spec.schemes.len(), 2);
                assert_eq!(spec.regime, Regime::Ch3);
                assert_eq!(spec.cycles, 2000);
                // No "vdd" on the wire → the single NTC point, so every
                // pre-axis client addresses the exact same grid.
                assert_eq!(spec.voltages, vec![OperatingPoint::NTC]);
            }
            other => panic!("expected grid, got {other:?}"),
        }
    }

    #[test]
    fn vdd_field_round_trips_through_the_spec() {
        let g = parse_request(
            r#"{"op":"grid","spec":{"benchmarks":["mcf"],"chips":1,
                "schemes":["razor"],"regime":"ch3","vdd":["ntc","0.60","v0.80"],
                "chip_seed_base":0,"trace_seed":0,"cycles":100}}"#,
        )
        .expect("grid request with a vdd list parses");
        match g {
            Request::Grid { spec } => {
                let names: Vec<&str> = spec.voltages.iter().map(|p| p.name()).collect();
                // All three spellings (alias, bare voltage, stable name)
                // resolve to roster points.
                assert_eq!(names, vec!["v0.45", "v0.60", "v0.80"]);
                assert!(spec.multi_voltage());
            }
            other => panic!("expected grid, got {other:?}"),
        }
    }

    #[test]
    fn unknown_or_malformed_vdd_is_a_parse_error() {
        // An off-roster voltage names the roster in its message (the
        // server wraps this in a `bad-request` response and keeps the
        // connection alive — see the integration tests).
        let err = parse_request(
            r#"{"op":"grid","spec":{"benchmarks":["mcf"],"chips":1,
                "schemes":["razor"],"regime":"ch3","vdd":["0.99"],
                "chip_seed_base":0,"trace_seed":0,"cycles":100}}"#,
        )
        .expect_err("off-roster voltage must not parse");
        assert!(err.contains("bad operating point"), "{err}");
        // Empty and mistyped lists are rejected too.
        for vdd in [r#""vdd":[]"#, r#""vdd":"ntc""#, r#""vdd":[450]"#] {
            let line = format!(
                r#"{{"op":"grid","spec":{{"benchmarks":["mcf"],"chips":1,
                    "schemes":["razor"],"regime":"ch3",{vdd},
                    "chip_seed_base":0,"trace_seed":0,"cycles":100}}}}"#
            );
            assert!(parse_request(&line).is_err(), "{vdd} must be rejected");
        }
    }

    #[test]
    fn trace_fields_select_the_spec_source() {
        let spec_of = |extra: &str| {
            let line = format!(
                r#"{{"op":"grid","spec":{{"benchmarks":["mcf"],"chips":1,
                    "schemes":["razor"],"regime":"ch3"{extra},
                    "chip_seed_base":0,"trace_seed":0,"cycles":100}}}}"#
            );
            match parse_request(&line) {
                Ok(Request::Grid { spec }) => Ok(spec),
                Ok(other) => panic!("expected grid, got {other:?}"),
                Err(e) => Err(e),
            }
        };
        // Absent → generator, the pre-trace wire shape.
        assert_eq!(
            spec_of("").unwrap().source,
            ntc_workload::TraceSource::Generator
        );
        assert_eq!(
            spec_of(r#","trace_dir":"/tmp/t""#).unwrap().source,
            ntc_workload::TraceSource::Replay("/tmp/t".into())
        );
        assert_eq!(
            spec_of(r#","trace_dir":"/tmp/t","phases":true"#).unwrap().source,
            ntc_workload::TraceSource::Phases("/tmp/t".into())
        );
        assert_eq!(
            spec_of(r#","trace_dir":"/tmp/t","phases":false"#).unwrap().source,
            ntc_workload::TraceSource::Replay("/tmp/t".into())
        );
        // Phases without a directory, or mistyped fields, are bad requests.
        let err = spec_of(r#","phases":true"#).expect_err("phases needs trace_dir");
        assert!(err.contains("trace_dir"), "{err}");
        assert!(spec_of(r#","trace_dir":7"#).is_err());
        assert!(spec_of(r#","trace_dir":"/tmp/t","phases":"yes""#).is_err());
    }

    #[test]
    fn bad_requests_are_rejected_with_messages() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"warp"}"#).is_err());
        assert!(parse_request(r#"{"op":"experiment"}"#).is_err());
        assert!(parse_request(r#"{"op":"grid","spec":{}}"#).is_err());
        assert!(parse_request(
            r#"{"op":"grid","spec":{"benchmarks":["nope"],"chips":1,"schemes":["razor"],
                "regime":"ch3","chip_seed_base":0,"trace_seed":0,"cycles":1}}"#
        )
        .is_err());
    }

    #[test]
    fn receipt_renders_one_schema_tagged_line() {
        let r = Receipt {
            tier: "computed".into(),
            coalesced_with: 2,
            queue_wait_us: 15,
            counters: JobCounters::default(),
        };
        let line = r.to_json();
        assert!(!line.contains('\n'), "single-line framing");
        let v = parse_json(&line).expect("receipt is valid JSON");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(RECEIPT_SCHEMA));
        assert_eq!(v.get("tier").and_then(Json::as_str), Some("computed"));
        assert_eq!(v.get("coalesced_with").and_then(Json::as_u64), Some(2));
        let oracle = v.get("oracle").expect("oracle object");
        assert_eq!(oracle.get("gate_sims").and_then(Json::as_u64), Some(0));
        let cache = v.get("cache").expect("cache object");
        assert_eq!(cache.get("disk_hits").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn csv_payload_round_trips_through_the_response_json() {
        let mut t = ResultTable::new("grid", "t", ["a"]);
        t.push_row("r,1", vec![1.5]);
        let csv = table_csv(&t);
        assert!(csv.contains('\n'));
        let receipt = Receipt {
            tier: "memo".into(),
            coalesced_with: 0,
            queue_wait_us: 0,
            counters: JobCounters::default(),
        };
        let line = render_ok_csv("grid", "grid", &csv, &receipt);
        assert!(!line.contains('\n'), "framing survives embedded newlines");
        let v = parse_json(&line).expect("response is valid JSON");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("csv").and_then(Json::as_str), Some(csv.as_str()));
    }

    #[test]
    fn error_rendering_is_machine_readable() {
        let line = render_error(ErrorCode::Busy, "queue full (3 waiting)");
        let v = parse_json(&line).expect("valid JSON");
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("code").and_then(Json::as_str), Some("busy"));
    }
}
