//! # ntc-serve
//!
//! The grid-compute daemon: a long-lived server that turns the one-shot
//! batch repro harness into a shared service. Clients speak a JSON-lines
//! protocol over a Unix or TCP socket ([`protocol`]), requesting either
//! a whole experiment of the suite or an arbitrary
//! [`GridSpec`](ntc_experiments::scenario::GridSpec); the daemon answers
//! from the in-memory grid memo, the on-disk artifact cache, or a fresh
//! compute on the shared parallel runner — and tells the client which,
//! in a schema-versioned receipt.
//!
//! Three mechanisms make many clients cheaper than many batch runs:
//!
//! * **Shared cache tiers** — every request funnels through the same
//!   process-wide `MemoLru` and `--cache-dir` artifacts the batch
//!   binaries use, so results computed once (by anyone, in any process)
//!   are served warm.
//! * **In-flight coalescing** ([`coalesce`]) — N concurrent requests
//!   for the same job run ONE compute; the other N−1 block on the open
//!   flight and share its result, each receipt reporting
//!   `coalesced_with > 0`.
//! * **Admission control** ([`admission`]) — a bounded compute budget
//!   plus a bounded wait queue; requests past both get an immediate
//!   `busy` error, the backpressure signal a closed-loop client needs
//!   to shed load instead of stacking timeouts.
//!
//! Determinism carries over unchanged: a served CSV is byte-identical
//! to what a batch `repro` run writes for the same work at any
//! `--jobs` count (pinned by `tests/serve_integration.rs` and the CI
//! gate).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod client;
pub mod coalesce;
pub mod protocol;
pub mod server;

pub use admission::{Admission, Busy};
pub use client::{roundtrip, roundtrip_many};
pub use coalesce::{Flight, FlightMap, Role};
pub use protocol::{ErrorCode, Receipt, Request, RECEIPT_SCHEMA};
pub use server::{install_signal_handlers, request_shutdown, Addr, ServeConfig, Server};
