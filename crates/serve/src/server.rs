//! The daemon: socket loop, request dispatch, and the compute path
//! behind admission control and in-flight coalescing.
//!
//! One thread per connection (clients are few and long computes
//! dominate); within a compute, the shared parallel runner spreads the
//! grid's cells over the worker pool, so the daemon's own threading
//! stays trivial. The process-global telemetry counters (sweep
//! busy/wall, oracle, disk cache) are drained around each compute into
//! the request's receipt — exact at the default compute budget of 1,
//! approximate above it (documented in [`crate::protocol::JobCounters`]).

use crate::admission::Admission;
use crate::coalesce::{FlightMap, Role};
use crate::protocol::{
    grid_table, parse_request, render_error, render_list, render_ok, render_ok_csv, render_stats,
    table_csv, ErrorCode, JobCounters, Receipt, Request,
};
use ntc_core::scenario::SchemeSpec;
use ntc_experiments::scenario::GridTier;
use ntc_experiments::{all_experiments, cache, runner, scenario, Scale};
use ntc_workload::ALL_BENCHMARKS;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Addr {
    /// A Unix-domain socket path (removed on clean shutdown).
    Unix(PathBuf),
    /// A TCP bind address, e.g. `127.0.0.1:7433`.
    Tcp(String),
}

/// Daemon configuration. `Default` gives a single-slot compute budget
/// (exact per-request telemetry) and a 32-deep admission queue on a
/// Unix socket at `ntc-serve.sock`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: Addr,
    /// Worker threads for the parallel runner (`None`: the runner's own
    /// default — `NTC_JOBS` or available parallelism).
    pub jobs: Option<usize>,
    /// On-disk grid-cache directory shared with batch `repro` runs
    /// (`None`: memory tiers only).
    pub cache_dir: Option<PathBuf>,
    /// Concurrent compute slots (clamped to ≥ 1).
    pub budget: usize,
    /// Requests allowed to queue for a slot before `busy` is returned.
    pub queue_cap: usize,
    /// Artificial delay between taking a compute slot and computing —
    /// widens the coalescing window deterministically for tests/CI.
    /// Zero in production.
    pub hold_before_compute: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: Addr::Unix(PathBuf::from("ntc-serve.sock")),
            jobs: None,
            cache_dir: None,
            budget: 1,
            queue_cap: 32,
            hold_before_compute: Duration::ZERO,
        }
    }
}

/// Process-wide shutdown latch, set by [`request_shutdown`] (the
/// `shutdown` op and the signal handler both land here). Static because
/// a signal handler cannot carry state.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Ask the daemon to drain and exit; the accept loop notices within one
/// poll interval. Safe to call from any thread.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether shutdown has been requested.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed-ordering store into a static.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that trip the shutdown latch, so
/// `kill -TERM` drains the daemon cleanly (connections finish, the
/// socket file is unlinked, no `.corrupt` quarantine files are left
/// half-written — the cache's atomic rename discipline still holds
/// because nothing is interrupted mid-write).
pub fn install_signal_handlers() {
    // `signal` is provided by libc, which std already links on unix; no
    // new dependency. SIG_ERR (usize::MAX) is ignored deliberately —
    // a hardened environment refusing handlers still leaves Ctrl-C
    // (default disposition) working.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler: extern "C" fn(i32) = on_signal;
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

/// Monotonic counters for the `stats` op.
#[derive(Debug, Default)]
struct ServerStats {
    requests: AtomicU64,
    computed: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    coalesced: AtomicU64,
    busy_rejections: AtomicU64,
    errors: AtomicU64,
}

/// What one compute publishes to its coalesced joiners.
#[derive(Debug)]
enum JobOutput {
    /// The compute finished: payload bytes plus the drained telemetry
    /// (joiners report tier `coalesced`; the answering tier is the
    /// leader's to report).
    Done {
        csv: String,
        counters: JobCounters,
    },
    /// The leader was refused admission; joiners are busy too.
    Busy,
    /// The compute panicked (contained server-side).
    Failed(String),
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A connected client stream, unix or TCP.
trait Conn: std::io::Read + Write + Send {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>>;
}

impl Conn for std::os::unix::net::UnixStream {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Conn for std::net::TcpStream {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// The daemon. [`bind`](Server::bind) then [`run`](Server::run); `run`
/// returns after a clean drain once shutdown is requested (by the
/// `shutdown` op, [`request_shutdown`], or an installed signal
/// handler).
pub struct Server {
    cfg: ServeConfig,
    listener: Listener,
    admission: Admission,
    flights: FlightMap<JobOutput>,
    stats: ServerStats,
    /// Per-instance drain latch (the `shutdown` op). The process-wide
    /// [`SHUTDOWN`] latch (signals) also drains every instance.
    shutdown: AtomicBool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("cfg", &self.cfg).finish()
    }
}

impl Server {
    /// Bind the listen socket and configure the shared runner/cache
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures (address in use, bad path).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        if let Some(jobs) = cfg.jobs {
            runner::set_jobs(jobs);
        }
        cache::set_disk_dir(cfg.cache_dir.clone());
        let listener = match &cfg.addr {
            Addr::Unix(path) => {
                // A fresh daemon owns its socket path: a stale file from
                // a crashed predecessor would otherwise block the bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Listener::Unix(l)
            }
            Addr::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Listener::Tcp(l)
            }
        };
        Ok(Server {
            admission: Admission::new(cfg.budget, cfg.queue_cap),
            flights: FlightMap::new(),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            cfg,
            listener,
        })
    }

    /// Serve until shutdown is requested, then drain open connections
    /// and (for Unix sockets) unlink the socket path.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than the expected
    /// nonblocking `WouldBlock`.
    pub fn run(&self) -> std::io::Result<()> {
        let poll = Duration::from_millis(25);
        std::thread::scope(|scope| -> std::io::Result<()> {
            while !self.draining() {
                let conn: Option<Box<dyn Conn>> = match &self.listener {
                    Listener::Unix(l) => match l.accept() {
                        Ok((s, _)) => Some(Box::new(s)),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                        Err(e) => return Err(e),
                    },
                    Listener::Tcp(l) => match l.accept() {
                        Ok((s, _)) => Some(Box::new(s)),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                        Err(e) => return Err(e),
                    },
                };
                match conn {
                    Some(stream) => {
                        scope.spawn(move || self.handle_connection(stream));
                    }
                    None => std::thread::sleep(poll),
                }
            }
            Ok(())
            // Scope exit joins every connection thread: in-flight
            // requests finish their responses before run() returns.
        })?;
        if let Addr::Unix(path) = &self.cfg.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Whether this instance should stop accepting work (its own
    /// `shutdown` op, or the process-wide signal latch).
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || shutdown_requested()
    }

    /// Serve one connection: JSON-line requests in, JSON-line responses
    /// out, until EOF or shutdown.
    fn handle_connection(&self, mut stream: Box<dyn Conn>) {
        let reader = match stream.try_clone_reader() {
            Ok(r) => BufReader::new(r),
            Err(_) => return,
        };
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => return, // client went away mid-line
            };
            if line.trim().is_empty() {
                continue;
            }
            self.stats.requests.fetch_add(1, Ordering::Relaxed);
            let response = if self.draining() {
                render_error(ErrorCode::ShuttingDown, "daemon is draining")
            } else {
                self.dispatch(&line)
            };
            debug_assert!(!response.contains('\n'), "single-line framing");
            if stream.write_all(response.as_bytes()).is_err()
                || stream.write_all(b"\n").is_err()
                || stream.flush().is_err()
            {
                return;
            }
            // The shutdown ack above was the last response of this
            // connection; close so the drain can finish.
            if self.draining() {
                return;
            }
        }
    }

    fn dispatch(&self, line: &str) -> String {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                return render_error(ErrorCode::BadRequest, &msg);
            }
        };
        match request {
            Request::Ping => render_ok("ping"),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                render_ok("shutdown")
            }
            Request::List => {
                let experiments: Vec<&str> =
                    all_experiments().iter().map(|(id, _)| *id).collect();
                let benchmarks: Vec<&str> =
                    ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
                let schemes: Vec<String> =
                    SchemeSpec::roster().iter().map(SchemeSpec::name).collect();
                let vdd: Vec<&str> = ntc_varmodel::OperatingPoint::roster()
                    .iter()
                    .map(|p| p.name())
                    .collect();
                render_list(&experiments, &benchmarks, &schemes, &vdd)
            }
            Request::Stats => render_stats(&[
                ("requests", self.stats.requests.load(Ordering::Relaxed)),
                ("computed", self.stats.computed.load(Ordering::Relaxed)),
                ("memo_hits", self.stats.memo_hits.load(Ordering::Relaxed)),
                ("disk_hits", self.stats.disk_hits.load(Ordering::Relaxed)),
                ("coalesced", self.stats.coalesced.load(Ordering::Relaxed)),
                (
                    "busy_rejections",
                    self.stats.busy_rejections.load(Ordering::Relaxed),
                ),
                ("errors", self.stats.errors.load(Ordering::Relaxed)),
            ]),
            Request::Experiment { id, scale } => {
                let Some((_, run)) = all_experiments().into_iter().find(|(eid, _)| *eid == id)
                else {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    return render_error(
                        ErrorCode::UnknownId,
                        &format!("no experiment {id:?} in the suite"),
                    );
                };
                let scale_name = match scale {
                    Scale::Fast => "fast",
                    Scale::Full => "full",
                };
                let key = format!("exp:{id}:{scale_name}");
                self.serve_job(&key, "experiment", &id, move || {
                    let table = run(scale);
                    (table_csv(&table), None)
                })
            }
            Request::Grid { spec } => {
                let key = format!("grid:{}", cache::cache_key(&spec));
                self.serve_job(&key, "grid", "grid", move || {
                    let (result, tier) = scenario::run_grid_traced(&spec);
                    (table_csv(&grid_table(&spec, &result)), Some(tier))
                })
            }
        }
    }

    /// Run one compute job through coalescing and admission, and render
    /// its response. `job` returns the CSV payload plus an exact cache
    /// tier when it knows one (grid requests); experiment requests
    /// return `None` and the tier is inferred from the drained
    /// counters.
    fn serve_job(
        &self,
        key: &str,
        op: &str,
        id: &str,
        job: impl FnOnce() -> (String, Option<GridTier>),
    ) -> String {
        match self.flights.join_or_lead(key) {
            Role::Joiner(flight) => {
                let (outcome, joiners) = flight.wait();
                self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                match outcome.as_deref() {
                    Some(JobOutput::Done { csv, counters, .. }) => {
                        let receipt = Receipt {
                            tier: "coalesced".into(),
                            coalesced_with: joiners,
                            queue_wait_us: 0,
                            counters: *counters,
                        };
                        render_ok_csv(op, id, csv, &receipt)
                    }
                    Some(JobOutput::Busy) | None => {
                        self.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        render_error(
                            ErrorCode::Busy,
                            "the compute this request coalesced onto was refused admission",
                        )
                    }
                    Some(JobOutput::Failed(msg)) => {
                        self.stats.errors.fetch_add(1, Ordering::Relaxed);
                        render_error(ErrorCode::Internal, msg)
                    }
                }
            }
            Role::Leader(token) => {
                let permit = match self.admission.acquire() {
                    Ok(p) => p,
                    Err(busy) => {
                        self.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                        token.publish(Arc::new(JobOutput::Busy));
                        return render_error(
                            ErrorCode::Busy,
                            &format!(
                                "admission queue full ({} already waiting)",
                                busy.queue_depth
                            ),
                        );
                    }
                };
                if !self.cfg.hold_before_compute.is_zero() {
                    std::thread::sleep(self.cfg.hold_before_compute);
                }
                // Per-job attribution scopes: the engines mirror every
                // counter increment into the scopes installed here (the
                // sweep engine forwards them into its workers), so each
                // concurrent compute bills exactly its own work — no
                // drain races at budgets above 1. The process-global
                // counters keep ticking undisturbed.
                let (outcome, scoped) = ntc_experiments::with_counter_scope(|| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                });
                let counters = JobCounters {
                    sweep: scoped.sweep,
                    oracle: scoped.oracle,
                    cache: scoped.cache,
                };
                let queue_wait_us = permit.queue_wait.as_micros() as u64;
                drop(permit);
                match outcome {
                    Ok((csv, tier)) => {
                        let tier = tier.map(GridTier::name).unwrap_or_else(|| {
                            // Experiment runners consult the grid cache
                            // internally; infer the tier from what the
                            // compute actually did.
                            if counters.sweep.wall > Duration::ZERO
                                || counters.oracle.gate_sims > 0
                            {
                                "computed"
                            } else if counters.cache.disk_hits > 0 {
                                "disk"
                            } else {
                                "memo"
                            }
                        });
                        match tier {
                            "computed" | "uncached" => {
                                self.stats.computed.fetch_add(1, Ordering::Relaxed)
                            }
                            "disk" => self.stats.disk_hits.fetch_add(1, Ordering::Relaxed),
                            _ => self.stats.memo_hits.fetch_add(1, Ordering::Relaxed),
                        };
                        let joiners = token.publish(Arc::new(JobOutput::Done {
                            csv: csv.clone(),
                            counters,
                        }));
                        let receipt = Receipt {
                            tier: tier.into(),
                            coalesced_with: joiners,
                            queue_wait_us,
                            counters,
                        };
                        render_ok_csv(op, id, &csv, &receipt)
                    }
                    Err(panic) => {
                        self.stats.errors.fetch_add(1, Ordering::Relaxed);
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "compute panicked".into());
                        token.publish(Arc::new(JobOutput::Failed(msg.clone())));
                        render_error(ErrorCode::Internal, &msg)
                    }
                }
            }
        }
    }
}
