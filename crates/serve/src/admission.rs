//! Admission control for the daemon's compute path: a counting
//! semaphore with a bounded wait queue.
//!
//! The server's compute budget says how many requests may drive the
//! sweep runner at once (default 1 — the runner already parallelizes
//! *within* a grid, and serializing grids keeps the process-global
//! telemetry counters exactly attributable per request). Requests over
//! budget wait their turn, but only `queue_cap` of them: past that the
//! daemon answers `busy` immediately instead of accumulating latency —
//! the backpressure contract a closed-loop client (a DVS controller
//! polling operating-point grids) needs to shed load instead of
//! stacking timeouts.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The semaphore state: free slots plus the current queue depth.
#[derive(Debug)]
struct State {
    available: usize,
    waiting: usize,
}

/// Bounded-queue admission semaphore. See the module docs for the
/// contract.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<State>,
    cv: Condvar,
    queue_cap: usize,
}

/// Why an [`Admission::acquire`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Requests already waiting when this one was refused.
    pub queue_depth: usize,
}

/// A held compute slot; releases (and wakes one waiter) on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    adm: &'a Admission,
    /// How long this request waited in the queue before admission.
    pub queue_wait: Duration,
}

impl Admission {
    /// An admission gate with `budget` concurrent compute slots and at
    /// most `queue_cap` waiters (`budget` is clamped to ≥ 1; a zero
    /// queue refuses every request that cannot start immediately).
    pub fn new(budget: usize, queue_cap: usize) -> Self {
        Admission {
            state: Mutex::new(State {
                available: budget.max(1),
                waiting: 0,
            }),
            cv: Condvar::new(),
            queue_cap,
        }
    }

    /// Take a compute slot, waiting in the bounded queue if none is
    /// free.
    ///
    /// # Errors
    ///
    /// Returns [`Busy`] without blocking when the queue is already at
    /// capacity.
    pub fn acquire(&self) -> Result<Permit<'_>, Busy> {
        let start = Instant::now();
        let mut s = self.state.lock().expect("admission state poisoned");
        if s.available == 0 {
            if s.waiting >= self.queue_cap {
                return Err(Busy {
                    queue_depth: s.waiting,
                });
            }
            s.waiting += 1;
            while s.available == 0 {
                s = self.cv.wait(s).expect("admission state poisoned");
            }
            s.waiting -= 1;
        }
        s.available -= 1;
        Ok(Permit {
            adm: self,
            queue_wait: start.elapsed(),
        })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.adm.state.lock().expect("admission state poisoned");
        s.available += 1;
        drop(s);
        self.adm.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn budget_caps_concurrency_and_queue_caps_waiters() {
        let adm = Arc::new(Admission::new(1, 1));
        let p = adm.acquire().expect("first slot free");

        // One waiter fits in the queue; a second is refused immediately.
        let adm2 = adm.clone();
        let peak = Arc::new(AtomicUsize::new(0));
        let peak2 = peak.clone();
        let waiter = std::thread::spawn(move || {
            let _p = adm2.acquire().expect("queued waiter eventually admitted");
            peak2.fetch_add(1, Ordering::SeqCst);
        });
        // Wait until the spawned thread is actually parked in the queue.
        while adm.state.lock().expect("state").waiting == 0 {
            std::thread::yield_now();
        }
        assert_eq!(adm.acquire().expect_err("queue full").queue_depth, 1);

        assert_eq!(peak.load(Ordering::SeqCst), 0, "slot still held");
        drop(p);
        waiter.join().expect("waiter thread");
        assert_eq!(peak.load(Ordering::SeqCst), 1);

        // Every slot released: available again.
        drop(adm.acquire().expect("slot free after release"));
    }

    #[test]
    fn zero_queue_refuses_instead_of_waiting() {
        let adm = Admission::new(1, 0);
        let p = adm.acquire().expect("first slot");
        assert!(adm.acquire().is_err(), "no queue: immediate busy");
        drop(p);
        assert!(adm.acquire().is_ok());
    }
}
