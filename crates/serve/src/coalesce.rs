//! In-flight request coalescing: N concurrent requests for the same job
//! key share one compute.
//!
//! The first requester of a key becomes the *leader* and computes; every
//! later requester arriving while the flight is open becomes a *joiner*
//! and blocks until the leader publishes. Publication removes the key
//! from the map first, so a request arriving after the result exists
//! starts a fresh flight — which then hits the warm cache tier instead
//! of recomputing. The joiner count is exact: joiners register under the
//! map lock, and the leader reads the count only after taking that lock
//! to unpublish the key, so no joiner can slip in uncounted.
//!
//! The map is generic over the published value so it can be unit-tested
//! without dragging in the compute path.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// State of one open flight.
#[derive(Debug)]
struct FlightState<T> {
    /// Requests that joined this flight after its leader (excludes the
    /// leader itself).
    joiners: u64,
    /// `Some(outcome)` once the leader published. The inner `None` means
    /// the leader abandoned the flight (panicked or was refused
    /// admission) — joiners must fail their requests too rather than
    /// hang or elect a new leader mid-wait.
    outcome: Option<Option<Arc<T>>>,
}

/// One in-flight computation: joiners park on the condvar until the
/// leader publishes.
#[derive(Debug)]
pub struct Flight<T> {
    state: Mutex<FlightState<T>>,
    cv: Condvar,
}

impl<T> Flight<T> {
    /// Block until the leader publishes; returns the outcome (`None` if
    /// the leader abandoned the flight) and the total joiner count of
    /// the flight.
    pub fn wait(&self) -> (Option<Arc<T>>, u64) {
        let mut s = self.state.lock().expect("flight state poisoned");
        while s.outcome.is_none() {
            s = self.cv.wait(s).expect("flight state poisoned");
        }
        (s.outcome.clone().expect("just checked Some"), s.joiners)
    }

    /// Joiners registered so far (test hook: lets a gating test wait
    /// until all joiners have piled on before publishing).
    pub fn joiners(&self) -> u64 {
        self.state.lock().expect("flight state poisoned").joiners
    }
}

/// What [`FlightMap::join_or_lead`] made of this request.
#[derive(Debug)]
pub enum Role<'a, T> {
    /// First requester of the key: compute, then
    /// [`publish`](LeaderToken::publish).
    Leader(LeaderToken<'a, T>),
    /// A flight for the key is already open: [`wait`](Flight::wait) on
    /// it.
    Joiner(Arc<Flight<T>>),
}

/// The leader's obligation to publish. Dropping the token without
/// publishing abandons the flight (joiners observe `None`), so a
/// panicking compute can never strand its joiners.
#[derive(Debug)]
pub struct LeaderToken<'a, T> {
    map: &'a FlightMap<T>,
    key: String,
    flight: Arc<Flight<T>>,
    published: bool,
}

impl<T> LeaderToken<'_, T> {
    /// Publish the computed value to every joiner and close the flight.
    /// Returns how many joiners shared this compute.
    pub fn publish(mut self, value: Arc<T>) -> u64 {
        self.published = true;
        self.close(Some(value))
    }

    /// The flight this token leads (test hook, see
    /// [`Flight::joiners`]).
    pub fn flight(&self) -> &Arc<Flight<T>> {
        &self.flight
    }

    fn close(&mut self, outcome: Option<Arc<T>>) -> u64 {
        // Unpublish the key first: after this, new requests start a
        // fresh flight. Joiners that already hold the Arc registered
        // under the same map lock, so the count read below is exact.
        self.map
            .inner
            .lock()
            .expect("flight map poisoned")
            .remove(&self.key);
        let mut s = self.flight.state.lock().expect("flight state poisoned");
        s.outcome = Some(outcome);
        let joiners = s.joiners;
        drop(s);
        self.flight.cv.notify_all();
        joiners
    }
}

impl<T> Drop for LeaderToken<'_, T> {
    fn drop(&mut self) {
        if !self.published {
            self.close(None);
        }
    }
}

/// The open-flight registry, keyed by job key (the grid cache key, or
/// `exp:<id>:<scale>` for experiment requests).
#[derive(Debug)]
pub struct FlightMap<T> {
    inner: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T> Default for FlightMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlightMap<T> {
    /// An empty registry.
    pub fn new() -> Self {
        FlightMap {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Join the open flight for `key`, or open one and lead it.
    pub fn join_or_lead(&self, key: &str) -> Role<'_, T> {
        let mut map = self.inner.lock().expect("flight map poisoned");
        if let Some(flight) = map.get(key) {
            let flight = flight.clone();
            // Register while still holding the map lock — the leader's
            // close() takes the same lock before reading the count.
            flight.state.lock().expect("flight state poisoned").joiners += 1;
            return Role::Joiner(flight);
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState {
                joiners: 0,
                outcome: None,
            }),
            cv: Condvar::new(),
        });
        map.insert(key.to_string(), flight.clone());
        Role::Leader(LeaderToken {
            map: self,
            key: key.to_string(),
            flight,
            published: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fully deterministic coalescing: the leader is gated until every
    /// joiner has registered, so the published count and each joiner's
    /// view are exact — no timing window involved.
    #[test]
    fn joiners_share_one_publish_and_count_each_other() {
        let map = Arc::new(FlightMap::<u64>::new());
        let leader = match map.join_or_lead("k") {
            Role::Leader(t) => t,
            Role::Joiner(_) => panic!("first requester must lead"),
        };

        const JOINERS: usize = 4;
        let mut handles = Vec::new();
        for _ in 0..JOINERS {
            let map = map.clone();
            handles.push(std::thread::spawn(move || {
                match map.join_or_lead("k") {
                    Role::Leader(_) => panic!("flight already open"),
                    Role::Joiner(f) => f.wait(),
                }
            }));
        }
        // Gate: publish only after all joiners are parked on the flight.
        while leader.flight().joiners() < JOINERS as u64 {
            std::thread::yield_now();
        }
        assert_eq!(leader.publish(Arc::new(42)), JOINERS as u64);

        for h in handles {
            let (out, joiners) = h.join().expect("joiner thread");
            assert_eq!(*out.expect("published value"), 42);
            assert_eq!(joiners, JOINERS as u64);
        }

        // The key is unpublished: the next requester leads a new flight.
        assert!(matches!(map.join_or_lead("k"), Role::Leader(_)));
    }

    #[test]
    fn abandoned_leader_fails_joiners_instead_of_stranding_them() {
        let map = Arc::new(FlightMap::<u64>::new());
        let leader = match map.join_or_lead("k") {
            Role::Leader(t) => t,
            Role::Joiner(_) => panic!("first requester must lead"),
        };
        let map2 = map.clone();
        let joiner = std::thread::spawn(move || match map2.join_or_lead("k") {
            Role::Leader(_) => panic!("flight already open"),
            Role::Joiner(f) => f.wait(),
        });
        while leader.flight().joiners() < 1 {
            std::thread::yield_now();
        }
        drop(leader); // no publish: abandoned
        let (out, _) = joiner.join().expect("joiner thread");
        assert!(out.is_none(), "abandonment propagates as a failure");
        assert!(matches!(map.join_or_lead("k"), Role::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let map = FlightMap::<u64>::new();
        let a = match map.join_or_lead("a") {
            Role::Leader(t) => t,
            Role::Joiner(_) => panic!(),
        };
        let b = match map.join_or_lead("b") {
            Role::Leader(t) => t,
            Role::Joiner(_) => panic!("different key must not coalesce"),
        };
        assert_eq!(a.publish(Arc::new(1)), 0);
        assert_eq!(b.publish(Arc::new(2)), 0);
    }
}
