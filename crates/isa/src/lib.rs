//! # ntc-isa
//!
//! A MIPS-like instruction-set subset with behavioural (golden-model)
//! semantics: the architectural vocabulary shared by the workload
//! generators, the pipeline model and the resilience schemes.
//!
//! The set covers every instruction named in the paper's figures (ADDU,
//! SUBU, ADDIU, AND/ANDI, OR/ORI, NOR, XOR, LUI, SLL/SRL/SRA and their
//! variable variants, ROR, MULT/MFLO, LW, MOVE) and maps each onto an ALU
//! datapath function ([`AluFunc`]) plus an operand routing.
//!
//! Two operand metrics from the paper live here:
//!
//! * the **Operand Width Marker** (OWM, Ch. 3): set when either operand's
//!   *significant width* (population count) reaches half the architectural
//!   width — wide operands sensitize more paths;
//! * the **operand size** classification (Ch. 4): `Large` when the leftmost
//!   set bit of either operand falls in the upper half of the word.
//!
//! # Examples
//!
//! ```
//! use ntc_isa::{Instruction, Opcode, OperandSize};
//!
//! let i = Instruction::new(Opcode::Addu, 0x0001_0000, 0x0000_00FF);
//! assert_eq!(i.execute(), 0x0001_00FF);
//! assert!(!i.owm());
//! assert_eq!(i.operand_size(), OperandSize::Large);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ntc_netlist::generators::alu::AluFunc;
use std::fmt;

/// Architectural operand width in bits (a 32-bit RISC core, as in the
/// paper's FabScalar Core-1 configuration).
pub const ARCH_WIDTH: usize = 32;

/// Architectural opcodes of the modelled ISA subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the mnemonics themselves
pub enum Opcode {
    Addu,
    Subu,
    Addiu,
    And,
    Andi,
    Or,
    Ori,
    Nor,
    Xor,
    Xori,
    Lui,
    Sll,
    Srl,
    Sra,
    Sllv,
    Srlv,
    Srav,
    Ror,
    Mult,
    Mflo,
    Lw,
    Move,
}

/// Every opcode, in encoding order.
pub const ALL_OPCODES: [Opcode; 22] = [
    Opcode::Addu,
    Opcode::Subu,
    Opcode::Addiu,
    Opcode::And,
    Opcode::Andi,
    Opcode::Or,
    Opcode::Ori,
    Opcode::Nor,
    Opcode::Xor,
    Opcode::Xori,
    Opcode::Lui,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Sllv,
    Opcode::Srlv,
    Opcode::Srav,
    Opcode::Ror,
    Opcode::Mult,
    Opcode::Mflo,
    Opcode::Lw,
    Opcode::Move,
];

impl Opcode {
    /// The 8-bit opcode encoding used in the error tags (the paper's CSLT
    /// stores 8-bit opcodes).
    #[inline]
    pub fn encoding(self) -> u8 {
        ALL_OPCODES
            .iter()
            .position(|&o| o == self)
            .expect("every opcode is in ALL_OPCODES") as u8
    }

    /// Inverse of [`encoding`](Self::encoding).
    pub fn from_encoding(code: u8) -> Option<Self> {
        ALL_OPCODES.get(code as usize).copied()
    }

    /// The ALU datapath function this opcode exercises.
    ///
    /// MFLO reads the LO register, which was produced by the multiplier; in
    /// the EX-stage timing study it exercises the multiplier read-out path,
    /// matching the paper's observation that MFLO sensitizes deep paths.
    pub fn alu_func(self) -> AluFunc {
        use Opcode::*;
        match self {
            Addu | Addiu => AluFunc::Add,
            Subu => AluFunc::Sub,
            And | Andi => AluFunc::And,
            Or | Ori => AluFunc::Or,
            Nor => AluFunc::Nor,
            Xor | Xori => AluFunc::Xor,
            Lui | Sll | Sllv => AluFunc::ShiftLeft,
            Srl | Srlv => AluFunc::ShiftRightLogical,
            Sra | Srav => AluFunc::ShiftRightArith,
            Ror => AluFunc::RotateRight,
            Mult | Mflo => AluFunc::Mult,
            Lw => AluFunc::Load,
            Move => AluFunc::Buffer,
        }
    }

    /// Whether this opcode takes an immediate (vs. register) second operand.
    pub fn has_immediate(self) -> bool {
        use Opcode::*;
        matches!(self, Addiu | Andi | Ori | Xori | Lui | Sll | Srl | Sra | Lw)
    }

    /// Mnemonic as printed in the paper's figures.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Addu => "ADDU",
            Subu => "SUBU",
            Addiu => "ADDIU",
            And => "AND",
            Andi => "ANDI",
            Or => "OR",
            Ori => "ORI",
            Nor => "NOR",
            Xor => "XOR",
            Xori => "XORI",
            Lui => "LUI",
            Sll => "SLL",
            Srl => "SRL",
            Sra => "SRA",
            Sllv => "SLLV",
            Srlv => "SRLV",
            Srav => "SRAV",
            Ror => "ROR",
            Mult => "MULT",
            Mflo => "MFLO",
            Lw => "LW",
            Move => "MOVE",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Chapter 4's operand-size classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandSize {
    /// Leftmost set bit of both operands lies in the lower half-word.
    Small,
    /// Leftmost set bit of either operand lies in the upper half-word.
    Large,
}

impl fmt::Display for OperandSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OperandSize::Small => "Small",
            OperandSize::Large => "Large",
        })
    }
}

/// A dynamic instruction as seen by the EX stage: opcode plus resolved
/// operand values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The architectural opcode.
    pub opcode: Opcode,
    /// First (register) operand value, `ARCH_WIDTH` bits, LSB-aligned.
    pub a: u64,
    /// Second operand value (register or resolved immediate).
    pub b: u64,
}

impl Instruction {
    /// Create an instruction, masking the operands to the architectural
    /// width.
    pub fn new(opcode: Opcode, a: u64, b: u64) -> Self {
        let mask = arch_mask();
        Instruction {
            opcode,
            a: a & mask,
            b: b & mask,
        }
    }

    /// Behavioural result of the instruction (the golden model).
    pub fn execute(&self) -> u64 {
        self.opcode.alu_func().golden(self.a, self.b, ARCH_WIDTH)
    }

    /// The Operand Width Marker (Ch. 3): set when either operand's
    /// significant width (number of set bits) is at least half the
    /// architectural width.
    pub fn owm(&self) -> bool {
        let half = (ARCH_WIDTH / 2) as u32;
        self.a.count_ones() >= half || self.b.count_ones() >= half
    }

    /// The operand-size classification (Ch. 4): `Large` when the leftmost
    /// set bit of either operand lies in the upper half-word.
    pub fn operand_size(&self) -> OperandSize {
        let half = ARCH_WIDTH as u32 / 2;
        let large = |v: u64| v != 0 && (63 - v.leading_zeros()) >= half;
        if large(self.a) || large(self.b) {
            OperandSize::Large
        } else {
            OperandSize::Small
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}, {:#x}", self.opcode, self.a, self.b)
    }
}

/// Bitmask of the architectural width.
#[inline]
pub fn arch_mask() -> u64 {
    if ARCH_WIDTH >= 64 {
        u64::MAX
    } else {
        (1u64 << ARCH_WIDTH) - 1
    }
}

/// The error-tag key of the DCS scheme (Ch. 3): errant and previous-cycle
/// opcode + OWM pairs — the four-part tag stored in the CSLT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ErrorTag {
    /// Errant (sensitizing) instruction opcode encoding.
    pub opcode: u8,
    /// Errant instruction OWM.
    pub owm: bool,
    /// Previous-cycle (initializing) instruction opcode encoding.
    pub prev_opcode: u8,
    /// Previous-cycle OWM.
    pub prev_owm: bool,
}

impl ErrorTag {
    /// Bit count of the stored tag (for the overhead tables): two 8-bit
    /// opcodes + two OWM bits.
    pub const BITS: usize = 18;

    /// Build the tag for a consecutive instruction pair.
    pub fn of(prev: &Instruction, cur: &Instruction) -> Self {
        ErrorTag {
            opcode: cur.opcode.encoding(),
            owm: cur.owm(),
            prev_opcode: prev.opcode.encoding(),
            prev_owm: prev.owm(),
        }
    }

    /// The errant half of the tag (used as the ACSLT set key).
    #[inline]
    pub fn errant_pair(&self) -> (u8, bool) {
        (self.opcode, self.owm)
    }

    /// The previous-cycle half of the tag (used as the ACSLT way key).
    #[inline]
    pub fn previous_pair(&self) -> (u8, bool) {
        (self.prev_opcode, self.prev_owm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_roundtrip() {
        for op in ALL_OPCODES {
            assert_eq!(Opcode::from_encoding(op.encoding()), Some(op));
        }
        assert_eq!(Opcode::from_encoding(200), None);
    }

    #[test]
    fn golden_semantics_spot_checks() {
        let m = arch_mask();
        assert_eq!(Instruction::new(Opcode::Addu, m, 1).execute(), 0);
        assert_eq!(Instruction::new(Opcode::Subu, 5, 7).execute(), m - 1);
        assert_eq!(Instruction::new(Opcode::Andi, 0xFF00, 0x0FF0).execute(), 0x0F00);
        assert_eq!(Instruction::new(Opcode::Nor, 0, 0).execute(), m);
        assert_eq!(Instruction::new(Opcode::Sll, 1, 4).execute(), 16);
        assert_eq!(
            Instruction::new(Opcode::Sra, 0x8000_0000, 4).execute(),
            0xF800_0000
        );
        assert_eq!(
            Instruction::new(Opcode::Mult, 0x1_0001, 0x1_0001).execute(),
            0x2_0001 & m
        );
        assert_eq!(Instruction::new(Opcode::Move, 0xAB, 0).execute(), 0xAB);
        assert_eq!(Instruction::new(Opcode::Lw, 0x1000, 0x20).execute(), 0x1020);
    }

    #[test]
    fn operands_are_masked() {
        let i = Instruction::new(Opcode::Addu, u64::MAX, u64::MAX);
        assert_eq!(i.a, arch_mask());
        assert_eq!(i.b, arch_mask());
    }

    #[test]
    fn owm_uses_popcount() {
        // 16 set bits in a 32-bit word: at threshold -> OWM set.
        let i = Instruction::new(Opcode::Or, 0x0000_FFFF, 0);
        assert!(i.owm());
        let i = Instruction::new(Opcode::Or, 0x0000_7FFF, 0x1);
        assert!(!i.owm());
        // Either operand can set it.
        let i = Instruction::new(Opcode::Or, 0, 0xFFFF_0000);
        assert!(i.owm());
    }

    #[test]
    fn operand_size_uses_leading_bit() {
        assert_eq!(
            Instruction::new(Opcode::Or, 0x0000_8000, 0).operand_size(),
            OperandSize::Small
        );
        assert_eq!(
            Instruction::new(Opcode::Or, 0x0001_0000, 0).operand_size(),
            OperandSize::Large
        );
        assert_eq!(
            Instruction::new(Opcode::Or, 0, 0x8000_0000).operand_size(),
            OperandSize::Large
        );
        assert_eq!(
            Instruction::new(Opcode::Or, 0, 0).operand_size(),
            OperandSize::Small
        );
    }

    #[test]
    fn error_tag_structure() {
        let prev = Instruction::new(Opcode::Lui, 0xFFFF, 0x10);
        let cur = Instruction::new(Opcode::Nor, 0xFFFF_FFFF, 0);
        let tag = ErrorTag::of(&prev, &cur);
        assert_eq!(tag.opcode, Opcode::Nor.encoding());
        assert_eq!(tag.prev_opcode, Opcode::Lui.encoding());
        assert!(tag.owm, "NOR of an all-ones operand has high significant width");
        assert_eq!(tag.errant_pair(), (Opcode::Nor.encoding(), true));
        assert_eq!(ErrorTag::BITS, 18);
    }

    #[test]
    fn alu_func_mapping_covers_all_opcodes() {
        for op in ALL_OPCODES {
            // Must not panic, and immediates/shifts route sensibly.
            let _ = op.alu_func();
            let _ = op.has_immediate();
            assert!(!op.mnemonic().is_empty());
        }
        assert_eq!(Opcode::Mflo.alu_func(), AluFunc::Mult);
        assert_eq!(Opcode::Move.alu_func(), AluFunc::Buffer);
    }
}
