//! Bench: the Fig. 4.4 kernel — the operand-size error split.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig4_4");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Mcf);
    let mut g = settings(c);
    
    let profile = ntc_core::sim::profile_errors(&mut fx.oracle, &fx.trace, fx.clock);
    g.bench_function("size_split", |b| {
        b.iter(|| {
            profile.by_size.values().fold([0u64; 4], |mut acc, s| {
                for k in 0..4 { acc[k] += s[k]; }
                acc
            })
        })
    });

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
