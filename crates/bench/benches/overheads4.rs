//! Bench: the Section 4.5.7 kernel — synthesis of the Trident hardware.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("overheads4");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn bench(c: &mut Criterion) {
    let mut g = settings(c);
    g.bench_function("synth_cet_128", |b| {
        b.iter(|| ntc_netlist::synth::synth_associative_table("CET", 128, 26))
    });
    g.bench_function("synth_tdc_66", |b| {
        b.iter(|| ntc_netlist::synth::synth_tdc("TDC", 66))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
