//! Bench: the Fig. 3.2 kernel — the Monte-Carlo choke study (dynamic
//! two-vector timing over a fabricated ALU, CDL/CGL extraction).
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig3_2");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn bench(c: &mut Criterion) {
    let mut g = settings(c);
    g.bench_function("choke_study_ntc_16bit", |b| {
        b.iter(|| {
            ntc_experiments::ch3::choke_study::run_choke_study(
                ntc_varmodel::Corner::NTC, 16, 2, 4, 0x32)
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
