//! Bench: the dynamic timing kernel itself — `simulate_pair` on the
//! 64-bit ALU under nominal and fabricated signatures, across sparse
//! (short sensitized path) and dense (long sensitized path) vector pairs.
//!
//! This is the Phase-A cost every delay-oracle miss pays, so it bounds
//! every figure and sweep. Sparse pairs (`Buffer`→`Buffer`) exercise the
//! event-driven worklist (few gates visited); dense pairs (`Mult` with
//! wide operands) exercise the per-gate evaluation loop itself.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

use ntc_netlist::generators::alu::{Alu, AluFunc};
use ntc_timing::DynamicSim;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("dynamic_sim");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn bench(c: &mut Criterion) {
    let alu = Alu::new(64);
    let nominal = ChipSignature::nominal(alu.netlist(), Corner::NTC);
    let fabricated =
        ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);

    // Sparse activity: a Buffer op whose single toggling operand bit
    // sensitizes a short path — the common case in real traces.
    let sparse_init = alu.encode(AluFunc::Buffer, 0x01, 0x00);
    let sparse_sens = alu.encode(AluFunc::Buffer, 0x03, 0x00);
    // Long sensitized path: a full-width carry ripple.
    let carry_init = alu.encode(AluFunc::Add, 0, 0);
    let carry_sens = alu.encode(AluFunc::Add, u64::MAX, 1);
    // Dense activity: wide-operand multiply toggling most of the array.
    let dense_init = alu.encode(AluFunc::Mult, 0, 0);
    let dense_sens = alu.encode(AluFunc::Mult, 0xDEAD_BEEF_1234_5678, 0x1357_9BDF_2468_ACE0);

    let mut g = settings(c);
    g.bench_function("sparse_buffer_nominal", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &nominal);
        b.iter(|| sim.simulate_pair(&sparse_init, &sparse_sens))
    });
    g.bench_function("sparse_buffer_fabricated", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &fabricated);
        b.iter(|| sim.simulate_pair(&sparse_init, &sparse_sens))
    });
    g.bench_function("carry_ripple_nominal", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &nominal);
        b.iter(|| sim.simulate_pair(&carry_init, &carry_sens))
    });
    g.bench_function("dense_mult_fabricated", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &fabricated);
        b.iter(|| sim.simulate_pair(&dense_init, &dense_sens))
    });
    // The oracle's Phase-A entry point: min/max only, no per-output
    // activity vectors.
    g.bench_function("sparse_buffer_minmax", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &fabricated);
        b.iter(|| sim.simulate_pair_minmax(&sparse_init, &sparse_sens))
    });
    g.bench_function("carry_ripple_minmax", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &nominal);
        b.iter(|| sim.simulate_pair_minmax(&carry_init, &carry_sens))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
