//! Bench: the Fig. 4.9 kernel — Trident runs across CET sizes.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig4_9");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;
use ntc_pipeline::Pipeline;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Vortex);
    let mut g = settings(c);
    
    for entries in [32usize, 128] {
        g.bench_function(format!("trident_cet_{entries}"), |b| {
            b.iter(|| ntc_core::sim::run_scheme(
                &mut ntc_core::trident::Trident::new(entries),
                &mut fx.oracle, &fx.trace, fx.tdc_clock, Pipeline::core1()))
        });
    }

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
