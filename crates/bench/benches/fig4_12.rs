//! Bench: the Fig. 4.12 kernel — the Ch.4 energy accounting.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig4_12");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;
use ntc_pipeline::Pipeline;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Gzip);
    let mut g = settings(c);
    
    let r = ntc_core::sim::run_scheme(
        &mut ntc_core::trident::Trident::paper(), &mut fx.oracle, &fx.trace, fx.tdc_clock, Pipeline::core1());
    g.bench_function("energy_metric", |b| {
        b.iter(|| r.energy(ntc_pipeline::EnergyModel::ntc_core()))
    });

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
