//! Bench: the Section 3.5.6 kernel — gate-level synthesis of the DCS
//! hardware for the overhead table.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("overheads3");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

fn bench(c: &mut Criterion) {
    let mut g = settings(c);
    g.bench_function("synth_icslt_128", |b| {
        b.iter(|| ntc_netlist::synth::synth_associative_table("CSLT", 128, 18))
    });
    g.bench_function("synth_acslt_32x16", |b| {
        b.iter(|| ntc_netlist::synth::synth_set_associative_table("ACSLT", 32, 16, 9, 9))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
