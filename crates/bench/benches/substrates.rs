//! Bench: substrate kernels — netlist generation, chip fabrication,
//! static timing, gate-level evaluation.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_netlist::generators::alu::{Alu, AluFunc};
use ntc_timing::StaticTiming;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

fn bench(c: &mut Criterion) {
    let mut g = settings(c);
    g.bench_function("generate_alu_32", |b| b.iter(|| Alu::new(32)));
    let alu = Alu::new(32);
    g.bench_function("fabricate_chip", |b| {
        b.iter(|| ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 1))
    });
    let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 1);
    g.bench_function("static_timing_32", |b| {
        b.iter(|| StaticTiming::analyze(alu.netlist(), &sig))
    });
    g.bench_function("eval_alu_32", |b| {
        b.iter(|| alu.execute(AluFunc::Mult, 0xDEAD_BEEF, 0xCAFE_F00D))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
