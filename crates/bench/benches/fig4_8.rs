//! Bench: the Fig. 4.8 kernel — SE/CE classification over a trace.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig4_8");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Parser);
    let mut g = settings(c);
    
    g.bench_function("classify_parser", |b| {
        b.iter(|| ntc_core::sim::profile_errors(&mut fx.oracle, &fx.trace, fx.clock))
    });

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
