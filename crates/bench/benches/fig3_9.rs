//! Bench: the Fig. 3.9 kernel — DCS-ACSLT runs across configurations.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig3_9");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;
use ntc_pipeline::Pipeline;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Vortex);
    let mut g = settings(c);
    
    for (sets, ways) in [(16usize, 8usize), (32, 16)] {
        g.bench_function(format!("acslt_{sets}x{ways}"), |b| {
            b.iter(|| {
                let mut dcs = ntc_core::dcs::Dcs::new(
                    ntc_core::dcs::CsltKind::Associative { entries: sets, associativity: ways });
                ntc_core::sim::run_scheme(&mut dcs, &mut fx.oracle, &fx.trace, fx.clock, Pipeline::core1())
            })
        });
    }

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
