//! Bench: incremental STA re-timing vs from-scratch analysis on the
//! 64-bit ALU, across dirty-gate ratios.
//!
//! The retained engine's promise is that a re-time costs the dirty
//! fanout cones, not the whole netlist. `full_*` rows are the baseline
//! every chip used to pay (one `analyze`, and with the screen's table
//! build on top — the real per-chip cost in the memo pool); `retime_*`
//! rows re-time a delta through `IncrementalTiming` (arrival propagation
//! *plus* screen refresh) by alternating between two signatures.
//!
//! **Dirty-gate ratio** is measured, not assumed: it is the fraction of
//! the netlist the delta pass actually marks dirty and re-folds
//! (`RetimeOutcome::gates_touched`, forward gate refolds plus reverse
//! screen-table refolds), normalized against what a 100% re-time — a
//! full chip swap — touches. Seed sets for the 1% / 10% rows are grown
//! gate by gate (the local-ECO / buffer-resize / drift shape) until the
//! measured dirty fraction reaches the stated ratio; the calibration is
//! printed at setup. Counting *touched* gates rather than *seed* gates
//! is the honest axis on this netlist: the ALU's carry structure couples
//! everything, so even a handful of scattered seeds can dirty half the
//! DAG — and a pass that re-folds half the DAG is a 50%-dirty pass, no
//! matter how few delays moved.
//!
//! At the 1% dirty ratio the re-time must beat bare `analyze` by ≥ 5× —
//! the acceptance bar of the incremental-engine PR. (The O(n) signature
//! diff scan, ~3.3 µs on 13.6 k nets, floors the re-time cost.) The
//! 100% row exercises the engine's spill: a diff that re-delays most of
//! the die rebuilds the screen tables flat instead of refolding net by
//! net, so a full chip swap costs about an `analyze` plus a table build
//! rather than degrading superlinearly.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

use ntc_netlist::generators::alu::Alu;
use ntc_netlist::Netlist;
use ntc_timing::{IncrementalTiming, ScreenBounds, StaticTiming};
use ntc_varmodel::rng::SplitMix64;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("sta_incr");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

/// Nets one re-time of `sig` touches, from `base`-loaded state.
fn measure_touched(
    nl: &Netlist,
    engine: &mut IncrementalTiming,
    base: &ChipSignature,
    sig: &ChipSignature,
) -> u64 {
    engine.retime(nl, base);
    engine.retime(nl, sig).gates_touched
}

/// Grow a delta from `base` one drifted gate at a time until a re-time
/// touches ≈ `target` nets. Candidates whose cone would overshoot are
/// skipped; calibration stops within 10% of the target (or after too
/// many consecutive overshoots, on this DAG only plausible for tiny
/// targets). Returns the signature, its seed count, and the measured
/// touched count.
fn calibrated_variant(
    nl: &Netlist,
    logic: &[usize],
    engine: &mut IncrementalTiming,
    base: &ChipSignature,
    target: u64,
    salt: u64,
) -> (ChipSignature, usize, u64) {
    let mut rng = SplitMix64::seed_from_u64(0x57A1_0000 ^ salt);
    let mut sig = base.clone();
    let mut seeds = 0usize;
    let mut touched = 0u64;
    let mut overshoots = 0;
    while overshoots < 200 {
        let g = logic[rng.gen_index(logic.len())];
        let m = 1.02 + (rng.gen_u64() % 200) as f64 / 1000.0;
        let mut trial = sig.clone();
        trial.inject_choke(&[g], m);
        let t = measure_touched(nl, engine, base, &trial);
        if t <= target {
            sig = trial;
            seeds += 1;
            touched = t;
            overshoots = 0;
            if t * 10 >= target * 9 {
                break;
            }
        } else {
            overshoots += 1;
        }
    }
    (sig, seeds, touched)
}

fn bench(c: &mut Criterion) {
    let alu = Alu::new(64);
    let nl = alu.netlist();
    let logic: Vec<usize> = nl
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.kind().is_pseudo())
        .map(|(i, _)| i)
        .collect();
    let base = ChipSignature::fabricate(nl, Corner::NTC, VariationParams::ntc(), 11);
    // A fully different die: the 100%-dirty delta that normalizes the
    // ratio scale.
    let other = ChipSignature::fabricate(nl, Corner::NTC, VariationParams::ntc(), 12);

    let mut engine = IncrementalTiming::new();
    engine.retime(nl, &base);
    let full_touched = measure_touched(nl, &mut engine, &base, &other);
    println!("sta_incr: 100% dirty = {full_touched} touched ({} nets)", nl.len());

    let mut g = settings(c);
    // Baseline 1: one bare from-scratch arrival analysis.
    g.bench_function("full_analyze", |b| {
        b.iter(|| StaticTiming::analyze(nl, &base))
    });
    // Baseline 2: what a chip blank actually paid before the engine —
    // analysis plus the screen's full table build.
    g.bench_function("full_analyze_plus_screen", |b| {
        b.iter(|| {
            let sta = StaticTiming::analyze(nl, &base);
            ScreenBounds::build(nl, &base, &sta)
        })
    });
    // Incremental re-times at increasing dirty ratios. Alternating
    // between two fixed signatures makes every iteration a real delta of
    // the calibrated size (loaded state flips A→B→A→…).
    for (label, percent) in [("retime_1pct", 1u64), ("retime_10pct", 10u64)] {
        let target = full_touched * percent / 100;
        let (variant, seeds, touched) =
            calibrated_variant(nl, &logic, &mut engine, &base, target, percent);
        println!(
            "sta_incr: {label} calibrated to {touched}/{full_touched} touched ({seeds} drifted gates)"
        );
        g.bench_function(label, |b| {
            engine.retime(nl, &base);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                engine.retime(nl, if flip { &variant } else { &base })
            })
        });
    }
    g.bench_function("retime_100pct", |b| {
        engine.retime(nl, &base);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            engine.retime(nl, if flip { &other } else { &base })
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
