//! Bench: the Fig. 3.10 kernel — the Razor-vs-DCS penalty comparison.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig3_10");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;
use ntc_pipeline::Pipeline;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Mcf);
    let mut g = settings(c);
    
    g.bench_function("razor", |b| {
        b.iter(|| ntc_core::sim::run_scheme(
            &mut ntc_core::baselines::Razor::ch3(), &mut fx.oracle, &fx.trace, fx.clock, Pipeline::core1()))
    });
    g.bench_function("dcs_icslt", |b| {
        b.iter(|| ntc_core::sim::run_scheme(
            &mut ntc_core::dcs::Dcs::icslt_default(), &mut fx.oracle, &fx.trace, fx.clock, Pipeline::core1()))
    });

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
