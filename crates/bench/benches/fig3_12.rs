//! Bench: the Fig. 3.12 kernel — the energy-efficiency accounting.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig3_12");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_bench::SchemeFixture;
use ntc_pipeline::Pipeline;

fn bench(c: &mut Criterion) {
    let mut fx = SchemeFixture::new(ntc_workload::Benchmark::Gzip);
    let mut g = settings(c);
    
    let result = ntc_core::sim::run_scheme(
        &mut ntc_core::dcs::Dcs::icslt_default(), &mut fx.oracle, &fx.trace, fx.clock, Pipeline::core1());
    g.bench_function("energy_report", |b| {
        b.iter(|| result.energy(ntc_pipeline::EnergyModel::ntc_core()))
    });

    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
