//! Bench: the Fig. 4.2 kernel — buffered vs bufferless dynamic timing of
//! one instruction pair under choke injection.
use ntc_bench::harness as criterion;
use ntc_bench::{criterion_group, criterion_main};

use criterion::Criterion;
use std::time::Duration;

fn settings(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("fig4_2");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

use ntc_netlist::generators::alu::{Alu, AluFunc};
use ntc_timing::DynamicSim;
use ntc_varmodel::{ChipSignature, Corner, VariationParams};

fn bench(c: &mut Criterion) {
    let alu = Alu::new(16);
    let sig = ChipSignature::fabricate(alu.netlist(), Corner::NTC, VariationParams::ntc(), 7);
    let init = alu.encode(AluFunc::Mult, 0, 0);
    let sens = alu.encode(AluFunc::Mult, 0xBEEF, 0x1357);
    let mut g = settings(c);
    g.bench_function("dynamic_pair_16bit", |b| {
        let mut sim = DynamicSim::new(alu.netlist(), &sig);
        b.iter(|| sim.simulate_pair(&init, &sens))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
