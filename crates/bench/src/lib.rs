//! # ntc-bench
//!
//! Shared fixtures for the Criterion benchmark harness: each bench target
//! under `benches/` times the computational kernel behind one paper figure
//! or table (see DESIGN.md's per-experiment index), at a reduced size so a
//! full `cargo bench` stays laptop-friendly.

#![warn(missing_docs)]

pub mod harness;

use ntc_core::tag_delay::{OracleConfig, TagDelayOracle};
use ntc_isa::Instruction;
use ntc_timing::ClockSpec;
use ntc_varmodel::{Corner, VariationParams};
use ntc_workload::{Benchmark, TraceGenerator};

/// Trace length used by the scheme-level benches.
pub const BENCH_CYCLES: usize = 4_000;

/// A small, warmed delay oracle plus a matching trace and clock — the
/// fixture every scheme-level bench runs against. Warming (pre-querying
/// all delays) keeps the benches measuring the scheme logic rather than
/// first-touch gate simulations.
pub struct SchemeFixture {
    /// The warmed per-chip oracle.
    pub oracle: TagDelayOracle,
    /// The benchmark trace.
    pub trace: Vec<Instruction>,
    /// The Razor-family clock.
    pub clock: ClockSpec,
    /// The Trident (TDC guard interval) clock.
    pub tdc_clock: ClockSpec,
}

impl SchemeFixture {
    /// Build and warm the fixture for one benchmark.
    pub fn new(bench: Benchmark) -> Self {
        let mut oracle = TagDelayOracle::for_chip(
            Corner::NTC,
            VariationParams::ntc(),
            7,
            OracleConfig::default(),
        );
        let trace = TraceGenerator::new(bench, 3).trace(BENCH_CYCLES);
        let nominal = oracle.nominal_critical_delay_ps();
        let clock = ClockSpec {
            period_ps: nominal * 0.95,
            hold_ps: nominal * 0.22,
        };
        let tdc_clock = ClockSpec {
            period_ps: nominal * 0.95,
            hold_ps: nominal * 0.14,
        };
        for pair in trace.windows(2) {
            let _ = oracle.delays(&pair[0], &pair[1]);
        }
        SchemeFixture {
            oracle,
            trace,
            clock,
            tdc_clock,
        }
    }
}
