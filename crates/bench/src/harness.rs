//! A minimal, dependency-free stand-in for the Criterion benchmark API.
//!
//! The build environment is hermetic (no crates.io access), so the bench
//! targets cannot link the real `criterion` crate. This module implements
//! the tiny slice of its API the benches use — `Criterion`,
//! `benchmark_group`, `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — with plain wall-clock timing, so `cargo
//! bench --features bench` runs offline and prints median/min/max
//! per-iteration times.
//!
//! The numbers are honest but unsophisticated: no outlier rejection, no
//! bootstrap confidence intervals. For cross-run comparisons on a quiet
//! machine that is enough to spot the ×2-and-bigger effects the per-figure
//! kernels exhibit.

use std::hint::black_box;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement marker types (API compatibility with Criterion).

    /// Wall-clock time measurement — the only measurement supported.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
            _criterion: PhantomData,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    _criterion: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Untimed warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Run one benchmark and print its per-iteration timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: repeat single iterations until the budget elapses, and
        // use the fastest observation to calibrate the per-sample count.
        let warm_start = Instant::now();
        let mut best = Duration::MAX;
        loop {
            b.iters = 1;
            f(&mut b);
            best = best.min(b.elapsed.max(Duration::from_nanos(1)));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_sample = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / best.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let fmt = |s: f64| {
            if s >= 1.0 {
                format!("{s:.3} s")
            } else if s >= 1e-3 {
                format!("{:.3} ms", s * 1e3)
            } else if s >= 1e-6 {
                format!("{:.3} µs", s * 1e6)
            } else {
                format!("{:.1} ns", s * 1e9)
            }
        };
        println!(
            "{}/{:<28} median {:>12}   [{} .. {}]  ({} samples × {} iters)",
            self.name,
            id,
            fmt(median),
            fmt(samples[0]),
            fmt(*samples.last().expect("nonempty samples")),
            samples.len(),
            iters,
        );
        self
    }

    /// End the group (printing is per-function; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to the closure of [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Build a function running a list of benchmark functions (Criterion-macro
/// compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Build the bench `main` from one or more groups (Criterion-macro
/// compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0, "the closure must actually run");
    }
}
