//! # ntc-core
//!
//! The paper's contribution: choke-point timing-error resilience schemes
//! for near-threshold computing, together with the cross-layer simulator
//! that evaluates them.
//!
//! * [`dcs`] — **Dynamic Choke Sensing** (DATE 2017 / Ch. 3): four-part
//!   error tags, the ICSLT/ACSLT lookup tables, Bloom-filter lookup and
//!   the stall-based avoidance flow.
//! * [`trident`] — **Trident** (Ch. 4): transition-detection-based
//!   classification into SE(Min)/SE(Max)/CE, the EID-keyed Choke Error
//!   Table and class-specific stall avoidance, with no reliance on hold
//!   buffers.
//! * [`baselines`] — Razor, HFG and OCST, the STC state of the art the
//!   paper compares against.
//! * [`tag_delay`] — the two-phase delay oracle bridging the gate-level
//!   timing simulation and the million-cycle instruction-level runs.
//! * [`sim`] — the error-stream simulator and the scheme-free profiler.
//! * [`scenario`] — the scheme registry ([`scenario::SchemeSpec`]) and the
//!   shared per-benchmark fold ([`scenario::SimAccumulator`]) behind the
//!   data-driven experiment grids.
//! * [`overhead`] — gate-level synthesis of each scheme's hardware for the
//!   overhead tables.
//!
//! # Examples
//!
//! Compare Razor and DCS over an mcf-like trace on one fabricated chip:
//!
//! ```
//! use ntc_core::baselines::Razor;
//! use ntc_core::dcs::Dcs;
//! use ntc_core::sim::run_scheme;
//! use ntc_core::tag_delay::{OracleConfig, TagDelayOracle};
//! use ntc_pipeline::Pipeline;
//! use ntc_timing::ClockSpec;
//! use ntc_varmodel::{Corner, VariationParams};
//! use ntc_workload::{Benchmark, TraceGenerator};
//!
//! let mut oracle = TagDelayOracle::for_chip(
//!     Corner::NTC, VariationParams::ntc(), 7, OracleConfig::default());
//! let trace = TraceGenerator::new(Benchmark::Mcf, 1).trace(2_000);
//! let nominal = oracle.nominal_critical_delay_ps();
//! let clock = ClockSpec { period_ps: nominal * 0.75, hold_ps: nominal * 0.06 };
//!
//! let razor = run_scheme(&mut Razor::ch3(), &mut oracle, &trace, clock, Pipeline::core1());
//! let dcs = run_scheme(&mut Dcs::icslt_default(), &mut oracle, &trace, clock, Pipeline::core1());
//! assert!(dcs.cost.penalty_cycles() <= razor.cost.penalty_cycles());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod dcs;
pub mod dvs;
pub mod overhead;
pub mod scenario;
pub mod scheme;
pub mod sim;
pub mod tables;
pub mod tag_delay;
pub mod trident;

pub use baselines::{HardenedRazor, Hfg, Ocst, Razor};
pub use dcs::{CsltKind, Dcs};
pub use dvs::{DvsController, DvsLevel, DVS_TARGET_PPM};
pub use scenario::{ChipContext, ParseSchemeError, SchemeSpec, SimAccumulator};
pub use scheme::{CycleContext, CycleOutcome, ResilienceScheme};
pub use sim::{profile_errors, run_scheme, ErrorProfile, SimResult};
pub use tag_delay::{
    current_oracle_scope, set_oracle_scope, take_oracle_stats, CycleDelays, OracleConfig,
    OracleScope, OracleStats, SharedDelayCache, ShardedDelayCache, TagDelayOracle,
};
pub use trident::{Eid, Trident, EID_BITS};
