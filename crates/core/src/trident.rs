//! Trident — the comprehensive choke-error mitigation technique (Ch. 4).
//!
//! Unlike the Razor-lineage detectors, Trident treats *every* gate —
//! including hold buffers — as a potential choke point, drops the buffer
//! insertion crutch entirely, and instead monitors signal transitions:
//! a Transition Detector and Counter (TDC) per pipestage flags transitions
//! that land in the transparent phase of a detection clock as illegal, and
//! the illegal-transition count classifies the error:
//!
//! * one illegal transition → Single Error, SE(Min) or SE(Max);
//! * two in one detection cycle → Consecutive Error (CE: a maximum
//!   violation immediately followed by the next instruction's minimum
//!   violation).
//!
//! The Choke Detection Controller (CDC) logs each error in the Choke Error
//! Table (CET) under an Error ID (EID: initializing + sensitizing opcodes,
//! their operand sizes, the error class and the errant pipestage) and
//! corrects with flush + replay. On a subsequent CET match the CDC inserts
//! one stall (SE) or two stalls (CE) ahead of the error, avoiding the
//! recurrent detection/correction penalty entirely.

use crate::scheme::{CycleContext, CycleOutcome, ResilienceScheme};
use crate::tables::{AssociativeTable, TableStats};
use ntc_isa::{ErrorTag, Instruction, OperandSize};
use ntc_timing::ErrorClass;

/// The Error ID: the CET key plus the stored classification (§4.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Eid {
    /// Initializing + sensitizing opcode/OWM tag.
    pub tag: ErrorTag,
    /// Operand size of the sensitizing instruction.
    pub size: OperandSize,
    /// Operand size of the initializing instruction.
    pub prev_size: OperandSize,
    /// Errant pipestage (the EX stage in this study).
    pub pipestage: u8,
}

/// Storage bits of one EID entry: 18 tag bits + 2 operand-size bits +
/// 2 error-class bits + 4 pipestage bits.
pub const EID_BITS: usize = ErrorTag::BITS + 2 + 2 + 4;

impl Eid {
    /// Build the EID for an instruction pair at a pipestage.
    pub fn of(prev: &Instruction, cur: &Instruction, pipestage: u8) -> Self {
        Eid {
            tag: ErrorTag::of(prev, cur),
            size: cur.operand_size(),
            prev_size: prev.operand_size(),
            pipestage,
        }
    }
}

/// The EX pipestage index in the modelled Core-1 pipeline.
pub const EX_STAGE: u8 = 6;

/// The Trident scheme: TDC + CDC + CCR + CET.
#[derive(Debug)]
pub struct Trident {
    cet: AssociativeTable<Eid, ErrorClass>,
    power_overhead: f64,
}

impl Trident {
    /// Create a Trident instance with a CET of `cet_entries` EIDs.
    ///
    /// # Panics
    ///
    /// Panics if `cet_entries` is zero.
    pub fn new(cet_entries: usize) -> Self {
        Trident {
            cet: AssociativeTable::new(cet_entries),
            // §4.5.7: 1.58 % of pipeline power.
            power_overhead: 0.0158,
        }
    }

    /// The configuration the paper settles on: a 128-entry CET (§4.5.3).
    pub fn paper() -> Self {
        Trident::new(128)
    }

    /// CET lookup statistics.
    pub fn cet_stats(&self) -> TableStats {
        self.cet.stats()
    }

    /// Current CET occupancy.
    pub fn cet_len(&self) -> usize {
        self.cet.len()
    }
}

impl ResilienceScheme for Trident {
    fn name(&self) -> &'static str {
        "Trident"
    }

    fn on_cycle(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        let eid = Eid::of(ctx.prev, ctx.cur, EX_STAGE);
        let actual = ctx.error_class_at(&ctx.base_clock);

        if let Some(&predicted) = self.cet.lookup(&eid).map(|c| c as &ErrorClass) {
            // Avoidance: the CDC inserts stalls per the recorded class —
            // one for an SE, two for a CE (§4.3.7). False positives pay
            // the stalls for nothing.
            return CycleOutcome::Avoided {
                stalls: predicted.stall_cycles(),
                needed: actual.is_some(),
            };
        }

        match actual {
            Some(class) => {
                // Detection (TDC counts the illegal transitions), logging
                // (CDC writes the EID into the CET) and correction (flush
                // + replay via the CCR's recorded PC).
                self.cet.insert(eid, class);
                CycleOutcome::Recovered { class }
            }
            None => CycleOutcome::Clean,
        }
    }

    fn power_overhead_frac(&self) -> f64 {
        self.power_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag_delay::CycleDelays;
    use ntc_isa::Opcode;
    use ntc_timing::ClockSpec;

    fn clock() -> ClockSpec {
        ClockSpec {
            period_ps: 100.0,
            hold_ps: 12.0,
        }
    }

    fn ctx<'a>(
        prev: &'a Instruction,
        cur: &'a Instruction,
        min: Option<f64>,
        max: Option<f64>,
        next_min: Option<f64>,
    ) -> CycleContext<'a> {
        CycleContext {
            prev,
            cur,
            tag: ErrorTag::of(prev, cur),
            delays: CycleDelays {
                min_ps: min,
                max_ps: max,
            },
            next_delays: next_min.map(|m| CycleDelays {
                min_ps: Some(m),
                max_ps: Some(50.0),
            }),
            base_clock: clock(),
            min_consumed: false,
        }
    }

    fn pair() -> (Instruction, Instruction) {
        (
            Instruction::new(Opcode::Lw, 0x1000, 8),
            Instruction::new(Opcode::Mflo, 0xFFFF_0001, 0xFF),
        )
    }

    #[test]
    fn detects_all_three_classes() {
        let (p, c) = pair();
        // SE(Min)
        let mut t = Trident::paper();
        assert_eq!(
            t.on_cycle(&ctx(&p, &c, Some(5.0), Some(80.0), None)),
            CycleOutcome::Recovered {
                class: ErrorClass::SingleMin
            }
        );
        // SE(Max)
        let mut t = Trident::paper();
        assert_eq!(
            t.on_cycle(&ctx(&p, &c, Some(40.0), Some(150.0), Some(40.0))),
            CycleOutcome::Recovered {
                class: ErrorClass::SingleMax
            }
        );
        // CE: max now + min next.
        let mut t = Trident::paper();
        assert_eq!(
            t.on_cycle(&ctx(&p, &c, Some(40.0), Some(150.0), Some(4.0))),
            CycleOutcome::Recovered {
                class: ErrorClass::Consecutive
            }
        );
    }

    #[test]
    fn avoidance_uses_class_specific_stalls() {
        let (p, c) = pair();
        let mut t = Trident::paper();
        // Learn a CE.
        let _ = t.on_cycle(&ctx(&p, &c, Some(40.0), Some(150.0), Some(4.0)));
        // Next occurrence: two stalls.
        assert_eq!(
            t.on_cycle(&ctx(&p, &c, Some(40.0), Some(150.0), Some(4.0))),
            CycleOutcome::Avoided {
                stalls: 2,
                needed: true
            }
        );

        let mut t = Trident::paper();
        let _ = t.on_cycle(&ctx(&p, &c, Some(5.0), Some(80.0), None));
        assert_eq!(
            t.on_cycle(&ctx(&p, &c, Some(5.0), Some(80.0), None)),
            CycleOutcome::Avoided {
                stalls: 1,
                needed: true
            }
        );
    }

    #[test]
    fn min_errors_are_first_class_citizens() {
        // The whole point vs. Razor: a min violation is detected and
        // avoided, not silently latched.
        let (p, c) = pair();
        let mut t = Trident::paper();
        let out = t.on_cycle(&ctx(&p, &c, Some(3.0), Some(90.0), None));
        assert!(matches!(out, CycleOutcome::Recovered { .. }));
        assert!(matches!(
            t.on_cycle(&ctx(&p, &c, Some(3.0), Some(90.0), None)),
            CycleOutcome::Avoided { .. }
        ));
    }

    #[test]
    fn eid_distinguishes_operand_sizes() {
        let p = Instruction::new(Opcode::Addu, 1, 2);
        let small = Instruction::new(Opcode::Mult, 0xFF, 0x0F);
        let large = Instruction::new(Opcode::Mult, 0xFFFF_0000, 0x0F);
        let e1 = Eid::of(&p, &small, EX_STAGE);
        let e2 = Eid::of(&p, &large, EX_STAGE);
        assert_ne!(e1, e2, "operand size is part of the EID");
        // Note both share the ErrorTag when OWM matches; the EID is finer.
    }

    #[test]
    fn false_positive_accounting() {
        let (p, c) = pair();
        let mut t = Trident::paper();
        let _ = t.on_cycle(&ctx(&p, &c, Some(40.0), Some(150.0), None));
        // Same EID but a clean dynamic instance.
        assert_eq!(
            t.on_cycle(&ctx(&p, &c, Some(40.0), Some(90.0), None)),
            CycleOutcome::Avoided {
                stalls: 1,
                needed: false
            }
        );
    }

    #[test]
    fn eid_bits_matches_field_budget() {
        assert_eq!(EID_BITS, 26);
    }
}
