//! The comparison baselines: Razor (reactive detect + recover), HFG
//! (proactive adaptive guardbanding) and OCST (online clock-skew tuning).
//! All three are state-of-the-art STC techniques the paper shows to be
//! inefficient against choke errors at NTC.

use crate::scheme::{CycleContext, CycleOutcome, ResilienceScheme};
use ntc_timing::{ClockSpec, ErrorClass};

/// Razor: double-sampling flip-flops detect late transitions; recovery is
/// a full pipeline flush + instruction replay. Short paths are padded with
/// buffers at design time to protect the shadow-latch window — which is
/// exactly what choke buffers defeat at NTC: a minimum-timing violation
/// slips past the detector and silently corrupts state.
#[derive(Debug, Clone)]
pub struct Razor {
    /// Whether min-side violations can occur in this experiment's netlist
    /// (Ch. 4 uses the buffered EX stage where choke buffers break the
    /// hold fix; Ch. 3 studies the max side only).
    detect_min_as_corruption: bool,
    power_overhead: f64,
}

impl Razor {
    /// Razor as evaluated in Ch. 3 (maximum-timing violations only).
    pub fn ch3() -> Self {
        Razor {
            detect_min_as_corruption: false,
            power_overhead: 0.004,
        }
    }

    /// Razor as evaluated in Ch. 4: minimum violations exist (choke
    /// buffers) and pass undetected.
    pub fn ch4() -> Self {
        Razor {
            detect_min_as_corruption: true,
            power_overhead: 0.004,
        }
    }
}

impl ResilienceScheme for Razor {
    fn name(&self) -> &'static str {
        "Razor"
    }

    fn on_cycle(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        let v = ctx.violation_at(&ctx.base_clock);
        if v.max {
            // The shadow latch catches the late transition; flush + replay.
            CycleOutcome::Recovered {
                class: ErrorClass::SingleMax,
            }
        } else if v.min && self.detect_min_as_corruption {
            // Choke buffer defeated the hold fix: silent corruption.
            CycleOutcome::SilentCorruption
        } else {
            CycleOutcome::Clean
        }
    }

    fn power_overhead_frac(&self) -> f64 {
        self.power_overhead
    }
}

/// The selective-hardening ablation: Razor detection on a die whose top-k
/// slow choke gates were hardened (de-rated to the nominal delay) before
/// fabrication. The hardening itself lives in the experiment harness —
/// the delay oracle is built from a de-rated chip signature — so this
/// wrapper only renames the scheme for the figures and charges the
/// upsized gates' always-on power on top of Razor's shadow latches.
#[derive(Debug, Clone)]
pub struct HardenedRazor {
    inner: Razor,
    power_overhead: f64,
}

impl HardenedRazor {
    /// Razor over a die with `top_k` hardened choke gates. The per-gate
    /// upsizing power is small and saturates: hardening beyond the few
    /// genuine choke gates buys nothing but leakage.
    pub fn new(top_k: usize) -> Self {
        let inner = Razor::ch3();
        let hardening = 0.0005 * top_k.min(32) as f64;
        let power_overhead = inner.power_overhead + hardening;
        HardenedRazor {
            inner,
            power_overhead,
        }
    }
}

impl ResilienceScheme for HardenedRazor {
    fn name(&self) -> &'static str {
        "Harden-choke"
    }

    fn on_cycle(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        self.inner.on_cycle(ctx)
    }

    fn power_overhead_frac(&self) -> f64 {
        self.power_overhead
    }
}

/// Hierarchically Focused Guardbanding: in-situ PVTA sensors drive an
/// adaptive timing guardband wide enough that errors never occur. No
/// recovery penalty — but every single cycle pays the stretched clock, and
/// the sensor network burns power (§3.5.1).
#[derive(Debug, Clone)]
pub struct Hfg {
    stretch: f64,
    power_overhead: f64,
}

impl Hfg {
    /// HFG with the guardband required to cover the chip's observed
    /// worst-case sensitized delay, expressed as a period stretch factor.
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1.0` (a guardband cannot shrink the period).
    pub fn with_stretch(stretch: f64) -> Self {
        assert!(stretch >= 1.0, "guardband stretch must be >= 1.0");
        Hfg {
            stretch,
            // The hierarchical PVTA sensor network, its sampling logic and
            // the guardband controller are distributed across every block
            // of the chip — the "considerably high power overhead" the
            // paper attributes to HFG (Section 3.5.1).
            power_overhead: 0.10,
        }
    }
}

impl ResilienceScheme for Hfg {
    fn name(&self) -> &'static str {
        "HFG"
    }

    fn on_cycle(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        // The guardbanded clock covers even worst-case choke delays.
        let clock = ctx.base_clock.stretched(self.stretch);
        let v = ctx.violation_at(&clock);
        if v.max {
            // Guardband insufficient for an extreme outlier: recover.
            CycleOutcome::Recovered {
                class: ErrorClass::SingleMax,
            }
        } else {
            CycleOutcome::Clean
        }
    }

    fn period_stretch(&self) -> f64 {
        self.stretch
    }

    /// HFG classifies every cycle at the guardbanded (stretched) clock and
    /// nothing tighter, so the screen may prove safety against it — which
    /// is what makes HFG runs almost entirely screenable: the guardband is
    /// sized past the chip's static critical delay, the ceiling of every
    /// per-cycle cone bound. The hold side is released entirely (`0.0`)
    /// because HFG discards min-side violations — guardbanding stretches
    /// setup time and does nothing for hold, so the scheme never
    /// thresholds against the hold window.
    fn screen_clock(&self, base: ClockSpec) -> ClockSpec {
        ClockSpec {
            period_ps: base.period_ps * self.stretch,
            hold_ps: 0.0,
        }
    }

    fn power_overhead_frac(&self) -> f64 {
        self.power_overhead
    }
}

/// Online Clock-Skew Tuning: the circuit is observed in fixed intervals
/// (100 000 cycles in the paper); blocks whose error frequency crosses a
/// threshold get their clock skew tuned to grant extra time, borrowed from
/// neighbouring stages up to a cap. Errors during observation are handled
/// Razor-style; min-side violations still rely on buffers.
#[derive(Debug, Clone)]
pub struct Ocst {
    /// Tuning interval, cycles.
    interval: u64,
    /// Maximum skew slack as a fraction of the clock period.
    max_slack_frac: f64,
    /// Current granted slack, ps.
    slack_ps: f64,
    /// Cycles into the current interval.
    pos: u64,
    /// Max-violation overshoots observed this interval, ps.
    overshoots: Vec<f64>,
    power_overhead: f64,
}

impl Ocst {
    /// OCST with the paper's 100 k-cycle tuning interval and a skew budget
    /// of `max_slack_frac` of the period.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or the slack fraction is negative.
    pub fn new(interval: u64, max_slack_frac: f64) -> Self {
        assert!(interval > 0, "tuning interval must be nonzero");
        assert!(max_slack_frac >= 0.0, "slack fraction must be non-negative");
        Ocst {
            interval,
            max_slack_frac,
            slack_ps: 0.0,
            pos: 0,
            overshoots: Vec::new(),
            power_overhead: 0.008,
        }
    }

    /// The paper's configuration: tune every 100 000 cycles.
    pub fn paper() -> Self {
        Ocst::new(100_000, 0.30)
    }

    /// Currently granted skew slack, ps.
    pub fn slack_ps(&self) -> f64 {
        self.slack_ps
    }

    fn retune(&mut self, period_ps: f64) {
        if !self.overshoots.is_empty() {
            // Grant enough slack to cover the 90th percentile of observed
            // overshoots, within the skew budget.
            self.overshoots.sort_by(f64::total_cmp);
            let idx = ((self.overshoots.len() as f64) * 0.9) as usize;
            let target = self.overshoots[idx.min(self.overshoots.len() - 1)];
            self.slack_ps = target.min(period_ps * self.max_slack_frac);
        }
        self.overshoots.clear();
    }
}

impl ResilienceScheme for Ocst {
    fn name(&self) -> &'static str {
        "OCST"
    }

    fn on_cycle(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        let outcome = self.process(ctx);
        // Tuning happens at the interval boundary, after the interval's
        // observations are complete.
        self.pos += 1;
        if self.pos >= self.interval {
            self.pos = 0;
            self.retune(ctx.base_clock.period_ps);
        }
        outcome
    }

    fn power_overhead_frac(&self) -> f64 {
        self.power_overhead
    }
}

impl Ocst {
    fn process(&mut self, ctx: &CycleContext<'_>) -> CycleOutcome {
        let base = ctx.violation_at(&ctx.base_clock);
        if let Some(max_d) = ctx.delays.max_ps {
            let overshoot = max_d - ctx.base_clock.period_ps;
            if overshoot > 0.0 {
                self.overshoots.push(overshoot);
                return if overshoot <= self.slack_ps {
                    // Covered by the tuned skew: executes cleanly.
                    CycleOutcome::Clean
                } else {
                    CycleOutcome::Recovered {
                        class: ErrorClass::SingleMax,
                    }
                };
            }
        }
        if base.min {
            CycleOutcome::SilentCorruption
        } else {
            CycleOutcome::Clean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::CycleContext;
    use crate::tag_delay::CycleDelays;
    use ntc_isa::{ErrorTag, Instruction, Opcode};
    use ntc_timing::ClockSpec;

    fn ctx<'a>(
        prev: &'a Instruction,
        cur: &'a Instruction,
        min: Option<f64>,
        max: Option<f64>,
    ) -> CycleContext<'a> {
        CycleContext {
            prev,
            cur,
            tag: ErrorTag::of(prev, cur),
            delays: CycleDelays {
                min_ps: min,
                max_ps: max,
            },
            next_delays: None,
            base_clock: ClockSpec {
                period_ps: 100.0,
                hold_ps: 12.0,
            },
            min_consumed: false,
        }
    }

    fn instrs() -> (Instruction, Instruction) {
        (
            Instruction::new(Opcode::Addu, 1, 2),
            Instruction::new(Opcode::Subu, 3, 4),
        )
    }

    #[test]
    fn razor_recovers_max_violations() {
        let (p, c) = instrs();
        let mut r = Razor::ch3();
        assert_eq!(
            r.on_cycle(&ctx(&p, &c, Some(50.0), Some(150.0))),
            CycleOutcome::Recovered {
                class: ErrorClass::SingleMax
            }
        );
        assert_eq!(r.on_cycle(&ctx(&p, &c, Some(50.0), Some(90.0))), CycleOutcome::Clean);
    }

    #[test]
    fn razor_ch4_misses_min_violations() {
        let (p, c) = instrs();
        let mut r = Razor::ch4();
        assert_eq!(
            r.on_cycle(&ctx(&p, &c, Some(5.0), Some(90.0))),
            CycleOutcome::SilentCorruption
        );
        let mut r3 = Razor::ch3();
        assert_eq!(r3.on_cycle(&ctx(&p, &c, Some(5.0), Some(90.0))), CycleOutcome::Clean);
    }

    #[test]
    fn hardened_razor_detects_like_ch3_and_charges_hardening_power() {
        let (p, c) = instrs();
        let mut h = HardenedRazor::new(8);
        assert_eq!(h.name(), "Harden-choke");
        assert!(matches!(
            h.on_cycle(&ctx(&p, &c, Some(50.0), Some(150.0))),
            CycleOutcome::Recovered { .. }
        ));
        assert_eq!(h.on_cycle(&ctx(&p, &c, Some(5.0), Some(90.0))), CycleOutcome::Clean);
        // More hardened gates cost more power, saturating past 32.
        assert!(HardenedRazor::new(16).power_overhead_frac() > h.power_overhead_frac());
        assert_eq!(
            HardenedRazor::new(64).power_overhead_frac(),
            HardenedRazor::new(32).power_overhead_frac()
        );
        assert!(h.power_overhead_frac() > Razor::ch3().power_overhead_frac());
    }

    #[test]
    fn hfg_avoids_errors_by_stretching() {
        let (p, c) = instrs();
        let mut h = Hfg::with_stretch(1.6);
        // 150 ps < 160 ps stretched period: clean, but at a slower clock.
        assert_eq!(h.on_cycle(&ctx(&p, &c, Some(50.0), Some(150.0))), CycleOutcome::Clean);
        assert!(h.period_stretch() > 1.0);
        // An extreme outlier still escapes the guardband.
        assert!(matches!(
            h.on_cycle(&ctx(&p, &c, Some(50.0), Some(170.0))),
            CycleOutcome::Recovered { .. }
        ));
    }

    #[test]
    #[should_panic(expected = ">= 1.0")]
    fn hfg_rejects_negative_guardband() {
        let _ = Hfg::with_stretch(0.9);
    }

    #[test]
    fn ocst_learns_slack_after_interval() {
        let (p, c) = instrs();
        let mut o = Ocst::new(10, 0.5);
        // First interval: all overshoots recovered Razor-style.
        for _ in 0..10 {
            let out = o.on_cycle(&ctx(&p, &c, Some(50.0), Some(120.0)));
            assert!(matches!(out, CycleOutcome::Recovered { .. }));
        }
        // Tuning happened; 20 ps overshoot now covered.
        assert!(o.slack_ps() >= 20.0 - 1e-9);
        let out = o.on_cycle(&ctx(&p, &c, Some(50.0), Some(120.0)));
        assert_eq!(out, CycleOutcome::Clean);
        // A bigger overshoot still fails.
        let out = o.on_cycle(&ctx(&p, &c, Some(50.0), Some(200.0)));
        assert!(matches!(out, CycleOutcome::Recovered { .. }));
    }

    #[test]
    fn ocst_slack_is_capped() {
        let (p, c) = instrs();
        let mut o = Ocst::new(4, 0.1); // cap at 10 ps
        for _ in 0..8 {
            let _ = o.on_cycle(&ctx(&p, &c, Some(50.0), Some(180.0)));
        }
        assert!(o.slack_ps() <= 10.0 + 1e-9);
    }

    #[test]
    fn ocst_min_violations_corrupt() {
        let (p, c) = instrs();
        let mut o = Ocst::paper();
        assert_eq!(
            o.on_cycle(&ctx(&p, &c, Some(3.0), Some(90.0))),
            CycleOutcome::SilentCorruption
        );
    }
}
